//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim provides the (small) slice of the `rand` API the
//! workspace actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! The generator is SplitMix64: deterministic, seedable, fast, and of
//! entirely adequate quality for workload generation and property tests. It
//! intentionally does **not** reproduce the upstream `StdRng` stream — all
//! seeded data in this repository is defined by this implementation.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Extension trait providing `random_range` (the rand 0.9+ spelling).
pub trait RngExt: RngCore + Sized {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000i64), b.random_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(1.0..=4.0f64);
            assert!((1.0..=4.0).contains(&f));
        }
    }

    #[test]
    fn covers_full_inclusive_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5..5i64);
    }
}
