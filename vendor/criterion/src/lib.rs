//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the group-based benching API the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with `sample_size`,
//! `throughput`, `bench_function`, and `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated to a per-sample
//! iteration count (targeting a fixed wall-clock budget per sample), then a
//! small number of samples is taken and the **median** per-iteration time is
//! reported to stdout, together with throughput when configured. There are no
//! statistics files, plots, or baselines — output is one line per benchmark,
//! which is all the repo's experiment scripts consume.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample wall-clock budget during measurement.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);
/// Wall-clock budget for the calibration (warm-up) phase.
const WARMUP_BUDGET: Duration = Duration::from_millis(20);
/// Default number of measured samples (median is reported).
const DEFAULT_SAMPLES: usize = 5;

/// Units for reporting throughput alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / self.iters_per_sample.max(1) as u32);
        }
        per_iter.sort();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

/// Formats a duration with an adaptive unit, criterion-style.
fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of measured samples (upstream semantics differ; here
    /// it is clamped to a small count since only the median is reported).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 15);
        self
    }

    /// Configures measurement time; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Configures warm-up time; accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        if self.criterion.list_only {
            println!("{full}: benchmark");
            return;
        }
        // Calibrate: find an iteration count that fills the sample budget.
        let mut calib = Bencher { iters_per_sample: 1, samples: 1, last_median: Duration::ZERO };
        let warmup_start = Instant::now();
        loop {
            f(&mut calib);
            let per_iter = calib.last_median.max(Duration::from_nanos(1));
            let target = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)) as u64;
            let next = target.clamp(1, calib.iters_per_sample.saturating_mul(16).max(1));
            if next <= calib.iters_per_sample || warmup_start.elapsed() >= WARMUP_BUDGET {
                calib.iters_per_sample = next.max(calib.iters_per_sample);
                break;
            }
            calib.iters_per_sample = next;
        }
        // Measure.
        let mut b = Bencher {
            iters_per_sample: calib.iters_per_sample,
            samples: self.samples,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        let median = b.last_median;
        let mut line = format!("{full:<50} time: [{}]", fmt_time(median));
        if let Some(tp) = self.throughput {
            let per_sec = |amount: u64| -> f64 {
                let secs = median.as_secs_f64();
                if secs > 0.0 { amount as f64 / secs } else { f64::INFINITY }
            };
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" thrpt: [{:.2} Kelem/s]", per_sec(n) / 1e3));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" thrpt: [{:.2} MiB/s]", per_sec(n) / (1024.0 * 1024.0)));
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept the harness CLI surface cargo-bench/test invoke us with:
        // `--bench`, `--list`, `--exact`, and a positional name filter.
        let mut filter = None;
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--list" => list_only = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, list_only }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name);
        g.bench_function(BenchmarkId::from_parameter(""), &mut f);
        g.finish();
        self
    }

    /// Final configuration hook; accepted for API compatibility.
    pub fn final_summary(&mut self) {}

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn bencher_records_a_time() {
        let mut b = Bencher { iters_per_sample: 100, samples: 3, last_median: Duration::ZERO };
        b.iter(|| black_box(2u64 + 2));
        // Any successful measurement is fine; just ensure it ran.
        assert!(b.last_median >= Duration::ZERO);
    }

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_time(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_time(Duration::from_millis(5)).ends_with("ms"));
    }
}
