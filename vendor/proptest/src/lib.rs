//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the slice of proptest the workspace uses: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, `collection::vec`, the
//! `proptest!` macro (with `#![proptest_config(...)]`), and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim
//!   (all strategies require `Debug` values) and the case index; re-running
//!   is deterministic because each test's RNG is seeded from the test name.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * The default case count is 64 (upstream: 256) to keep offline CI fast;
//!   tests that need more pass `ProptestConfig::with_cases(n)` exactly as
//!   with upstream.

use std::fmt::Debug;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    /// Seeds a generator from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty strategy range");
        self.next_u64() % span
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// sampler. Values must be `Debug` so failing cases can be reported.
pub trait Strategy {
    /// The type of values produced.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Discards generated values failing `f` (re-draws, bounded attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, whence, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Strategy for `bool` (fair coin).
#[derive(Clone, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of `element` with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run per test.
        pub cases: u32,
        /// Maximum rejected cases (`prop_assume!` failures) tolerated.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_global_rejects: 4096 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (does not count as run).
        Reject(String),
        /// The case failed a `prop_assert*!`.
        Fail(String),
    }

    /// Result type threaded through generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, AnyBool, Just,
        Strategy, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), a, b
        );
    }};
}

/// Fails the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Rejects the current case unless `cond` holds (the case is re-drawn and
/// does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-definition macro; mirrors upstream `proptest!` syntax for
/// `fn name(arg in strategy, ...) { body }` items with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal: expands each `fn` item inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while passed < cfg.cases {
                case += 1;
                // Tuple evaluation is left-to-right, so the draw order is
                // deterministic and matches the argument order.
                let __vals = ($($crate::Strategy::new_value(&($strat), &mut rng),)+);
                let __shown = format!("{:?}", __vals);
                let ($($arg,)+) = __vals;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::TestCaseResult { $body Ok(()) },
                ));
                match outcome {
                    Ok(Ok(())) => passed += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                        rejected += 1;
                        assert!(
                            rejected <= cfg.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest {} failed at case {case}: {msg}\n  inputs: {}",
                            stringify!($name),
                            __shown,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest {} panicked at case {case}\n  inputs: {}",
                            stringify!($name),
                            __shown,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = (0i64..10, 5u32..=6).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.new_value(&mut rng);
            assert!((0..10).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(2);
        let s = crate::collection::vec(0usize..5, 2..=4);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0i64..100, v in crate::collection::vec(0u32..8, 0..5)) {
            prop_assume!(x != 13);
            prop_assert!(x >= 0 && x < 100);
            prop_assert_eq!(v.len(), v.iter().count());
            prop_assert_ne!(x, 13);
        }
    }
}
