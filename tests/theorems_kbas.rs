//! Integration tests for §3: Theorems 3.9 (upper bound) and 3.20 (tightness)
//! of the k-BAS loss factor, across crates (`pobp-forest` + `pobp-instances`).

use pobp::prelude::*;

/// Theorem 3.9 on structured *and* random forests: the optimal k-BAS value
/// is at least `val(T) / log_{k+1} n`.
#[test]
fn theorem_3_9_upper_bound_holds_broadly() {
    for seed in 0..10u64 {
        for &n in &[10usize, 100, 1000] {
            let f = random_forest(n, 0.1, seed);
            for k in 1..=4u32 {
                let res = tm(&f, k);
                let bound = loss_bound(n, k);
                assert!(
                    res.value * bound >= f.total_value() - 1e-6,
                    "seed={seed} n={n} k={k}"
                );
                assert!(is_kbas(&f, &res.keep, k));
            }
        }
    }
}

/// Lemma 3.17/3.18 as measured: LevelledContraction uses at most
/// `log_{k+1} n + 1` iterations and its best level carries `≥ val(T)/L`.
#[test]
fn levelled_contraction_bounds() {
    for seed in 0..6u64 {
        let f = random_forest(2000, 0.05, seed);
        for k in 1..=3u32 {
            let lc = levelled_contraction(&f, k);
            let l = lc.iterations() as f64;
            assert!(l <= (2000f64.ln() / ((k + 1) as f64).ln()).floor() + 1.0 + 1e-9);
            assert!(lc.value() * l >= f.total_value() - 1e-6);
        }
    }
}

/// Theorem 3.20 (Appendix A): the adversarial tree really forces loss
/// `(L+1)/Σ(k/K)^j` — growing linearly in `L = Θ(log_{k+1} n)` — and the
/// measured TM value matches the Lemma A.2 closed form exactly.
#[test]
fn theorem_3_20_tightness() {
    for k in 1..=3u32 {
        let mut prev_loss = 0.0;
        for depth in 1..=5u32 {
            let lb = LowerBoundTree::for_k(k, depth);
            let f = lb.build();
            let res = tm(&f, k);
            let expected = lb.expected_tm_value(k);
            assert!(
                (res.value - expected).abs() / expected < 1e-12,
                "k={k} L={depth}"
            );
            let loss = f.total_value() / res.value;
            // Strictly increasing in L, and above (L+1)/2 (K = 2k).
            assert!(loss > prev_loss, "loss not growing at k={k} L={depth}");
            assert!(loss > (depth as f64 + 1.0) / 2.0);
            prev_loss = loss;
            // The brute force agrees on tiny instances.
            if f.len() <= 16 {
                let (bf, _) = brute_force_kbas(&f, k);
                assert!((bf - res.value).abs() < 1e-9);
            }
        }
    }
}

/// The lower bound and upper bound bracket each other: on the adversarial
/// tree, loss ∈ [(L+1)/2, log_{k+1} n] for K = 2k.
#[test]
fn loss_is_sandwiched_on_adversarial_tree() {
    for k in 1..=3u32 {
        for depth in 2..=5u32 {
            let lb = LowerBoundTree::for_k(k, depth);
            let f = lb.build();
            let res = tm(&f, k);
            let loss = f.total_value() / res.value;
            assert!(loss <= loss_bound(f.len(), k) + 1e-9, "k={k} L={depth}");
            assert!(loss >= (depth as f64 + 1.0) / 2.0, "k={k} L={depth}");
        }
    }
}

/// Increasing k on the adversarial tree built for a smaller k collapses the
/// loss to 1 once k reaches the branching factor.
#[test]
fn larger_budget_defeats_the_construction() {
    let lb = LowerBoundTree::for_k(2, 4); // K = 4
    let f = lb.build();
    let res = tm(&f, 4);
    assert_eq!(res.value, f.total_value());
    assert_eq!(res.keep.len(), f.len());
}
