//! Replication pinning: the exact numbers recorded in `EXPERIMENTS.md` are
//! deterministic (seeded workloads, integer arithmetic); this test suite
//! pins them so a regression in any algorithm shows up as a changed
//! experiment table, not just a changed benchmark.

use pobp::prelude::*;

/// E3: the Appendix A loss staircase (exact rational values).
#[test]
fn e3_loss_staircase() {
    // measured loss for L = 2, 4, 6 — identical for every k (closed form).
    let expect = [(2u32, 1.7143f64), (4, 2.5806), (6, 3.5276)];
    for k in 1..=3u32 {
        for &(depth, want) in &expect {
            let lb = LowerBoundTree::for_k(k, depth);
            if lb.node_count() > 100_000 {
                continue;
            }
            let f = lb.build();
            let res = tm(&f, k);
            let loss = f.total_value() / res.value;
            assert!(
                (loss - want).abs() < 5e-4,
                "k={k} L={depth}: loss {loss:.4} != recorded {want}"
            );
        }
    }
}

/// E5: the Figure 4 price table rows recorded in EXPERIMENTS.md.
#[test]
fn e5_fig4_price_rows() {
    // (k, L, n, OPT_inf, OPT_k, price)
    let rows = [
        (1u32, 3u32, 15usize, 32.0, 15.0, 2.133),
        (1, 5, 63, 192.0, 63.0, 3.048),
        (2, 5, 1365, 6144.0, 2016.0, 3.048),
        (3, 5, 9331, 46656.0, 15309.0, 3.048),
    ];
    for &(k, depth, n, opt_inf, opt_k, price) in &rows {
        let inst = Fig4Instance::for_k(k, depth);
        assert_eq!(inst.job_count(), n);
        assert_eq!(inst.opt_unbounded_value(), opt_inf);
        assert_eq!(inst.opt_k_upper_bound(k), opt_k);
        assert!((opt_inf / opt_k - price).abs() < 5e-4);
        // And the reduction achieves the bound exactly (the "bonus" note).
        let built = inst.build();
        let ids: Vec<JobId> = built.jobs.ids().collect();
        let inf = edf_schedule(&built.jobs, &ids, None);
        assert!(inf.is_feasible());
        let red = reduce_to_k_bounded(&built.jobs, &inf.schedule, k).unwrap();
        assert_eq!(red.schedule.value(&built.jobs), opt_k, "k={k} L={depth}");
    }
}

/// E8: the Figure 2 staircase rows.
#[test]
fn e8_fig2_rows() {
    for (n, p) in [(6u32, 32.0f64), (10, 512.0), (14, 8192.0)] {
        let inst = Fig2Instance::new(n);
        assert_eq!(inst.length_ratio(), p);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        assert!(edf_feasible(&jobs, &ids));
        let opt0 = opt_nonpreemptive(&jobs, &ids);
        assert_eq!(opt0.value, 1.0);
        let alg = schedule_k0(&jobs, &ids);
        assert_eq!(alg.value(&jobs), 1.0);
        assert_eq!(n as f64 / opt0.value, p.log2() + 1.0);
    }
}

/// E12: the switch-cost crossover table (the exact staircase of winners).
#[test]
fn e12_crossover_rows() {
    let mut jobs = JobSet::new();
    for i in 0..8i64 {
        jobs.push(Job::new(30 * i, 30 * i + 200, 40, 40.0));
    }
    for i in 0..30i64 {
        jobs.push(Job::new(12 * i, 12 * i + 8, 3, 3.0));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    let run = |policy: Policy, delta: i64| {
        execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta }).value(&jobs)
    };
    // The recorded table: (δ, edf, k2, k1, k0).
    let rows = [
        (0i64, 410.0, 386.0, 359.0, 338.0),
        (1, 330.0, 371.0, 359.0, 338.0),
        (2, 210.0, 294.0, 347.0, 326.0),
        (4, 130.0, 276.0, 304.0, 323.0),
    ];
    for &(delta, edf, k2, k1, k0) in &rows {
        assert_eq!(run(Policy::Edf, delta), edf, "δ={delta} edf");
        assert_eq!(run(Policy::EdfBudget(2), delta), k2, "δ={delta} k2");
        assert_eq!(run(Policy::EdfBudget(1), delta), k1, "δ={delta} k1");
        assert_eq!(run(Policy::EdfBudget(0), delta), k0, "δ={delta} k0");
    }
}

/// E4 (seeded): the small-instance reduction prices are reproducible.
#[test]
fn e4_reduction_seeded_prices() {
    // Recompute the k = 1 geo-mean price over the same 20 seeds and pin it.
    // The pinned value is defined by the vendored deterministic RNG stream
    // (vendor/rand, SplitMix64); regenerate with `cargo run --release
    // --example e4_table` if the stream or workload model changes.
    let mut prices = Vec::new();
    for seed in 0..20u64 {
        let jobs = RandomWorkload {
            n: 14,
            horizon: 40,
            length_range: (1, 12),
            laxity: LaxityModel::Uniform { max: 4.0 },
            values: ValueModel::Uniform { max: 20 },
        }
        .generate(seed);
        let ids: Vec<JobId> = jobs.ids().collect();
        let opt = opt_unbounded(&jobs, &ids);
        if opt.value == 0.0 {
            continue;
        }
        let red = reduce_to_k_bounded(&jobs, &opt.schedule, 1).unwrap();
        prices.push(opt.value / red.schedule.value(&jobs));
    }
    let geo = (prices.iter().map(|p: &f64| p.ln()).sum::<f64>() / prices.len() as f64).exp();
    assert!(
        (geo - 1.122).abs() < 5e-3,
        "E4 k=1 geo-mean price drifted: {geo:.4} (recorded 1.122)"
    );
}

/// E1: round-robin interleaving counts are exactly as recorded.
#[test]
fn e1_round_robin_rows() {
    for n in [6usize, 12, 24] {
        let jobs = overlapping_block(n, 3, 4);
        let ids: Vec<JobId> = jobs.ids().collect();
        let rr = round_robin_schedule(&jobs, &ids);
        let max_segs = rr.scheduled_ids().map(|j| rr.preemptions(j) + 1).max().unwrap();
        assert_eq!(max_segs, 3, "n={n}");
        assert!(!is_laminar(&rr));
        let lam = laminarize(&jobs, &rr).unwrap();
        let max_after = lam.scheduled_ids().map(|j| lam.preemptions(j) + 1).max().unwrap();
        assert_eq!(max_after, 1, "n={n}");
        assert!(is_laminar(&lam));
        assert_eq!(lam.value(&jobs), rr.value(&jobs));
    }
}
