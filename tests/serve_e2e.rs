//! Durability end-to-end through the real binaries: spawn `pobp serve` as a
//! subprocess, submit jobs over TCP, `SIGKILL` the daemon mid-flight, restart
//! it over the same registry directory, and assert every job's state and
//! cached result survive byte-identically. This is the `kill -9` contract of
//! docs/serve.md exercised exactly as an operator would hit it.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use pobp::serve::json::Json;
use pobp::serve::Client;

const POBP: &str = env!("CARGO_BIN_EXE_pobp");

/// A `pobp serve` subprocess on an OS-assigned port, with the bound address
/// scraped from its first stdout line.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(dir: &PathBuf, extra: &[&str]) -> Self {
        let mut child = Command::new(POBP)
            .args(["serve", "--addr", "127.0.0.1:0", "--dir"])
            .arg(dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pobp serve");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines.next().expect("daemon printed nothing").expect("read daemon stdout");
        let addr = first
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {first:?}"))
            .to_string();
        // Drain the rest of stdout on a side thread so the pipe never fills.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        Self { child, addr }
    }

    fn client(&self) -> Client {
        Client::new(&self.addr, Duration::from_secs(10))
    }

    fn kill9(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
    }

    fn shutdown(mut self) {
        let _ = self.client().shutdown(true);
        let status = self.child.wait().expect("reap daemon");
        assert!(status.success(), "daemon exit status: {status:?}");
    }
}

fn submit_and_wait(client: &Client, alg: &str, n: u64, seed: u64) -> u64 {
    let spec = Json::Obj(vec![
        ("alg".into(), Json::Str(alg.into())),
        ("n".into(), Json::Num(n as f64)),
        ("k".into(), Json::Num(1.0)),
        ("seed".into(), Json::Num(seed as f64)),
    ]);
    let resp = client.submit(spec).expect("submit");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    let id = resp.get("id").and_then(Json::as_u64).expect("id");
    for _ in 0..600 {
        let v = client.result(id).expect("result");
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            return id;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("job {id} did not finish");
}

fn result_line(client: &Client, id: u64) -> String {
    let v = client.result(id).expect("result");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    v.to_string()
}

#[test]
fn kill9_restart_recovers_results_byte_identically() {
    let dir = std::env::temp_dir().join(format!("pobp-serve-e2e-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // Boot, run a small mixed batch to completion, snapshot the responses.
    let daemon = Daemon::spawn(&dir, &["--workers", "2"]);
    let client = daemon.client();
    assert!(client.ping(), "daemon not answering");
    let ids: Vec<u64> = [("reduction", 8, 1), ("lsa", 12, 2), ("combined", 10, 3)]
        .iter()
        .map(|&(alg, n, seed)| submit_and_wait(&client, alg, n, seed))
        .collect();
    let before: Vec<String> = ids.iter().map(|&id| result_line(&client, id)).collect();
    daemon.kill9();

    // Restart over the same directory: every record must replay exactly,
    // including across a different engine parallelism.
    for workers in ["1", "4"] {
        let daemon = Daemon::spawn(&dir, &["--workers", workers]);
        let client = daemon.client();
        let after: Vec<String> = ids.iter().map(|&id| result_line(&client, id)).collect();
        assert_eq!(after, before, "results changed across restart (workers={workers})");
        daemon.kill9();
    }

    // Resubmitting an already-solved cell after restart is served from the
    // durable registry: terminal immediately, counted as a cache hit.
    let daemon = Daemon::spawn(&dir, &["--workers", "1"]);
    let client = daemon.client();
    let resp = client
        .submit(Json::Obj(vec![
            ("alg".into(), Json::Str("reduction".into())),
            ("n".into(), Json::Num(8.0)),
            ("k".into(), Json::Num(1.0)),
            ("seed".into(), Json::Num(1.0)),
        ]))
        .expect("resubmit");
    assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true), "{resp}");
    let stats = client.stats().expect("stats");
    let hits = stats
        .get("stats")
        .and_then(|s| s.get("cache_hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(hits >= 1, "expected a cache hit, stats: {stats}");

    // A clean shutdown drains and exits 0 — and the registry survives that
    // too (final compaction writes the snapshot).
    daemon.shutdown();
    let (registry, _, _) = pobp::serve::replay_dir(&dir).expect("replay after shutdown");
    assert_eq!(registry.len(), ids.len() + 1);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flag_errors_are_loud() {
    // A flag missing its value must name the flag and exit nonzero without
    // ever binding a socket.
    let out = Command::new(POBP).args(["serve", "--addr"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));
    let out = Command::new(POBP)
        .args(["serve", "--workers", "ten", "--addr", "127.0.0.1:0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));
}
