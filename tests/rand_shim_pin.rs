//! Pinned-stream smoke test for the vendored `rand` shim (`vendor/rand`).
//!
//! Every seeded constant in this repository — workload tables in
//! `EXPERIMENTS.md`, the re-pinned prices in `tests/replication.rs`, the
//! engine's determinism contract (`docs/engine.md`) — is defined by the
//! shim's SplitMix64 stream, not by upstream `rand` (see
//! `docs/known_issues.md`, "seeded constants changed"). This test pins the
//! first eight raw draws for two fixed seeds so that any change to the
//! generator (re-vendoring upstream `rand`, touching the mixing constants,
//! changing `seed_from_u64`) fails loudly here instead of silently shifting
//! every downstream table.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// First eight `next_u64` draws for `seed_from_u64(0)`.
const SEED_0_STREAM: [u64; 8] = [
    0x6e78_9e6a_a1b9_65f4,
    0x06c4_5d18_8009_454f,
    0xf88b_b8a8_724c_81ec,
    0x1b39_896a_51a8_749b,
    0x53cb_9f0c_747e_a2ea,
    0x2c82_9abe_1f45_32e1,
    0xc584_133a_c916_ab3c,
    0x3ee5_7890_41c9_8ac3,
];

/// First eight `next_u64` draws for `seed_from_u64(42)`.
const SEED_42_STREAM: [u64; 8] = [
    0x28ef_e333_b266_f103,
    0x4752_6757_130f_9f52,
    0x581c_e1ff_0e4a_e394,
    0x09bc_585a_2448_23f2,
    0xde44_31fa_3c80_db06,
    0x37e9_671c_4537_6d5d,
    0xccf6_35ee_9e9e_2fa4,
    0x5705_b877_0b3d_7dd5,
];

fn stream(seed: u64) -> [u64; 8] {
    let mut rng = StdRng::seed_from_u64(seed);
    std::array::from_fn(|_| rng.next_u64())
}

#[test]
fn splitmix64_stream_is_pinned() {
    assert_eq!(stream(0), SEED_0_STREAM, "seed 0 stream moved — see docs/known_issues.md");
    assert_eq!(stream(42), SEED_42_STREAM, "seed 42 stream moved — see docs/known_issues.md");
}

#[test]
fn nearby_seeds_diverge_immediately() {
    // Guards against a seeding regression that maps close seeds to
    // overlapping streams (e.g. dropping the golden-ratio increment).
    assert_ne!(stream(0)[0], stream(1)[0]);
    assert_ne!(stream(41), stream(42));
}
