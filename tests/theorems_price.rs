//! Integration tests for §4: Theorems 4.2/4.3 (price in `n`) and
//! 4.5/4.13 (price in `P`), end-to-end across all crates.

use pobp::prelude::*;

fn all_ids(jobs: &JobSet) -> Vec<JobId> {
    jobs.ids().collect()
}

/// Theorem 4.2 against the *exact* optimum on small random instances:
/// `OPT_∞ ≤ log_{k+1} n · value(reduction(OPT_∞ schedule))`.
#[test]
fn theorem_4_2_exact_small_instances() {
    for seed in 0..12u64 {
        let workload = RandomWorkload {
            n: 10,
            horizon: 40,
            length_range: (1, 12),
            laxity: LaxityModel::Uniform { max: 4.0 },
            values: ValueModel::Uniform { max: 20 },
        };
        let jobs = workload.generate(seed);
        let ids = all_ids(&jobs);
        let opt = opt_unbounded(&jobs, &ids);
        if opt.subset.is_empty() {
            continue;
        }
        for k in 1..=3u32 {
            let red = reduce_to_k_bounded(&jobs, &opt.schedule, k).unwrap();
            red.schedule.verify(&jobs, Some(k)).unwrap();
            let bound = loss_bound(jobs.len(), k);
            assert!(
                red.schedule.value(&jobs) * bound >= opt.value - 1e-6,
                "seed={seed} k={k}: {} × {bound} < {}",
                red.schedule.value(&jobs),
                opt.value
            );
        }
    }
}

/// Theorem 4.3 (Appendix B): the Figure 4 instance forces the price up.
/// `OPT_∞` schedules everything; any k-bounded solution is under the
/// analytic `K^L·Σ(k/K)^i` bound; the ratio grows linearly in `L`.
#[test]
fn theorem_4_3_lower_bound_grows() {
    for k in 1..=2u32 {
        let mut prev_price = 0.0;
        for depth in 1..=4u32 {
            let inst = Fig4Instance::for_k(k, depth);
            let built = inst.build();
            let ids = all_ids(&built.jobs);
            // OPT_∞ takes all jobs (verified via EDF).
            assert!(edf_feasible(&built.jobs, &ids), "k={k} L={depth}");
            let opt_inf = inst.opt_unbounded_value();
            assert_eq!(opt_inf, built.jobs.total_value());
            // Our best constructive k-bounded value ≤ the analytic bound.
            let inf = edf_schedule(&built.jobs, &ids, None);
            let red = reduce_to_k_bounded(&built.jobs, &inf.schedule, k).unwrap();
            red.schedule.verify(&built.jobs, Some(k)).unwrap();
            let alg = red.schedule.value(&built.jobs);
            let upper = inst.opt_k_upper_bound(k);
            assert!(alg <= upper + 1e-6, "k={k} L={depth}");
            let price = opt_inf / upper; // certified lower bound on PoBP
            assert!(price > prev_price, "price not growing at k={k} L={depth}");
            assert!(price >= (depth as f64 + 1.0) / 2.0 - 1e-9);
            prev_price = price;
        }
    }
}

/// On the Figure 4 instance, the exact tiny-instance `OPT_k` oracle confirms
/// Lemma B.1's spirit: one preemption hosts at most one child job.
#[test]
fn lemma_b1_exact_check_tiny() {
    // K = 2, L = 1: one parent, two children; n = 3, lengths 60/5... too
    // long a horizon for the tick oracle, so shrink: use the k-BAS view —
    // the schedule forest of the full EDF schedule has the parent with 2
    // children, and TM at k = 1 keeps parent + 1 child.
    let inst = Fig4Instance::for_k(1, 1);
    let built = inst.build();
    let ids = all_ids(&built.jobs);
    let inf = edf_schedule(&built.jobs, &ids, None);
    assert!(inf.is_feasible());
    let lam = laminarize(&built.jobs, &inf.schedule).unwrap();
    let sf = schedule_forest(&built.jobs, &lam);
    // Root job preempted by both children in the ∞ schedule.
    let root = sf.forest.roots()[0];
    assert_eq!(sf.forest.degree(root), 2);
    let res = tm(&sf.forest, 1);
    // Keeps the root (value 2) plus one child (1) = 3 of total 4.
    assert_eq!(res.value, 3.0);
}

/// Theorem 4.5: `LSA_CS` on lax jobs achieves at least
/// `OPT_∞ / (6·log_{k+1} P)` — measured against the exact optimum.
#[test]
fn theorem_4_5_lsa_cs_guarantee() {
    for seed in 0..12u64 {
        for k in 1..=3u32 {
            let workload = RandomWorkload {
                n: 12,
                horizon: 60,
                length_range: (1, 16),
                laxity: LaxityModel::Lax { k, factor: 3.0 },
                values: ValueModel::Uniform { max: 30 },
            };
            let jobs = workload.generate(seed);
            let ids = all_ids(&jobs);
            let opt = opt_unbounded(&jobs, &ids);
            let out = lsa_cs(&jobs, &ids, k);
            out.schedule.verify(&jobs, Some(k)).unwrap();
            let p = jobs.length_ratio().unwrap();
            let log_p = (p.ln() / ((k + 1) as f64).ln()).max(1.0);
            assert!(
                out.value(&jobs) * 6.0 * log_p >= opt.value - 1e-6,
                "seed={seed} k={k}: LSA_CS={} OPT={} P={p}",
                out.value(&jobs),
                opt.value
            );
        }
    }
}

/// Algorithm 3 end-to-end obeys the combined `O(log_{k+1} P)` bound on
/// mixed-laxity instances (with the paper's constant slack: the split loses
/// 2×, the strict branch log_{k+1}(P·λmax) ≤ log_{k+1}P + 1, the lax branch
/// 6·log_{k+1}P).
#[test]
fn theorem_4_5_combined_end_to_end() {
    for seed in 0..8u64 {
        for k in 1..=2u32 {
            let workload = RandomWorkload {
                n: 12,
                horizon: 50,
                length_range: (1, 8),
                laxity: LaxityModel::Uniform { max: 6.0 },
                values: ValueModel::Uniform { max: 10 },
            };
            let jobs = workload.generate(seed);
            let ids = all_ids(&jobs);
            let opt = opt_unbounded(&jobs, &ids);
            if opt.subset.is_empty() {
                continue;
            }
            let out = k_preemption_combined(&jobs, &ids, &opt.schedule, k).unwrap();
            out.chosen.verify(&jobs, Some(k)).unwrap();
            let p = jobs.length_ratio().unwrap();
            let log_p = (p.ln() / ((k + 1) as f64).ln()).max(1.0);
            // 2 (split) × max(6·logP, logP + 1) ≤ 12·(log_k+1 P + 1).
            let slack = 12.0 * (log_p + 1.0);
            assert!(
                out.chosen.value(&jobs) * slack >= opt.value - 1e-6,
                "seed={seed} k={k}: {} vs OPT {} (slack {slack})",
                out.chosen.value(&jobs),
                opt.value
            );
        }
    }
}

/// `OPT_k` sandwich on small instances: algorithmic lower bounds ≤ exact
/// `OPT_k` ≤ `OPT_∞`, and `OPT_k` is monotone in `k`.
#[test]
fn opt_k_sandwich_small() {
    for seed in 0..8u64 {
        let workload = RandomWorkload {
            n: 4,
            horizon: 16,
            length_range: (1, 6),
            laxity: LaxityModel::Uniform { max: 3.0 },
            values: ValueModel::Uniform { max: 9 },
        };
        let jobs = workload.generate(seed);
        let ids = all_ids(&jobs);
        let opt_inf = opt_unbounded(&jobs, &ids);
        let mut prev = 0.0;
        for k in 0..=2u32 {
            let exact_k = opt_k_bounded_small(&jobs, &ids, k);
            assert!(exact_k >= prev - 1e-9, "monotonicity seed={seed} k={k}");
            assert!(exact_k <= opt_inf.value + 1e-9);
            // Constructive algorithms are valid lower bounds.
            let red = reduce_to_k_bounded(&jobs, &opt_inf.schedule, k).unwrap();
            assert!(red.schedule.value(&jobs) <= exact_k + 1e-9, "seed={seed} k={k}");
            let out = lsa_cs(&jobs, &ids, k);
            assert!(out.value(&jobs) <= exact_k + 1e-9, "seed={seed} k={k}");
            prev = exact_k;
        }
    }
}
