//! Cross-crate property tests: the full schedule → forest → k-BAS →
//! schedule pipeline on random workloads, plus EDF/laminarity invariants.

use pobp::prelude::*;
use proptest::prelude::*;

fn arb_jobs(max_n: usize) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec(
        (0i64..60, 1i64..12, 1i64..30, 1u32..20),
        1..=max_n,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edf_output_is_feasible_and_laminar(jobs in arb_jobs(14)) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let out = edf_schedule(&jobs, &ids, None);
        out.schedule.verify(&jobs, None).unwrap();
        prop_assert!(is_laminar(&out.schedule));
        // Scheduled + missed partition the input.
        prop_assert_eq!(out.schedule.len() + out.missed.len(), jobs.len());
    }

    #[test]
    fn edf_never_idles_while_work_pending(jobs in arb_jobs(10)) {
        // Work-conservation: within the horizon, whenever some scheduled
        // job is released, unfinished (its remaining segments lie ahead)
        // the machine is busy. We check a weaker, easily-stated form:
        // the total busy time equals the sum of scheduled lengths.
        let ids: Vec<JobId> = jobs.ids().collect();
        let out = edf_schedule(&jobs, &ids, None);
        let busy = out.schedule.busy(0);
        let expect: Time = out
            .schedule
            .scheduled_ids()
            .map(|j| jobs.job(j).length)
            .sum();
        prop_assert_eq!(busy.total_len(), expect);
    }

    #[test]
    fn laminarize_preserves_value_and_busy_time(jobs in arb_jobs(12)) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let out = edf_schedule(&jobs, &ids, None);
        let lam = laminarize(&jobs, &out.schedule).unwrap();
        lam.verify(&jobs, None).unwrap();
        prop_assert!(is_laminar(&lam));
        prop_assert_eq!(lam.value(&jobs), out.schedule.value(&jobs));
        prop_assert_eq!(lam.busy(0), out.schedule.busy(0));
        prop_assert_eq!(lam.len(), out.schedule.len());
    }

    #[test]
    fn full_reduction_pipeline_invariants(jobs in arb_jobs(14), k in 0u32..4) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let inf = edf_schedule(&jobs, &ids, None);
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
        // (1) Feasible and k-bounded.
        red.schedule.verify(&jobs, Some(k)).unwrap();
        // (2) Value identity with the k-BAS.
        prop_assert!((red.schedule.value(&jobs) - red.kbas.value).abs() < 1e-9);
        // (3) The k-BAS is valid on the schedule forest.
        prop_assert!(is_kbas(&red.forest.forest, &red.kbas.keep, k));
        // (4) Theorem 4.2 loss bound w.r.t. the input schedule value —
        // the theorem is stated for k ≥ 1 (log_{k+1} is undefined at k=0).
        if k >= 1 {
            let bound = loss_bound(jobs.len(), k);
            prop_assert!(
                red.schedule.value(&jobs) * bound >= inf.schedule.value(&jobs) - 1e-6
            );
        } else if !inf.schedule.is_empty() {
            // k = 0: TM still guarantees at least the best single node.
            let best_single = inf
                .schedule
                .scheduled_ids()
                .map(|j| jobs.job(j).value)
                .fold(0.0f64, f64::max);
            prop_assert!(red.schedule.value(&jobs) >= best_single - 1e-9);
        }
        // (5) Scheduled jobs are a subset of the input schedule's jobs.
        for j in red.schedule.scheduled_ids() {
            prop_assert!(inf.schedule.segments(j).is_some());
        }
    }

    #[test]
    fn lsa_feasible_for_all_k(jobs in arb_jobs(16), k in 0u32..5) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let out = lsa(&jobs, &ids, k);
        out.schedule.verify(&jobs, Some(k)).unwrap();
        prop_assert_eq!(out.accepted.len() + out.rejected.len(), jobs.len());
        // Accepted set value matches the schedule value.
        let direct: f64 = out.accepted.iter().map(|&j| jobs.job(j).value).sum();
        prop_assert_eq!(direct, out.value(&jobs));
    }

    #[test]
    fn lsa_cs_feasible_and_at_least_best_class(jobs in arb_jobs(16), k in 0u32..4) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let cs = lsa_cs(&jobs, &ids, k);
        cs.schedule.verify(&jobs, Some(k)).unwrap();
        // CS ≥ every individual class's LSA value.
        for class in length_classes(&jobs, &ids, (k + 1).max(2)) {
            if class.is_empty() { continue; }
            let one = lsa(&jobs, &class, k);
            prop_assert!(cs.value(&jobs) >= one.value(&jobs) - 1e-9);
        }
    }

    #[test]
    fn combined_feasible_on_random_input(jobs in arb_jobs(12), k in 1u32..4) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let out = combined_from_scratch(&jobs, &ids, k);
        out.chosen.verify(&jobs, Some(k)).unwrap();
        out.strict.verify(&jobs, Some(k)).unwrap();
        out.lax.verify(&jobs, Some(k)).unwrap();
    }

    #[test]
    fn multi_machine_never_duplicates(jobs in arb_jobs(16), m in 1usize..5, k in 0u32..3) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let s = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
            lsa_cs(js, rem, k).schedule
        });
        // verify() checks per-machine feasibility and that each job appears
        // once (it is keyed by job id).
        s.verify(&jobs, Some(k)).unwrap();
        for mach in s.machines() {
            prop_assert!(mach < m);
        }
    }

    #[test]
    fn schedule_forest_roundtrip_value(jobs in arb_jobs(12)) {
        // Keeping everything in the forest and reconstructing returns every
        // scheduled job, feasibly.
        let ids: Vec<JobId> = jobs.ids().collect();
        let out = edf_schedule(&jobs, &ids, None);
        let lam = laminarize(&jobs, &out.schedule).unwrap();
        let sf = schedule_forest(&jobs, &lam);
        prop_assert_eq!(sf.forest.len(), lam.len());
        let keep = KeepSet::from_mask(vec![true; sf.forest.len()]);
        let rec = reconstruct(&jobs, &lam, &sf, &keep);
        rec.verify(&jobs, None).unwrap();
        prop_assert_eq!(rec.value(&jobs), lam.value(&jobs));
    }

    #[test]
    fn greedy_unbounded_matches_exact_when_all_feasible(jobs in arb_jobs(10)) {
        let ids: Vec<JobId> = jobs.ids().collect();
        if edf_feasible(&jobs, &ids) {
            let g = greedy_unbounded(&jobs, &ids);
            prop_assert_eq!(g.schedule.len(), jobs.len());
            prop_assert_eq!(g.schedule.value(&jobs), jobs.total_value());
        }
    }
}
