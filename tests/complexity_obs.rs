//! Complexity-regression tests backed by the `obs` counter layer.
//!
//! Each test pins an operation-count claim from `docs/algorithms.md` to the
//! counters emitted by the instrumented hot paths, across several instance
//! sizes. They compile (and run) only with `--features obs`:
//!
//! ```text
//! cargo test --features obs --test complexity_obs
//! ```
//!
//! All counter reads go through [`pobp::obs::measure`], which serialises
//! access to the global registry — the test binary runs tests on parallel
//! threads, and counters are process-global.
#![cfg(feature = "obs")]

use pobp::obs;
use pobp::prelude::*;

/// Seeded mixed-laxity workload (same family as EXPERIMENTS.md E4).
fn workload(n: usize, seed: u64) -> (JobSet, Vec<JobId>) {
    let jobs = RandomWorkload {
        n,
        horizon: (n as i64) * 6,
        length_range: (1, 10),
        laxity: LaxityModel::Uniform { max: 4.0 },
        values: ValueModel::Uniform { max: 20 },
    }
    .generate(seed);
    let ids: Vec<JobId> = jobs.ids().collect();
    (jobs, ids)
}

/// `TM` is a single bottom-up pass: every node of the forest is visited
/// exactly once per run, and the top-k selection step runs at most once per
/// node — the O(n · E[select]) = O(n + Σ deg) claim in docs/algorithms.md.
#[test]
fn tm_visits_each_node_exactly_once() {
    for &(n, k) in &[(64usize, 1u32), (512, 1), (512, 3), (4096, 2)] {
        let forest = random_forest(n, 0.2, 7 + n as u64);
        let (_res, snap) = obs::measure(|| tm(&forest, k));
        assert_eq!(snap.counter("forest.tm.runs"), 1);
        assert_eq!(
            snap.counter("forest.tm.nodes_visited"),
            n as u64,
            "TM must visit each of the {n} nodes exactly once"
        );
        assert!(
            snap.counter("forest.tm.topk_selections") <= n as u64,
            "at most one top-k selection per node"
        );
    }
}

/// `LevelledContraction` peels ≤ `log_(k+1) n + 1` levels (Theorem 3.9's
/// iteration bound), scans each alive node once per level, and contracts
/// every node exactly once overall.
#[test]
fn contraction_levels_obey_log_bound() {
    for &(n, k) in &[(64usize, 1u32), (512, 1), (512, 2), (4096, 8)] {
        let forest = random_forest(n, 0.15, 11 + n as u64);
        let (res, snap) = obs::measure(|| levelled_contraction(&forest, k));
        let levels = snap.counter("forest.contraction.levels");
        assert_eq!(levels, res.levels.len() as u64, "counter mirrors the result");
        let bound = (n as f64).ln() / ((k + 1) as f64).ln() + 1.0;
        assert!(
            (levels as f64) <= bound + 1e-9,
            "n={n} k={k}: {levels} levels exceeds log_(k+1) n + 1 = {bound:.2}"
        );
        assert_eq!(
            snap.counter("forest.contraction.contracted_nodes"),
            n as u64,
            "every node is contracted exactly once"
        );
        assert!(
            snap.counter("forest.contraction.node_scans") <= levels * n as u64,
            "each level scans at most the whole forest"
        );
    }
}

/// EDF performs exactly one heap push per job, pops everything it pushes,
/// and emits at most `2n` segments on an unrestricted machine — so total
/// heap traffic is ≤ 2n = O(n + S) operations, each `O(log n)`, matching
/// the `O((n + S) log n)` claim. The iteration count obeys the exact
/// accounting identity of the main loop.
#[test]
fn edf_heap_ops_are_linear() {
    for &n in &[50usize, 200, 800] {
        let (jobs, ids) = workload(n, 3);
        let (_out, snap) = obs::measure(|| edf_schedule(&jobs, &ids, None));
        let push = snap.counter("sched.edf.heap_push");
        let pop = snap.counter("sched.edf.heap_pop");
        let segs = snap.counter("sched.edf.segments_emitted");
        assert_eq!(push, n as u64, "each job enters the ready heap exactly once");
        assert_eq!(pop, push, "every pushed job is eventually popped");
        assert!(
            segs <= 2 * n as u64,
            "n={n}: {segs} segments; unrestricted EDF emits ≤ 2n (every segment \
             ends at a completion or a release)"
        );
        // Every loop iteration ends in exactly one of: gap jump, idle jump,
        // abort, segment emission, or the single loop exit.
        let accounted = snap.counter("sched.edf.gap_jumps")
            + snap.counter("sched.edf.idle_jumps")
            + snap.counter("sched.edf.aborts")
            + segs
            + 1;
        assert_eq!(snap.counter("sched.edf.iterations"), accounted);
    }
}

/// Figure 1 / §4.1: `laminarize` re-runs availability-restricted EDF exactly
/// once per machine of the input schedule — no hidden extra EDF work.
#[test]
fn laminarize_runs_one_restricted_edf_per_machine() {
    for &m in &[1usize, 2, 4] {
        let (jobs, ids) = workload(60, 5);
        let schedule = iterative_multi_machine(&jobs, &ids, m, |jobs, ids| {
            edf_schedule(jobs, ids, None).schedule
        });
        let machines = schedule.machines().len() as u64;
        assert!(machines >= 1);
        let (lam, snap) = obs::measure(|| laminarize(&jobs, &schedule).unwrap());
        assert_eq!(snap.counter("sched.laminarize.runs"), 1);
        assert_eq!(snap.counter("sched.laminarize.machines"), machines);
        assert_eq!(
            snap.counter("sched.edf.restricted_runs"),
            machines,
            "exactly one restricted EDF per machine"
        );
        assert_eq!(
            snap.counter("sched.edf.runs"),
            machines,
            "laminarize runs no unrestricted EDF at all"
        );
        assert!(is_laminar(&lam));
    }
}

/// Schema 2 of the JSON report (docs/observability.md): the report is
/// version-stamped and every event stat carries `p50`/`p90`/`p99`
/// histogram quantiles alongside count/sum/min/max.
#[test]
fn report_json_carries_schema_2_quantiles() {
    let (_out, snap) = obs::measure(|| {
        let (jobs, ids) = workload(120, 13);
        lsa_cs(&jobs, &ids, 2)
    });
    // The measured window recorded at least one event distribution…
    let (name, ev) = snap
        .events
        .iter()
        .next()
        .expect("lsa_cs records event stats (e.g. class sizes)");
    assert!(ev.count > 0, "{name} recorded no samples");
    // …whose quantiles are monotone and bracketed by min/max (the log₂
    // histogram guarantees ≤ 2× relative error, so a loose bracket holds).
    let (p50, p90, p99) = (ev.quantile(0.50), ev.quantile(0.90), ev.quantile(0.99));
    assert!(p50 <= p90 && p90 <= p99, "{name}: quantiles not monotone");
    assert!(p99 <= 2.0 * ev.max as f64, "{name}: p99 {p99} above bucket ceiling");
    assert!(p50 >= ev.min as f64 / 2.0, "{name}: p50 {p50} below bucket floor");
    // The serialized snapshot is version-stamped and carries the fields.
    let json = snap.to_json();
    assert!(json.contains(&format!("\"schema\": {}", obs::SCHEMA_VERSION)));
    assert_eq!(obs::SCHEMA_VERSION, 2);
    for key in ["\"p50\":", "\"p90\":", "\"p99\":"] {
        assert!(json.contains(key), "report missing {key}: {json}");
    }
}

/// The Theorem 4.2 reduction runs its four stages exactly once per call,
/// and its laminarization stage inherits the one-EDF-per-machine bound.
#[test]
fn reduction_stages_fire_once_per_run() {
    let (jobs, ids) = workload(40, 9);
    let base = edf_schedule(&jobs, &ids, None).schedule;
    let (_red, snap) = obs::measure(|| reduce_to_k_bounded(&jobs, &base, 1).unwrap());
    assert_eq!(snap.counter("sched.reduction.runs"), 1);
    for stage in [
        "sched.reduction.time.laminarize",
        "sched.reduction.time.forest",
        "sched.reduction.time.kbas",
        "sched.reduction.time.reconstruct",
    ] {
        let t = snap.timers.get(stage).unwrap_or_else(|| panic!("missing timer {stage}"));
        assert_eq!(t.spans, 1, "{stage} must run exactly once");
    }
    assert_eq!(snap.counter("sched.laminarize.machines"), 1);
    assert_eq!(snap.counter("sched.edf.restricted_runs"), 1);
}
