//! End-to-end tests of the `pobp` CLI binary (spawned as a subprocess).

use std::io::Write;
use std::process::{Command, Stdio};

fn pobp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pobp"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = pobp()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pobp");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn run(args: &[&str]) -> (String, String, bool) {
    run_with_stdin(args, "")
}

#[test]
fn help_prints_usage() {
    let (out, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
    assert!(out.contains("pobp gen"));
}

#[test]
fn help_lists_the_serve_daemon() {
    let (out, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("pobp serve"), "usage must list the daemon:\n{out}");
    assert!(out.contains("pobp-client"), "usage must point at the client:\n{out}");
}

#[test]
fn serve_flag_errors_are_loud_and_never_bind() {
    for (args, flag) in [
        (&["serve", "--queue-cap"][..], "--queue-cap"),
        (&["serve", "--compact-every", "soon", "--addr", "127.0.0.1:0"][..], "--compact-every"),
        // Telemetry flags: a missing value or a non-numeric value must
        // fail before any socket is bound, naming the flag.
        (&["serve", "--metrics-addr"][..], "--metrics-addr"),
        (&["serve", "--sample-ms", "fast", "--addr", "127.0.0.1:0"][..], "--sample-ms"),
        (&["serve", "--flight-dir"][..], "--flight-dir"),
    ] {
        let (_, err, ok) = run(args);
        assert!(!ok, "{args:?} must fail");
        assert!(err.contains(flag), "error must name {flag}: {err}");
    }
}

/// Default (telemetry-less) builds refuse the telemetry flags loudly
/// instead of silently ignoring them; telemetry builds accept `--sample-ms`
/// (the daemon-free path still errors on the address, proving the flag
/// itself parsed).
#[cfg(not(feature = "telemetry"))]
#[test]
fn telemetry_flags_require_the_telemetry_feature() {
    for args in [
        &["serve", "--metrics-addr", "127.0.0.1:0"][..],
        &["serve", "--sample-ms", "500"][..],
        &["serve", "--flight-dir", "flights"][..],
    ] {
        let (_, err, ok) = run(args);
        assert!(!ok, "{args:?} must fail in a default build");
        assert!(err.contains("--features telemetry"), "error must say how to enable: {err}");
    }
}

#[test]
fn unknown_command_fails() {
    let (_, err, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn gen_fig2_emits_parseable_instance() {
    let (out, _, ok) = run(&["gen", "--kind", "fig2", "--n", "5"]);
    assert!(ok);
    let jobs = pobp::prelude::parse_jobs(&out).expect("CLI output parses");
    assert_eq!(jobs.len(), 5);
}

#[test]
fn gen_rejects_unknown_kind() {
    let (_, err, ok) = run(&["gen", "--kind", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown --kind"));
}

#[test]
fn solve_pipeline_works() {
    let (instance, _, ok) = run(&["gen", "--kind", "fig2", "--n", "6"]);
    assert!(ok);
    for alg in ["reduction", "combined", "lsa", "k0"] {
        let (out, err, ok) =
            run_with_stdin(&["solve", "--k", "1", "--alg", alg], &instance);
        assert!(ok, "alg={alg}: {err}");
        assert!(out.contains("scheduled"), "alg={alg}");
    }
    // The reduction at k = 1 schedules all 6 (Figure 2 needs one preemption).
    let (out, _, _) = run_with_stdin(&["solve", "--k", "1", "--alg", "reduction"], &instance);
    assert!(out.contains("scheduled 6/6"), "{out}");
}

#[test]
fn solve_gantt_renders() {
    let (instance, _, _) = run(&["gen", "--kind", "fig2", "--n", "4"]);
    let (out, _, ok) = run_with_stdin(
        &["solve", "--k", "1", "--alg", "reduction", "--gantt"],
        &instance,
    );
    assert!(ok);
    assert!(out.contains('#'), "gantt bars expected:\n{out}");
}

#[test]
fn solve_rejects_empty_stdin() {
    let (_, err, ok) = run_with_stdin(&["solve", "--k", "1"], "");
    assert!(!ok);
    assert!(err.contains("no jobs"));
}

#[test]
fn solve_rejects_malformed_instance() {
    let (_, err, ok) = run_with_stdin(&["solve", "--k", "1"], "1 2 3\n");
    assert!(!ok);
    assert!(err.contains("4 fields"));
}

#[test]
fn price_reports_brackets() {
    let (instance, _, _) = run(&["gen", "--kind", "fig2", "--n", "5"]);
    let (out, _, ok) = run_with_stdin(&["price", "--k", "1"], &instance);
    assert!(ok);
    assert!(out.contains("OPT_∞ = 5"));
    assert!(out.contains("OPT_0 (exact) = 1"));
    assert!(out.contains("price at k = 0 (exact): 5.000"));
}

#[test]
fn price_rejects_large_instances() {
    let (instance, _, _) = run(&["gen", "--kind", "random", "--n", "30"]);
    let (_, err, ok) = run_with_stdin(&["price", "--k", "1"], &instance);
    assert!(!ok);
    assert!(err.contains("small instance"));
}

#[test]
fn sim_reports_switch_accounting() {
    let (instance, _, _) = run(&["gen", "--kind", "periodic"]);
    let (out, _, ok) = run_with_stdin(
        &["sim", "--policy", "budget", "--k", "1", "--delta", "2"],
        &instance,
    );
    assert!(ok, "{out}");
    assert!(out.contains("switch cost 2"));
    assert!(out.contains("switches"));
}

#[test]
fn sim_trace_flag_dumps_events() {
    let (instance, _, _) = run(&["gen", "--kind", "fig2", "--n", "3"]);
    let (out, _, ok) = run_with_stdin(&["sim", "--policy", "edf", "--trace"], &instance);
    assert!(ok);
    assert!(out.contains("Start"), "{out}");
    assert!(out.contains("Complete"), "{out}");
}

#[test]
fn gen_solve_roundtrip_all_kinds() {
    for kind in ["fig2", "fig4", "random", "periodic"] {
        let (instance, err, ok) = run(&["gen", "--kind", kind]);
        assert!(ok, "gen {kind}: {err}");
        let (out, err, ok) = run_with_stdin(&["solve", "--k", "2"], &instance);
        assert!(ok, "solve {kind}: {err}");
        assert!(out.contains("scheduled"), "{kind}: {out}");
    }
}

#[test]
fn solve_svg_writes_file() {
    let dir = std::env::temp_dir().join(format!("pobp-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sched.svg");
    let (instance, _, _) = run(&["gen", "--kind", "fig2", "--n", "4"]);
    let (out, err, ok) = run_with_stdin(
        &["solve", "--k", "1", "--alg", "reduction", "--svg", path.to_str().unwrap()],
        &instance,
    );
    assert!(ok, "{err}");
    assert!(out.contains("wrote"));
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.starts_with("<svg"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn choose_k_recommends() {
    let (instance, _, _) = run(&["gen", "--kind", "periodic"]);
    let (out, err, ok) = run_with_stdin(&["choose-k", "--delta", "3", "--kmax", "3"], &instance);
    assert!(ok, "{err}");
    assert!(out.contains("recommendation: k ="), "{out}");
}

#[test]
fn solve_out_then_replay_pipeline() {
    let dir = std::env::temp_dir().join(format!("pobp-replay-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plan = dir.join("plan.txt");
    let (instance, _, _) = run(&["gen", "--kind", "periodic"]);
    let (out, err, ok) = run_with_stdin(
        &["solve", "--k", "1", "--alg", "reduction", "--out", plan.to_str().unwrap()],
        &instance,
    );
    assert!(ok, "{err}");
    assert!(out.contains("wrote"));
    let (out, err, ok) = run_with_stdin(
        &["replay", "--plan", plan.to_str().unwrap(), "--delta", "1"],
        &instance,
    );
    assert!(ok, "{err}");
    assert!(out.contains("replayed plan"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_out_without_a_value_errors() {
    // `--obs-out` as the last argument used to silently succeed without
    // writing anything; it must be a loud usage error.
    let (_, err, ok) = run(&["gen", "--kind", "fig2", "--n", "4", "--obs-out"]);
    assert!(!ok);
    assert!(err.contains("--obs-out needs a value"), "{err}");
    // …and `--obs-out --obs` used to write a file literally named `--obs`.
    let (_, err, ok) = run(&["gen", "--kind", "fig2", "--n", "4", "--obs-out", "--obs"]);
    assert!(!ok);
    assert!(err.contains("--obs-out needs a value"), "{err}");
}

#[test]
fn obs_out_unwritable_path_errors() {
    let (_, err, ok) = run(&[
        "gen",
        "--kind",
        "fig2",
        "--n",
        "4",
        "--obs-out",
        "/nonexistent-dir-pobp-test/report.json",
    ]);
    assert!(!ok);
    assert!(err.contains("writing"), "{err}");
}

/// `sweep --trace` / `--trace-logical`: with a `trace` build the files are
/// written (Chrome JSON + logical text); without, the flags are a loud
/// feature-gate error — never a silent no-op.
#[test]
fn sweep_trace_flags_respect_the_feature_gate() {
    let dir = std::env::temp_dir().join(format!("pobp-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let chrome = dir.join("trace.json");
    let logical = dir.join("trace.txt");
    let args = [
        "sweep",
        "--n",
        "8",
        "--k",
        "0,1",
        "--seeds",
        "1",
        "--threads",
        "2",
        "--trace",
        chrome.to_str().unwrap(),
        "--trace-logical",
        logical.to_str().unwrap(),
    ];
    let (_, err, ok) = run(&args);
    if pobp::trace::enabled() {
        assert!(ok, "{err}");
        let json = std::fs::read_to_string(&chrome).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        let text = std::fs::read_to_string(&logical).unwrap();
        assert!(text.starts_with("# pobp logical trace v1"), "{text}");
        assert!(text.contains("begin task"), "{text}");
    } else {
        assert!(!ok);
        assert!(err.contains("--features trace"), "{err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_trace_without_a_value_errors_before_running() {
    let (_, err, ok) = run(&["sweep", "--n", "8", "--k", "1", "--seeds", "1", "--trace"]);
    assert!(!ok);
    assert!(err.contains("--trace needs a value"), "{err}");
}

/// `pobp online` emits one JSON row per (cell, algorithm) with the oracle
/// denominator and the empirical competitive ratio (docs/online.md).
#[test]
fn online_emits_ratio_rows_per_algorithm() {
    let (out, err, ok) =
        run(&["online", "--families", "periodic,fig2", "--n", "6", "--k", "1", "--seeds", "1"]);
    assert!(ok, "{err}");
    let rows: Vec<&str> = out.lines().collect();
    // 2 families × 1 n × 1 seed × 1 k × 3 algorithms.
    assert_eq!(rows.len(), 6, "{out}");
    for alg in ["online-djn", "online-greedy", "online-edf"] {
        assert!(out.contains(&format!("\"alg\":\"{alg}\"")), "missing {alg}:\n{out}");
    }
    for field in ["\"oracle\":", "\"oracle_kind\":", "\"ratio\":", "\"bound\":", "\"preemptions\":"]
    {
        assert!(out.contains(field), "missing {field}:\n{out}");
    }
    assert!(err.contains("oracle cells"), "{err}");
}

#[test]
fn online_single_alg_filter_works() {
    let (out, err, ok) =
        run(&["online", "--families", "random", "--n", "5", "--k", "0", "--seeds", "2", "--alg",
            "djn"]);
    assert!(ok, "{err}");
    assert_eq!(out.lines().count(), 2, "{out}");
    assert!(out.contains("\"alg\":\"online-djn\""));
    assert!(!out.contains("online-greedy"));
}

#[test]
fn online_rejects_unknown_family_and_alg() {
    let (_, err, ok) = run(&["online", "--families", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown family"), "{err}");
    let (_, err, ok) = run(&["online", "--alg", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown --alg"), "{err}");
}

/// The competitive-ratio table is byte-identical across thread counts —
/// the acceptance bar for the online lab (docs/engine.md discipline).
#[test]
fn online_output_is_thread_count_invariant() {
    let args = |threads: &'static str| {
        ["online", "--n", "5,8", "--k", "0,1", "--seeds", "2", "--threads", threads]
    };
    let (seq, err, ok) = run(&args("1"));
    assert!(ok, "{err}");
    let (par, err, ok) = run(&args("4"));
    assert!(ok, "{err}");
    assert_eq!(seq, par);
}

/// Every emitted ratio respects the (1+√P)² reference bound recorded in the
/// same row (the e13 gate, end-to-end through the CLI).
#[test]
fn online_ratios_stay_under_the_recorded_bound() {
    let (out, err, ok) = run(&["online", "--n", "6,9", "--k", "1", "--seeds", "2"]);
    assert!(ok, "{err}");
    let grab = |row: &str, key: &str| -> Option<f64> {
        let rest = &row[row.find(key)? + key.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    let mut checked = 0;
    for row in out.lines() {
        if let (Some(ratio), Some(bound)) = (grab(row, "\"ratio\":"), grab(row, "\"bound\":")) {
            assert!(ratio <= bound, "ratio {ratio} escapes bound {bound}: {row}");
            checked += 1;
        }
    }
    assert!(checked > 0, "no ratio rows:\n{out}");
}

#[test]
fn online_trace_flags_respect_the_feature_gate() {
    let dir = std::env::temp_dir().join(format!("pobp-online-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let logical = dir.join("online.txt");
    let args = [
        "online",
        "--families",
        "random",
        "--n",
        "5",
        "--k",
        "1",
        "--seeds",
        "1",
        "--trace-logical",
        logical.to_str().unwrap(),
    ];
    let (_, err, ok) = run(&args);
    if pobp::trace::enabled() {
        assert!(ok, "{err}");
        let text = std::fs::read_to_string(&logical).unwrap();
        assert!(text.contains("online."), "expected online.* instants:\n{text}");
    } else {
        assert!(!ok);
        assert!(err.contains("--features trace"), "{err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_progress_renders_a_meter() {
    let (_, err, ok) = run(&["sweep", "--n", "8,12", "--k", "0,1", "--seeds", "2", "--progress"]);
    assert!(ok, "{err}");
    assert!(err.contains("progress:"), "{err}");
    assert!(err.contains("rows/s"), "{err}");
    assert!(err.contains("p50"), "{err}");
}

#[test]
fn sweep_and_online_numeric_flag_errors_are_loud_and_never_run() {
    // A numeric flag that trails (or swallows the next flag) must fail
    // naming the flag, before any solving starts — the strict-parsing
    // contract `pobp serve` already follows.
    for (args, flag) in [
        (&["sweep", "--seeds"][..], "--seeds"),
        (&["sweep", "--n"][..], "--n"),
        (&["sweep", "--threads", "--n", "8"][..], "--threads"),
        (&["sweep", "--chunk-cells", "many", "--out", "x"][..], "--chunk-cells"),
        (&["sweep", "--max-chunks"][..], "--max-chunks"),
        (&["online", "--seeds"][..], "--seeds"),
        (&["online", "--k", "--seeds", "1"][..], "--k"),
        (&["online", "--deadline-ms", "fast"][..], "--deadline-ms"),
    ] {
        let (out, err, ok) = run(args);
        assert!(!ok, "{args:?} must fail");
        assert!(err.contains(flag), "error must name {flag}: {err}");
        assert!(out.is_empty(), "{args:?} must not emit rows: {out}");
    }
}

#[test]
fn sweep_resume_requires_an_out_dir() {
    let (_, err, ok) = run(&["sweep", "--resume", "--n", "8", "--k", "0", "--seeds", "1"]);
    assert!(!ok);
    assert!(err.contains("--resume needs --out"), "{err}");
}

#[test]
fn sweep_sharded_mode_merges_byte_identical_to_stdout_mode() {
    let dir = std::env::temp_dir().join(format!("pobp-cli-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let grid = &["--n", "8,10", "--k", "0,1", "--seeds", "2"];

    let (stdout_rows, _, ok) = run(&[&["sweep"], grid as &[&str]].concat());
    assert!(ok);

    let dir_s = dir.to_str().unwrap();
    let sharded = [
        &["sweep"],
        grid as &[&str],
        &["--out", dir_s, "--chunk-cells", "1", "--threads", "2"],
    ]
    .concat();
    let (out, err, ok) = run(&sharded);
    assert!(ok, "{err}");
    assert!(out.is_empty(), "sharded mode keeps stdout clean: {out}");
    assert!(err.contains("merged output at"), "{err}");
    let merged = std::fs::read_to_string(dir.join("merged.jsonl")).unwrap();
    assert_eq!(merged, stdout_rows, "merged shards must equal the streaming rows");

    // Re-running into the same directory without --resume is refused…
    let (_, err, ok) = run(&sharded);
    assert!(!ok);
    assert!(err.contains("--resume"), "{err}");
    // …and --resume over a complete sweep recomputes nothing.
    let resumed = [&sharded[..], &["--resume"]].concat();
    let (_, err, ok) = run(&resumed);
    assert!(ok, "{err}");
    assert!(err.contains("0 rows written"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_killed_by_chunk_budget_resumes_to_the_full_merge() {
    let dir = std::env::temp_dir().join(format!("pobp-cli-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();
    let base = &[
        "sweep", "--n", "8,10", "--k", "0,1", "--seeds", "2", "--out", dir_s, "--chunk-cells", "1",
    ];

    let first = [&base[..], &["--max-chunks", "1"]].concat();
    let (_, err, ok) = run(&first);
    assert!(ok, "{err}");
    assert!(err.contains("incomplete — rerun with --resume"), "{err}");
    assert!(!dir.join("merged.jsonl").exists());

    let resumed = [&base[..], &["--resume", "--threads", "4"]].concat();
    let (_, err, ok) = run(&resumed);
    assert!(ok, "{err}");
    assert!(err.contains("merged output at"), "{err}");
    assert!(err.contains("1 skipped"), "the finished chunk is not recomputed: {err}");

    // The interrupted-then-resumed merge equals an uninterrupted run's.
    let clean_dir = std::env::temp_dir().join(format!("pobp-cli-resume-c-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&clean_dir);
    let clean = [
        "sweep", "--n", "8,10", "--k", "0,1", "--seeds", "2",
        "--out", clean_dir.to_str().unwrap(), "--chunk-cells", "1",
    ];
    let (_, err, ok) = run(&clean);
    assert!(ok, "{err}");
    assert_eq!(
        std::fs::read(dir.join("merged.jsonl")).unwrap(),
        std::fs::read(clean_dir.join("merged.jsonl")).unwrap(),
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}
