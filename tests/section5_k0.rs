//! Integration tests for §5: the `k = 0` case, `PoBP_0 = Θ(min{n, log P})`.

use pobp::prelude::*;

/// The Figure 2 instance: OPT_∞ = n while OPT_0 = 1 — the price equals both
/// `n` and `log2 P + 1` simultaneously.
#[test]
fn figure_2_price_is_n_and_log_p() {
    for n in 2..=12u32 {
        let inst = Fig2Instance::new(n);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        // OPT_∞ = n: all jobs feasible with (even just one) preemption.
        assert!(edf_feasible(&jobs, &ids));
        inst.witness_schedule().verify(&jobs, Some(1)).unwrap();
        // OPT_0 = 1 exactly (DP oracle).
        let opt0 = opt_nonpreemptive(&jobs, &ids);
        assert_eq!(opt0.value, 1.0, "n={n}");
        let price = n as f64 / opt0.value;
        assert_eq!(price, n as f64);
        assert_eq!(price, inst.length_ratio().log2() + 1.0);
    }
}

/// §5 upper bound: the non-preemptive algorithm (classes of ratio ≤ 2 +
/// best-single fallback) achieves `OPT_∞ / O(min{n, log P})` on random
/// instances, measured against the exact `OPT_∞`.
#[test]
fn section_5_upper_bound_random() {
    for seed in 0..15u64 {
        let workload = RandomWorkload {
            n: 12,
            horizon: 50,
            length_range: (1, 32),
            laxity: LaxityModel::Uniform { max: 5.0 },
            values: ValueModel::Uniform { max: 40 },
        };
        let jobs = workload.generate(seed);
        let ids: Vec<JobId> = jobs.ids().collect();
        let opt = opt_unbounded(&jobs, &ids);
        if opt.subset.is_empty() {
            continue;
        }
        let alg = schedule_k0(&jobs, &ids);
        alg.schedule.verify(&jobs, Some(0)).unwrap();
        let p = jobs.length_ratio().unwrap();
        let n = jobs.len() as f64;
        // The paper's constant: 3·log2 P per class argument; `min` with n.
        let bound = n.min(3.0 * p.log2().max(1.0));
        assert!(
            alg.value(&jobs) * bound >= opt.value - 1e-6,
            "seed={seed}: alg={} OPT={} bound={bound}",
            alg.value(&jobs),
            opt.value
        );
    }
}

/// The en-bloc algorithm is exactly optimal whenever jobs do not conflict.
#[test]
fn k0_algorithm_is_optimal_on_disjoint_jobs() {
    let jobs: JobSet = (0..8)
        .map(|i| Job::new(10 * i, 10 * i + 6, 5, (i + 1) as f64))
        .collect();
    let ids: Vec<JobId> = jobs.ids().collect();
    let alg = schedule_k0(&jobs, &ids);
    assert_eq!(alg.value(&jobs), jobs.total_value());
    let opt0 = opt_nonpreemptive(&jobs, &ids);
    assert_eq!(alg.value(&jobs), opt0.value);
}

/// Against the exact non-preemptive optimum (not just OPT_∞): the §5
/// algorithm is within 3·log P of OPT_0 too (it is weaker than OPT_0's DP).
#[test]
fn k0_vs_exact_nonpreemptive() {
    for seed in 0..10u64 {
        let workload = RandomWorkload {
            n: 10,
            horizon: 60,
            length_range: (2, 16),
            laxity: LaxityModel::Uniform { max: 4.0 },
            values: ValueModel::DensityBounded { max: 6 },
        };
        let jobs = workload.generate(seed);
        let ids: Vec<JobId> = jobs.ids().collect();
        let opt0 = opt_nonpreemptive(&jobs, &ids);
        let alg = schedule_k0(&jobs, &ids);
        assert!(alg.value(&jobs) <= opt0.value + 1e-9, "alg cannot beat OPT_0");
        let p = jobs.length_ratio().unwrap();
        let bound = (jobs.len() as f64).min(3.0 * p.log2().max(1.0));
        assert!(
            alg.value(&jobs) * bound >= opt0.value - 1e-6,
            "seed={seed}"
        );
    }
}

/// Multi-machine k = 0 (the §5 remark): iterating the algorithm over
/// machines monotonically recovers value.
#[test]
fn k0_multi_machine_monotone() {
    let inst = Fig2Instance::new(6);
    let jobs = inst.build();
    let ids: Vec<JobId> = jobs.ids().collect();
    let mut prev = 0.0;
    for m in 1..=4usize {
        let s = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
            schedule_k0(js, rem).schedule
        });
        s.verify(&jobs, Some(0)).unwrap();
        let v = s.value(&jobs);
        assert!(v >= prev);
        prev = v;
    }
    // Even with many machines, each machine can only take one job of the
    // nested family (they all cover the center slot) — price stays Ω(n/m).
    assert_eq!(prev, 4.0);
}
