//! Scale tests: the kernels stay linear-ish and correct on inputs far
//! larger than the unit tests use. Sized to keep debug-mode `cargo test`
//! under a few seconds per test.

use pobp::prelude::*;

#[test]
fn tm_scales_to_three_hundred_thousand_nodes() {
    let f = random_forest(300_000, 0.03, 99);
    let res = tm(&f, 2);
    assert!(is_kbas(&f, &res.keep, 2));
    assert!(res.value > 0.0);
    // Theorem 3.9 at scale.
    assert!(res.value * loss_bound(f.len(), 2) >= f.total_value() - 1e-3);
}

#[test]
fn contraction_scales_and_partitions() {
    let f = random_forest(200_000, 0.03, 7);
    let lc = levelled_contraction(&f, 1);
    let total: f64 = lc.levels.iter().map(|l| l.value).sum();
    assert!((total - f.total_value()).abs() < 1e-6);
    let members: usize = lc.levels.iter().map(|l| l.members.len()).sum();
    assert_eq!(members, f.len());
}

#[test]
fn deep_recursion_free_pipeline() {
    // A pathological 50k-deep nesting chain through the whole pipeline:
    // any recursive implementation would blow the stack.
    let depth = 50_000i64;
    let mut jobs = JobSet::new();
    // Job i: window [i, 3·depth − i), length 2; EDF runs them innermost-
    // last, creating a deep laminar nest.
    for i in 0..depth {
        jobs.push(Job::new(i, 3 * depth - i, 1, 1.0));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    let out = edf_schedule(&jobs, &ids, None);
    out.schedule.verify(&jobs, None).unwrap();
    let lam = laminarize(&jobs, &out.schedule).unwrap();
    let sf = schedule_forest(&jobs, &lam);
    assert_eq!(sf.forest.len(), out.schedule.len());
    let res = tm(&sf.forest, 1);
    let rec = reconstruct(&jobs, &lam, &sf, &res.keep);
    rec.verify(&jobs, Some(1)).unwrap();
}

#[test]
fn edf_handles_twenty_thousand_jobs() {
    let workload = RandomWorkload {
        n: 20_000,
        horizon: 120_000,
        length_range: (1, 40),
        laxity: LaxityModel::Uniform { max: 8.0 },
        values: ValueModel::Unit,
    };
    let jobs = workload.generate(5);
    let ids: Vec<JobId> = jobs.ids().collect();
    let out = edf_schedule(&jobs, &ids, None);
    out.schedule.verify(&jobs, None).unwrap();
    assert!(is_laminar(&out.schedule));
    assert_eq!(out.schedule.len() + out.missed.len(), jobs.len());
}

#[test]
fn full_reduction_on_five_thousand_jobs() {
    let workload = RandomWorkload {
        n: 5_000,
        horizon: 30_000,
        length_range: (2, 64),
        laxity: LaxityModel::Uniform { max: 10.0 },
        values: ValueModel::Uniform { max: 100 },
    };
    let jobs = workload.generate(11);
    let ids: Vec<JobId> = jobs.ids().collect();
    let inf = edf_schedule(&jobs, &ids, None);
    for k in [1u32, 3] {
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
        red.schedule.verify(&jobs, Some(k)).unwrap();
        assert!(
            red.schedule.value(&jobs) * loss_bound(jobs.len(), k)
                >= inf.schedule.value(&jobs) - 1e-3
        );
    }
}

#[test]
fn lsa_cs_on_ten_thousand_lax_jobs() {
    let workload = RandomWorkload {
        n: 10_000,
        horizon: 80_000,
        length_range: (1, 128),
        laxity: LaxityModel::Lax { k: 2, factor: 3.0 },
        values: ValueModel::Uniform { max: 50 },
    };
    let jobs = workload.generate(13);
    let ids: Vec<JobId> = jobs.ids().collect();
    let out = lsa_cs(&jobs, &ids, 2);
    out.schedule.verify(&jobs, Some(2)).unwrap();
    assert!(!out.accepted.is_empty());
}

#[test]
fn simulator_handles_long_runs() {
    let workload = RandomWorkload {
        n: 10_000,
        horizon: 60_000,
        length_range: (1, 32),
        laxity: LaxityModel::Uniform { max: 6.0 },
        values: ValueModel::Unit,
    };
    let jobs = workload.generate(17);
    let ids: Vec<JobId> = jobs.ids().collect();
    let out = execute_online(&jobs, &ids, SimConfig { policy: Policy::EdfBudget(2), switch_cost: 1 });
    out.trace.check().unwrap();
    out.schedule.verify(&jobs, Some(2)).unwrap();
}

#[test]
fn fig4_large_instance_end_to_end() {
    // k = 3 → K = 6, depth 4 → 1555 jobs with 10-digit time scales.
    let inst = Fig4Instance::for_k(3, 4);
    let built = inst.build();
    let ids: Vec<JobId> = built.jobs.ids().collect();
    assert!(edf_feasible(&built.jobs, &ids));
    let inf = edf_schedule(&built.jobs, &ids, None);
    let red = reduce_to_k_bounded(&built.jobs, &inf.schedule, 3).unwrap();
    red.schedule.verify(&built.jobs, Some(3)).unwrap();
    assert!(red.schedule.value(&built.jobs) <= inst.opt_k_upper_bound(3) + 1e-6);
}
