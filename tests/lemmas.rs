//! Direct empirical checks of the paper's *inner* lemmas — the stepping
//! stones of §4.3 — on both structured and random inputs.

use pobp::prelude::*;

/// Lemma 4.11: in an LSA schedule, every busy segment is at least as long
/// as the shortest job considered so far. We check the final timeline
/// against the shortest *accepted* job (the statement's relevant form: a
/// busy segment is built from whole leftmost-filled pieces, each at least
/// one job's full chunk... the measurable corollary is that no busy segment
/// is shorter than the shortest accepted job's shortest placed piece — and
/// for single-class lax input the paper's form holds verbatim).
#[test]
fn lemma_4_11_busy_segments_not_shorter_than_min_job() {
    for seed in 0..20u64 {
        for k in 1..=3u32 {
            let workload = RandomWorkload {
                n: 40,
                horizon: 200,
                length_range: (4, 4 * (k as i64 + 1)), // single length class
                laxity: LaxityModel::Lax { k, factor: 3.0 },
                values: ValueModel::Uniform { max: 20 },
            };
            let jobs = workload.generate(seed);
            let ids: Vec<JobId> = jobs.ids().collect();
            let out = lsa(&jobs, &ids, k);
            if out.accepted.is_empty() {
                continue;
            }
            let p_min = ids.iter().map(|&j| jobs.job(j).length).min().unwrap();
            let busy = out.schedule.busy(0);
            for seg in busy.iter() {
                assert!(
                    seg.len() >= p_min,
                    "seed={seed} k={k}: busy segment {seg:?} shorter than p_min={p_min}"
                );
            }
        }
    }
}

/// Lemma 4.12: for every job LSA rejects (lax, single length class), the
/// job's window is at least `b0 = (k+1)/(2P + k+1)`-loaded by accepted
/// jobs. Because the timeline only fills up after a rejection, checking the
/// final load is sound.
#[test]
fn lemma_4_12_rejected_windows_are_loaded() {
    for seed in 0..20u64 {
        for k in 1..=3u32 {
            let p_hi = 4 * (k as i64 + 1) - 1;
            let workload = RandomWorkload {
                n: 60,
                horizon: 150, // deliberately tight to force rejections
                length_range: (4, p_hi),
                laxity: LaxityModel::Lax { k, factor: 2.0 },
                values: ValueModel::Uniform { max: 20 },
            };
            let jobs = workload.generate(seed);
            // Restrict to one length class so P ≤ k+1, as LSA_CS arranges.
            let classes = length_classes(&jobs, &jobs.ids().collect::<Vec<_>>(), k + 1);
            for class in classes.iter().filter(|c| c.len() >= 2) {
                let out = lsa(&jobs, class, k);
                let p_max = class.iter().map(|&j| jobs.job(j).length).max().unwrap();
                let p_min = class.iter().map(|&j| jobs.job(j).length).min().unwrap();
                let p = p_max as f64 / p_min as f64;
                let b0 = (k as f64 + 1.0) / (2.0 * p + k as f64 + 1.0);
                for &j in &out.rejected {
                    let w = jobs.job(j).window();
                    let load = window_load(&out.schedule, 0, &w);
                    assert!(
                        load >= b0 - 1e-9,
                        "seed={seed} k={k}: rejected {j} window load {load:.3} < b0={b0:.3}"
                    );
                }
            }
        }
    }
}

/// Lemma 4.6 (strict jobs): on a schedule forest built from strict jobs
/// (`λ ≤ k+1`), LevelledContraction needs at most
/// `log_{k+1}(P · λ_max) + 1` iterations — the window-based bound, which
/// can be far smaller than the `log_{k+1} n` node bound.
#[test]
fn lemma_4_6_strict_iteration_bound() {
    for seed in 0..15u64 {
        for k in 1..=3u32 {
            let workload = RandomWorkload {
                n: 60,
                horizon: 400,
                length_range: (2, 64),
                laxity: LaxityModel::Strict { k },
                values: ValueModel::Uniform { max: 10 },
            };
            let jobs = workload.generate(seed);
            let ids: Vec<JobId> = jobs.ids().collect();
            let inf = edf_schedule(&jobs, &ids, None);
            if inf.schedule.is_empty() {
                continue;
            }
            let lam = laminarize(&jobs, &inf.schedule).unwrap();
            let sf = schedule_forest(&jobs, &lam);
            let lc = levelled_contraction(&sf.forest, k);
            let scheduled: Vec<JobId> = inf.schedule.scheduled_ids().collect();
            let p_max = scheduled.iter().map(|&j| jobs.job(j).length).max().unwrap();
            let p_min = scheduled.iter().map(|&j| jobs.job(j).length).min().unwrap();
            let p = p_max as f64 / p_min as f64;
            let lam_max = scheduled
                .iter()
                .map(|&j| jobs.job(j).laxity())
                .fold(1.0f64, f64::max);
            let bound = ((p * lam_max).ln() / ((k + 1) as f64).ln()).floor() + 1.0;
            assert!(
                lc.iterations() as f64 <= bound + 1e-9,
                "seed={seed} k={k}: L={} > log_(k+1)(P·λmax)={bound}",
                lc.iterations()
            );
        }
    }
}

/// The §4.1 remark: per-machine reduction of a multi-machine schedule
/// preserves per-machine assignment and the overall bound.
#[test]
fn multi_machine_reduction_keeps_assignment() {
    let workload = RandomWorkload {
        n: 60,
        horizon: 150,
        length_range: (2, 16),
        laxity: LaxityModel::Uniform { max: 6.0 },
        values: ValueModel::Uniform { max: 10 },
    };
    let jobs = workload.generate(3);
    let ids: Vec<JobId> = jobs.ids().collect();
    // Build a 3-machine ∞-preemptive schedule iteratively.
    let multi = iterative_multi_machine(&jobs, &ids, 3, |js, rem| {
        greedy_unbounded(js, rem).schedule
    });
    multi.verify(&jobs, None).unwrap();
    for k in 1..=2u32 {
        let red = reduce_to_k_bounded(&jobs, &multi, k).unwrap();
        red.schedule.verify(&jobs, Some(k)).unwrap();
        // Every kept job stays on its original machine.
        for (id, a) in red.schedule.iter() {
            let orig = multi.assignment(id).expect("kept ⊆ input");
            assert_eq!(a.machine, orig.machine, "{id} migrated during reduction");
        }
        // Loss bound holds per run.
        let bound = loss_bound(jobs.len(), k);
        assert!(red.schedule.value(&jobs) * bound >= multi.value(&jobs) - 1e-6);
    }
}

/// Lemma B.1 in schedule-forest form, on the real Figure 4 instance: each
/// job's node has exactly `K` children (its child jobs preempt it exactly
/// once each in the EDF schedule).
#[test]
fn lemma_b1_forest_degrees_match_construction() {
    for (k, depth) in [(1u32, 3u32), (2, 2)] {
        let inst = Fig4Instance::for_k(k, depth);
        let built = inst.build();
        let ids: Vec<JobId> = built.jobs.ids().collect();
        let inf = edf_schedule(&built.jobs, &ids, None);
        assert!(inf.is_feasible());
        let lam = laminarize(&built.jobs, &inf.schedule).unwrap();
        let sf = schedule_forest(&built.jobs, &lam);
        // Non-leaf jobs have exactly K children in the schedule forest.
        let kf = inst.branching as usize;
        for node in sf.forest.ids() {
            let job = sf.job_of(node);
            let level = built.level_of[job.0];
            let deg = sf.forest.degree(node);
            if level < depth {
                assert_eq!(deg, kf, "level-{level} job {job} has degree {deg}");
            } else {
                assert_eq!(deg, 0, "leaf job {job} has degree {deg}");
            }
        }
    }
}
