//! `pobp` — command-line front end for the Price-of-Bounded-Preemption
//! library.
//!
//! ```text
//! pobp gen --kind fig2 --n 8                      # emit an instance (text format)
//! pobp gen --kind random --n 50 --seed 3
//! pobp gen --kind fig4 --k 2 --depth 3
//! pobp solve --k 1 --alg combined < jobs.txt      # schedule an instance
//! pobp solve --k 2 --alg reduction --gantt < jobs.txt
//! pobp price --k 1 < jobs.txt                     # exact price (small instances)
//! ```
//!
//! The instance format is the one of `pobp::prelude::{write_jobs, parse_jobs}`:
//! one `release deadline length value` line per job.

use pobp::cli::{
    flag, flag_value, has_flag, parse_num, parse_num_list_strict,
    parse_num_strict,
};
use pobp::prelude::*;
use pobp::sweep::rows::{format_row, json_escape};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("price") => cmd_price(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("choose-k") => cmd_choose_k(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("online") => cmd_online(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{}", usage())),
    }
    .and_then(|()| emit_obs_report(&args))
    .map_or_else(
        |e| {
            eprintln!("error: {e}");
            1
        },
        |()| 0,
    );
    std::process::exit(code);
}

/// Handles the global `--obs` / `--obs-out FILE` flags after a successful
/// command: dump the JSON counter report (docs/observability.md) to stderr,
/// or to FILE. With the `obs` feature off the report is emitted all the
/// same, carrying `"obs_enabled": false` and empty sections. `--obs-out`
/// without a value is an error, not a silent no-op.
fn emit_obs_report(args: &[String]) -> Result<(), String> {
    if let Some(path) = flag_value(args, "--obs-out")? {
        std::fs::write(&path, pobp::obs::report_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote obs report to {path}");
    } else if has_flag(args, "--obs") {
        eprintln!("{}", pobp::obs::report_json());
    }
    Ok(())
}

/// Handles `--trace FILE` (Chrome trace-event JSON, Perfetto-loadable) and
/// `--trace-logical FILE` (deterministic logical trace) for the commands
/// that run traced work: `sweep` and `solve`. Called at the end of those
/// commands — not from the global dispatch — because `sim --trace` is an
/// unrelated boolean flag. Without the `trace` feature the flags are a
/// build-time error, mirroring the `--chaos` gating.
#[cfg(feature = "trace")]
fn emit_trace_reports(args: &[String]) -> Result<(), String> {
    let chrome = flag_value(args, "--trace")?;
    let logical = flag_value(args, "--trace-logical")?;
    if chrome.is_none() && logical.is_none() {
        return Ok(());
    }
    let events = pobp::trace::drain();
    if let Some(path) = chrome {
        std::fs::write(&path, pobp::trace::chrome_json(&events))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} ({} events)", events.len());
    }
    if let Some(path) = logical {
        std::fs::write(&path, pobp::trace::logical_text(&events))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote logical trace to {path}");
    }
    Ok(())
}

/// Trace-less builds reject the tracing flags loudly instead of silently
/// writing nothing.
#[cfg(not(feature = "trace"))]
fn emit_trace_reports(args: &[String]) -> Result<(), String> {
    if has_flag(args, "--trace") || has_flag(args, "--trace-logical") {
        return Err(
            "--trace/--trace-logical need a binary built with --features trace".into(),
        );
    }
    Ok(())
}

const USAGE: &str = "\
pobp — The Price of Bounded Preemption (SPAA'18) toolbox

USAGE:
  pobp gen --kind <fig2|fig4|random|periodic> [--n N] [--k K] [--depth L] [--seed S]
  pobp solve --k K [--alg <reduction|combined|lsa|k0>] [--gantt] [--svg FILE]
             [--trace FILE]
  pobp price --k K                                                  (instance on stdin)
  pobp sim --policy <edf|budget|nonpre> [--k K] [--delta D]         (instance on stdin)
  pobp choose-k --delta D [--kmax K]                                (instance on stdin)
  pobp replay --plan FILE --delta D                                 (instance on stdin)
  pobp sweep [--n LIST] [--k LIST] [--seeds S] [--alg A] [--threads N]
             [--deadline-ms MS] [--machines M] [--exact-ref] [--no-cache]
             [--retries R] [--degrade] [--progress]
             [--out DIR] [--resume] [--chunk-cells N] [--max-chunks N]
             [--trace FILE] [--trace-logical FILE]
                                                 (grid sweep, JSON lines on stdout
                                                  or crash-safe shards under --out)
  pobp online [--alg <djn|greedy|edf|all>] [--families LIST] [--n LIST]
              [--k LIST] [--seeds S] [--threads N] [--exact-ref] [--no-cache]
              [--retries R] [--degrade] [--deadline-ms MS] [--progress]
              [--trace FILE] [--trace-logical FILE]
                                                 (competitive-ratio lab, JSON lines)
  pobp serve [--addr HOST:PORT] [--dir DIR] [--workers N] [--queue-cap N]
             [--engine-threads N] [--degrade] [--compact-every N]
             [--metrics-addr HOST:PORT] [--sample-ms MS] [--flight-dir DIR]
                                                 (scheduling daemon, docs/serve.md)

Any command also accepts --obs (print the JSON counter report to stderr) or
--obs-out FILE (write it to FILE). Counters require building with
`--features obs`; see docs/observability.md.

sweep and solve accept --trace FILE (Chrome trace-event JSON — open in
Perfetto / chrome://tracing) and sweep also --trace-logical FILE (the
deterministic logical trace: ordering and phase transitions, timestamps
stripped, byte-identical across --threads). Both need a binary built with
`--features trace`. sweep --progress draws a live stderr meter (rows
done/total, throughput, running p50 task latency, degrade/cert-fail
counts).

sweep runs the (n, k, seed) grid through the parallel batch engine
(docs/engine.md): one JSON line per task on stdout, in deterministic grid
order regardless of --threads; the batch summary goes to stderr. LIST
flags take comma-separated values (e.g. --n 20,40 --k 0,1,2); --seeds S
sweeps seeds 0..S. --alg is one of reduction|combined|lsa|k0 (plus the
test-only `panic`, which exercises panic isolation). --degrade arms the
graceful-degradation ladder (docs/robustness.md): tasks that exhaust
retries or overrun --deadline-ms fall back to the polynomial algorithm and
report status \"degraded\" instead of failing.

sweep --out DIR switches to the crash-safe sharded mode (docs/sweeps.md):
the grid is split into content-addressed chunks of --chunk-cells (n, seed)
cells, each chunk's rows stream to DIR/shard-NNNNN.jsonl, and progress is
checkpointed in DIR/manifest.json (tmp/fsync/rename). A killed sweep
continues with --resume — completed chunks are digest-verified and
skipped, torn shard tails are healed, only missing rows are recomputed —
and the final DIR/merged.jsonl is byte-identical to an uninterrupted run
(any --threads). --max-chunks N stops after N chunks (still resumable).

serve starts the persistent scheduling daemon (docs/serve.md): named solve
jobs over newline-delimited JSON on TCP, a bounded priority queue with
structured rejections, per-job cancel, content-keyed result reuse, and a
durable journal in --dir that survives kill -9 (acknowledged jobs and
finished results are recovered on restart). Drive it with pobp-client.
With `--features telemetry` the daemon also serves live telemetry
(docs/observability.md): --metrics-addr exposes a Prometheus scrape
endpoint, --sample-ms sets the windowed sampler period, and --flight-dir
collects bounded flight-recorder dumps (Chrome trace JSON) on panics,
cert failures, journal poisoning, or an explicit dump-flight op; watch it
live with `pobp-client top`.

online runs the online-arrival competitive-ratio lab (docs/online.md): jobs
are revealed at release, commitments are irrevocable, and each job carries
the per-job preemption budget k. The sweep crosses --families (zoo families
periodic|bursty|fig2|fig4|random) with --n/--k/--seeds, runs each online
algorithm (--alg djn|greedy|edf, or all) *and* a paired offline OPT_k
oracle task through the batch engine, and emits one JSON line per online
row with the certified oracle value, the empirical competitive ratio
oracle/value, and the (1+sqrt(P))^2 reference bound. Rows are byte-identical
across --threads. The oracle is the certified Theorem-4.2 reduction value,
upgraded to the exact OPT_k on instances small enough for the exact solver.
";

/// The full usage text; chaos-build binaries append the `--chaos` section.
fn usage() -> String {
    #[cfg(feature = "chaos")]
    {
        format!("{USAGE}{}", pobp::engine::chaos::CLI_USAGE)
    }
    #[cfg(not(feature = "chaos"))]
    {
        USAGE.to_string()
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("gen needs --kind")?;
    let jobs = match kind.as_str() {
        "fig2" => {
            let n: u32 = parse_num(args, "--n", 8u32)?;
            Fig2Instance::new(n).build()
        }
        "fig4" => {
            let k: u32 = parse_num(args, "--k", 1u32)?;
            let depth: u32 = parse_num(args, "--depth", 3u32)?;
            Fig4Instance::for_k(k.max(1), depth).build().jobs
        }
        "random" => {
            let n: usize = parse_num(args, "--n", 30usize)?;
            let seed: u64 = parse_num(args, "--seed", 0u64)?;
            RandomWorkload::standard(n).generate(seed)
        }
        "periodic" => {
            let seed: u64 = parse_num(args, "--seed", 0u64)?;
            // A few standard tasks, jittered by the seed.
            let s = seed as i64 % 5;
            TaskSet::new(vec![
                PeriodicTask { wcet: 2 + s % 2, period: 10, deadline: 7, value: 5.0, offset: 0 },
                PeriodicTask { wcet: 4, period: 15, deadline: 15, value: 7.0, offset: 1 + s },
                PeriodicTask { wcet: 6, period: 30, deadline: 24, value: 9.0, offset: 2 },
            ])
            .unroll_hyperperiod()
            .0
        }
        other => return Err(format!("unknown --kind {other}")),
    };
    print!("{}", write_jobs(&jobs));
    Ok(())
}

fn read_stdin_jobs() -> Result<JobSet, String> {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .map_err(|e| format!("reading stdin: {e}"))?;
    let jobs = parse_jobs(&text)?;
    if jobs.is_empty() {
        return Err("no jobs on stdin (pipe an instance, e.g. from `pobp gen`)".into());
    }
    Ok(jobs)
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let k: u32 = parse_num(args, "--k", 1u32)?;
    let alg = flag(args, "--alg").unwrap_or_else(|| "combined".into());
    let jobs = read_stdin_jobs()?;
    let ids: Vec<JobId> = jobs.ids().collect();

    let schedule = {
        // Tag the whole solve as one task span so `--trace` output groups
        // the algorithm-stage timers under it (no-op without the feature).
        let _task = pobp::trace::task_scope(0, &alg);
        match alg.as_str() {
            "reduction" => {
                let inf = greedy_unbounded(&jobs, &ids);
                reduce_to_k_bounded(&jobs, &inf.schedule, k)
                    .map_err(|e| e.to_string())?
                    .schedule
            }
            "combined" => combined_from_scratch(&jobs, &ids, k).chosen,
            "lsa" => lsa_cs(&jobs, &ids, k).schedule,
            "k0" => schedule_k0(&jobs, &ids).schedule,
            other => return Err(format!("unknown --alg {other}")),
        }
    };
    let effective_k = if alg == "k0" { 0 } else { k };
    schedule
        .verify(&jobs, Some(effective_k))
        .map_err(|e| format!("internal: produced infeasible schedule: {e}"))?;

    let stats = schedule_stats(&jobs, &schedule);
    println!(
        "algorithm {alg}, k = {effective_k}: scheduled {}/{} jobs, value {} ({:.0}% of total), \
         {} preemptions",
        stats.scheduled,
        jobs.len(),
        stats.value,
        stats.value_fraction * 100.0,
        stats.total_preemptions,
    );
    for id in schedule.scheduled_ids() {
        let segs = schedule.segments(id).expect("scheduled");
        let pretty: Vec<String> =
            segs.iter().map(|s| format!("[{}, {})", s.start, s.end)).collect();
        println!("  {id}: {}", pretty.join(" "));
    }
    if has_flag(args, "--gantt") {
        println!();
        print!("{}", render_gantt(&jobs, &schedule, RenderOptions::default()));
    }
    if let Some(path) = flag(args, "--svg") {
        let svg = render_svg(&jobs, &schedule, SvgOptions::default());
        std::fs::write(&path, svg).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag(args, "--out") {
        std::fs::write(&path, write_schedule(&schedule))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    emit_trace_reports(args)?;
    Ok(())
}

fn cmd_price(args: &[String]) -> Result<(), String> {
    let k: u32 = parse_num(args, "--k", 1u32)?;
    let jobs = read_stdin_jobs()?;
    if jobs.len() > 20 {
        return Err(format!(
            "exact price needs a small instance (n ≤ 20), got n = {}",
            jobs.len()
        ));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    let opt = opt_unbounded(&jobs, &ids);
    println!("OPT_∞ = {} ({} jobs)", opt.value, opt.subset.len());
    let red = reduce_to_k_bounded(&jobs, &opt.schedule, k).map_err(|e| e.to_string())?;
    println!("reduction value at k = {k}: {}", red.schedule.value(&jobs));
    let k0 = opt_nonpreemptive(&jobs, &ids);
    println!("OPT_0 (exact) = {}", k0.value);
    println!(
        "price bracket at k = {k}: [{:.3}, {:.3}]   (OPT_∞/OPT_k ∈ [OPT_∞/OPT_∞, OPT_∞/alg])",
        1.0,
        opt.value / red.schedule.value(&jobs).max(f64::MIN_POSITIVE)
    );
    println!("price at k = 0 (exact): {:.3}", opt.value / k0.value.max(f64::MIN_POSITIVE));
    println!(
        "bounds: log_(k+1) n = {:.2}, min(n, 3·log2 P) = {:.2}",
        loss_bound(jobs.len(), k.max(1)),
        (jobs.len() as f64).min(3.0 * jobs.length_ratio().unwrap_or(1.0).log2().max(1.0)),
    );
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let delta: i64 = parse_num(args, "--delta", 0i64)?;
    let k: u32 = parse_num(args, "--k", 1u32)?;
    let policy = match flag(args, "--policy").as_deref().unwrap_or("edf") {
        "edf" => Policy::Edf,
        "budget" => Policy::EdfBudget(k),
        "nonpre" => Policy::NonPreemptive,
        other => return Err(format!("unknown --policy {other}")),
    };
    let jobs = read_stdin_jobs()?;
    let ids: Vec<JobId> = jobs.ids().collect();
    let out = execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta });
    out.trace.check().map_err(|e| format!("internal: inconsistent trace: {e}"))?;
    println!(
        "policy {policy:?}, switch cost {delta}: completed {}/{} jobs, value {} of {}",
        out.schedule.len(),
        jobs.len(),
        out.value(&jobs),
        jobs.total_value(),
    );
    println!(
        "switches {}, overhead {} ticks, useful work {} ticks, wasted work {} ticks",
        out.trace.switches(),
        out.trace.overhead_time(),
        out.trace.work_time(),
        out.trace.work_time()
            - out
                .schedule
                .scheduled_ids()
                .map(|j| jobs.job(j).length)
                .sum::<i64>(),
    );
    if !out.dropped.is_empty() {
        let names: Vec<String> = out.dropped.iter().map(|j| j.to_string()).collect();
        println!("dropped: {}", names.join(" "));
    }
    if has_flag(args, "--trace") {
        for (t, e) in &out.trace.events {
            println!("{t:>6}  {e:?}");
        }
    }
    Ok(())
}

fn cmd_choose_k(args: &[String]) -> Result<(), String> {
    let delta: i64 = parse_num(args, "--delta", 2i64)?;
    let k_max: u32 = parse_num(args, "--kmax", 4u32)?;
    let jobs = read_stdin_jobs()?;
    let ids: Vec<JobId> = jobs.ids().collect();
    let inf = greedy_unbounded(&jobs, &ids);
    println!(" k | planned value | replayed value @ δ={delta}");
    println!("---+---------------+------------------------");
    // One laminarize + schedule-forest pass serves every k in the table.
    let red_plan = ReductionPlan::new(&jobs, &inf.schedule).map_err(|e| e.to_string())?;
    let mut ws = SolveWorkspace::new();
    for k in 0..=k_max {
        let plan = red_plan.solve_ws(&jobs, k, KbasSolver::Tm, &mut ws).schedule;
        let replayed = replay_with_overhead(&jobs, &plan, delta);
        println!(
            " {k} | {:13} | {}",
            plan.value(&jobs),
            replayed.value(&jobs)
        );
    }
    let choice = choose_k(&jobs, &inf.schedule, delta, k_max);
    println!(
        "\nrecommendation: k = {} (replayed value {}, vs {} planned)",
        choice.k, choice.replayed_value, choice.planned_value
    );
    Ok(())
}

/// `pobp sweep`: expand an (n, k, seed) grid into solver tasks and run them
/// through the parallel batch engine — one JSON line per task on stdout,
/// or, with `--out DIR`, streamed to crash-safe shard files with a
/// checkpoint manifest and `--resume` support (docs/sweeps.md).
///
/// Output lines are a pure function of the grid — no durations, no cache
/// flags — so `--threads 4` and `--threads 1` emit byte-identical bytes
/// (the determinism contract of docs/engine.md), and a killed `--out`
/// sweep resumes to the same merged bytes. The batch summary goes to
/// stderr.
fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let ns: Vec<usize> = parse_num_list_strict(args, "--n", &[20, 40])?;
    let ks: Vec<u32> = parse_num_list_strict(args, "--k", &[0, 1, 2, 4])?;
    let seed_count: u64 = parse_num_strict(args, "--seeds", 5u64)?;
    let threads: usize = parse_num_strict(args, "--threads", 0usize)?;
    let deadline_ms: u64 = parse_num_strict(args, "--deadline-ms", 0u64)?;
    let machines: usize = parse_num_strict(args, "--machines", 1usize)?;
    let retries: u32 = parse_num_strict(args, "--retries", 1u32)?;
    let chunk_cells: usize = parse_num_strict(args, "--chunk-cells", 8usize)?;
    let max_chunks: usize = parse_num_strict(args, "--max-chunks", 0usize)?;
    let out_dir = flag_value(args, "--out")?;
    let resume = has_flag(args, "--resume");
    if resume && out_dir.is_none() {
        return Err("--resume needs --out DIR (the checkpoint directory)".into());
    }
    let alg_name = flag(args, "--alg").unwrap_or_else(|| "reduction".into());
    let algo = Algo::parse(&alg_name)
        .ok_or_else(|| format!("unknown --alg {alg_name} (try reduction|combined|lsa|k0)"))?;
    let exact_ref = has_flag(args, "--exact-ref");
    if machines == 0 {
        return Err("--machines must be at least 1".into());
    }
    #[cfg(not(feature = "chaos"))]
    if flag(args, "--chaos").is_some() || flag(args, "--chaos-seed").is_some() {
        return Err("--chaos/--chaos-seed need a binary built with --features chaos".into());
    }
    #[cfg(feature = "chaos")]
    let chaos_plan = {
        let chaos_seed: u64 = parse_num_strict(args, "--chaos-seed", 0u64)?;
        flag_value(args, "--chaos")?
            .map(|spec| FaultPlan::parse(&spec, chaos_seed))
            .transpose()?
    };

    let seeds: Vec<u64> = (0..seed_count).collect();
    if ns.is_empty() || ks.is_empty() || seeds.is_empty() {
        return Err("empty grid: every one of --n/--k/--seeds needs at least one value".into());
    }
    let cfg = EngineConfig {
        threads,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        max_retries: retries,
        use_cache: !has_flag(args, "--no-cache"),
        degrade: has_flag(args, "--degrade"),
        progress: has_flag(args, "--progress"),
        ..EngineConfig::default()
    };
    // The tracing flags are consumed after the batch (`emit_trace_reports`);
    // validate them up front so a bad invocation fails before a long sweep.
    flag_value(args, "--trace")?;
    flag_value(args, "--trace-logical")?;
    #[cfg(not(feature = "trace"))]
    if has_flag(args, "--trace") || has_flag(args, "--trace-logical") {
        return Err("--trace/--trace-logical need a binary built with --features trace".into());
    }

    if let Some(dir) = out_dir {
        // Sharded, checkpointed mode: rows go to shard files under DIR,
        // progress to manifest.json, and — once every chunk is recorded —
        // the digest-verified merge to DIR/merged.jsonl.
        let sweep_cfg = pobp::sweep::SweepConfig {
            spec: pobp::sweep::SweepSpec {
                ns,
                ks,
                seeds,
                algo,
                machines,
                exact_ref,
                chunk_cells,
            },
            engine: cfg,
            resume,
            max_chunks: (max_chunks > 0).then_some(max_chunks),
            #[cfg(feature = "chaos")]
            chaos: chaos_plan.map(std::sync::Arc::new),
        };
        let out = pobp::sweep::run_sweep(std::path::Path::new(&dir), &sweep_cfg)?;
        let s = out.stats;
        eprintln!(
            "sweep: {}/{} chunks done ({} new, {} skipped), {} rows written, \
             {} rows recovered, {} torn bytes healed; engine: {} tasks ({} run, {} degraded, \
             {} cert-failed, {} panicked, {} retries) on {} threads",
            out.chunks_skipped + out.chunks_completed,
            out.chunks_total,
            out.chunks_completed,
            out.chunks_skipped,
            out.rows_written,
            out.rows_recovered,
            out.torn_bytes,
            s.tasks,
            s.run,
            s.degraded,
            s.cert_failed,
            s.panicked,
            s.retried,
            if threads == 0 { "auto".to_string() } else { threads.to_string() },
        );
        match &out.merged {
            Some(path) => eprintln!("sweep: merged output at {}", path.display()),
            None => eprintln!("sweep: incomplete — rerun with --resume to continue"),
        }
        return emit_trace_reports(args);
    }

    let grid = GridSpec { ns: ns.clone(), ks: ks.clone(), seeds, algo, machines, exact_ref };
    #[cfg(feature = "chaos")]
    let batch = match chaos_plan {
        Some(plan) => Engine::with_chaos(cfg, plan).run_batch(&grid.tasks()),
        None => pobp::engine::run_batch(&grid.tasks(), cfg),
    };
    #[cfg(not(feature = "chaos"))]
    let batch = pobp::engine::run_batch(&grid.tasks(), cfg);

    // Rebuild the grid coordinates in task order (ns × seeds × ks — the
    // GridSpec expansion order) and emit one JSON line per report, through
    // the same formatter the shard writer uses (byte-identical rows).
    let mut coords = Vec::with_capacity(grid.len());
    for &n in &ns {
        for &seed in &grid.seeds {
            for &k in &ks {
                coords.push((n, k, seed));
            }
        }
    }
    for (&(n, k, seed), report) in coords.iter().zip(&batch.reports) {
        println!("{}", format_row(n, k, seed, algo, machines, report));
    }
    let s = batch.stats;
    eprintln!(
        "sweep: {} tasks ({} run, {} cached, {} degraded, {} cert-failed, {} panicked, \
         {} timed out, {} cancelled, {} retries, {} ref-cache hits, \
         {} steals/{} probes) on {} threads",
        s.tasks,
        s.run,
        s.cached,
        s.degraded,
        s.cert_failed,
        s.panicked,
        s.timed_out,
        s.cancelled,
        s.retried,
        s.ref_cache_hits,
        s.steal_hits,
        s.steal_attempts,
        if threads == 0 { "auto".to_string() } else { threads.to_string() },
    );
    emit_trace_reports(args)?;
    Ok(())
}

/// `pobp online`: the competitive-ratio lab. Crosses the instance-zoo
/// families with `--n/--k/--seeds`, pairs every online task with an offline
/// `OPT_k` oracle task (`Algo::Reduction` — the engine certifies the
/// denominator), runs the whole batch through the engine, and emits one
/// JSON line per online row: certified value, oracle value (upgraded to the
/// exact `OPT_k` where `opt_k_bounded_fits`), the empirical ratio
/// `oracle / value`, and the `(1+√P)²` reference bound.
///
/// Like `sweep`, stdout rows are a pure function of the request — no
/// durations, no cache flags — so `--threads 1` and `--threads 4` emit
/// byte-identical bytes.
fn cmd_online(args: &[String]) -> Result<(), String> {
    let families: Vec<ZooFamily> = match flag(args, "--families") {
        Some(v) => v
            .split(',')
            .map(|s| {
                let s = s.trim();
                ZooFamily::parse(s).ok_or_else(|| {
                    format!("unknown family {s:?} (try periodic|bursty|fig2|fig4|random)")
                })
            })
            .collect::<Result<_, _>>()?,
        None => ZOO_FAMILIES.to_vec(),
    };
    let ns: Vec<usize> = parse_num_list_strict(args, "--n", &[8, 16])?;
    let ks: Vec<u32> = parse_num_list_strict(args, "--k", &[1, 2])?;
    let seed_count: u64 = parse_num_strict(args, "--seeds", 3u64)?;
    let threads: usize = parse_num_strict(args, "--threads", 0usize)?;
    let deadline_ms: u64 = parse_num_strict(args, "--deadline-ms", 0u64)?;
    let retries: u32 = parse_num_strict(args, "--retries", 1u32)?;
    let exact_ref = has_flag(args, "--exact-ref");
    let algs: Vec<Algo> = match flag(args, "--alg").as_deref().unwrap_or("all") {
        "all" => vec![Algo::OnlineDjn, Algo::OnlineGreedy, Algo::OnlineEdf],
        name => {
            let long = format!("online-{name}");
            let algo = Algo::parse(&long)
                .or_else(|| Algo::parse(name))
                .filter(|a| a.is_online())
                .ok_or_else(|| format!("unknown --alg {name} (try djn|greedy|edf|all)"))?;
            vec![algo]
        }
    };
    if families.is_empty() || ns.is_empty() || ks.is_empty() || seed_count == 0 {
        return Err("empty grid: every one of --families/--n/--k/--seeds needs a value".into());
    }
    #[cfg(not(feature = "chaos"))]
    if flag(args, "--chaos").is_some() || flag(args, "--chaos-seed").is_some() {
        return Err("--chaos/--chaos-seed need a binary built with --features chaos".into());
    }
    #[cfg(feature = "chaos")]
    let chaos_plan = {
        let chaos_seed: u64 = parse_num_strict(args, "--chaos-seed", 0u64)?;
        flag_value(args, "--chaos")?
            .map(|spec| FaultPlan::parse(&spec, chaos_seed))
            .transpose()?
    };
    flag_value(args, "--trace")?;
    flag_value(args, "--trace-logical")?;
    #[cfg(not(feature = "trace"))]
    if has_flag(args, "--trace") || has_flag(args, "--trace-logical") {
        return Err("--trace/--trace-logical need a binary built with --features trace".into());
    }

    // Row metadata, parallel to the task batch. `alg == None` marks the
    // oracle task that opens each (family, n, seed, k) cell.
    struct Row {
        family: ZooFamily,
        n: usize,
        k: u32,
        seed: u64,
        alg: Option<Algo>,
        bound: f64,
        exact: Option<f64>,
    }
    let mut tasks: Vec<SolveTask> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for &family in &families {
        for &n in &ns {
            for seed in 0..seed_count {
                for &k in &ks {
                    let instance = zoo_instance(family, n, k, seed);
                    let ids: Vec<JobId> = instance.ids().collect();
                    let bound = djn_ratio_bound(instance.length_ratio().unwrap_or(1.0));
                    // The exact OPT_k upgrade, where the state space allows.
                    let exact = opt_k_bounded_fits(&instance, &ids)
                        .then(|| opt_k_bounded_small(&instance, &ids, k));
                    let label = |alg: &str| format!("{family} n={n} k={k} seed={seed} {alg}");
                    tasks.push(SolveTask {
                        instance: instance.clone(),
                        k,
                        machines: 1,
                        algo: Algo::Reduction,
                        exact_ref,
                        label: label("oracle"),
                    });
                    rows.push(Row { family, n, k, seed, alg: None, bound, exact });
                    for &alg in &algs {
                        tasks.push(SolveTask {
                            instance: instance.clone(),
                            k,
                            machines: 1,
                            algo: alg,
                            exact_ref,
                            label: label(alg.name()),
                        });
                        rows.push(Row { family, n, k, seed, alg: Some(alg), bound, exact });
                    }
                }
            }
        }
    }

    let cfg = EngineConfig {
        threads,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        max_retries: retries,
        use_cache: !has_flag(args, "--no-cache"),
        degrade: has_flag(args, "--degrade"),
        progress: has_flag(args, "--progress"),
        ..EngineConfig::default()
    };
    #[cfg(feature = "chaos")]
    let batch = match chaos_plan {
        Some(plan) => Engine::with_chaos(cfg, plan).run_batch(&tasks),
        None => pobp::engine::run_batch(&tasks, cfg),
    };
    #[cfg(not(feature = "chaos"))]
    let batch = pobp::engine::run_batch(&tasks, cfg);

    // Walk reports cell by cell: the oracle row opens the cell, the online
    // rows that follow consume its certified value.
    let mut oracle: Option<(f64, &'static str)> = None;
    for (row, report) in rows.iter().zip(&batch.reports) {
        let Some(alg) = row.alg else {
            // The reduction value is a certified lower bound on OPT_k; the
            // exact solver (when available) is OPT_k itself — take the max
            // so the denominator is the best certified knowledge.
            oracle = report.result.output().map(|out| match row.exact {
                Some(e) if e >= out.alg_value => (e, "exact"),
                _ => (out.alg_value, "reduction"),
            });
            continue;
        };
        // No `attempts` here, deliberately: a task answered from the result
        // cache reports 0 attempts, and *which* duplicate zoo cell wins the
        // race to populate the cache depends on scheduling order (fig2/fig4
        // repeat their instance across seeds). Everything emitted below is
        // certified output — a pure function of the request.
        let mut line = format!(
            "{{\"family\":\"{}\",\"n\":{},\"k\":{},\"seed\":{},\"alg\":\"{}\",\"status\":\"{}\"",
            row.family,
            row.n,
            row.k,
            row.seed,
            alg.name(),
            report.result.status(),
        );
        match &report.result {
            TaskResult::Done(out) | TaskResult::Degraded { output: out, .. } => {
                if let TaskResult::Degraded { fallback, cause, .. } = &report.result {
                    line.push_str(&format!(
                        ",\"fallback\":\"{}\",\"cause\":\"{}\"",
                        fallback.name(),
                        cause.name(),
                    ));
                }
                line.push_str(&format!(
                    ",\"value\":{},\"scheduled\":{},\"preemptions\":{}",
                    out.alg_value, out.scheduled, out.preemptions,
                ));
                if let Some((oracle_value, kind)) = oracle {
                    line.push_str(&format!(
                        ",\"oracle\":{oracle_value},\"oracle_kind\":\"{kind}\""
                    ));
                    if out.alg_value > 0.0 {
                        line.push_str(&format!(",\"ratio\":{}", oracle_value / out.alg_value));
                    }
                }
                line.push_str(&format!(",\"bound\":{}", row.bound));
            }
            TaskResult::CertFailed { stage, reason } => {
                line.push_str(&format!(
                    ",\"stage\":\"{}\",\"reason\":\"{}\"",
                    stage.name(),
                    json_escape(reason),
                ));
            }
            TaskResult::Panicked { message } => {
                line.push_str(&format!(",\"message\":\"{}\"", json_escape(message)));
            }
            TaskResult::TimedOut | TaskResult::Cancelled => {}
        }
        line.push('}');
        println!("{line}");
    }
    let s = batch.stats;
    eprintln!(
        "online: {} tasks ({} oracle cells, {} run, {} cached, {} degraded, {} cert-failed, \
         {} panicked, {} timed out, {} cancelled) on {} threads",
        s.tasks,
        rows.iter().filter(|r| r.alg.is_none()).count(),
        s.run,
        s.cached,
        s.degraded,
        s.cert_failed,
        s.panicked,
        s.timed_out,
        s.cancelled,
        if threads == 0 { "auto".to_string() } else { threads.to_string() },
    );
    emit_trace_reports(args)?;
    Ok(())
}

/// `pobp serve`: the persistent scheduling daemon (docs/serve.md). Binds
/// the address, recovers the registry from `--dir`, prints the two startup
/// lines (`listening on` / `recovered`), and blocks until a client sends
/// the `shutdown` op. `--addr` with port `0` lets the OS pick (scripts
/// scrape the printed address).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7411".into());
    let dir = flag_value(args, "--dir")?.unwrap_or_else(|| "pobp-serve-registry".into());
    #[cfg(not(feature = "chaos"))]
    if flag(args, "--chaos").is_some() || flag(args, "--chaos-seed").is_some() {
        return Err("--chaos/--chaos-seed need a binary built with --features chaos".into());
    }
    #[cfg(feature = "chaos")]
    let chaos_plan = {
        let chaos_seed: u64 = parse_num_strict(args, "--chaos-seed", 0u64)?;
        flag_value(args, "--chaos")?
            .map(|spec| FaultPlan::parse(&spec, chaos_seed))
            .transpose()?
    };
    // Validate the telemetry flags strictly in every build, so a missing or
    // trailing value is a loud error before the daemon binds anything; in
    // non-telemetry builds their mere presence is the error.
    let metrics_addr = flag_value(args, "--metrics-addr")?;
    let sample_ms: u64 = parse_num_strict(args, "--sample-ms", 1000u64)?;
    let flight_dir = flag_value(args, "--flight-dir")?;
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = sample_ms;
        if metrics_addr.is_some() || flight_dir.is_some() || has_flag(args, "--sample-ms") {
            return Err(
                "--metrics-addr/--sample-ms/--flight-dir need a binary built with \
                 --features telemetry"
                    .into(),
            );
        }
    }
    let cfg = pobp::serve::ServiceConfig {
        dir: dir.into(),
        workers: parse_num_strict(args, "--workers", 2usize)?.max(1),
        queue_cap: parse_num_strict(args, "--queue-cap", 64usize)?.max(1),
        engine_threads: parse_num_strict(args, "--engine-threads", 1usize)?,
        degrade: has_flag(args, "--degrade"),
        compact_every: parse_num_strict(args, "--compact-every", 256u64)?,
        #[cfg(feature = "chaos")]
        chaos: chaos_plan.map(std::sync::Arc::new),
        #[cfg(feature = "telemetry")]
        telemetry: pobp::serve::TelemetryOptions {
            sample_ms,
            flight_dir: flight_dir.map(std::path::PathBuf::from),
            metrics_addr,
            ..pobp::serve::TelemetryOptions::default()
        },
    };
    pobp::serve::run_server(&addr, cfg).map_err(|e| format!("serve: {e}"))?;
    emit_trace_reports(args)
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let delta: i64 = parse_num(args, "--delta", 0i64)?;
    let plan_path = flag(args, "--plan").ok_or("replay needs --plan FILE")?;
    let jobs = read_stdin_jobs()?;
    let plan_text =
        std::fs::read_to_string(&plan_path).map_err(|e| format!("reading {plan_path}: {e}"))?;
    let plan = parse_schedule(&plan_text)?;
    plan.verify(&jobs, None)
        .map_err(|e| format!("plan is infeasible for this instance: {e}"))?;
    let out = replay_with_overhead(&jobs, &plan, delta);
    println!(
        "replayed plan at switch cost {delta}: completed {}/{} planned jobs, value {} of {}",
        out.schedule.len(),
        plan.len(),
        out.value(&jobs),
        plan.value(&jobs),
    );
    println!(
        "switches {}, overhead {} ticks",
        out.trace.switches(),
        out.trace.overhead_time()
    );
    if !out.dropped.is_empty() {
        let names: Vec<String> = out.dropped.iter().map(|j| j.to_string()).collect();
        println!("dropped: {}", names.join(" "));
    }
    Ok(())
}
