//! # pobp — *The Price of Bounded Preemption* (Alon, Azar, Berlin; SPAA'18)
//!
//! A complete Rust implementation of the paper's algorithms and experiments:
//! real-time throughput scheduling with at most `k` preemptions per job, the
//! Bounded-Degree Ancestor-Independent Sub-Forest (k-BAS) machinery behind
//! it, the lower-bound constructions showing the bounds are tight, and exact
//! small-instance oracles for measuring the *price of bounded preemption*
//! `PoBP_k = OPT_∞ / OPT_k` empirically.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`core`] — jobs, segments, schedules, feasibility (Definition 2.1);
//! * [`forest`] — k-BAS: the optimal `TM` DP, `LevelledContraction`,
//!   validators, and the Appendix A adversarial tree (§3);
//! * [`sched`] — EDF, laminarization, the schedule-forest reduction
//!   (Theorem 4.2), `LSA`/`LSA_CS` (Algorithm 2), `k-PreemptionCombined`
//!   (Algorithm 3), the `k = 0` case (§5), multi-machine extensions
//!   (§4.3.4), and exact oracles;
//! * [`instances`] — Figure 2 / Figure 4 lower-bound generators and seeded
//!   random workloads;
//! * [`engine`] — the deterministic parallel batch-solving engine behind
//!   `pobp sweep` and `experiments --threads N` (worker pool, panic
//!   isolation, deadlines, result caching, certified outputs, graceful
//!   degradation, and — with `--features chaos` — deterministic fault
//!   injection; `docs/engine.md`, `docs/robustness.md`);
//! * [`sweep`] — crash-safe mega-sweeps behind `pobp sweep --out DIR`:
//!   content-addressed chunk planning, sharded output with checkpoint
//!   manifests, and `--resume` with torn-tail recovery and digest-verified
//!   merging (`docs/sweeps.md`);
//! * [`serve`] — the persistent scheduling service behind `pobp serve`:
//!   a line-protocol daemon with admission control, per-job cancel, and a
//!   durable job registry that survives `kill -9` (`docs/serve.md`).
//!
//! Building with `--features obs` compiles in the algorithm-level
//! counter/timer layer ([`obs`]); `--features trace` compiles in the
//! structured tracing layer ([`trace`]) behind `pobp sweep --trace FILE`.
//! Without the features every instrumentation macro is a no-op. See
//! `docs/observability.md`.
//!
//! ## Quickstart
//!
//! ```
//! use pobp::prelude::*;
//!
//! // Three jobs: ⟨release, deadline, length, value⟩.
//! let jobs: JobSet = vec![
//!     Job::new(0, 14, 9, 5.0),
//!     Job::new(2, 8, 3, 2.0),
//!     Job::new(0, 100, 4, 3.0),
//! ]
//! .into_iter()
//! .collect();
//! let ids: Vec<JobId> = jobs.ids().collect();
//!
//! // An optimal ∞-preemptive schedule (exact, small instance)…
//! let opt = opt_unbounded(&jobs, &ids);
//! assert_eq!(opt.value, 10.0);
//!
//! // …converted into a schedule with at most k = 1 preemption per job.
//! let k = 1;
//! let bounded = reduce_to_k_bounded(&jobs, &opt.schedule, k).unwrap();
//! bounded.schedule.verify(&jobs, Some(k)).unwrap();
//!
//! // Theorem 4.2: the loss is at most log_{k+1} n.
//! let bound = loss_bound(jobs.len(), k);
//! assert!(bounded.schedule.value(&jobs) * bound >= opt.value);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pobp_core as core;
pub use pobp_core::obs;
pub use pobp_core::trace;
pub use pobp_engine as engine;
pub use pobp_forest as forest;
pub use pobp_instances as instances;
pub use pobp_sched as sched;
pub use pobp_serve as serve;
pub use pobp_sim as sim;
pub use pobp_sweep as sweep;

pub use pobp_core::cli;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use pobp_core::{
        render_gantt, render_svg, render_timeline, schedule_stats, window_load, Assignment,
        Infeasibility, SvgOptions,
        Interval, Job, JobError, JobId, JobSet, MachineId, RenderOptions, Schedule, ScheduleStats,
        SegmentSet, Time, Timeline, Value,
    };
    pub use pobp_forest::{
        brute_force_kbas, extract_subforest, greedy_kbas, is_ancestor_independent, is_k_bounded,
        is_kbas, levelled_contraction, loss_bound, tm, Forest, KeepSet, LowerBoundTree, NodeClass,
        NodeId,
    };
    pub use pobp_instances::{
        bursty_workload, overlapping_block, parse_jobs, parse_schedule, random_forest,
        round_robin_schedule, write_jobs, write_schedule, zoo_instance, Fig2Instance, Fig4Built,
        Fig4Instance, LaxityModel, PeriodicTask, RandomWorkload, TaskSet, ValueModel, ZooFamily,
        ZOO_FAMILIES,
    };
    pub use pobp_sched::{
        best_single_job, combined_from_scratch, cs_by_density, cs_by_value, edf_feasible,
        lawler_moore, moore_hodgson,
        edf_schedule, edf_truncate, global_edf, greedy_nonpreemptive_by_value, greedy_unbounded,
        is_laminar, iterative_multi_machine, k_preemption_combined, key_classes, laminarize,
        length_classes, lsa, lsa_cs, lsa_in_order, opt_k_bounded_fits, opt_k_bounded_small,
        opt_nonpreemptive,
        opt_unbounded, reconstruct, reduce_to_k_bounded, reduce_to_k_bounded_with, schedule_forest,
        schedule_k0, KbasSolver, MigrativeSchedule, ReductionPlan, SolveWorkspace,
    };
    pub use pobp_sim::{
        choose_k, djn_ratio_bound, efficiency, execute_online, execute_partitioned, is_robust,
        max_robust_delta, replay_with_overhead, run_online, switch_count, switch_points, ExecEvent,
        ExecTrace, OnlineAlg, OnlineConfig, OnlineOutcome, PartitionRule, PartitionedOutcome,
        PlanChoice, Policy, SimConfig, SimOutcome, SwitchPoint, ONLINE_ALGS,
    };
    pub use pobp_engine::{
        run_batch, Algo, BatchReport, CancelToken, CertFailure, CertStage, DegradeCause, Engine,
        EngineConfig, EngineStats, GridSpec, SolveOutput, SolveTask, TaskReport, TaskResult,
    };
    #[cfg(feature = "chaos")]
    pub use pobp_engine::{FaultPlan, FaultSite};
}
