//! Integration: the paper-motivation crossover — as switch cost grows,
//! bounding preemptions beats free preemption — plus cross-checks of the
//! online executor against the offline schedulers from `pobp-sched`.

use pobp_core::{JobId, JobSet};
use pobp_instances::{LaxityModel, RandomWorkload, ValueModel};
use pobp_sim::{execute_online, max_robust_delta, switch_count, Policy, SimConfig};

fn workload(n: usize, seed: u64) -> (JobSet, Vec<JobId>) {
    let jobs = RandomWorkload {
        n,
        horizon: n as i64 * 4,
        length_range: (4, 32),
        laxity: LaxityModel::Uniform { max: 6.0 },
        values: ValueModel::Uniform { max: 20 },
    }
    .generate(seed);
    let ids = jobs.ids().collect();
    (jobs, ids)
}

#[test]
fn online_edf_matches_offline_edf_at_zero_cost() {
    for seed in 0..10u64 {
        let (jobs, ids) = workload(40, seed);
        let online = execute_online(&jobs, &ids, SimConfig { policy: Policy::Edf, switch_cost: 0 });
        let offline = pobp_sched::edf_schedule(&jobs, &ids, None);
        // Same abort rule, same tie-break → identical completion sets.
        let a: Vec<JobId> = online.schedule.scheduled_ids().collect();
        let b: Vec<JobId> = offline.schedule.scheduled_ids().collect();
        assert_eq!(a, b, "seed={seed}");
        online.schedule.verify(&jobs, None).unwrap();
    }
}

#[test]
fn budget_policies_respect_definition_2_1() {
    for seed in 0..8u64 {
        let (jobs, ids) = workload(50, seed);
        for k in 0..4u32 {
            for delta in [0i64, 1, 3] {
                let out = execute_online(
                    &jobs,
                    &ids,
                    SimConfig { policy: Policy::EdfBudget(k), switch_cost: delta },
                );
                out.schedule
                    .verify(&jobs, Some(k))
                    .unwrap_or_else(|e| panic!("seed={seed} k={k} δ={delta}: {e}"));
                out.trace.check().unwrap();
            }
        }
    }
}

#[test]
fn crossover_bounded_beats_unbounded_at_high_switch_cost() {
    // Aggregate over seeds: at δ = 0 free EDF weakly dominates; at large δ
    // the k-budgeted policy takes over. We assert the *aggregate* ordering
    // flips, which is the paper-motivating shape.
    let mut free_at_zero = 0.0;
    let mut budget_at_zero = 0.0;
    let mut free_at_high = 0.0;
    let mut budget_at_high = 0.0;
    let high = 8i64;
    for seed in 0..12u64 {
        let (jobs, ids) = workload(60, seed);
        let run = |policy: Policy, delta: i64| {
            execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta }).value(&jobs)
        };
        free_at_zero += run(Policy::Edf, 0);
        budget_at_zero += run(Policy::EdfBudget(1), 0);
        free_at_high += run(Policy::Edf, high);
        budget_at_high += run(Policy::EdfBudget(1), high);
    }
    assert!(
        free_at_zero >= budget_at_zero - 1e-9,
        "at δ=0 free preemption should not lose: {free_at_zero} vs {budget_at_zero}"
    );
    assert!(
        budget_at_high > 0.0 && free_at_high > 0.0,
        "both policies should still schedule something"
    );
    let free_drop = free_at_zero - free_at_high;
    let budget_drop = budget_at_zero - budget_at_high;
    assert!(
        free_drop >= budget_drop - 1e-9,
        "free preemption should pay more for switch cost: drops {free_drop} vs {budget_drop}"
    );
}

#[test]
fn reduction_output_is_more_robust_than_edf() {
    // The k-bounded reduction has (weakly) fewer switches than the raw EDF
    // schedule it came from.
    for seed in 0..8u64 {
        let (jobs, ids) = workload(50, seed);
        let inf = pobp_sched::edf_schedule(&jobs, &ids, None).schedule;
        for k in 0..3u32 {
            let red = pobp_sched::reduce_to_k_bounded(&jobs, &inf, k).unwrap();
            assert!(
                switch_count(&red.schedule) <= switch_count(&inf).max(1),
                "seed={seed} k={k}"
            );
            // Robustness is well-defined (or infinite) on both.
            let _ = max_robust_delta(&red.schedule);
        }
    }
}

#[test]
fn nonpreemptive_policy_equals_budget_zero_value() {
    for seed in 0..8u64 {
        let (jobs, ids) = workload(40, seed);
        for delta in [0i64, 2] {
            let a = execute_online(
                &jobs,
                &ids,
                SimConfig { policy: Policy::NonPreemptive, switch_cost: delta },
            );
            let b = execute_online(
                &jobs,
                &ids,
                SimConfig { policy: Policy::EdfBudget(0), switch_cost: delta },
            );
            // Both never preempt and use the same dispatch order.
            assert_eq!(a.value(&jobs), b.value(&jobs), "seed={seed} δ={delta}");
        }
    }
}
