//! Property tests for the online-arrival executor (`pobp_sim::online`).
//!
//! The load-bearing invariants behind `docs/online.md`:
//!
//! * whatever an online algorithm completes is a Definition-2.1-feasible
//!   `k`-bounded schedule (irrevocability never smuggles in extra
//!   preemptions);
//! * no online algorithm ever beats the exact offline `OPT_k` oracle on
//!   instances small enough to solve exactly — the competitive ratio is
//!   always ≥ 1, which is what makes the `e13` tables meaningful;
//! * the executor is a pure function of `(jobs, subset, config)`.

use pobp_core::{Job, JobId, JobSet};
use pobp_sim::{run_online, OnlineAlg, OnlineConfig, ONLINE_ALGS};
use proptest::prelude::*;

/// Small instances that always fit the exact `opt_k_bounded_small` oracle
/// (`n ≤ 6`, short horizon, unit-ish lengths).
fn arb_tiny_jobs() -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..12, 1i64..5, 0i64..8, 1u32..10), 1..=5).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
            .collect()
    })
}

/// Larger instances for the structural invariants (no exact oracle).
fn arb_jobs(max_n: usize) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..60, 1i64..12, 0i64..25, 1u32..12), 1..=max_n).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
                .collect()
        },
    )
}

fn all_ids(jobs: &JobSet) -> Vec<JobId> {
    jobs.ids().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn completed_schedules_are_feasible_and_k_bounded(
        jobs in arb_jobs(18),
        k in 0u32..4,
        which in 0usize..3,
    ) {
        let alg = ONLINE_ALGS[which];
        let ids = all_ids(&jobs);
        let out = run_online(&jobs, &ids, OnlineConfig { alg, k });
        // The online contract: completed work is a real k-bounded schedule.
        out.schedule.verify(&jobs, Some(k)).unwrap();
        // Every job is accounted for exactly once.
        prop_assert_eq!(out.completed.len() + out.dropped.len(), jobs.len());
        // The reported value is exactly the completed jobs' value.
        let direct: f64 = out.completed.iter().map(|&j| jobs.get(j).unwrap().value).sum();
        prop_assert!((out.value(&jobs) - direct).abs() < 1e-9);
        prop_assert!((out.schedule.value(&jobs) - direct).abs() < 1e-9);
    }

    #[test]
    fn online_never_beats_the_exact_oracle(
        jobs in arb_tiny_jobs(),
        k in 0u32..3,
    ) {
        // Ratio sanity for e13: OPT_k dominates every online algorithm, so
        // the empirical competitive ratio oracle/ALG is ≥ 1 whenever the
        // oracle is exact.
        let ids = all_ids(&jobs);
        prop_assume!(pobp_sched::opt_k_bounded_fits(&jobs, &ids));
        let opt = pobp_sched::opt_k_bounded_small(&jobs, &ids, k);
        for &alg in &ONLINE_ALGS {
            let out = run_online(&jobs, &ids, OnlineConfig { alg, k });
            prop_assert!(
                out.value(&jobs) <= opt + 1e-9,
                "{alg} value {} beats exact OPT_{k} = {opt}",
                out.value(&jobs),
            );
        }
    }

    #[test]
    fn executor_is_deterministic(
        jobs in arb_jobs(15),
        k in 0u32..4,
        which in 0usize..3,
    ) {
        let alg = ONLINE_ALGS[which];
        let ids = all_ids(&jobs);
        let a = run_online(&jobs, &ids, OnlineConfig { alg, k });
        let b = run_online(&jobs, &ids, OnlineConfig { alg, k });
        prop_assert_eq!(&a.schedule, &b.schedule);
        prop_assert_eq!(&a.completed, &b.completed);
        prop_assert_eq!(&a.dropped, &b.dropped);
        prop_assert_eq!(a.preemptions, b.preemptions);
        prop_assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn greedy_never_preempts(jobs in arb_jobs(15), k in 0u32..4) {
        let ids = all_ids(&jobs);
        let out = run_online(&jobs, &ids, OnlineConfig { alg: OnlineAlg::Greedy, k });
        prop_assert_eq!(out.preemptions, 0);
        for j in out.schedule.scheduled_ids() {
            prop_assert_eq!(out.schedule.preemptions(j), 0);
        }
    }
}
