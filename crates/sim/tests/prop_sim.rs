//! Property tests for the overhead-aware executor.

use pobp_core::{Job, JobId, JobSet};
use pobp_sim::{execute_online, max_robust_delta, switch_points, Policy, SimConfig};
use proptest::prelude::*;

fn arb_jobs(max_n: usize) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..50, 1i64..10, 0i64..20, 1u32..10), 1..=max_n).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
                .collect()
        },
    )
}

fn all_ids(jobs: &JobSet) -> Vec<JobId> {
    jobs.ids().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traces_are_always_consistent(
        jobs in arb_jobs(20),
        delta in 0i64..6,
        pk in 0u32..5,
        which in 0usize..3,
    ) {
        let policy = match which {
            0 => Policy::Edf,
            1 => Policy::EdfBudget(pk),
            _ => Policy::NonPreemptive,
        };
        let ids = all_ids(&jobs);
        let out = execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta });
        out.trace.check().unwrap();
        // Completed jobs obey Definition 2.1 (and the budget, when set).
        let k_check = match policy {
            Policy::EdfBudget(k) => Some(k),
            Policy::NonPreemptive => Some(0),
            Policy::Edf => None,
        };
        out.schedule.verify(&jobs, k_check).unwrap();
        // Completed + dropped = input.
        prop_assert_eq!(out.schedule.len() + out.dropped.len(), jobs.len());
        // Overhead count never exceeds number of dispatches.
        prop_assert!(out.trace.switches() <= out.trace.work.len() + 1);
    }

    #[test]
    fn overhead_paid_equals_switch_count_times_delta(
        jobs in arb_jobs(15),
        delta in 1i64..5,
    ) {
        let ids = all_ids(&jobs);
        let out = execute_online(&jobs, &ids, SimConfig { policy: Policy::Edf, switch_cost: delta });
        prop_assert_eq!(out.trace.overhead_time(), out.trace.switches() as i64 * delta);
    }

    #[test]
    fn more_budget_never_fewer_preemptions_bound(
        jobs in arb_jobs(15),
        delta in 0i64..4,
    ) {
        // Each completed job under EdfBudget(k) respects its own budget.
        let ids = all_ids(&jobs);
        for k in 0..4u32 {
            let out = execute_online(
                &jobs,
                &ids,
                SimConfig { policy: Policy::EdfBudget(k), switch_cost: delta },
            );
            for j in out.schedule.scheduled_ids() {
                prop_assert!(out.schedule.preemptions(j) <= k as usize);
            }
        }
    }

    #[test]
    fn zero_cost_budget_dominates_as_k_grows_in_work_time(
        jobs in arb_jobs(12),
    ) {
        // At δ = 0, useful work time is monotone-ish in k? Not guaranteed
        // point-wise (different abort decisions) — but EDF (k = ∞) always
        // completes a superset-or-equal *work time* vs what it wastes:
        // assert the weaker invariant that work time ≤ total demand.
        let ids = all_ids(&jobs);
        let demand: i64 = jobs.iter().map(|(_, j)| j.length).sum();
        for k in [0u32, 2] {
            let out = execute_online(
                &jobs,
                &ids,
                SimConfig { policy: Policy::EdfBudget(k), switch_cost: 0 },
            );
            prop_assert!(out.trace.work_time() <= demand);
        }
    }

    #[test]
    fn switch_point_analysis_matches_trace(jobs in arb_jobs(15)) {
        // For a completed-everything run at δ = 0, offline switch_points on
        // the produced schedule counts at most the online dispatch count.
        let ids = all_ids(&jobs);
        let out = execute_online(&jobs, &ids, SimConfig { policy: Policy::Edf, switch_cost: 0 });
        let offline = switch_points(&out.schedule).len();
        // Online dispatches = work intervals where the job changed; the
        // offline count can only be lower or equal (aborted jobs' wasted
        // work created extra online switches).
        let mut online = 0usize;
        let mut sorted = out.trace.work.clone();
        sorted.sort_unstable_by_key(|&(_, iv)| iv.start);
        let mut prev: Option<JobId> = None;
        for &(j, _) in &sorted {
            if prev != Some(j) {
                online += 1;
            }
            prev = Some(j);
        }
        prop_assert!(offline <= online, "offline {offline} > online {online}");
        let _ = max_robust_delta(&out.schedule);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_invariants(jobs in arb_jobs(15), delta in 0i64..5, k in 0u32..4) {
        let ids = all_ids(&jobs);
        let inf = pobp_sched::edf_schedule(&jobs, &ids, None);
        let plan = pobp_sched::reduce_to_k_bounded(&jobs, &inf.schedule, k)
            .unwrap()
            .schedule;
        let out = pobp_sim::replay_with_overhead(&jobs, &plan, delta);
        out.trace.check().unwrap();
        // Completed jobs stay Definition 2.1 feasible (k-bounded too: the
        // replay only shifts segments right and never splits them further).
        out.schedule.verify(&jobs, Some(k)).unwrap();
        // Completed + dropped = the plan's jobs.
        prop_assert_eq!(out.schedule.len() + out.dropped.len(), plan.len());
        // δ = 0 replay is the identity.
        if delta == 0 {
            prop_assert_eq!(&out.schedule, &plan);
            prop_assert!(out.dropped.is_empty());
        }
        // Value can only go down with cost.
        prop_assert!(out.value(&jobs) <= plan.value(&jobs) + 1e-9);
    }

    #[test]
    fn choose_k_returns_best_of_sweep(jobs in arb_jobs(10), delta in 0i64..6) {
        let ids = all_ids(&jobs);
        let inf = pobp_sched::edf_schedule(&jobs, &ids, None);
        let choice = pobp_sim::choose_k(&jobs, &inf.schedule, delta, 3);
        // The choice is at least as good as every sweep member.
        for k in 0..=3u32 {
            let plan = pobp_sched::reduce_to_k_bounded(&jobs, &inf.schedule, k)
                .unwrap()
                .schedule;
            let v = pobp_sim::replay_with_overhead(&jobs, &plan, delta).value(&jobs);
            prop_assert!(choice.replayed_value >= v - 1e-9, "beaten by k={k}");
        }
        prop_assert!(choice.replayed_value <= choice.planned_value + 1e-9);
    }
}
