//! Offline overhead analysis of schedules: how much context-switch cost a
//! given (k-bounded) schedule can absorb without becoming infeasible.
//!
//! Complements the online executor: a schedule produced offline (e.g. by the
//! Theorem 4.2 reduction) is *δ-robust* if the machine can pay `δ` ticks of
//! switch overhead immediately **before** every context switch using only
//! idle time — i.e. the plan survives on a machine with that switch cost.
//! Fewer preemptions ⇒ fewer switch points ⇒ (weakly) more robustness,
//! which is precisely the trade the paper's `k` buys.

use pobp_core::{Interval, JobId, JobSet, MachineId, Schedule, Time};

/// A context-switch point of a schedule: machine `machine` switches to
/// `job` at `at` (the previous executed segment belonged to a different job
/// or there was none).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchPoint {
    /// Machine on which the switch happens.
    pub machine: MachineId,
    /// The job being loaded.
    pub job: JobId,
    /// Segment start time.
    pub at: Time,
    /// Idle ticks immediately before `at` (available to pay overhead).
    pub gap_before: Time,
}

/// Enumerates the context-switch points of a schedule, per machine, in time
/// order. The first segment on a machine is a switch (cold load) with an
/// unbounded gap, reported as `Time::MAX / 2` to keep arithmetic safe.
pub fn switch_points(schedule: &Schedule) -> Vec<SwitchPoint> {
    let mut out = Vec::new();
    for machine in schedule.machines() {
        let mut segs: Vec<(Interval, JobId)> = Vec::new();
        for (id, a) in schedule.iter() {
            if a.machine == machine {
                segs.extend(a.segs.iter().map(|s| (*s, id)));
            }
        }
        segs.sort_unstable_by_key(|(s, _)| (s.start, s.end));
        let mut prev: Option<(Interval, JobId)> = None;
        for &(seg, id) in &segs {
            match prev {
                None => out.push(SwitchPoint {
                    machine,
                    job: id,
                    at: seg.start,
                    gap_before: Time::MAX / 2,
                }),
                Some((pseg, pid)) => {
                    if pid != id {
                        out.push(SwitchPoint {
                            machine,
                            job: id,
                            at: seg.start,
                            gap_before: seg.start - pseg.end,
                        });
                    }
                }
            }
            prev = Some((seg, id));
        }
    }
    out
}

/// Number of context switches the schedule pays when executed
/// (cold loads included).
pub fn switch_count(schedule: &Schedule) -> usize {
    switch_points(schedule).len()
}

/// The largest switch cost `δ` the schedule absorbs in place: the minimum
/// `gap_before` over all warm switch points (cold loads can always be paid
/// by starting earlier, so they are excluded — callers wanting them
/// included can inspect [`switch_points`] directly).
///
/// Returns `None` when the schedule has no warm switches (then any `δ`
/// works).
pub fn max_robust_delta(schedule: &Schedule) -> Option<Time> {
    switch_points(schedule)
        .into_iter()
        .filter(|sp| sp.gap_before < Time::MAX / 2)
        .map(|sp| sp.gap_before)
        .min()
}

/// Whether the schedule remains executable with switch cost `delta`:
/// every warm switch has at least `delta` idle ticks before it.
pub fn is_robust(schedule: &Schedule, delta: Time) -> bool {
    max_robust_delta(schedule).is_none_or(|d| d >= delta)
}

/// The *net machine efficiency* of running `schedule` with switch cost
/// `delta`: useful work / (useful work + overhead paid). 1.0 for an empty
/// schedule.
pub fn efficiency(jobs: &JobSet, schedule: &Schedule, delta: Time) -> f64 {
    let work: Time = schedule
        .scheduled_ids()
        .map(|j| jobs.job(j).length)
        .sum();
    if work == 0 {
        return 1.0;
    }
    let overhead = switch_count(schedule) as Time * delta;
    work as f64 / (work + overhead) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::{Job, SegmentSet};

    fn seg_set(pairs: &[(Time, Time)]) -> SegmentSet {
        SegmentSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    /// j0: [0,2) and [7,9); j1: [3,5). Gaps: j1 starts after 1 idle tick,
    /// j0 resumes after 2 idle ticks.
    fn nested() -> Schedule {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 2), (7, 9)]));
        s.assign_single(JobId(1), seg_set(&[(3, 5)]));
        s
    }

    #[test]
    fn switch_points_enumerated_in_order() {
        let sp = switch_points(&nested());
        assert_eq!(sp.len(), 3);
        assert_eq!(sp[0].job, JobId(0));
        assert!(sp[0].gap_before >= Time::MAX / 2); // cold load
        assert_eq!(sp[1], SwitchPoint { machine: 0, job: JobId(1), at: 3, gap_before: 1 });
        assert_eq!(sp[2], SwitchPoint { machine: 0, job: JobId(0), at: 7, gap_before: 2 });
    }

    #[test]
    fn robustness_is_min_warm_gap() {
        let s = nested();
        assert_eq!(max_robust_delta(&s), Some(1));
        assert!(is_robust(&s, 0));
        assert!(is_robust(&s, 1));
        assert!(!is_robust(&s, 2));
    }

    #[test]
    fn back_to_back_switch_has_zero_robustness() {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 3)]));
        s.assign_single(JobId(1), seg_set(&[(3, 5)]));
        assert_eq!(max_robust_delta(&s), Some(0));
        assert!(is_robust(&s, 0));
        assert!(!is_robust(&s, 1));
    }

    #[test]
    fn contiguous_single_job_has_no_warm_switches() {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 5)]));
        assert_eq!(max_robust_delta(&s), None);
        assert!(is_robust(&s, 1_000_000));
        assert_eq!(switch_count(&s), 1); // the cold load
    }

    #[test]
    fn adjacent_segments_of_same_job_are_not_switches() {
        let mut s = Schedule::new();
        // Same job on both sides of an idle gap: resuming the loaded job is
        // free in our cost model → not a switch.
        s.assign_single(JobId(0), seg_set(&[(0, 2), (5, 7)]));
        assert_eq!(switch_count(&s), 1);
        assert_eq!(max_robust_delta(&s), None);
    }

    #[test]
    fn multi_machine_switches_are_independent() {
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, seg_set(&[(0, 2)]));
        s.assign(JobId(1), 0, seg_set(&[(4, 6)]));
        s.assign(JobId(2), 1, seg_set(&[(0, 3)]));
        let sp = switch_points(&s);
        assert_eq!(sp.len(), 3);
        assert_eq!(max_robust_delta(&s), Some(2));
    }

    #[test]
    fn efficiency_accounts_overhead() {
        let jobs: JobSet = vec![Job::new(0, 10, 2, 1.0), Job::new(0, 10, 2, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 2)]));
        s.assign_single(JobId(1), seg_set(&[(4, 6)]));
        // 4 work ticks, 2 switches: at δ = 1 → 4 / 6.
        assert!((efficiency(&jobs, &s, 1) - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(efficiency(&jobs, &s, 0), 1.0);
        assert_eq!(efficiency(&jobs, &Schedule::new(), 5), 1.0);
    }
}
