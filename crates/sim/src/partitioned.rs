//! Partitioned multi-machine online execution (non-migrative, matching the
//! paper's machine model): jobs are assigned to machines up front by a
//! load-balancing heuristic, then each machine runs the overhead-aware
//! online executor independently.

use crate::machine::{execute_online, SimConfig, SimOutcome};
use pobp_core::{JobId, JobSet, Schedule, Time};

/// How jobs are split across machines before execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionRule {
    /// In release order, each job goes to the machine with the least total
    /// assigned work — the classic list-scheduling balance.
    LeastLoaded,
    /// Round-robin in release order (baseline).
    RoundRobin,
}

/// Result of a partitioned run.
#[derive(Clone, Debug)]
pub struct PartitionedOutcome {
    /// Per-machine outcomes (index = machine id).
    pub per_machine: Vec<SimOutcome>,
    /// The merged schedule with machine ids assigned.
    pub schedule: Schedule,
    /// All dropped jobs.
    pub dropped: Vec<JobId>,
}

impl PartitionedOutcome {
    /// Total completed value.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.schedule.value(jobs)
    }

    /// Total context switches paid across machines.
    pub fn switches(&self) -> usize {
        self.per_machine.iter().map(|o| o.trace.switches()).sum()
    }
}

/// Partitions `ids` over `machines` machines by `rule`, then executes each
/// partition with `config` on its own machine.
pub fn execute_partitioned(
    jobs: &JobSet,
    ids: &[JobId],
    machines: usize,
    rule: PartitionRule,
    config: SimConfig,
) -> PartitionedOutcome {
    assert!(machines >= 1, "need at least one machine");
    // Release-ordered assignment.
    let mut order = ids.to_vec();
    order.sort_by_key(|&j| (jobs.job(j).release, j));
    let mut parts: Vec<Vec<JobId>> = vec![Vec::new(); machines];
    let mut load: Vec<Time> = vec![0; machines];
    for (i, &j) in order.iter().enumerate() {
        let m = match rule {
            PartitionRule::RoundRobin => i % machines,
            PartitionRule::LeastLoaded => {
                let (m, _) = load
                    .iter()
                    .enumerate()
                    .min_by_key(|&(mi, &l)| (l, mi))
                    .expect("machines ≥ 1");
                m
            }
        };
        parts[m].push(j);
        load[m] += jobs.job(j).length;
    }
    // Execute each machine and merge.
    let mut per_machine = Vec::with_capacity(machines);
    let mut schedule = Schedule::new();
    let mut dropped = Vec::new();
    for (m, part) in parts.iter().enumerate() {
        let out = execute_online(jobs, part, config);
        for (id, a) in out.schedule.iter() {
            debug_assert_eq!(a.machine, 0);
            schedule.assign(id, m, a.segs.clone());
        }
        dropped.extend(out.dropped.iter().copied());
        per_machine.push(out);
    }
    dropped.sort_unstable();
    PartitionedOutcome { per_machine, schedule, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Policy;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    fn cfg(delta: Time) -> SimConfig {
        SimConfig { policy: Policy::EdfBudget(1), switch_cost: delta }
    }

    #[test]
    fn two_machines_complete_a_conflicting_pair() {
        let jobs: JobSet = vec![Job::new(0, 4, 4, 1.0), Job::new(0, 4, 4, 1.0)]
            .into_iter()
            .collect();
        let one = execute_partitioned(&jobs, &ids_of(2), 1, PartitionRule::LeastLoaded, cfg(0));
        assert_eq!(one.schedule.len(), 1);
        let two = execute_partitioned(&jobs, &ids_of(2), 2, PartitionRule::LeastLoaded, cfg(0));
        assert_eq!(two.schedule.len(), 2);
        two.schedule.verify(&jobs, Some(1)).unwrap();
        assert_eq!(two.schedule.machines(), vec![0, 1]);
    }

    #[test]
    fn least_loaded_balances_work() {
        // Six equal jobs over three machines → two each.
        let jobs: JobSet = (0..6).map(|i| Job::new(i, i + 20, 5, 1.0)).collect();
        let out = execute_partitioned(&jobs, &ids_of(6), 3, PartitionRule::LeastLoaded, cfg(0));
        out.schedule.verify(&jobs, Some(1)).unwrap();
        for m in 0..3 {
            let busy = out.schedule.busy(m).total_len();
            assert_eq!(busy, 10, "machine {m}");
        }
    }

    #[test]
    fn round_robin_is_a_valid_baseline() {
        let jobs: JobSet = (0..8).map(|i| Job::new(2 * i, 2 * i + 30, 6, 1.0)).collect();
        let out = execute_partitioned(&jobs, &ids_of(8), 2, PartitionRule::RoundRobin, cfg(1));
        out.schedule.verify(&jobs, Some(1)).unwrap();
        assert_eq!(out.schedule.len() + out.dropped.len(), 8);
    }

    #[test]
    fn value_monotone_in_machines() {
        let jobs: JobSet = (0..12).map(|i| Job::new(i % 4, i % 4 + 12, 6, 1.0 + i as f64)).collect();
        let mut prev = -1.0;
        for m in 1..=4 {
            let out =
                execute_partitioned(&jobs, &ids_of(12), m, PartitionRule::LeastLoaded, cfg(0));
            out.schedule.verify(&jobs, Some(1)).unwrap();
            let v = out.value(&jobs);
            assert!(v >= prev - 1e-9, "m={m}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn switches_are_summed_across_machines() {
        let jobs: JobSet = (0..4).map(|i| Job::new(10 * i, 10 * i + 8, 4, 1.0)).collect();
        let out = execute_partitioned(&jobs, &ids_of(4), 2, PartitionRule::RoundRobin, cfg(1));
        assert_eq!(
            out.switches(),
            out.per_machine.iter().map(|o| o.trace.switches()).sum::<usize>()
        );
        assert!(out.switches() >= out.schedule.len());
    }
}
