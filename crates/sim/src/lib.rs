//! # pobp-sim — execution simulation with context-switch costs
//!
//! The motivation of *The Price of Bounded Preemption* (§1.2) is that
//! preemption is not free: every context switch costs machine time. This
//! crate makes that price measurable:
//!
//! * [`execute_online`] — an online single-machine executor where loading a
//!   job costs [`SimConfig::switch_cost`] ticks, under three policies:
//!   free-preemption EDF, budgeted EDF ([`Policy::EdfBudget`] — at most `k`
//!   preemptions per job, enforced online), and non-preemptive EDF;
//! * [`ExecTrace`] — the resulting event trace (starts, preemptions,
//!   resumes, aborts, overhead) with wasted-work accounting;
//! * [`switch_points`] / [`max_robust_delta`] / [`efficiency`] — offline
//!   analysis of how much switch cost an existing schedule (e.g. the output
//!   of the Theorem 4.2 reduction) absorbs;
//! * [`replay_with_overhead`] / [`choose_k`] — execute an offline plan on a
//!   δ-machine and pick the preemption budget that maximizes surviving
//!   value — the paper's theory as a sizing tool;
//! * [`execute_partitioned`] — non-migrative multi-machine online execution
//!   (least-loaded or round-robin partitions);
//! * [`online`] ([`run_online`]) — the **online arrival mode**: jobs
//!   revealed at release, irrevocable commitments, a per-job preemption
//!   budget enforced online, and the DJN/greedy/EDF-budget algorithm
//!   catalogue measured against the offline `OPT_k` oracle (`pobp online`,
//!   experiment E13, `docs/online.md`).
//!
//! The `context_switch_cost` example and experiment E12 use this crate to
//! show the crossover the paper's introduction predicts: as the switch cost
//! grows, bounding preemptions beats free preemption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
pub mod online;
mod overhead;
mod partitioned;
mod replay;
mod trace;

pub use machine::{execute_online, Policy, SimConfig, SimOutcome};
pub use online::{djn_ratio_bound, run_online, OnlineAlg, OnlineConfig, OnlineOutcome, ONLINE_ALGS};
pub use partitioned::{execute_partitioned, PartitionRule, PartitionedOutcome};
pub use replay::{choose_k, replay_with_overhead, PlanChoice};
pub use overhead::{
    efficiency, is_robust, max_robust_delta, switch_count, switch_points, SwitchPoint,
};
pub use trace::{ExecEvent, ExecTrace};
