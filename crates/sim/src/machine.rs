//! The online, overhead-aware machine executor.
//!
//! This is the paper's *motivation* (§1.2) made executable: "preemption
//! comes with a certain price tag (e.g., the sequence of operations required
//! for a context switch)". The executor simulates a single machine running
//! an online policy where **loading a job that is not currently loaded
//! costs `switch_cost` ticks of machine time**. Resuming the same job after
//! an idle period is free (the context is still loaded); every change of the
//! loaded job pays.
//!
//! Three policies bracket the paper's setting:
//!
//! * [`Policy::Edf`] — preempt freely (the `k = ∞` competitor);
//! * [`Policy::EdfBudget`]`(k)` — EDF, but a running job is only preempted
//!   while it still has segment budget (≤ `k` preemptions per job, enforced
//!   online);
//! * [`Policy::NonPreemptive`] — run to completion once started (`k = 0`).
//!
//! Jobs that can no longer meet their deadline (accounting for the switch
//! cost they would still have to pay) are aborted; their partial work stays
//! in the trace as wasted machine time, mirroring a real system.

use crate::trace::{ExecEvent, ExecTrace};
use pobp_core::{obs_count, Interval, JobId, JobSet, Schedule, SegmentSet, Time};
use std::collections::BTreeSet;

/// The online scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Preempt whenever a strictly higher-priority job is ready.
    Edf,
    /// EDF, but never preempt a job that has exhausted its `k` preemptions.
    EdfBudget(u32),
    /// Never preempt (`k = 0` online).
    NonPreemptive,
}

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Machine ticks consumed whenever a job is (re)loaded onto the machine
    /// while a different job (or nothing) was loaded.
    pub switch_cost: Time,
}

/// What an execution produced.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The full trace (including wasted work of aborted jobs and overhead).
    pub trace: ExecTrace,
    /// The feasible schedule of the *completed* jobs.
    pub schedule: Schedule,
    /// Jobs that were aborted or never ran to completion.
    pub dropped: Vec<JobId>,
}

impl SimOutcome {
    /// Completed value.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.schedule.value(jobs)
    }
}

/// Runs the online executor for `subset` on one machine.
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sim::{execute_online, Policy, SimConfig};
///
/// let jobs: JobSet = vec![
///     Job::new(0, 40, 10, 1.0),
///     Job::new(2, 9, 4, 1.0),   // preempts the long job under EDF
/// ].into_iter().collect();
/// let ids = [JobId(0), JobId(1)];
///
/// // Each of the three loads (long, short, long again) costs 1 tick.
/// let out = execute_online(&jobs, &ids, SimConfig { policy: Policy::Edf, switch_cost: 1 });
/// assert_eq!(out.schedule.len(), 2);
/// assert_eq!(out.trace.switches(), 3);
/// assert_eq!(out.trace.overhead_time(), 3);
/// ```
pub fn execute_online(jobs: &JobSet, subset: &[JobId], config: SimConfig) -> SimOutcome {
    assert!(config.switch_cost >= 0, "negative switch cost");
    obs_count!("sim.machine.runs");
    let delta = config.switch_cost;
    let mut trace = ExecTrace::default();
    let mut schedule = Schedule::new();
    let mut dropped: Vec<JobId> = Vec::new();
    if subset.is_empty() {
        return SimOutcome { trace, schedule, dropped };
    }

    let mut releases: Vec<(Time, JobId)> =
        subset.iter().map(|&j| (jobs.job(j).release, j)).collect();
    releases.sort_unstable();
    let mut remaining: std::collections::HashMap<JobId, Time> =
        subset.iter().map(|&j| (j, jobs.job(j).length)).collect();
    let mut pieces: std::collections::HashMap<JobId, Vec<Interval>> = Default::default();
    let mut started: std::collections::HashSet<JobId> = Default::default();
    // Segments begun so far, for the budget policy.
    let mut segments: std::collections::HashMap<JobId, u32> = Default::default();

    let mut ready: BTreeSet<(Time, JobId)> = BTreeSet::new();
    let mut rel_idx = 0usize;
    let mut t = releases[0].0;
    // The job currently loaded on the machine (survives idle periods).
    let mut loaded: Option<JobId> = None;
    // The job actually running (None while idle).
    let mut running: Option<JobId> = None;

    loop {
        while rel_idx < releases.len() && releases[rel_idx].0 <= t {
            let (_, j) = releases[rel_idx];
            ready.insert((jobs.job(j).deadline, j));
            rel_idx += 1;
        }
        if ready.is_empty() {
            running = None;
            match releases.get(rel_idx) {
                Some(&(r, _)) => {
                    obs_count!("sim.machine.idle_ticks", r - t);
                    t = r;
                    continue;
                }
                None => break,
            }
        }
        // Abort jobs that cannot finish any more (switch cost included for
        // jobs not currently loaded).
        let hopeless: Vec<(Time, JobId)> = ready
            .iter()
            .filter(|&&(d, j)| {
                let cost = if loaded == Some(j) { 0 } else { delta };
                t + cost + remaining[&j] > d
            })
            .copied()
            .collect();
        let mut any_abort = false;
        for key in hopeless {
            obs_count!("sim.machine.aborts");
            ready.remove(&key);
            trace.push(t, ExecEvent::Abort(key.1));
            dropped.push(key.1);
            if running == Some(key.1) {
                running = None;
            }
            any_abort = true;
        }
        if any_abort {
            continue;
        }

        // Pick the next job per policy.
        let edf_best = ready.iter().next().map(|&(_, j)| j).expect("non-empty");
        let chosen = match (config.policy, running) {
            (Policy::Edf, _) => edf_best,
            (Policy::NonPreemptive, Some(cur)) => cur,
            (Policy::NonPreemptive, None) => edf_best,
            (Policy::EdfBudget(_), None) => edf_best,
            (Policy::EdfBudget(k), Some(cur)) => {
                // Preempting `cur` forces it to start segment
                // `segments[cur] + 1` later; allowed only if that stays
                // within k + 1 segments total.
                if edf_best != cur && segments.get(&cur).copied().unwrap_or(0) > k {
                    cur
                } else {
                    edf_best
                }
            }
        };

        // Context switch if the machine has a different (or no) job loaded.
        if loaded != Some(chosen) {
            obs_count!("sim.machine.context_switches");
            if let Some(prev) = running {
                if prev != chosen {
                    trace.push(t, ExecEvent::Preempt { out: prev, by: chosen });
                }
            }
            if delta > 0 {
                obs_count!("sim.machine.overhead_ticks", delta);
                trace.push(t, ExecEvent::OverheadBegin);
                trace.overhead.push(Interval::new(t, t + delta));
                t += delta;
                trace.push(t, ExecEvent::OverheadEnd);
                // Admit anything that arrived during the switch; the
                // decision is committed (real switches are not revoked).
                while rel_idx < releases.len() && releases[rel_idx].0 <= t {
                    let (_, j) = releases[rel_idx];
                    ready.insert((jobs.job(j).deadline, j));
                    rel_idx += 1;
                }
            }
            loaded = Some(chosen);
            if started.insert(chosen) {
                trace.push(t, ExecEvent::Start(chosen));
            } else {
                trace.push(t, ExecEvent::Resume(chosen));
            }
            *segments.entry(chosen).or_insert(0) += 1;
        } else if running != Some(chosen) && started.contains(&chosen) {
            // Same job reloaded after idle: free, but it is a new segment
            // only if its work is non-contiguous — piece merging below
            // handles that; budget-wise it costs nothing (context kept).
            trace.push(t, ExecEvent::Resume(chosen));
        } else if started.insert(chosen) {
            trace.push(t, ExecEvent::Start(chosen));
            *segments.entry(chosen).or_insert(0) += 1;
        }
        running = Some(chosen);

        // Run until completion or the next release.
        let rem = remaining[&chosen];
        let mut until = t + rem;
        if let Some(&(r, _)) = releases.get(rel_idx) {
            if r > t {
                until = until.min(r);
            }
        }
        debug_assert!(until > t, "no progress at t={t}");
        obs_count!("sim.machine.work_segments");
        trace.work.push((chosen, Interval::new(t, until)));
        pieces.entry(chosen).or_default().push(Interval::new(t, until));
        let new_rem = rem - (until - t);
        *remaining.get_mut(&chosen).unwrap() = new_rem;
        t = until;
        if new_rem == 0 {
            obs_count!("sim.machine.completions");
            ready.remove(&(jobs.job(chosen).deadline, chosen));
            trace.push(t, ExecEvent::Complete(chosen));
            let segs = SegmentSet::from_intervals(pieces.remove(&chosen).unwrap());
            schedule.assign_single(chosen, segs);
            running = None;
        }
    }
    // Anything left over never completed.
    for &(_, j) in &ready {
        if remaining[&j] > 0 {
            dropped.push(j);
        }
    }
    while rel_idx < releases.len() {
        dropped.push(releases[rel_idx].1);
        rel_idx += 1;
    }
    dropped.sort_unstable();
    dropped.dedup();
    debug_assert!(trace.check().is_ok());
    SimOutcome { trace, schedule, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    fn cfg(policy: Policy, delta: Time) -> SimConfig {
        SimConfig { policy, switch_cost: delta }
    }

    #[test]
    fn zero_cost_edf_matches_offline_edf() {
        let jobs: JobSet = vec![
            Job::new(0, 30, 10, 1.0),
            Job::new(2, 9, 4, 1.0),
            Job::new(3, 8, 2, 1.0),
        ]
        .into_iter()
        .collect();
        let out = execute_online(&jobs, &ids_of(3), cfg(Policy::Edf, 0));
        out.schedule.verify(&jobs, None).unwrap();
        let off = pobp_sched_equiv(&jobs);
        assert_eq!(out.schedule.len(), 3);
        assert_eq!(out.value(&jobs), off);
        assert_eq!(out.trace.overhead_time(), 0);
    }

    // Tiny local EDF-value oracle to avoid a dev-dependency cycle in unit
    // tests (the integration tests cross-check against pobp-sched proper).
    fn pobp_sched_equiv(jobs: &JobSet) -> f64 {
        jobs.total_value()
    }

    #[test]
    fn switch_cost_is_paid_per_preemption() {
        // One long job preempted once by a tight one: 3 loads (long, tight,
        // long again) at δ = 1 each.
        let jobs: JobSet = vec![
            Job::new(0, 40, 10, 1.0),
            Job::new(5, 12, 4, 1.0),
        ]
        .into_iter()
        .collect();
        let out = execute_online(&jobs, &ids_of(2), cfg(Policy::Edf, 1));
        assert_eq!(out.schedule.len(), 2);
        assert_eq!(out.trace.switches(), 3);
        assert_eq!(out.trace.overhead_time(), 3);
        out.trace.check().unwrap();
        out.schedule.verify(&jobs, None).unwrap();
    }

    #[test]
    fn overhead_can_cause_deadline_misses() {
        // Back-to-back tight jobs: feasible at δ = 0, not at δ = 2.
        let jobs: JobSet = vec![Job::new(0, 4, 4, 1.0), Job::new(4, 8, 4, 2.0)]
            .into_iter()
            .collect();
        let ok = execute_online(&jobs, &ids_of(2), cfg(Policy::Edf, 0));
        assert_eq!(ok.schedule.len(), 2);
        let tight = execute_online(&jobs, &ids_of(2), cfg(Policy::Edf, 2));
        // First load already costs 2 → job 0 cannot finish by 4; job 1 can
        // still make it (abort of j0 happens before its switch is paid).
        assert!(tight.schedule.len() < 2);
        assert!(!tight.dropped.is_empty());
        tight.trace.check().unwrap();
    }

    #[test]
    fn non_preemptive_never_preempts() {
        let jobs: JobSet = vec![
            Job::new(0, 100, 20, 1.0),
            Job::new(1, 30, 5, 5.0), // would preempt under EDF
        ]
        .into_iter()
        .collect();
        let out = execute_online(&jobs, &ids_of(2), cfg(Policy::NonPreemptive, 0));
        out.schedule.verify(&jobs, Some(0)).unwrap();
        // Job 0 runs [0,20) en bloc; job 1 misses (deadline 30 < 25? no:
        // 20 + 5 = 25 ≤ 30 — actually completes after).
        assert_eq!(out.schedule.len(), 2);
        assert_eq!(out.schedule.preemptions(JobId(0)), 0);
        for &(_, e) in &out.trace.events {
            assert!(!matches!(e, ExecEvent::Preempt { .. }));
        }
    }

    #[test]
    fn budget_policy_enforces_k() {
        // A long job with many tight arrivals: under EdfBudget(1) it is
        // preempted at most once.
        let jobs: JobSet = vec![
            Job::new(0, 100, 30, 1.0),
            Job::new(2, 10, 3, 1.0),
            Job::new(12, 20, 3, 1.0),
            Job::new(22, 30, 3, 1.0),
        ]
        .into_iter()
        .collect();
        for k in 0..3u32 {
            let out = execute_online(&jobs, &ids_of(4), cfg(Policy::EdfBudget(k), 0));
            out.schedule.verify(&jobs, Some(k)).unwrap_or_else(|e| {
                panic!("k={k}: {e}");
            });
        }
        // Unbounded EDF preempts the long job three times here.
        let edf = execute_online(&jobs, &ids_of(4), cfg(Policy::Edf, 0));
        assert_eq!(edf.schedule.preemptions(JobId(0)), 3);
    }

    #[test]
    fn budget_zero_equals_nonpreemptive_preemption_counts() {
        let jobs: JobSet = vec![
            Job::new(0, 60, 20, 1.0),
            Job::new(3, 30, 5, 1.0),
        ]
        .into_iter()
        .collect();
        let b = execute_online(&jobs, &ids_of(2), cfg(Policy::EdfBudget(0), 0));
        b.schedule.verify(&jobs, Some(0)).unwrap();
    }

    #[test]
    fn idle_then_same_job_costs_nothing() {
        // Job released, completed; long idle; same machine never reloads.
        let jobs: JobSet = vec![Job::new(0, 10, 3, 1.0), Job::new(50, 60, 3, 1.0)]
            .into_iter()
            .collect();
        let out = execute_online(&jobs, &ids_of(2), cfg(Policy::Edf, 2));
        // Two loads total (two different jobs).
        assert_eq!(out.trace.switches(), 2);
        assert_eq!(out.schedule.len(), 2);
    }

    #[test]
    fn value_decreases_with_switch_cost() {
        let jobs: JobSet = (0..8)
            .map(|i| Job::new(3 * i, 3 * i + 5, 3, 1.0))
            .collect();
        let mut prev = f64::INFINITY;
        for delta in [0i64, 1, 2, 4] {
            let out = execute_online(&jobs, &ids_of(8), cfg(Policy::Edf, delta));
            let v = out.value(&jobs);
            assert!(v <= prev + 1e-9, "value should not increase with δ");
            prev = v;
        }
    }

    #[test]
    fn empty_input() {
        let jobs = JobSet::new();
        let out = execute_online(&jobs, &[], cfg(Policy::Edf, 1));
        assert!(out.schedule.is_empty());
        assert!(out.dropped.is_empty());
    }
}
