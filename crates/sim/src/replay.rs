//! Replaying an *offline* schedule on a machine with context-switch costs,
//! and choosing the preemption budget `k` that maximizes replayed value —
//! the practical decision the paper's theory informs.
//!
//! Semantics of [`replay_with_overhead`]: the machine follows the offline
//! plan's segments in time order. Loading a job that is not currently
//! loaded costs `δ` ticks *before* the segment's work, paid from the
//! preceding idle gap when possible; any shortfall delays the segment (and
//! everything after it on the machine). A job whose delayed segment would
//! end after its deadline is dropped on the spot, together with its
//! not-yet-executed segments (its already-executed work is wasted machine
//! time, as in a real system). Dropping frees the dropped segments' slots,
//! which pulls later work earlier again.
//!
//! [`choose_k`] then answers: *given my switch cost, how many preemptions
//! per job should I allow?* It sweeps `k`, builds the Theorem 4.2 reduction
//! for each, replays it under `δ`, and returns the best plan. As `δ` grows
//! the winning `k` falls — experiment E12's crossover, packaged as an API.

use crate::machine::SimOutcome;
use crate::trace::{ExecEvent, ExecTrace};
use pobp_core::{Interval, JobId, JobSet, Schedule, SegmentSet, Time};

/// Replays `plan` (a feasible offline schedule, machine 0 only) on a
/// machine with switch cost `delta`.
///
/// Returns the executed outcome: completed jobs keep Definition 2.1
/// feasibility; dropped jobs are listed with their wasted work visible in
/// the trace.
///
/// # Panics
/// Panics if `plan` uses machines other than 0 (replay one machine at a
/// time) or is infeasible for `jobs`.
pub fn replay_with_overhead(jobs: &JobSet, plan: &Schedule, delta: Time) -> SimOutcome {
    assert!(delta >= 0, "negative switch cost");
    plan.verify(jobs, None).expect("replay needs a feasible plan");
    assert!(
        plan.machines().iter().all(|&m| m == 0),
        "replay_with_overhead handles one machine (0) at a time"
    );
    // The plan as a time-ordered segment list.
    let mut segs: Vec<(Interval, JobId)> = Vec::new();
    for (id, a) in plan.iter() {
        segs.extend(a.segs.iter().map(|s| (*s, id)));
    }
    segs.sort_unstable_by_key(|(s, _)| (s.start, s.end));

    let mut trace = ExecTrace::default();
    let mut schedule = Schedule::new();
    let mut dropped: Vec<JobId> = Vec::new();
    let mut dropped_set: std::collections::HashSet<JobId> = Default::default();
    let mut pieces: std::collections::HashMap<JobId, Vec<Interval>> = Default::default();
    let mut done_work: std::collections::HashMap<JobId, Time> = Default::default();
    let mut started: std::collections::HashSet<JobId> = Default::default();
    let mut loaded: Option<JobId> = None;
    let mut t = Time::MIN;

    for &(seg, id) in &segs {
        if dropped_set.contains(&id) {
            continue; // remaining segments of a dropped job are skipped
        }
        let job = jobs.job(id);
        // Earliest the machine is free, but never before the plan said (the
        // plan's start respects the release time; we only ever shift right).
        let mut start = t.max(seg.start);
        if loaded != Some(id) && delta > 0 {
            // Pay the switch; it can start as soon as the machine is free,
            // but the work cannot start before the planned start.
            let switch_begin = t.max(seg.start - delta);
            let switch_end = switch_begin + delta;
            trace.push(switch_begin, ExecEvent::OverheadBegin);
            trace.overhead.push(Interval::new(switch_begin, switch_end));
            trace.push(switch_end, ExecEvent::OverheadEnd);
            start = start.max(switch_end);
        }
        let end = start + seg.len();
        if end > job.deadline {
            // Too late: drop the job (and its future segments).
            trace.push(start, ExecEvent::Abort(id));
            dropped_set.insert(id);
            dropped.push(id);
            // Note: its past work (if any) stays in the trace as waste.
            // The machine did NOT run this segment; also un-pay the switch?
            // A real dispatcher knows the deadline before switching, so we
            // refund the overhead interval we just tentatively recorded.
            if loaded != Some(id) && delta > 0 {
                trace.overhead.pop();
                trace.events.pop();
                trace.events.pop();
                trace.events.pop(); // Abort + OverheadEnd + OverheadBegin
                trace.push(t, ExecEvent::Abort(id));
            }
            continue;
        }
        if loaded != Some(id) {
            loaded = Some(id);
            if started.insert(id) {
                trace.push(start, ExecEvent::Start(id));
            } else {
                trace.push(start, ExecEvent::Resume(id));
            }
        }
        trace.work.push((id, Interval::new(start, end)));
        pieces.entry(id).or_default().push(Interval::new(start, end));
        *done_work.entry(id).or_insert(0) += seg.len();
        t = end;
        if done_work[&id] == job.length {
            trace.push(t, ExecEvent::Complete(id));
            schedule.assign_single(id, SegmentSet::from_intervals(pieces.remove(&id).unwrap()));
        }
    }
    // Jobs with executed-but-incomplete work were never formally dropped
    // above only if their *last* segments were skipped... collect them.
    for (id, _) in plan.iter() {
        if schedule.segments(id).is_none() && !dropped_set.contains(&id) {
            dropped.push(id);
        }
    }
    dropped.sort_unstable();
    dropped.dedup();
    debug_assert!(trace.check().is_ok(), "{:?}", trace.check());
    SimOutcome { trace, schedule, dropped }
}

/// A plan choice produced by [`choose_k`].
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// The chosen preemption budget.
    pub k: u32,
    /// The offline plan (Theorem 4.2 reduction at `k`).
    pub plan: Schedule,
    /// Replayed value under the given switch cost.
    pub replayed_value: f64,
    /// Value of the plan if switches were free (for comparison).
    pub planned_value: f64,
}

/// Sweeps `k ∈ 0..=k_max`, builds the Theorem 4.2 reduction of
/// `schedule_inf` at each `k`, replays it at switch cost `delta`, and
/// returns the best-performing plan.
///
/// `schedule_inf` must be a feasible `∞`-preemptive single-machine
/// schedule (e.g. from `pobp_sched::greedy_unbounded`).
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sim::choose_k;
///
/// let jobs: JobSet = vec![
///     Job::new(0, 26, 12, 6.0),
///     Job::new(2, 12, 4, 3.0),
/// ].into_iter().collect();
/// let ids = [JobId(0), JobId(1)];
/// let inf = pobp_sched::edf_schedule(&jobs, &ids, None);
/// // Free switches: the largest budget wins (keeps everything).
/// let choice = choose_k(&jobs, &inf.schedule, 0, 2);
/// assert_eq!(choice.replayed_value, jobs.total_value());
/// ```
pub fn choose_k(
    jobs: &JobSet,
    schedule_inf: &Schedule,
    delta: Time,
    k_max: u32,
) -> PlanChoice {
    // The laminarize → schedule-forest prefix of the reduction is
    // k-independent: build it once and re-run only the k-BAS DP +
    // reconstruction per candidate budget.
    let plan = pobp_sched::ReductionPlan::new(jobs, schedule_inf)
        .expect("feasible input schedule");
    let mut ws = pobp_sched::SolveWorkspace::new();
    let mut best: Option<PlanChoice> = None;
    for k in 0..=k_max {
        let red = plan.solve_ws(jobs, k, pobp_sched::KbasSolver::Tm, &mut ws);
        let replay = replay_with_overhead(jobs, &red.schedule, delta);
        let choice = PlanChoice {
            k,
            planned_value: red.schedule.value(jobs),
            replayed_value: replay.value(jobs),
            plan: red.schedule,
        };
        let better = match &best {
            None => true,
            Some(b) => choice.replayed_value > b.replayed_value,
        };
        if better {
            best = Some(choice);
        }
    }
    best.expect("k_max ≥ 0 yields at least one plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn seg_set(pairs: &[(Time, Time)]) -> SegmentSet {
        SegmentSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn zero_cost_replay_is_identity() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(2, 8, 3, 1.0)]
            .into_iter()
            .collect();
        let mut plan = Schedule::new();
        plan.assign_single(JobId(0), seg_set(&[(0, 2), (5, 7)]));
        plan.assign_single(JobId(1), seg_set(&[(2, 5)]));
        let out = replay_with_overhead(&jobs, &plan, 0);
        assert!(out.dropped.is_empty());
        assert_eq!(out.schedule, plan);
        assert_eq!(out.trace.overhead_time(), 0);
    }

    #[test]
    fn overhead_absorbed_by_idle_gaps() {
        // Gaps of 2 before each switch: δ = 2 fits without delaying work.
        let jobs: JobSet = vec![Job::new(0, 20, 3, 1.0), Job::new(0, 20, 3, 1.0)]
            .into_iter()
            .collect();
        let mut plan = Schedule::new();
        plan.assign_single(JobId(0), seg_set(&[(2, 5)]));
        plan.assign_single(JobId(1), seg_set(&[(7, 10)]));
        let out = replay_with_overhead(&jobs, &plan, 2);
        assert!(out.dropped.is_empty());
        assert_eq!(out.schedule.segments(JobId(0)).unwrap(), &seg_set(&[(2, 5)]));
        assert_eq!(out.schedule.segments(JobId(1)).unwrap(), &seg_set(&[(7, 10)]));
        assert_eq!(out.trace.switches(), 2);
    }

    #[test]
    fn overhead_delays_back_to_back_switches() {
        let jobs: JobSet = vec![Job::new(0, 20, 3, 1.0), Job::new(0, 20, 3, 1.0)]
            .into_iter()
            .collect();
        let mut plan = Schedule::new();
        plan.assign_single(JobId(0), seg_set(&[(0, 3)]));
        plan.assign_single(JobId(1), seg_set(&[(3, 6)]));
        let out = replay_with_overhead(&jobs, &plan, 2);
        assert!(out.dropped.is_empty());
        // The cold load is paid in the idle time before t = 0 (a dispatcher
        // pre-loads), so j0 runs on time; j1's switch has no gap and shifts
        // it right by δ.
        assert_eq!(out.schedule.segments(JobId(0)).unwrap(), &seg_set(&[(0, 3)]));
        assert_eq!(out.schedule.segments(JobId(1)).unwrap(), &seg_set(&[(5, 8)]));
        assert_eq!(out.trace.overhead_time(), 4);
    }

    #[test]
    fn doomed_segment_drops_job_and_frees_time() {
        // A blocker runs first, so the tight job's switch cannot hide in
        // idle time; δ pushes it past its deadline → dropped. The third
        // job then completes unaffected.
        let jobs: JobSet = vec![
            Job::new(0, 2, 2, 1.0),  // blocker
            Job::new(0, 5, 3, 1.0),  // tight: planned [2,5), dies under δ=1
            Job::new(0, 20, 3, 5.0),
        ]
        .into_iter()
        .collect();
        let mut plan = Schedule::new();
        plan.assign_single(JobId(0), seg_set(&[(0, 2)]));
        plan.assign_single(JobId(1), seg_set(&[(2, 5)]));
        plan.assign_single(JobId(2), seg_set(&[(5, 8)]));
        let out = replay_with_overhead(&jobs, &plan, 1);
        assert_eq!(out.dropped, vec![JobId(1)]);
        assert_eq!(out.schedule.len(), 2);
        // The dropped job's slot is freed: j2 runs right after its switch.
        let j2 = out.schedule.segments(JobId(2)).unwrap();
        assert_eq!(j2, &seg_set(&[(5, 8)]));
        out.schedule.verify(&jobs, None).unwrap();
        out.trace.check().unwrap();
    }

    #[test]
    fn dropped_jobs_future_segments_are_skipped() {
        // A two-segment job whose first segment gets delayed past a point
        // where the *second* cannot complete... simpler: make its second
        // segment end exactly at the deadline so any delay kills it, and
        // check the other job is unaffected.
        let jobs: JobSet = vec![Job::new(0, 6, 4, 1.0), Job::new(0, 20, 2, 1.0)]
            .into_iter()
            .collect();
        let mut plan = Schedule::new();
        plan.assign_single(JobId(0), seg_set(&[(0, 2), (4, 6)]));
        plan.assign_single(JobId(1), seg_set(&[(2, 4)]));
        // δ = 1: j0's first segment shifts to [1,3); j1 [4,6); j0's second
        // segment would need [7,9) > deadline 6 → dropped. j1 completes.
        let out = replay_with_overhead(&jobs, &plan, 1);
        assert_eq!(out.dropped, vec![JobId(0)]);
        assert!(out.schedule.segments(JobId(1)).is_some());
        // j0's first piece is wasted work in the trace.
        assert!(out.trace.work_time() > 2);
    }

    #[test]
    fn choose_k_prefers_large_k_at_zero_cost() {
        // Heavy nesting: larger k keeps more value, and δ = 0 is free.
        let jobs: JobSet = vec![
            Job::new(0, 26, 12, 6.0),
            Job::new(2, 12, 4, 3.0),
            Job::new(3, 7, 2, 2.0),
            Job::new(14, 20, 3, 2.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<JobId> = jobs.ids().collect();
        let inf = pobp_sched::edf_schedule(&jobs, &ids, None);
        let choice = choose_k(&jobs, &inf.schedule, 0, 3);
        assert_eq!(choice.replayed_value, choice.planned_value);
        assert_eq!(choice.replayed_value, jobs.total_value());
    }

    #[test]
    fn choose_k_shrinks_k_as_cost_grows() {
        // The E12 bimodal workload in miniature.
        let mut jobs = JobSet::new();
        for i in 0..4i64 {
            jobs.push(Job::new(30 * i, 30 * i + 200, 40, 40.0));
        }
        for i in 0..12i64 {
            jobs.push(Job::new(12 * i, 12 * i + 8, 3, 3.0));
        }
        let ids: Vec<JobId> = jobs.ids().collect();
        let inf = pobp_sched::greedy_unbounded(&jobs, &ids);
        let cheap = choose_k(&jobs, &inf.schedule, 0, 4);
        let pricey = choose_k(&jobs, &inf.schedule, 6, 4);
        assert!(
            pricey.k <= cheap.k,
            "expected smaller k at high cost: {} vs {}",
            pricey.k,
            cheap.k
        );
        assert!(pricey.replayed_value <= cheap.replayed_value + 1e-9);
    }

    #[test]
    #[should_panic(expected = "one machine")]
    fn replay_rejects_multi_machine_plans() {
        let jobs: JobSet = vec![Job::new(0, 10, 2, 1.0)].into_iter().collect();
        let mut plan = Schedule::new();
        plan.assign(JobId(0), 1, seg_set(&[(0, 2)]));
        let _ = replay_with_overhead(&jobs, &plan, 1);
    }
}
