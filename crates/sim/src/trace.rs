//! Execution traces: what the machine actually did, tick by tick.

use pobp_core::{Interval, JobId, JobSet, Time};

/// One machine-level event in an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecEvent {
    /// A job was dispatched for the first time.
    Start(JobId),
    /// A running job was preempted by another.
    Preempt {
        /// The job taken off the machine.
        out: JobId,
        /// The job taking over.
        by: JobId,
    },
    /// A previously preempted job resumed.
    Resume(JobId),
    /// A job finished all its work.
    Complete(JobId),
    /// A job was abandoned (cannot meet its deadline any more).
    Abort(JobId),
    /// The machine began paying context-switch overhead.
    OverheadBegin,
    /// The machine finished paying overhead and begins useful work.
    OverheadEnd,
}

/// A timestamped execution trace plus the raw busy intervals.
#[derive(Clone, Debug, Default)]
pub struct ExecTrace {
    /// `(time, event)` pairs in chronological order.
    pub events: Vec<(Time, ExecEvent)>,
    /// Useful work intervals, per job.
    pub work: Vec<(JobId, Interval)>,
    /// Machine time consumed by context-switch overhead.
    pub overhead: Vec<Interval>,
}

impl ExecTrace {
    /// Records an event.
    pub fn push(&mut self, t: Time, e: ExecEvent) {
        self.events.push((t, e));
    }

    /// Number of context switches paid (overhead intervals).
    pub fn switches(&self) -> usize {
        self.overhead.len()
    }

    /// Total machine time spent on overhead.
    pub fn overhead_time(&self) -> Time {
        self.overhead.iter().map(Interval::len).sum()
    }

    /// Total useful work time.
    pub fn work_time(&self) -> Time {
        self.work.iter().map(|(_, iv)| iv.len()).sum()
    }

    /// Jobs that completed, in completion order.
    pub fn completed(&self) -> Vec<JobId> {
        self.events
            .iter()
            .filter_map(|&(_, e)| match e {
                ExecEvent::Complete(j) => Some(j),
                _ => None,
            })
            .collect()
    }

    /// Jobs that were aborted.
    pub fn aborted(&self) -> Vec<JobId> {
        self.events
            .iter()
            .filter_map(|&(_, e)| match e {
                ExecEvent::Abort(j) => Some(j),
                _ => None,
            })
            .collect()
    }

    /// Total value completed under `jobs`.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.completed().iter().map(|&j| jobs.job(j).value).sum()
    }

    /// Preemption count per completed job id (segments − 1 of useful work).
    pub fn preemptions_of(&self, job: JobId) -> usize {
        let segs = pobp_core::SegmentSet::from_intervals(
            self.work.iter().filter(|(j, _)| *j == job).map(|&(_, iv)| iv),
        );
        segs.count().saturating_sub(1)
    }

    /// Internal consistency: events are time-ordered; work and overhead
    /// intervals are pairwise disjoint.
    pub fn check(&self) -> Result<(), String> {
        for w in self.events.windows(2) {
            if w[0].0 > w[1].0 {
                return Err(format!("events out of order: {w:?}"));
            }
        }
        let mut all: Vec<Interval> = self.work.iter().map(|&(_, iv)| iv).collect();
        all.extend(self.overhead.iter().copied());
        all.sort_unstable();
        for w in all.windows(2) {
            if w[0].overlaps(&w[1]) {
                return Err(format!("machine double-booked: {:?} vs {:?}", w[0], w[1]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    #[test]
    fn trace_accounting() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 3.0), Job::new(0, 10, 2, 2.0)]
            .into_iter()
            .collect();
        let mut tr = ExecTrace::default();
        tr.push(0, ExecEvent::Start(JobId(0)));
        tr.work.push((JobId(0), Interval::new(0, 2)));
        tr.push(2, ExecEvent::Preempt { out: JobId(0), by: JobId(1) });
        tr.overhead.push(Interval::new(2, 3));
        tr.push(2, ExecEvent::OverheadBegin);
        tr.push(3, ExecEvent::OverheadEnd);
        tr.work.push((JobId(1), Interval::new(3, 5)));
        tr.push(5, ExecEvent::Complete(JobId(1)));
        tr.work.push((JobId(0), Interval::new(5, 7)));
        tr.push(5, ExecEvent::Resume(JobId(0)));
        tr.push(7, ExecEvent::Complete(JobId(0)));
        tr.check().unwrap();
        assert_eq!(tr.switches(), 1);
        assert_eq!(tr.overhead_time(), 1);
        assert_eq!(tr.work_time(), 6);
        assert_eq!(tr.completed(), vec![JobId(1), JobId(0)]);
        assert!(tr.aborted().is_empty());
        assert_eq!(tr.value(&jobs), 5.0);
        assert_eq!(tr.preemptions_of(JobId(0)), 1);
        assert_eq!(tr.preemptions_of(JobId(1)), 0);
    }

    #[test]
    fn check_rejects_overlap() {
        let mut tr = ExecTrace::default();
        tr.work.push((JobId(0), Interval::new(0, 3)));
        tr.work.push((JobId(1), Interval::new(2, 4)));
        assert!(tr.check().is_err());
    }

    #[test]
    fn check_rejects_unordered_events() {
        let mut tr = ExecTrace::default();
        tr.push(5, ExecEvent::Start(JobId(0)));
        tr.push(3, ExecEvent::Complete(JobId(0)));
        assert!(tr.check().is_err());
    }
}
