//! **Online arrival mode**: jobs are revealed at their release times, the
//! scheduler commits irrevocably, and every job carries the per-job
//! preemption budget `k`.
//!
//! This is the setting of the online relatives of the paper —
//! Dürr–Jeż–Nguyen's bounded-length throughput scheduling and
//! Baptiste–Chrobak–Dürr–Jawor–Vakhania's equal-length jobs — restricted to
//! the paper's `k`-bounded machine model (Definition 2.1 plus a budget):
//!
//! * **Revelation.** A job `⟨r, d, p, v⟩` is unknown before time `r`. At
//!   every decision point the algorithm sees only released, incomplete,
//!   non-aborted jobs.
//! * **Irrevocability.** Machine time is never reclaimed: work performed on
//!   a job that is later aborted is wasted (value is all-or-nothing at
//!   completion), and a preemption, once taken, is spent forever.
//! * **Budget.** A job may be preempted at most `k` times — it runs in at
//!   most `k + 1` segments. The executor *enforces* this online: a running
//!   job whose budget is exhausted cannot be preempted, whatever the
//!   algorithm would prefer (counted by `online.budget_blocks` /
//!   `online.djn.threshold_rejects`).
//!
//! Three algorithms are implemented ([`OnlineAlg`]); `docs/online.md` is the
//! catalogue with their competitive-ratio claims and the `online.*` obs
//! counters that measure each claim. The executor itself is deterministic —
//! a pure function of `(jobs, subset, config)` — so engine-driven online
//! sweeps (`pobp online`, experiment E13) inherit the byte-identical
//! `--threads` contract of `docs/engine.md`.
//!
//! Unlike [`crate::execute_online`] (the δ-overhead *simulator*), this
//! executor charges no context-switch cost: it isolates the *information*
//! price of online arrival from the *mechanical* price of switching, so its
//! output is directly comparable to the offline `OPT_k` oracle.

use pobp_core::{obs_count, trace_event, Interval, JobId, JobSet, Schedule, SegmentSet, Time};

/// The online algorithm an executor run follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OnlineAlg {
    /// Commit to the most valuable feasible job and never preempt it.
    /// The non-preemptive baseline (uses no budget at all).
    Greedy,
    /// Earliest-deadline-first among feasible jobs, preempting only while
    /// the running job still has budget.
    EdfBudget,
    /// The DJN-style doubling rule: preempt the running job `c` for a
    /// waiting job `j` only when `v(j) ≥ 2·v(c)` *and* `c` has budget;
    /// at completion/abort points, start the most valuable feasible job.
    Djn,
}

/// Every algorithm, in the canonical sweep order.
pub const ONLINE_ALGS: [OnlineAlg; 3] = [OnlineAlg::Djn, OnlineAlg::Greedy, OnlineAlg::EdfBudget];

impl OnlineAlg {
    /// The stable lowercase name used by CLIs and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            OnlineAlg::Greedy => "greedy",
            OnlineAlg::EdfBudget => "edf",
            OnlineAlg::Djn => "djn",
        }
    }

    /// Parses [`OnlineAlg::name`] back into a variant.
    pub fn parse(s: &str) -> Option<OnlineAlg> {
        ONLINE_ALGS.iter().copied().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for OnlineAlg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one online run.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// The algorithm.
    pub alg: OnlineAlg,
    /// Per-job preemption budget `k` (a job runs in ≤ `k + 1` segments).
    pub k: u32,
}

/// What an online run produced.
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// The feasible `k`-bounded schedule of the **completed** jobs (wasted
    /// work of aborted jobs occupies machine time but is not in here).
    pub schedule: Schedule,
    /// Jobs that completed, in completion order.
    pub completed: Vec<JobId>,
    /// Jobs that were revealed but never completed (aborted as hopeless or
    /// starved past their deadlines), sorted by id.
    pub dropped: Vec<JobId>,
    /// Preemptions actually taken across all jobs (aborted ones included).
    pub preemptions: usize,
    /// Decision points the executor evaluated.
    pub decisions: usize,
}

impl OnlineOutcome {
    /// Completed value — the online algorithm's objective.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.schedule.value(jobs)
    }
}

/// The reference competitive-ratio bound this lab measures against:
/// `(1 + √P)²`, where `P = p_max/p_min` is the instance's length ratio.
///
/// This is the classical deterministic bound shape for bounded-length
/// online throughput maximization (the literature DJN build on; their
/// refinement tightens the constant for small `P`). E13 asserts every
/// measured empirical ratio `OPT_k-oracle / ALG` stays under this curve —
/// see `docs/online.md` for exactly what is and is not claimed.
pub fn djn_ratio_bound(length_ratio: f64) -> f64 {
    let p = length_ratio.max(1.0);
    let s = 1.0 + p.sqrt();
    s * s
}

/// Per-job executor state, indexed by subset position (flat arrays, no
/// hashing — the PR-5 hot-path idiom, and deterministic iteration for free).
struct JobState {
    id: JobId,
    release: Time,
    deadline: Time,
    value: f64,
    remaining: Time,
    /// Segments begun so far; preempting a running job with
    /// `segments == k + 1` would need segment `k + 2` and is forbidden.
    segments: u32,
    pieces: Vec<Interval>,
    status: Status,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Pending,
    Ready,
    Done,
    Aborted,
}

/// Runs one online execution of `subset` on a single machine.
///
/// The executor advances decision point by decision point (releases,
/// completions, aborts); between decision points the chosen job runs
/// uninterrupted. At each point it reveals newly released jobs, aborts
/// *hopeless* ready jobs (`t + remaining > deadline` — they can no longer
/// complete even running alone), and asks the algorithm which feasible job
/// to run. The budget rule is enforced here, not trusted to the algorithm.
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sim::{run_online, OnlineAlg, OnlineConfig};
///
/// let jobs: JobSet = vec![
///     Job::new(0, 40, 10, 1.0),
///     Job::new(2, 9, 4, 5.0),   // worth 5× — DJN preempts for it
/// ].into_iter().collect();
/// let ids = [JobId(0), JobId(1)];
/// let out = run_online(&jobs, &ids, OnlineConfig { alg: OnlineAlg::Djn, k: 1 });
/// assert_eq!(out.completed.len(), 2);
/// assert_eq!(out.preemptions, 1);
/// out.schedule.verify(&jobs, Some(1)).unwrap();
/// ```
pub fn run_online(jobs: &JobSet, subset: &[JobId], config: OnlineConfig) -> OnlineOutcome {
    obs_count!("online.runs");
    trace_event!("online.start");
    let k = config.k;
    let mut states: Vec<JobState> = subset
        .iter()
        .map(|&id| {
            let j = jobs.job(id);
            JobState {
                id,
                release: j.release,
                deadline: j.deadline,
                value: j.value,
                remaining: j.length,
                segments: 0,
                pieces: Vec::new(),
                status: Status::Pending,
            }
        })
        .collect();
    // Release order: (time, id) — the adversary reveals ties in id order.
    let mut order: Vec<usize> = (0..states.len()).collect();
    order.sort_by_key(|&i| (states[i].release, states[i].id));

    let mut outcome = OnlineOutcome {
        schedule: Schedule::new(),
        completed: Vec::new(),
        dropped: Vec::new(),
        preemptions: 0,
        decisions: 0,
    };
    if states.is_empty() {
        trace_event!("online.done");
        return outcome;
    }

    let mut next_rel = 0usize; // index into `order`
    let mut t = states[order[0]].release;
    let mut running: Option<usize> = None;

    loop {
        // Reveal everything released by now.
        while next_rel < order.len() && states[order[next_rel]].release <= t {
            states[order[next_rel]].status = Status::Ready;
            obs_count!("online.releases");
            next_rel += 1;
        }
        // Abort hopeless jobs (they cannot complete even if run alone from
        // now on). A running job is never hopeless: it was feasible when
        // chosen and has run uninterrupted since.
        for (i, s) in states.iter_mut().enumerate() {
            if s.status == Status::Ready && running != Some(i) && t + s.remaining > s.deadline {
                s.status = Status::Aborted;
                obs_count!("online.aborts");
                trace_event!("online.abort", s.id.0);
            }
        }
        let any_ready = states.iter().any(|s| s.status == Status::Ready);
        if !any_ready {
            match order.get(next_rel) {
                Some(&i) => {
                    obs_count!("online.idle_ticks", states[i].release - t);
                    t = states[i].release;
                    continue;
                }
                None => break,
            }
        }

        obs_count!("online.decisions");
        outcome.decisions += 1;
        let chosen = decide(&states, running, config);

        if let Some(prev) = running {
            if chosen != prev {
                // An irrevocable preemption: `prev`'s budget is spent.
                outcome.preemptions += 1;
                obs_count!("online.preemptions");
                trace_event!("online.preempt", states[prev].id.0);
            }
        }
        if running != Some(chosen) && states[chosen].remaining == jobs.job(states[chosen].id).length
        {
            obs_count!("online.starts");
        }
        if running != Some(chosen) {
            states[chosen].segments += 1;
            debug_assert!(states[chosen].segments <= k + 1, "budget violated by the executor");
        }
        running = Some(chosen);

        // Run until completion or the next revelation, whichever is first.
        let mut until = t + states[chosen].remaining;
        if let Some(&i) = order.get(next_rel) {
            if states[i].release > t {
                until = until.min(states[i].release);
            }
        }
        debug_assert!(until > t, "no progress at t={t}");
        push_piece(&mut states[chosen].pieces, Interval::new(t, until));
        states[chosen].remaining -= until - t;
        t = until;
        if states[chosen].remaining == 0 {
            states[chosen].status = Status::Done;
            obs_count!("online.completions");
            trace_event!("online.complete", states[chosen].id.0);
            outcome.completed.push(states[chosen].id);
            let segs = SegmentSet::from_intervals(std::mem::take(&mut states[chosen].pieces));
            outcome.schedule.assign_single(states[chosen].id, segs);
            running = None;
        }
    }

    for s in &states {
        if s.status != Status::Done {
            outcome.dropped.push(s.id);
        }
    }
    outcome.dropped.sort_unstable();
    trace_event!("online.done", outcome.completed.len());
    outcome
}

/// Appends a work interval, merging with the last one when contiguous (the
/// same segment resumed across a revelation point is *one* segment).
fn push_piece(pieces: &mut Vec<Interval>, iv: Interval) {
    if let Some(last) = pieces.last_mut() {
        if last.end == iv.start {
            *last = Interval::new(last.start, iv.end);
            return;
        }
    }
    pieces.push(iv);
}

/// The algorithm's choice among ready jobs. Caller guarantees at least one
/// job is `Ready`. Returns a subset position.
fn decide(states: &[JobState], running: Option<usize>, config: OnlineConfig) -> usize {
    let k = config.k;
    // `running` stays feasible by construction; every other Ready job is
    // feasible too (hopeless ones were just aborted).
    let best_by = |better: &dyn Fn(&JobState, &JobState) -> bool| -> usize {
        let mut best: Option<usize> = None;
        for (i, s) in states.iter().enumerate() {
            if s.status != Status::Ready {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) if better(s, &states[b]) => Some(i),
                keep => keep,
            };
        }
        best.expect("caller guarantees a ready job")
    };
    // Most valuable first; earlier deadline, then lower id break ties — a
    // total deterministic order.
    let max_value = &|a: &JobState, b: &JobState| {
        (a.value, std::cmp::Reverse(a.deadline), std::cmp::Reverse(a.id))
            > (b.value, std::cmp::Reverse(b.deadline), std::cmp::Reverse(b.id))
    };
    let earliest_deadline =
        &|a: &JobState, b: &JobState| (a.deadline, a.id) < (b.deadline, b.id);

    match (config.alg, running) {
        // Greedy commits and never preempts.
        (OnlineAlg::Greedy, Some(cur)) => cur,
        (OnlineAlg::Greedy, None) => best_by(max_value),
        (OnlineAlg::EdfBudget, None) => best_by(earliest_deadline),
        (OnlineAlg::EdfBudget, Some(cur)) => {
            let best = best_by(earliest_deadline);
            if best != cur && states[cur].segments > k {
                // Out of budget: EDF *wants* to preempt but cannot.
                obs_count!("online.budget_blocks");
                cur
            } else {
                best
            }
        }
        (OnlineAlg::Djn, None) => best_by(max_value),
        (OnlineAlg::Djn, Some(cur)) => {
            let best = best_by(max_value);
            if best == cur {
                return cur;
            }
            if states[cur].segments > k {
                obs_count!("online.budget_blocks");
                return cur;
            }
            // The doubling threshold: preempt only for ≥ 2× the value.
            if states[best].value >= 2.0 * states[cur].value {
                best
            } else {
                obs_count!("online.djn.threshold_rejects");
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    fn cfg(alg: OnlineAlg, k: u32) -> OnlineConfig {
        OnlineConfig { alg, k }
    }

    #[test]
    fn empty_input() {
        let jobs = JobSet::new();
        let out = run_online(&jobs, &[], cfg(OnlineAlg::Djn, 1));
        assert!(out.schedule.is_empty());
        assert!(out.dropped.is_empty());
        assert_eq!(out.decisions, 0);
    }

    #[test]
    fn single_job_completes() {
        let jobs: JobSet = vec![Job::new(3, 10, 5, 2.0)].into_iter().collect();
        for alg in ONLINE_ALGS {
            let out = run_online(&jobs, &ids_of(1), cfg(alg, 0));
            assert_eq!(out.completed, vec![JobId(0)], "{alg}");
            assert_eq!(out.value(&jobs), 2.0);
            out.schedule.verify(&jobs, Some(0)).unwrap();
        }
    }

    #[test]
    fn greedy_never_preempts() {
        let jobs: JobSet = vec![
            Job::new(0, 100, 20, 1.0),
            Job::new(1, 30, 5, 50.0), // would tempt any preemptive rule
        ]
        .into_iter()
        .collect();
        let out = run_online(&jobs, &ids_of(2), cfg(OnlineAlg::Greedy, 5));
        assert_eq!(out.preemptions, 0);
        out.schedule.verify(&jobs, Some(0)).unwrap();
    }

    #[test]
    fn djn_preempts_on_doubling_only() {
        let base = Job::new(0, 100, 20, 4.0);
        // 1.9× the running value: below threshold, no preemption.
        let below: JobSet =
            vec![base, Job::new(2, 12, 4, 7.6)].into_iter().collect();
        let out = run_online(&below, &ids_of(2), cfg(OnlineAlg::Djn, 3));
        assert_eq!(out.preemptions, 0);
        assert_eq!(out.completed, vec![JobId(0)], "tempter aborts, base survives");
        // 2× the running value: preempt.
        let above: JobSet =
            vec![base, Job::new(2, 12, 4, 8.0)].into_iter().collect();
        let out = run_online(&above, &ids_of(2), cfg(OnlineAlg::Djn, 3));
        assert_eq!(out.preemptions, 1);
        assert_eq!(out.completed.len(), 2);
    }

    #[test]
    fn budget_is_enforced_under_pressure() {
        // A long cheap job with a stream of doubling tempters: only k
        // preemptions may be taken no matter how tempting the stream.
        let mut v = vec![Job::new(0, 200, 50, 1.0)];
        for i in 0..5 {
            let r = 5 + 10 * i;
            v.push(Job::new(r, r + 6, 4, 4.0 * 2f64.powi(i as i32)));
        }
        let jobs: JobSet = v.into_iter().collect();
        for k in 0..4u32 {
            for alg in [OnlineAlg::Djn, OnlineAlg::EdfBudget] {
                let out = run_online(&jobs, &ids_of(jobs.len()), cfg(alg, k));
                out.schedule.verify(&jobs, Some(k)).unwrap_or_else(|e| {
                    panic!("{alg} k={k}: {e}");
                });
            }
        }
    }

    #[test]
    fn edf_budget_matches_zero_cost_simulator_shape() {
        // Same decision rule as execute_online at δ = 0 on a workload with
        // no ties: completed sets agree.
        let jobs: JobSet = vec![
            Job::new(0, 30, 10, 1.0),
            Job::new(2, 9, 4, 1.0),
            Job::new(3, 8, 2, 1.0),
        ]
        .into_iter()
        .collect();
        for k in [0u32, 1, 2] {
            let online = run_online(&jobs, &ids_of(3), cfg(OnlineAlg::EdfBudget, k));
            let sim = crate::execute_online(
                &jobs,
                &ids_of(3),
                crate::SimConfig { policy: crate::Policy::EdfBudget(k), switch_cost: 0 },
            );
            let mut a: Vec<JobId> = online.schedule.scheduled_ids().collect();
            let mut b: Vec<JobId> = sim.schedule.scheduled_ids().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn wasted_work_is_not_in_the_schedule() {
        // The tempter preempts the base job long enough that the base
        // becomes hopeless: its partial work must not surface as value.
        let jobs: JobSet = vec![
            Job::new(0, 22, 20, 1.0),  // laxity 2
            Job::new(1, 11, 10, 10.0), // 10× → DJN takes it; base then dies
        ]
        .into_iter()
        .collect();
        let out = run_online(&jobs, &ids_of(2), cfg(OnlineAlg::Djn, 2));
        assert_eq!(out.completed, vec![JobId(1)]);
        assert_eq!(out.dropped, vec![JobId(0)]);
        assert_eq!(out.value(&jobs), 10.0);
        out.schedule.verify(&jobs, Some(2)).unwrap();
    }

    #[test]
    fn determinism_is_bytewise() {
        let jobs: JobSet = (0..12)
            .map(|i| Job::new(i % 5, 10 + (3 * i) % 17, 1 + i % 4, 1.0 + (i % 3) as f64))
            .collect();
        for alg in ONLINE_ALGS {
            let a = run_online(&jobs, &ids_of(12), cfg(alg, 1));
            let b = run_online(&jobs, &ids_of(12), cfg(alg, 1));
            assert_eq!(format!("{:?}", a.schedule), format!("{:?}", b.schedule));
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.preemptions, b.preemptions);
        }
    }

    #[test]
    fn ratio_bound_shape() {
        assert_eq!(djn_ratio_bound(1.0), 4.0);
        assert!(djn_ratio_bound(4.0) == 9.0);
        assert!(djn_ratio_bound(0.5) == 4.0, "ratios below 1 clamp to the equal-length case");
        assert!(djn_ratio_bound(100.0) > djn_ratio_bound(10.0));
    }
}
