//! Differential testing of `lsa` against a *literal transliteration* of the
//! paper's Algorithm 2 pseudocode (lines 9–22). The production
//! implementation uses an index-based working set and a shared `Timeline`;
//! the reference below re-reads the idle segments on every loop iteration,
//! exactly as the pseudocode is written. Both must accept the same jobs and
//! place them identically.

use pobp_core::{Interval, Job, JobId, JobSet, Schedule, SegmentSet, Time, Timeline};
use pobp_sched::lsa;
use proptest::prelude::*;

/// Line-by-line Algorithm 2 `LSA()`:
///
/// ```text
/// 10  Sort J in descending order of the jobs density;
/// 11  foreach j ∈ J do
/// 12      Let S be the set of the leftmost k + 1 idle segments in [r_j, d_j];
/// 13      repeat
/// 14          if j fits into the segments in S then
/// 15              Schedule j in members of S in the leftmost possible way;
/// 16              break;
/// 17          else
/// 18              Remove shortest segment from S and replace it with the
/// 19              next idle segment in [r_j, d_j];
/// 20      until all idle segments are exhausted;
/// 21  end foreach
/// ```
fn lsa_reference(jobs: &JobSet, ids: &[JobId], k: u32) -> Schedule {
    // Line 10.
    let mut order = ids.to_vec();
    order.sort_by(|&a, &b| {
        jobs.job(b)
            .density()
            .partial_cmp(&jobs.job(a).density())
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut timeline = Timeline::new();
    let mut schedule = Schedule::new();
    // Line 11.
    for j in order {
        let job = jobs.job(j);
        let idle: Vec<Interval> =
            timeline.idle_within(&job.window()).segments().to_vec();
        // Line 12: the leftmost k+1 idle segments.
        let mut s: Vec<Interval> = idle.iter().take(k as usize + 1).copied().collect();
        let mut next_idx = s.len();
        // Lines 13–20.
        loop {
            let total: Time = s.iter().map(Interval::len).sum();
            if total >= job.length && !s.is_empty() {
                // Line 15: leftmost possible placement inside S.
                let mut members = s.clone();
                members.sort_unstable_by_key(|iv| iv.start);
                let mut remaining = job.length;
                let mut placed = Vec::new();
                for m in members {
                    if remaining == 0 {
                        break;
                    }
                    let take = remaining.min(m.len());
                    placed.push(Interval::with_len(m.start, take));
                    remaining -= take;
                }
                let set = SegmentSet::from_intervals(placed);
                timeline.allocate(&set).expect("idle by construction");
                schedule.assign_single(j, set);
                break;
            }
            // Line 20: all idle segments exhausted.
            if next_idx >= idle.len() {
                break;
            }
            // Lines 18–19: drop the shortest, admit the next to the right.
            let (pos, _) = s
                .iter()
                .enumerate()
                .min_by_key(|(i, iv)| (iv.len(), *i))
                .expect("S non-empty");
            s.remove(pos);
            s.push(idle[next_idx]);
            next_idx += 1;
        }
    }
    schedule
}

fn arb_jobs(max_n: usize) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..60, 1i64..12, 0i64..40, 1u32..20), 1..=max_n).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn production_lsa_matches_pseudocode(jobs in arb_jobs(18), k in 0u32..5) {
        let ids: Vec<JobId> = jobs.ids().collect();
        let fast = lsa(&jobs, &ids, k);
        let reference = lsa_reference(&jobs, &ids, k);
        // Same accepted set…
        let a: Vec<JobId> = fast.schedule.scheduled_ids().collect();
        let b: Vec<JobId> = reference.scheduled_ids().collect();
        prop_assert_eq!(&a, &b, "accepted sets differ (k={})", k);
        // …and identical placements.
        for &j in &a {
            prop_assert_eq!(
                fast.schedule.segments(j).unwrap(),
                reference.segments(j).unwrap(),
                "placement of {} differs (k={})", j, k
            );
        }
    }
}

#[test]
fn reference_agrees_on_the_unit_examples() {
    // The same cases the unit tests pin down for the production version.
    let jobs: JobSet = vec![
        Job::new(4, 12, 8, 1.0),
        Job::new(0, 16, 8, 0.5),
    ]
    .into_iter()
    .collect();
    let ids: Vec<JobId> = jobs.ids().collect();
    let r = lsa_reference(&jobs, &ids, 1);
    assert_eq!(
        r.segments(JobId(1)).unwrap().segments(),
        &[Interval::new(0, 4), Interval::new(12, 16)]
    );
    let r0 = lsa_reference(&jobs, &ids, 0);
    assert!(r0.segments(JobId(1)).is_none());
}
