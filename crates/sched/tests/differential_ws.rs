//! Differential property tests: the workspace-based hot paths must be
//! bit-identical to the pre-workspace reference implementations on random
//! instances, including when one workspace is reused (dirty) across
//! unrelated calls — the exact reuse pattern of the engine's worker threads.

use pobp_core::{Job, JobId, JobSet, Schedule};
use pobp_sched::{
    edf_schedule, edf_schedule_reference, edf_schedule_ws, greedy_unbounded, greedy_unbounded_ws,
    laminarize, laminarize_ws, reduce_to_k_bounded_with, reduce_to_k_bounded_ws, KbasSolver,
    ReductionPlan, SolveWorkspace,
};
use proptest::prelude::*;

fn arb_jobs(max_n: usize, horizon: i64) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..horizon, 1i64..6, 0i64..10, 1u32..10), 1..=max_n).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
                .collect()
        },
    )
}

fn all_ids(jobs: &JobSet) -> Vec<JobId> {
    jobs.ids().collect()
}

fn assert_schedules_equal(a: &Schedule, b: &Schedule) {
    let av: Vec<_> = a.iter().collect();
    let bv: Vec<_> = b.iter().collect();
    assert_eq!(av, bv);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn edf_ws_matches_reference(jobs in arb_jobs(10, 24)) {
        let ids = all_ids(&jobs);
        let mut ws = SolveWorkspace::new();
        let reference = edf_schedule_reference(&jobs, &ids, None);
        let via_ws = edf_schedule_ws(&jobs, &ids, None, &mut ws);
        assert_schedules_equal(&reference.schedule, &via_ws.schedule);
        prop_assert_eq!(&reference.missed, &via_ws.missed);
        // Restricted availability uses the same (now dirty) workspace.
        if let Some(busy) = reference.schedule.machines().first().map(|&m| reference.schedule.busy(m)) {
            let on: Vec<JobId> = reference.schedule.scheduled_ids().collect();
            let r2 = edf_schedule_reference(&jobs, &on, Some(&busy));
            let w2 = edf_schedule_ws(&jobs, &on, Some(&busy), &mut ws);
            assert_schedules_equal(&r2.schedule, &w2.schedule);
            prop_assert_eq!(&r2.missed, &w2.missed);
        }
    }

    #[test]
    fn dirty_workspace_matches_fresh_everywhere(
        jobs1 in arb_jobs(10, 24),
        jobs2 in arb_jobs(10, 24),
        k in 0u32..4,
    ) {
        // Dirty the workspace on instance 1, then run the whole pipeline on
        // instance 2: results must match fresh-workspace (wrapper) runs.
        let mut ws = SolveWorkspace::new();
        let ids1 = all_ids(&jobs1);
        let _ = greedy_unbounded_ws(&jobs1, &ids1, &mut ws);
        let _ = reduce_to_k_bounded_ws(
            &jobs1,
            &greedy_unbounded(&jobs1, &ids1).schedule,
            k,
            KbasSolver::Tm,
            &mut ws,
        );

        let ids2 = all_ids(&jobs2);
        let dirty = greedy_unbounded_ws(&jobs2, &ids2, &mut ws);
        let fresh = greedy_unbounded(&jobs2, &ids2);
        assert_schedules_equal(&dirty.schedule, &fresh.schedule);
        prop_assert_eq!(&dirty.missed, &fresh.missed);

        let lam_dirty = laminarize_ws(&jobs2, &fresh.schedule, &mut ws).unwrap();
        let lam_fresh = laminarize(&jobs2, &fresh.schedule).unwrap();
        assert_schedules_equal(&lam_dirty, &lam_fresh);

        for solver in [KbasSolver::Tm, KbasSolver::LevelledContraction] {
            let red_dirty =
                reduce_to_k_bounded_ws(&jobs2, &fresh.schedule, k, solver, &mut ws).unwrap();
            let red_fresh = reduce_to_k_bounded_with(&jobs2, &fresh.schedule, k, solver).unwrap();
            assert_schedules_equal(&red_dirty.schedule, &red_fresh.schedule);
            assert_schedules_equal(&red_dirty.laminar, &red_fresh.laminar);
            prop_assert_eq!(&red_dirty.keep_used, &red_fresh.keep_used);
            prop_assert_eq!(red_dirty.kbas.value, red_fresh.kbas.value);
        }
    }

    #[test]
    fn reduction_plan_matches_direct_reduction(jobs in arb_jobs(10, 24)) {
        // Hoisting the k-independent prefix (laminarize + schedule forest)
        // out of the k-loop must not change any per-k output.
        let ids = all_ids(&jobs);
        let witness = greedy_unbounded(&jobs, &ids).schedule;
        let mut ws = SolveWorkspace::new();
        let plan = ReductionPlan::new_ws(&jobs, &witness, &mut ws).unwrap();
        for k in 0..4u32 {
            for solver in [KbasSolver::Tm, KbasSolver::LevelledContraction] {
                let via_plan = plan.solve_ws(&jobs, k, solver, &mut ws);
                let direct = reduce_to_k_bounded_with(&jobs, &witness, k, solver).unwrap();
                assert_schedules_equal(&via_plan.schedule, &direct.schedule);
                assert_schedules_equal(&via_plan.laminar, &direct.laminar);
                prop_assert_eq!(&via_plan.keep_used, &direct.keep_used);
                prop_assert_eq!(via_plan.kbas.value, direct.kbas.value);
            }
        }
    }

    #[test]
    fn public_edf_wrapper_matches_reference(jobs in arb_jobs(12, 30)) {
        // The throwaway-workspace wrapper is the default entry point; pin it
        // to the reference too, independently of the _ws path.
        let ids = all_ids(&jobs);
        let reference = edf_schedule_reference(&jobs, &ids, None);
        let wrapper = edf_schedule(&jobs, &ids, None);
        assert_schedules_equal(&reference.schedule, &wrapper.schedule);
        prop_assert_eq!(&reference.missed, &wrapper.missed);
    }
}

#[test]
#[should_panic(expected = "duplicate")]
fn ws_path_rejects_duplicate_ids() {
    let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0)].into_iter().collect();
    let _ = edf_schedule_ws(&jobs, &[JobId(0), JobId(0)], None, &mut SolveWorkspace::new());
}
