//! Edge-case suite for the scheduling algorithms: degenerate inputs,
//! boundary laxities, extreme time values, tie-breaking determinism.

use pobp_core::{Interval, Job, JobId, JobSet};
use pobp_sched::*;

fn ids_of(n: usize) -> Vec<JobId> {
    (0..n).map(JobId).collect()
}

#[test]
fn single_tight_job_everywhere() {
    // λ = 1: zero slack. Every algorithm must schedule exactly this job.
    let jobs: JobSet = vec![Job::new(5, 15, 10, 3.0)].into_iter().collect();
    let ids = ids_of(1);
    assert!(edf_feasible(&jobs, &ids));
    let expect = pobp_core::SegmentSet::singleton(Interval::new(5, 15));
    for k in 0..3u32 {
        let out = lsa(&jobs, &ids, k);
        assert_eq!(out.schedule.segments(JobId(0)), Some(&expect), "lsa k={k}");
        let cs = lsa_cs(&jobs, &ids, k);
        assert_eq!(cs.schedule.segments(JobId(0)), Some(&expect));
        let inf = edf_schedule(&jobs, &ids, None);
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
        assert_eq!(red.schedule.segments(JobId(0)), Some(&expect));
    }
    assert_eq!(schedule_k0(&jobs, &ids).value(&jobs), 3.0);
    assert_eq!(opt_unbounded(&jobs, &ids).value, 3.0);
    assert_eq!(opt_nonpreemptive(&jobs, &ids).value, 3.0);
}

#[test]
fn all_jobs_identical_deterministic_tiebreak() {
    // Four byte-identical jobs: deterministic id-order tie-breaks must give
    // reproducible output across runs and algorithms.
    let jobs: JobSet = (0..4).map(|_| Job::new(0, 40, 5, 2.0)).collect();
    let ids = ids_of(4);
    let a = lsa(&jobs, &ids, 1);
    let b = lsa(&jobs, &ids, 1);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.accepted, ids); // id order
    // First job gets the leftmost slot.
    assert_eq!(
        a.schedule.segments(JobId(0)).unwrap().segments(),
        &[Interval::new(0, 5)]
    );
    let e1 = edf_schedule(&jobs, &ids, None);
    let e2 = edf_schedule(&jobs, &ids, None);
    assert_eq!(e1.schedule, e2.schedule);
}

#[test]
fn negative_and_large_times() {
    // Far-negative releases and deadlines near i64 range edges (scaled to
    // stay overflow-safe in internal arithmetic).
    let big = 1_000_000_000_000i64;
    let jobs: JobSet = vec![
        Job::new(-big, -big + 100, 50, 1.0),
        Job::new(big, big + 100, 50, 1.0),
    ]
    .into_iter()
    .collect();
    let ids = ids_of(2);
    let out = edf_schedule(&jobs, &ids, None);
    assert!(out.is_feasible());
    out.schedule.verify(&jobs, None).unwrap();
    let red = reduce_to_k_bounded(&jobs, &out.schedule, 0).unwrap();
    red.schedule.verify(&jobs, Some(0)).unwrap();
    assert_eq!(red.schedule.len(), 2);
}

#[test]
fn length_classes_handle_huge_ratio() {
    // p spans 1 … 2^40 — saturating class computation must not overflow.
    let jobs: JobSet = vec![
        Job::new(0, 10, 1, 1.0),
        Job::new(0, 3 * (1 << 40), 1 << 40, 1.0),
    ]
    .into_iter()
    .collect();
    let classes = length_classes(&jobs, &ids_of(2), 2);
    assert_eq!(classes.iter().filter(|c| !c.is_empty()).count(), 2);
    assert_eq!(classes.len(), 41);
}

#[test]
fn boundary_laxity_exactly_k_plus_one() {
    // λ = k+1 exactly: strict by convention; both Algorithm 3 branches must
    // cope with the job landing on their side.
    let k = 2u32;
    let jobs: JobSet = vec![Job::new(0, 9, 3, 1.0)].into_iter().collect(); // λ = 3 = k+1
    assert!(jobs.job(JobId(0)).is_strict(k));
    let ids = ids_of(1);
    let inf = edf_schedule(&jobs, &ids, None);
    let out = k_preemption_combined(&jobs, &ids, &inf.schedule, k).unwrap();
    assert_eq!(out.chosen.len(), 1);
    assert!(out.lax.is_empty());
}

#[test]
fn combined_with_empty_input_schedule() {
    // A feasible-but-empty ∞-schedule: strict branch has nothing, lax
    // branch still schedules from scratch.
    let jobs: JobSet = vec![Job::new(0, 100, 4, 2.0)].into_iter().collect(); // lax
    let out =
        k_preemption_combined(&jobs, &ids_of(1), &pobp_core::Schedule::new(), 1).unwrap();
    assert_eq!(out.chosen.len(), 1);
    assert_eq!(out.chosen.value(&jobs), 2.0);
}

#[test]
fn reduction_of_schedule_with_rejected_jobs() {
    // The input ∞-schedule covers only part of the job set; the reduction
    // must not resurrect rejected jobs.
    let jobs: JobSet = vec![Job::new(0, 4, 4, 1.0), Job::new(0, 4, 4, 9.0)]
        .into_iter()
        .collect();
    let opt = opt_unbounded(&jobs, &ids_of(2));
    assert_eq!(opt.subset, vec![JobId(1)]);
    let red = reduce_to_k_bounded(&jobs, &opt.schedule, 1).unwrap();
    assert_eq!(red.schedule.len(), 1);
    assert!(red.schedule.segments(JobId(0)).is_none());
}

#[test]
fn lsa_zero_value_never_constructed() {
    // Values must be positive by the model; LSA relies on that for its
    // density sort — construction rejects zero so nothing to test beyond
    // the constructor (documented behaviour).
    assert!(Job::try_new(0, 10, 2, 0.0).is_err());
}

#[test]
fn moore_hodgson_single_and_unschedulable_mix() {
    // Some jobs individually infeasible given predecessors: Moore handles
    // the degenerate 1-job and the everything-evicted-but-one case.
    let jobs: JobSet = vec![Job::new(0, 5, 5, 1.0), Job::new(0, 5, 5, 1.0)]
        .into_iter()
        .collect();
    let (acc, s) = moore_hodgson(&jobs, &ids_of(2));
    assert_eq!(acc.len(), 1);
    s.verify(&jobs, Some(0)).unwrap();
}

#[test]
fn iterative_multi_machine_with_greedy_each_round() {
    // Mixed algorithm per round is allowed (closure captures round count).
    let jobs: JobSet = (0..6).map(|i| Job::new(0, 20, 10, (i + 1) as f64)).collect();
    let mut round = 0usize;
    let s = iterative_multi_machine(&jobs, &ids_of(6), 3, |js, rem| {
        round += 1;
        if round.is_multiple_of(2) {
            lsa_cs(js, rem, 1).schedule
        } else {
            schedule_k0(js, rem).schedule
        }
    });
    s.verify(&jobs, Some(1)).unwrap();
    assert!(s.len() >= 3);
}

#[test]
fn global_edf_more_machines_than_jobs() {
    let jobs: JobSet = vec![Job::new(0, 5, 3, 1.0)].into_iter().collect();
    let g = global_edf(&jobs, &ids_of(1), 16);
    assert!(g.is_feasible());
    g.schedule.verify(&jobs).unwrap();
    assert_eq!(g.schedule.migrations(JobId(0)), 0);
}

#[test]
fn cs_variants_on_single_job() {
    let jobs: JobSet = vec![Job::new(0, 30, 5, 7.0)].into_iter().collect();
    for out in [
        cs_by_value(&jobs, &ids_of(1), 1),
        cs_by_density(&jobs, &ids_of(1), 1),
    ] {
        assert_eq!(out.accepted, ids_of(1));
        assert_eq!(out.value(&jobs), 7.0);
    }
}

#[test]
fn edf_with_empty_availability_schedules_nothing() {
    let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0)].into_iter().collect();
    let avail = pobp_core::SegmentSet::new();
    let out = edf_schedule(&jobs, &ids_of(1), Some(&avail));
    assert!(!out.is_feasible());
    assert!(out.schedule.is_empty());
    assert_eq!(out.missed, ids_of(1));
}

#[test]
fn laminarize_idempotent() {
    let jobs: JobSet = vec![
        Job::new(0, 30, 10, 1.0),
        Job::new(2, 9, 4, 1.0),
        Job::new(3, 7, 2, 1.0),
    ]
    .into_iter()
    .collect();
    let out = edf_schedule(&jobs, &ids_of(3), None);
    let once = laminarize(&jobs, &out.schedule).unwrap();
    let twice = laminarize(&jobs, &once).unwrap();
    assert_eq!(once, twice, "laminarize must be a projection");
}
