//! Property tests for the exact oracles and the classify-and-select
//! variants, cross-checking them against each other.

use pobp_core::{Job, JobId, JobSet};
use pobp_sched::{
    cs_by_density, cs_by_value, edf_feasible, global_edf, lsa, lsa_cs, opt_k_bounded_small,
    opt_nonpreemptive, opt_unbounded, schedule_k0,
};
use proptest::prelude::*;

fn arb_jobs(max_n: usize, horizon: i64) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..horizon, 1i64..6, 0i64..10, 1u32..10), 1..=max_n).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
                .collect()
        },
    )
}

fn all_ids(jobs: &JobSet) -> Vec<JobId> {
    jobs.ids().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn opt_unbounded_dominates_every_algorithm(jobs in arb_jobs(8, 20)) {
        let ids = all_ids(&jobs);
        let opt = opt_unbounded(&jobs, &ids);
        opt.schedule.verify(&jobs, None).unwrap();
        // Subset is EDF-feasible by construction.
        prop_assert!(edf_feasible(&jobs, &opt.subset));
        for k in 0..3u32 {
            prop_assert!(lsa(&jobs, &ids, k).value(&jobs) <= opt.value + 1e-9);
            prop_assert!(lsa_cs(&jobs, &ids, k).value(&jobs) <= opt.value + 1e-9);
            prop_assert!(cs_by_value(&jobs, &ids, k).value(&jobs) <= opt.value + 1e-9);
            prop_assert!(cs_by_density(&jobs, &ids, k).value(&jobs) <= opt.value + 1e-9);
        }
        prop_assert!(schedule_k0(&jobs, &ids).value(&jobs) <= opt.value + 1e-9);
    }

    #[test]
    fn opt_unbounded_subset_is_maximal_feasible(jobs in arb_jobs(7, 16)) {
        // No single additional job can be added to the optimal subset —
        // otherwise value would improve (all values positive).
        let ids = all_ids(&jobs);
        let opt = opt_unbounded(&jobs, &ids);
        for &extra in &ids {
            if opt.subset.contains(&extra) {
                continue;
            }
            let mut bigger = opt.subset.clone();
            bigger.push(extra);
            prop_assert!(!edf_feasible(&jobs, &bigger),
                "adding {extra} keeps feasibility but was not chosen");
        }
    }

    #[test]
    fn opt_nonpreemptive_le_opt_unbounded(jobs in arb_jobs(8, 20)) {
        let ids = all_ids(&jobs);
        let np = opt_nonpreemptive(&jobs, &ids);
        np.schedule.verify(&jobs, Some(0)).unwrap();
        let inf = opt_unbounded(&jobs, &ids);
        prop_assert!(np.value <= inf.value + 1e-9);
        // The §5 algorithm never beats the exact OPT_0.
        prop_assert!(schedule_k0(&jobs, &ids).value(&jobs) <= np.value + 1e-9);
    }

    #[test]
    fn tick_oracle_agrees_with_dp_at_k0(jobs in arb_jobs(4, 10)) {
        let ids = all_ids(&jobs);
        let dp = opt_nonpreemptive(&jobs, &ids).value;
        let tick = opt_k_bounded_small(&jobs, &ids, 0);
        prop_assert!((dp - tick).abs() < 1e-9, "DP={dp} tick={tick}");
    }

    #[test]
    fn tick_oracle_converges_to_opt_unbounded(jobs in arb_jobs(4, 10)) {
        // With k large enough (≥ horizon), OPT_k = OPT_∞.
        let ids = all_ids(&jobs);
        let inf = opt_unbounded(&jobs, &ids).value;
        let big_k = 30u32;
        let vk = opt_k_bounded_small(&jobs, &ids, big_k);
        prop_assert!((vk - inf).abs() < 1e-9, "OPT_bigk={vk} OPT_inf={inf}");
    }

    #[test]
    fn global_edf_value_at_least_single_edf(jobs in arb_jobs(8, 20), m in 1usize..4) {
        let ids = all_ids(&jobs);
        let g = global_edf(&jobs, &ids, m);
        g.schedule.verify(&jobs).unwrap();
        let single = global_edf(&jobs, &ids, 1);
        prop_assert!(g.schedule.value(&jobs) >= single.schedule.value(&jobs) - 1e-9);
        // With m ≥ n every job fits (each gets its own machine, and every
        // job alone is feasible by construction p ≤ window).
        let gm = global_edf(&jobs, &ids, jobs.len());
        prop_assert!(gm.is_feasible());
        prop_assert_eq!(gm.schedule.len(), jobs.len());
    }

    #[test]
    fn classify_variants_feasible(jobs in arb_jobs(12, 30), k in 0u32..4) {
        let ids = all_ids(&jobs);
        for out in [cs_by_value(&jobs, &ids, k), cs_by_density(&jobs, &ids, k)] {
            out.schedule.verify(&jobs, Some(k)).unwrap();
            // Accepted/rejected partition the *winning class*, and the
            // schedule contains exactly the accepted jobs.
            prop_assert_eq!(out.schedule.len(), out.accepted.len());
        }
    }
}
