//! Property tests for the multi-machine extensions: the §4.3.4 iterative
//! non-migrative scheme and the migrative global-EDF reference.

use pobp_core::{Job, JobId, JobSet};
use pobp_sched::{
    global_edf, greedy_unbounded, iterative_multi_machine, lsa_cs, reduce_to_k_bounded,
    schedule_k0,
};
use proptest::prelude::*;

fn arb_jobs(max_n: usize) -> impl Strategy<Value = JobSet> {
    proptest::collection::vec((0i64..40, 1i64..8, 0i64..16, 1u32..10), 1..=max_n).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(r, p, slack, v)| Job::new(r, r + p + slack, p, v as f64))
                .collect()
        },
    )
}

fn all_ids(jobs: &JobSet) -> Vec<JobId> {
    jobs.ids().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn iterative_machines_value_monotone(jobs in arb_jobs(16), k in 0u32..3) {
        let ids = all_ids(&jobs);
        let mut prev = -1.0f64;
        for m in 1..=4usize {
            let s = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
                lsa_cs(js, rem, k).schedule
            });
            s.verify(&jobs, Some(k)).unwrap();
            let v = s.value(&jobs);
            prop_assert!(v >= prev - 1e-9, "m={m}");
            prev = v;
        }
        // With n machines every singleton job fits (each job alone is
        // feasible, and LSA always accepts onto an empty machine).
        let s = iterative_multi_machine(&jobs, &ids, jobs.len(), |js, rem| {
            lsa_cs(js, rem, k).schedule
        });
        prop_assert_eq!(s.len(), jobs.len());
    }

    #[test]
    fn iterative_assignment_is_a_partition(jobs in arb_jobs(14), m in 1usize..4) {
        let ids = all_ids(&jobs);
        let s = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
            schedule_k0(js, rem).schedule
        });
        s.verify(&jobs, Some(0)).unwrap();
        // Machines used form a prefix 0..t of the machine ids.
        let machines = s.machines();
        for (i, &mach) in machines.iter().enumerate() {
            prop_assert_eq!(mach, i);
        }
        prop_assert!(machines.len() <= m);
    }

    #[test]
    fn migrative_dominates_one_machine_feasibility(jobs in arb_jobs(12), m in 2usize..5) {
        let ids = all_ids(&jobs);
        let one = global_edf(&jobs, &ids, 1);
        let many = global_edf(&jobs, &ids, m);
        many.schedule.verify(&jobs).unwrap();
        // Global EDF with more machines completes at least the value of one.
        prop_assert!(many.schedule.value(&jobs) >= one.schedule.value(&jobs) - 1e-9);
        // No job is both completed and missed.
        for j in many.schedule.scheduled_ids() {
            prop_assert!(!many.missed.contains(&j));
        }
    }

    #[test]
    fn migrative_never_splits_a_tick(jobs in arb_jobs(10), m in 1usize..4) {
        // verify() covers this, but assert the stronger per-job property:
        // total executed time equals the job length exactly for completions.
        let ids = all_ids(&jobs);
        let g = global_edf(&jobs, &ids, m);
        for j in g.schedule.scheduled_ids() {
            let profile = g.schedule.time_profile(j);
            prop_assert_eq!(profile.total_len(), jobs.job(j).length);
        }
    }

    #[test]
    fn per_machine_reduction_never_migrates(jobs in arb_jobs(14), k in 1u32..3, m in 1usize..4) {
        let ids = all_ids(&jobs);
        let multi = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
            greedy_unbounded(js, rem).schedule
        });
        let red = reduce_to_k_bounded(&jobs, &multi, k).unwrap();
        red.schedule.verify(&jobs, Some(k)).unwrap();
        for (id, a) in red.schedule.iter() {
            let orig = multi.assignment(id).expect("kept subset of input");
            prop_assert_eq!(a.machine, orig.machine);
        }
    }
}
