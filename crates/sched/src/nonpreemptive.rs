//! The `k = 0` special case (§5): no preemption allowed at all, while the
//! hypothetical competitor preempts freely.
//!
//! The paper's upper bound combines two trivial-to-state algorithms:
//!
//! * the en-bloc `LSA_CS` — classes of length-ratio ≤ 2, density order,
//!   leftmost single idle slot — achieving `val ≥ OPT_∞ / (3 log P)`;
//! * the best-single-job schedule, achieving `val ≥ OPT_∞ / n`;
//!
//! taking the better of the two gives `PoBP_0 = O(min{n, log P})`, which
//! Figure 2 shows is tight.

use crate::lsa::{lsa_cs, LsaOutcome};
use pobp_core::{Interval, JobId, JobSet, Schedule, SegmentSet};

/// Schedules the single job of maximal value at its release time.
///
/// The `n`-competitive half of the §5 upper bound: `OPT_∞` schedules at most
/// `n` jobs, each worth at most the maximum value.
pub fn best_single_job(jobs: &JobSet, ids: &[JobId]) -> LsaOutcome {
    let mut out = LsaOutcome {
        accepted: Vec::new(),
        rejected: ids.to_vec(),
        schedule: Schedule::new(),
    };
    let Some(&best) = ids.iter().max_by(|&&a, &&b| {
        jobs.job(a)
            .value
            .partial_cmp(&jobs.job(b).value)
            .expect("finite values")
            .then(b.cmp(&a))
    }) else {
        return out;
    };
    let job = jobs.job(best);
    out.accepted.push(best);
    out.rejected.retain(|&j| j != best);
    out.schedule.assign_single(
        best,
        SegmentSet::singleton(Interval::with_len(job.release, job.length)),
    );
    out
}

/// The §5 non-preemptive algorithm: better of en-bloc `LSA_CS` (length
/// classes of ratio ≤ 2) and the best single job.
///
/// Guarantee: `val ≥ OPT_∞ / O(min{n, log P})`, and this is tight
/// (Figure 2 / the `pobp-instances` generator).
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::schedule_k0;
///
/// let jobs: JobSet = vec![
///     Job::new(0, 8, 4, 2.0),
///     Job::new(0, 12, 4, 1.0),
/// ].into_iter().collect();
/// let out = schedule_k0(&jobs, &[JobId(0), JobId(1)]);
/// out.schedule.verify(&jobs, Some(0)).unwrap(); // zero preemptions
/// assert_eq!(out.accepted.len(), 2);
/// ```
pub fn schedule_k0(jobs: &JobSet, ids: &[JobId]) -> LsaOutcome {
    let cs = lsa_cs(jobs, ids, 0);
    let single = best_single_job(jobs, ids);
    if cs.value(jobs) >= single.value(jobs) {
        cs
    } else {
        single
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn best_single_picks_max_value() {
        let jobs: JobSet = vec![
            Job::new(0, 10, 2, 1.0),
            Job::new(0, 10, 2, 9.0),
            Job::new(0, 10, 2, 4.0),
        ]
        .into_iter()
        .collect();
        let out = best_single_job(&jobs, &ids_of(3));
        assert_eq!(out.accepted, vec![JobId(1)]);
        assert_eq!(out.value(&jobs), 9.0);
        assert_eq!(out.rejected.len(), 2);
        out.schedule.verify(&jobs, Some(0)).unwrap();
    }

    #[test]
    fn best_single_empty() {
        let out = best_single_job(&JobSet::new(), &[]);
        assert!(out.accepted.is_empty());
    }

    #[test]
    fn k0_schedule_is_always_en_bloc() {
        let jobs: JobSet = vec![
            Job::new(0, 30, 5, 1.0),
            Job::new(0, 30, 5, 2.0),
            Job::new(3, 12, 5, 3.0),
        ]
        .into_iter()
        .collect();
        let out = schedule_k0(&jobs, &ids_of(3));
        out.schedule.verify(&jobs, Some(0)).unwrap();
        for j in &out.accepted {
            assert_eq!(out.schedule.preemptions(*j), 0);
        }
    }

    #[test]
    fn k0_beats_single_when_packing_possible() {
        // Four disjoint unit jobs: LSA_CS takes all, single takes one.
        let jobs: JobSet = (0..4).map(|i| Job::new(3 * i, 3 * i + 2, 2, 1.0)).collect();
        let out = schedule_k0(&jobs, &ids_of(4));
        assert_eq!(out.accepted.len(), 4);
        assert_eq!(out.value(&jobs), 4.0);
    }

    #[test]
    fn k0_falls_back_to_single_heavy_job() {
        // One huge-value long job conflicting with many cheap short ones in
        // a *different* length class; single-job fallback must win if the
        // class selection somehow fails — here CS already finds it, so just
        // check the value is the max of both strategies.
        let mut v = vec![Job::new(0, 200, 100, 50.0)];
        for i in 0..8 {
            v.push(Job::new(10 * i, 10 * i + 3, 3, 1.0));
        }
        let jobs: JobSet = v.into_iter().collect();
        let n = jobs.len();
        let out = schedule_k0(&jobs, &ids_of(n));
        assert!(out.value(&jobs) >= 50.0);
        out.schedule.verify(&jobs, Some(0)).unwrap();
    }
}
