//! Reusable scratch memory for the scheduling hot path.
//!
//! A [`SolveWorkspace`] bundles the forest-algorithm scratch
//! ([`pobp_forest::Workspace`]) with the EDF and schedule-forest scratch
//! used by [`crate::edf_schedule_ws`], [`crate::laminarize_ws`],
//! [`crate::schedule_forest_ws`], [`crate::reconstruct_ws`] and
//! [`crate::reduce_to_k_bounded_ws`]. The engine holds one per worker
//! thread and reuses it across tasks, so the per-task hot path stops paying
//! for `HashMap`s and per-call `Vec`s (jobs carry dense ids, so every map
//! becomes an indexed array with epoch stamps).
//!
//! **Reuse contract.** Every `*_ws` function resets the buffers it uses at
//! entry — never relying on leftover contents — so a workspace survives
//! arbitrary interleavings of calls on unrelated instances, including reuse
//! after a panic was caught mid-call (`catch_unwind` in the engine pool).

use pobp_core::{Interval, JobId, MachineId, Time, Timeline};
use pobp_forest::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scratch for [`crate::edf_schedule_ws`]: per-job state as flat arrays
/// indexed by the dense `JobId`s, with an epoch stamp marking which entries
/// belong to the current call.
#[derive(Debug, Default)]
pub(crate) struct EdfScratch {
    /// Unprocessed ticks per job (valid where `stamp == epoch`).
    pub(crate) remaining: Vec<Time>,
    /// Emitted segments per job; inner capacity persists across calls.
    pub(crate) placed: Vec<Vec<Interval>>,
    /// `stamp[j] == epoch` ⇔ job `j` is in the current call's subset.
    pub(crate) stamp: Vec<u64>,
    /// Current call number.
    pub(crate) epoch: u64,
    /// Releases ascending.
    pub(crate) releases: Vec<(Time, JobId)>,
    /// Ready queue ordered by (deadline, id).
    pub(crate) ready: BinaryHeap<Reverse<(Time, JobId)>>,
}

impl EdfScratch {
    /// Grows the per-job arrays to cover ids `0..n` and starts a new epoch.
    pub(crate) fn begin(&mut self, n: usize) -> u64 {
        if self.remaining.len() < n {
            self.remaining.resize(n, 0);
            self.placed.resize_with(n, Vec::new);
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
        self.releases.clear();
        self.ready.clear();
        self.epoch
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.remaining.capacity() * size_of::<Time>()
            + self
                .placed
                .iter()
                .map(|p| p.capacity() * size_of::<Interval>())
                .sum::<usize>()
            + self.placed.capacity() * size_of::<Vec<Interval>>()
            + self.stamp.capacity() * size_of::<u64>()
            + self.releases.capacity() * size_of::<(Time, JobId)>()
            + self.ready.capacity() * size_of::<Reverse<(Time, JobId)>>()
    }
}

/// Scratch for the schedule⇄forest direction ([`crate::laminarize_ws`],
/// [`crate::schedule_forest_ws`], [`crate::reconstruct_ws`]).
#[derive(Debug, Default)]
pub(crate) struct SfScratch {
    /// Jobs assigned to the machine currently being laminarized.
    pub(crate) on_machine: Vec<JobId>,
    /// One machine's segments in time order (forest stack sweep).
    pub(crate) segs: Vec<(Interval, JobId)>,
    /// Span end per job (valid where `span_stamp == epoch`).
    pub(crate) span_end: Vec<Time>,
    /// Epoch stamp for `span_end`.
    pub(crate) span_stamp: Vec<u64>,
    /// `opened[j] == epoch` ⇔ job `j` already has a forest node.
    pub(crate) opened: Vec<u64>,
    /// Current call number.
    pub(crate) epoch: u64,
    /// Stack of currently-open `(job, node)` pairs.
    pub(crate) stack: Vec<(JobId, NodeId)>,
    /// Per-machine fill timelines for the left-merge reconstruction.
    pub(crate) timelines: Vec<(MachineId, Timeline)>,
    /// The `allowed(u)` interval list being assembled per kept node.
    pub(crate) allowed: Vec<Interval>,
}

impl SfScratch {
    /// Grows the per-job arrays to cover ids `0..n` and starts a new epoch.
    pub(crate) fn begin(&mut self, n: usize) -> u64 {
        if self.span_end.len() < n {
            self.span_end.resize(n, 0);
            self.span_stamp.resize(n, 0);
            self.opened.resize(n, 0);
        }
        self.epoch += 1;
        self.epoch
    }

    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.on_machine.capacity() * size_of::<JobId>()
            + self.segs.capacity() * size_of::<(Interval, JobId)>()
            + self.span_end.capacity() * size_of::<Time>()
            + self.span_stamp.capacity() * size_of::<u64>()
            + self.opened.capacity() * size_of::<u64>()
            + self.stack.capacity() * size_of::<(JobId, NodeId)>()
            + self.allowed.capacity() * size_of::<Interval>()
    }
}

/// Reusable scratch for the full solve pipeline (EDF → laminarize →
/// schedule forest → k-BAS → reconstruct).
///
/// Create one per worker thread and pass it to the `*_ws` entry points;
/// buffer capacity persists across calls, so steady-state solves allocate
/// only their outputs. A fresh workspace is cheap (all buffers start
/// empty) — the non-`_ws` wrappers create a throwaway one per call.
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    /// Scratch for the §3 forest algorithms (`tm`, contraction, extract).
    pub forest: pobp_forest::Workspace,
    /// Scratch for EDF (feasibility oracle + witness generator).
    pub(crate) edf: EdfScratch,
    /// Scratch for the §4.1 schedule⇄forest constructions.
    pub(crate) sf: SfScratch,
}

impl SolveWorkspace {
    /// A workspace with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently reserved by all scratch buffers (capacity,
    /// not length) — reported via the `engine.ws.scratch_bytes` obs event.
    pub fn scratch_bytes(&self) -> usize {
        self.forest.scratch_bytes() + self.edf.bytes() + self.sf.bytes()
    }
}
