//! The schedule forest of §4.1 and the left-merge reconstruction of
//! Lemma 4.1.
//!
//! **Forward direction** (schedule → forest): in a laminar schedule the
//! *preempts* relation (`(u,v) ∈ E ⟺ v` runs between two segments of `u`)
//! is a forest. We build it with a single stack sweep over the machine's
//! segments: when a job's first segment starts, its parent is the innermost
//! currently-open job. Each node's value is its job's value. In the
//! multi-machine setting the per-machine forests are merged into one
//! (remark in §4.1).
//!
//! **Backward direction** (k-BAS → k-bounded schedule): given the keep-set
//! of a k-BAS of the schedule forest, every kept job `u` is re-placed by
//! filling its `p_u` ticks leftmost into
//!
//! ```text
//! allowed(u) = span(u) \ ⋃ { span(c) : c kept child of u }
//! ```
//!
//! where `span(x)` is the interval from `x`'s first original segment start
//! to its last original segment end. This realizes the paper's "merge to
//! the left" across removed sub-jobs and absorbs any machine-idle holes.
//! Why it works (Lemma 4.1, spelled out for this implementation):
//!
//! * **fits**: `|span(u)| ≥ p_u + Σ_{all children} |span(c)|`, so removing
//!   only *kept* children leaves room;
//! * **window**: `span(u) ⊆ [r_u, d_u)`;
//! * **disjoint**: laminarity nests spans along ancestry; ancestor
//!   independence guarantees kept nodes of different components have
//!   ancestry-free — hence disjoint — spans, and a kept descendant always
//!   sits inside some kept child's span, which `allowed(u)` excludes;
//! * **preemption bound**: `span(u)` is one interval, so `allowed(u)` has
//!   at most (#kept children + 1) ≤ k + 1 components, and a leftmost fill
//!   produces at most that many segments.

use crate::workspace::{SfScratch, SolveWorkspace};
use pobp_core::{Interval, JobId, JobSet, MachineId, Schedule, Timeline};
use pobp_forest::{Forest, KeepSet, NodeId};

/// A schedule forest: the preemption structure of a laminar schedule, with
/// the mapping between forest nodes and scheduled jobs.
#[derive(Clone, Debug)]
pub struct ScheduleForest {
    /// The forest; node values are job values.
    pub forest: Forest,
    /// `node_job[node.0]` is the `(machine, job)` the node represents.
    pub node_job: Vec<(MachineId, JobId)>,
}

impl ScheduleForest {
    /// The job a node represents.
    pub fn job_of(&self, node: NodeId) -> JobId {
        self.node_job[node.0].1
    }

    /// The machine a node's job runs on.
    pub fn machine_of(&self, node: NodeId) -> MachineId {
        self.node_job[node.0].0
    }

    /// Jobs selected by a keep-set over this forest.
    pub fn kept_jobs(&self, keep: &KeepSet) -> Vec<JobId> {
        keep.ids().map(|n| self.job_of(n)).collect()
    }
}

/// Builds the schedule forest of a laminar schedule (§4.1). Multi-machine
/// schedules produce one merged forest with per-machine trees.
///
/// # Panics
/// Panics when the schedule is not laminar (the caller should
/// [`crate::laminarize`] first) — detected by the same sweep.
pub fn schedule_forest(jobs: &JobSet, schedule: &Schedule) -> ScheduleForest {
    schedule_forest_ws(jobs, schedule, &mut SolveWorkspace::new())
}

/// [`schedule_forest`] with caller-provided scratch memory (see
/// [`SolveWorkspace`]). Identical output.
///
/// # Panics
/// Panics when the schedule is not laminar, like [`schedule_forest`].
pub fn schedule_forest_ws(
    jobs: &JobSet,
    schedule: &Schedule,
    ws: &mut SolveWorkspace,
) -> ScheduleForest {
    let mut forest = Forest::new();
    let mut node_job = Vec::new();
    for machine in schedule.machines() {
        // Segments of this machine in time order. Per-job state lives in
        // epoch-stamped flat arrays; one epoch per machine.
        let epoch = ws.sf.begin(jobs.len());
        let SfScratch { segs, span_end, span_stamp, opened, stack, .. } = &mut ws.sf;
        segs.clear();
        stack.clear();
        for (id, a) in schedule.iter() {
            if a.machine != machine {
                continue;
            }
            segs.extend(a.segs.iter().map(|s| (*s, id)));
            span_end[id.0] = a.segs.max_end().expect("non-empty assignment");
            span_stamp[id.0] = epoch;
        }
        segs.sort_unstable_by_key(|(s, _)| (s.start, s.end));
        // Stack sweep; parent of a newly-opened job = innermost open job.
        for &(seg, id) in segs.iter() {
            while let Some(&(top, _)) = stack.last() {
                debug_assert_eq!(span_stamp[top.0], epoch);
                if span_end[top.0] <= seg.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if opened[id.0] == epoch {
                assert_eq!(
                    stack.last().map(|&(j, _)| j),
                    Some(id),
                    "schedule_forest: input schedule is not laminar at {seg:?}"
                );
                continue;
            }
            let value = jobs.job(id).value;
            let node = match stack.last() {
                Some(&(_, parent)) => forest.add_child(parent, value),
                None => forest.add_root(value),
            };
            debug_assert_eq!(node.0, node_job.len());
            node_job.push((machine, id));
            opened[id.0] = epoch;
            stack.push((id, node));
        }
    }
    ScheduleForest { forest, node_job }
}

/// Rebuilds a feasible `k`-bounded schedule from a laminar schedule and a
/// k-BAS keep-set over its schedule forest (Lemma 4.1's left-merge).
///
/// The result schedules exactly the kept jobs, each within its window, with
/// at most `k` preemptions each (`k` = the keep-set's degree bound), and
/// its total value equals the keep-set's value.
pub fn reconstruct(
    jobs: &JobSet,
    laminar: &Schedule,
    sf: &ScheduleForest,
    keep: &KeepSet,
) -> Schedule {
    reconstruct_ws(jobs, laminar, sf, keep, &mut SolveWorkspace::new())
}

/// [`reconstruct`] with caller-provided scratch memory (see
/// [`SolveWorkspace`]). Identical output.
pub fn reconstruct_ws(
    jobs: &JobSet,
    laminar: &Schedule,
    sf: &ScheduleForest,
    keep: &KeepSet,
    ws: &mut SolveWorkspace,
) -> Schedule {
    let mut out = Schedule::new();
    ws.sf.timelines.clear();
    for node in keep.ids() {
        let (machine, id) = sf.node_job[node.0];
        let segs = laminar.segments(id).expect("forest node of unscheduled job");
        let span = segs.span().expect("non-empty assignment");
        // allowed(u) = span(u) minus kept children's spans. Laminarity nests
        // the kept children's spans disjointly inside span(u), and node ids
        // are assigned in segment-start order per machine, so the children
        // list is already sorted by span start: a single cursor sweep
        // assembles the same interval list a SegmentSet subtraction would.
        ws.sf.allowed.clear();
        let mut cursor = span.start;
        for &c in sf.forest.children(node) {
            if keep.contains(c) {
                let cid = sf.job_of(c);
                let cspan = laminar
                    .segments(cid)
                    .expect("kept child unscheduled")
                    .span()
                    .expect("non-empty assignment");
                if cspan.start > cursor {
                    ws.sf.allowed.push(Interval::new(cursor, cspan.start));
                }
                cursor = cursor.max(cspan.end);
            }
        }
        if cursor < span.end {
            ws.sf.allowed.push(Interval::new(cursor, span.end));
        }
        let need = jobs.job(id).length;
        let timeline = match ws.sf.timelines.iter().position(|(m, _)| *m == machine) {
            Some(i) => &mut ws.sf.timelines[i].1,
            None => {
                ws.sf.timelines.push((machine, Timeline::new()));
                &mut ws.sf.timelines.last_mut().expect("just pushed").1
            }
        };
        let placed = timeline
            .fill_leftmost(&ws.sf.allowed, need)
            .expect("Lemma 4.1: allowed region must fit the job");
        out.assign(id, machine, placed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::edf_schedule;
    use pobp_core::{Job, SegmentSet};
    use pobp_forest::{is_kbas, tm};

    fn seg_set(pairs: &[(i64, i64)]) -> SegmentSet {
        SegmentSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    /// Nested triple: A ⊃ B ⊃ C plus a sibling D inside A after B.
    ///
    /// ```text
    /// time:  0    1    2    3    4    5    6    7    8    9
    /// A      ████                          ████
    /// B           ████           ████
    /// C                ████ ████
    /// D                                         ████ (separate gap? no —
    ///        D sits between A's segments after B: 7..8 is A; put D 8..9?)
    /// ```
    fn nested_jobs() -> (JobSet, Schedule) {
        // A: [0,1) and [6,7); B: [1,2) and [4,5); C: [2,4); D: [5,6).
        // Nesting: B,D inside A's gap; C inside B's gap.
        let jobs: JobSet = vec![
            Job::new(0, 10, 2, 10.0), // A
            Job::new(0, 10, 2, 5.0),  // B
            Job::new(0, 10, 2, 3.0),  // C
            Job::new(0, 10, 1, 2.0),  // D
        ]
        .into_iter()
        .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 1), (6, 7)]));
        s.assign_single(JobId(1), seg_set(&[(1, 2), (4, 5)]));
        s.assign_single(JobId(2), seg_set(&[(2, 4)]));
        s.assign_single(JobId(3), seg_set(&[(5, 6)]));
        s.verify(&jobs, None).unwrap();
        (jobs, s)
    }

    #[test]
    fn forest_captures_nesting() {
        let (jobs, s) = nested_jobs();
        let sf = schedule_forest(&jobs, &s);
        let f = &sf.forest;
        assert_eq!(f.len(), 4);
        assert_eq!(f.roots().len(), 1);
        let root = f.roots()[0];
        assert_eq!(sf.job_of(root), JobId(0));
        // A's children: B and D (both open inside A's span gap).
        let kids: Vec<JobId> = f.children(root).iter().map(|&c| sf.job_of(c)).collect();
        assert_eq!(kids, vec![JobId(1), JobId(3)]);
        // B's child: C.
        let b = f.children(root)[0];
        let bkids: Vec<JobId> = f.children(b).iter().map(|&c| sf.job_of(c)).collect();
        assert_eq!(bkids, vec![JobId(2)]);
        // Values carried over.
        assert_eq!(f.value(root), 10.0);
    }

    #[test]
    #[should_panic(expected = "not laminar")]
    fn forest_rejects_interleaving() {
        let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0), Job::new(0, 4, 2, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 1), (2, 3)]));
        s.assign_single(JobId(1), seg_set(&[(1, 2), (3, 4)]));
        let _ = schedule_forest(&jobs, &s);
    }

    #[test]
    fn sequential_jobs_make_separate_roots() {
        let jobs: JobSet = vec![Job::new(0, 5, 2, 1.0), Job::new(0, 10, 2, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 2)]));
        s.assign_single(JobId(1), seg_set(&[(2, 4)]));
        let sf = schedule_forest(&jobs, &s);
        assert_eq!(sf.forest.roots().len(), 2);
    }

    #[test]
    fn multi_machine_forests_merge() {
        let jobs: JobSet = vec![Job::new(0, 5, 2, 1.0), Job::new(0, 5, 2, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, seg_set(&[(0, 2)]));
        s.assign(JobId(1), 3, seg_set(&[(0, 2)]));
        let sf = schedule_forest(&jobs, &s);
        assert_eq!(sf.forest.roots().len(), 2);
        assert_eq!(sf.machine_of(NodeId(0)), 0);
        assert_eq!(sf.machine_of(NodeId(1)), 3);
    }

    #[test]
    fn reconstruct_full_keep_is_feasible() {
        let (jobs, s) = nested_jobs();
        let sf = schedule_forest(&jobs, &s);
        let keep = KeepSet::from_mask(vec![true; 4]);
        let rec = reconstruct(&jobs, &s, &sf, &keep);
        rec.verify(&jobs, None).unwrap();
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.value(&jobs), 20.0);
        // A keeps both children → 2 gaps → ≤ 3 segments.
        assert!(rec.preemptions(JobId(0)) <= 2);
    }

    #[test]
    fn reconstruct_merges_left_over_removed_child() {
        let (jobs, s) = nested_jobs();
        let sf = schedule_forest(&jobs, &s);
        // Remove B's subtree (B and C pruned down), keep A and D.
        let a_node = sf.forest.roots()[0];
        let d_node = *sf
            .forest
            .children(a_node)
            .iter()
            .find(|&&c| sf.job_of(c) == JobId(3))
            .unwrap();
        let keep = KeepSet::from_ids(sf.forest.len(), &[a_node, d_node]);
        assert!(is_kbas(&sf.forest, &keep, 1));
        let rec = reconstruct(&jobs, &s, &sf, &keep);
        rec.verify(&jobs, Some(1)).unwrap();
        assert_eq!(rec.len(), 2);
        // A's work fills leftmost around D's span [5,6): A gets [0,1)+... —
        // allowed(A) = [0,7) minus [5,6); leftmost 2 ticks → [0,2).
        assert_eq!(rec.segments(JobId(0)).unwrap().segments(), &[Interval::new(0, 2)]);
        // D stays inside its own span.
        assert_eq!(rec.segments(JobId(3)).unwrap().segments(), &[Interval::new(5, 6)]);
    }

    #[test]
    fn reconstruct_after_tm_is_k_bounded() {
        let (jobs, s) = nested_jobs();
        let sf = schedule_forest(&jobs, &s);
        for k in 0..3u32 {
            let res = tm(&sf.forest, k);
            assert!(is_kbas(&sf.forest, &res.keep, k));
            let rec = reconstruct(&jobs, &s, &sf, &res.keep);
            rec.verify(&jobs, Some(k)).unwrap();
            // Value of the reconstruction = value of the k-BAS.
            assert!((rec.value(&jobs) - res.value).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn reconstruct_absorbs_idle_holes() {
        // A preempted with an idle hole (availability-split): A [0,2), [5,7)
        // with child B at [2,3) and idle [3,5). Removing B, A merges left
        // across both the removed block and the hole.
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(0, 10, 1, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 2), (5, 7)]));
        s.assign_single(JobId(1), seg_set(&[(2, 3)]));
        let sf = schedule_forest(&jobs, &s);
        let root = sf.forest.roots()[0];
        let keep = KeepSet::from_ids(sf.forest.len(), &[root]);
        let rec = reconstruct(&jobs, &s, &sf, &keep);
        rec.verify(&jobs, Some(0)).unwrap();
        assert_eq!(rec.segments(JobId(0)).unwrap().segments(), &[Interval::new(0, 4)]);
    }

    #[test]
    fn reconstruct_component_below_pruned_up_root_stays_in_place() {
        let (jobs, s) = nested_jobs();
        let sf = schedule_forest(&jobs, &s);
        // Prune A up; keep B (with child C) and D as separate components.
        let a = sf.forest.roots()[0];
        let members: Vec<NodeId> = sf.forest.ids().filter(|&n| n != a).collect();
        let keep = KeepSet::from_ids(sf.forest.len(), &members);
        assert!(is_kbas(&sf.forest, &keep, 1));
        let rec = reconstruct(&jobs, &s, &sf, &keep);
        rec.verify(&jobs, Some(1)).unwrap();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.value(&jobs), 10.0);
    }

    #[test]
    fn edf_to_forest_roundtrip() {
        // An EDF schedule is laminar by construction → forest builds fine.
        let jobs: JobSet = vec![
            Job::new(0, 40, 12, 1.0),
            Job::new(2, 10, 4, 1.0),
            Job::new(3, 7, 2, 1.0),
            Job::new(15, 25, 5, 1.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<JobId> = (0..4).map(JobId).collect();
        let out = edf_schedule(&jobs, &ids, None);
        assert!(out.is_feasible());
        let sf = schedule_forest(&jobs, &out.schedule);
        assert_eq!(sf.forest.len(), 4);
        // j0 is preempted by j1, which is preempted by j2; j3 may nest in j0.
        let keep = KeepSet::from_mask(vec![true; 4]);
        let rec = reconstruct(&jobs, &out.schedule, &sf, &keep);
        rec.verify(&jobs, None).unwrap();
    }
}
