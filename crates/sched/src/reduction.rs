//! The §4.2 pipeline: `∞`-preemptive schedule → laminarize → schedule
//! forest → optimal k-BAS (`TM`) → left-merge reconstruction.
//!
//! This is the constructive content of Theorem 4.2: the output is a feasible
//! `k`-bounded schedule whose value is at least
//! `val(input schedule) / log_{k+1} n`.

use crate::laminar::laminarize_ws;
use crate::sforest::{reconstruct_ws, schedule_forest_ws, ScheduleForest};
use crate::workspace::SolveWorkspace;
use pobp_core::{obs_count, obs_time, Infeasibility, JobSet, Schedule};
use pobp_forest::{levelled_contraction_ws, tm_ws, KeepSet, TmResult};

/// Which k-BAS solver drives the reduction.
///
/// The paper's Algorithm 3 (line 3) literally invokes
/// `LevelledContraction`; `TM` is optimal and therefore never worse
/// (Theorem 3.9's proof order). Both satisfy the `log_{k+1} n` bound; the
/// ablation benches measure the gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KbasSolver {
    /// The optimal dynamic program of §3.2 (default).
    #[default]
    Tm,
    /// Algorithm 1, as written in the paper's Algorithm 3.
    LevelledContraction,
}

/// Everything produced by the reduction, for inspection by experiments.
#[derive(Clone, Debug)]
pub struct ReductionOutcome {
    /// The laminarized copy of the input schedule (same jobs and value).
    pub laminar: Schedule,
    /// The schedule forest of the laminarized schedule.
    pub forest: ScheduleForest,
    /// The optimal k-BAS over the forest (populated by the `Tm` solver;
    /// for `LevelledContraction` it holds the TM tables of the same forest
    /// so experiments can compare — `keep_used` is what was applied).
    pub kbas: TmResult,
    /// The keep-set actually used to rebuild the schedule.
    pub keep_used: KeepSet,
    /// The final feasible `k`-bounded schedule.
    pub schedule: Schedule,
}

impl ReductionOutcome {
    /// Value retained by the `k`-bounded schedule.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.schedule.value(jobs)
    }
}

/// Converts a feasible `∞`-preemptive schedule into a feasible `k`-bounded
/// one (Theorem 4.2). Works for single- and multi-machine (non-migrative)
/// schedules alike — the per-machine forests are merged, and `TM` on the
/// merged forest decomposes over its trees (Observation 3.5).
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::{edf_schedule, reduce_to_k_bounded};
///
/// let jobs: JobSet = vec![
///     Job::new(0, 10, 6, 2.0),  // outer job, preempted by the inner one
///     Job::new(2, 6, 3, 1.0),
/// ].into_iter().collect();
/// let inf = edf_schedule(&jobs, &[JobId(0), JobId(1)], None);
/// assert!(inf.is_feasible());
///
/// // k = 1 suffices here: both jobs survive the reduction.
/// let red = reduce_to_k_bounded(&jobs, &inf.schedule, 1).unwrap();
/// red.schedule.verify(&jobs, Some(1)).unwrap();
/// assert_eq!(red.schedule.len(), 2);
/// ```
///
/// # Errors
/// Returns the input schedule's infeasibility, if any.
pub fn reduce_to_k_bounded(
    jobs: &JobSet,
    schedule: &Schedule,
    k: u32,
) -> Result<ReductionOutcome, Infeasibility> {
    reduce_to_k_bounded_ws(jobs, schedule, k, KbasSolver::Tm, &mut SolveWorkspace::new())
}

/// [`reduce_to_k_bounded`] with an explicit k-BAS solver choice.
pub fn reduce_to_k_bounded_with(
    jobs: &JobSet,
    schedule: &Schedule,
    k: u32,
    solver: KbasSolver,
) -> Result<ReductionOutcome, Infeasibility> {
    reduce_to_k_bounded_ws(jobs, schedule, k, solver, &mut SolveWorkspace::new())
}

/// [`reduce_to_k_bounded_with`] with caller-provided scratch memory (see
/// [`SolveWorkspace`]). Identical output.
///
/// # Errors
/// Returns the input schedule's infeasibility, if any.
pub fn reduce_to_k_bounded_ws(
    jobs: &JobSet,
    schedule: &Schedule,
    k: u32,
    solver: KbasSolver,
    ws: &mut SolveWorkspace,
) -> Result<ReductionOutcome, Infeasibility> {
    let plan = ReductionPlan::new_ws(jobs, schedule, ws)?;
    Ok(plan.solve_ws(jobs, k, solver, ws))
}

/// The `k`-independent prefix of the reduction pipeline: the laminarized
/// schedule and its schedule forest.
///
/// Sweeps over a `k`-grid rebuild these once via [`ReductionPlan::new`] and
/// then call [`ReductionPlan::solve`] per `k` — only the k-BAS and the
/// left-merge reconstruction depend on `k`. `solve` output is byte-identical
/// to [`reduce_to_k_bounded_with`] on the same inputs.
#[derive(Clone, Debug)]
pub struct ReductionPlan {
    /// The laminarized copy of the input schedule (same jobs and value).
    pub laminar: Schedule,
    /// The schedule forest of the laminarized schedule.
    pub forest: ScheduleForest,
}

impl ReductionPlan {
    /// Laminarizes `schedule` and builds its schedule forest.
    ///
    /// # Errors
    /// Returns the input schedule's infeasibility, if any.
    pub fn new(jobs: &JobSet, schedule: &Schedule) -> Result<ReductionPlan, Infeasibility> {
        Self::new_ws(jobs, schedule, &mut SolveWorkspace::new())
    }

    /// [`ReductionPlan::new`] with caller-provided scratch memory.
    ///
    /// # Errors
    /// Returns the input schedule's infeasibility, if any.
    pub fn new_ws(
        jobs: &JobSet,
        schedule: &Schedule,
        ws: &mut SolveWorkspace,
    ) -> Result<ReductionPlan, Infeasibility> {
        let laminar =
            obs_time!("sched.reduction.time.laminarize", laminarize_ws(jobs, schedule, ws)?);
        let forest =
            obs_time!("sched.reduction.time.forest", schedule_forest_ws(jobs, &laminar, ws));
        Ok(ReductionPlan { laminar, forest })
    }

    /// Runs the `k`-dependent tail of the pipeline (k-BAS + reconstruction).
    pub fn solve(&self, jobs: &JobSet, k: u32, solver: KbasSolver) -> ReductionOutcome {
        self.solve_ws(jobs, k, solver, &mut SolveWorkspace::new())
    }

    /// [`ReductionPlan::solve`] with caller-provided scratch memory.
    pub fn solve_ws(
        &self,
        jobs: &JobSet,
        k: u32,
        solver: KbasSolver,
        ws: &mut SolveWorkspace,
    ) -> ReductionOutcome {
        obs_count!("sched.reduction.runs");
        let kbas =
            obs_time!("sched.reduction.time.kbas", tm_ws(&self.forest.forest, k, &mut ws.forest));
        let keep_used = match solver {
            KbasSolver::Tm => kbas.keep.clone(),
            KbasSolver::LevelledContraction => {
                if self.forest.forest.is_empty() {
                    kbas.keep.clone()
                } else {
                    levelled_contraction_ws(&self.forest.forest, k, &mut ws.forest)
                        .keep(&self.forest.forest)
                }
            }
        };
        let schedule = obs_time!(
            "sched.reduction.time.reconstruct",
            reconstruct_ws(jobs, &self.laminar, &self.forest, &keep_used, ws)
        );
        debug_assert!(schedule.verify(jobs, Some(k)).is_ok());
        ReductionOutcome {
            laminar: self.laminar.clone(),
            forest: self.forest.clone(),
            kbas,
            keep_used,
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::edf_schedule;
    use pobp_core::{Job, JobId};
    use pobp_forest::loss_bound;

    #[test]
    fn reduction_respects_theorem_4_2() {
        // A moderately nested EDF schedule; for each k the reduction must be
        // feasible, k-bounded, and lose at most a log_{k+1} n factor.
        let jobs: JobSet = vec![
            Job::new(0, 100, 30, 8.0),
            Job::new(2, 40, 10, 4.0),
            Job::new(4, 20, 6, 2.0),
            Job::new(5, 10, 2, 1.0),
            Job::new(50, 90, 10, 3.0),
            Job::new(55, 70, 5, 2.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<JobId> = (0..6).map(JobId).collect();
        let inf = edf_schedule(&jobs, &ids, None);
        assert!(inf.is_feasible());
        let total = inf.schedule.value(&jobs);
        for k in 0..4u32 {
            let red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
            red.schedule.verify(&jobs, Some(k)).unwrap();
            let bound = loss_bound(jobs.len(), k.max(1));
            assert!(
                red.value(&jobs) * bound >= total - 1e-9,
                "k={k}: {} × {bound} < {total}",
                red.value(&jobs)
            );
            // Reconstruction value equals the k-BAS value.
            assert!((red.value(&jobs) - red.kbas.value).abs() < 1e-9);
        }
    }

    #[test]
    fn reduction_with_large_k_keeps_everything() {
        let jobs: JobSet = vec![
            Job::new(0, 50, 20, 1.0),
            Job::new(1, 10, 3, 1.0),
            Job::new(12, 30, 5, 1.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<JobId> = (0..3).map(JobId).collect();
        let inf = edf_schedule(&jobs, &ids, None);
        let red = reduce_to_k_bounded(&jobs, &inf.schedule, 10).unwrap();
        assert_eq!(red.schedule.len(), 3);
        assert_eq!(red.value(&jobs), 3.0);
    }

    #[test]
    fn reduction_propagates_infeasibility() {
        let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0)].into_iter().collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), pobp_core::SegmentSet::singleton(pobp_core::Interval::new(0, 3)));
        assert!(reduce_to_k_bounded(&jobs, &s, 1).is_err());
    }

    #[test]
    fn lc_solver_is_feasible_and_dominated_by_tm() {
        let jobs: JobSet = vec![
            Job::new(0, 100, 30, 8.0),
            Job::new(2, 40, 10, 4.0),
            Job::new(4, 20, 6, 2.0),
            Job::new(5, 10, 2, 1.0),
            Job::new(50, 90, 10, 3.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<JobId> = (0..5).map(JobId).collect();
        let inf = edf_schedule(&jobs, &ids, None);
        for k in 0..3u32 {
            let lc = super::reduce_to_k_bounded_with(
                &jobs,
                &inf.schedule,
                k,
                super::KbasSolver::LevelledContraction,
            )
            .unwrap();
            lc.schedule.verify(&jobs, Some(k)).unwrap();
            let tm_red = reduce_to_k_bounded(&jobs, &inf.schedule, k).unwrap();
            assert!(
                tm_red.schedule.value(&jobs) >= lc.schedule.value(&jobs) - 1e-9,
                "k={k}"
            );
            // Both obey Theorem 3.9's bound against the input value.
            if k >= 1 {
                let bound = loss_bound(jobs.len(), k);
                assert!(lc.schedule.value(&jobs) * bound >= inf.schedule.value(&jobs) - 1e-9);
            }
        }
    }

    #[test]
    fn reduction_on_empty_schedule() {
        let jobs = JobSet::new();
        let red = reduce_to_k_bounded(&jobs, &Schedule::new(), 1).unwrap();
        assert!(red.schedule.is_empty());
        assert_eq!(red.kbas.value, 0.0);
    }

    #[test]
    fn reduction_multi_machine() {
        let jobs: JobSet = vec![
            Job::new(0, 20, 8, 2.0),
            Job::new(1, 9, 3, 1.0),
            Job::new(0, 20, 8, 2.0),
            Job::new(1, 9, 3, 1.0),
        ]
        .into_iter()
        .collect();
        // Same nested pattern on two machines.
        let mut s = Schedule::new();
        for (machine, big, small) in [(0usize, 0usize, 1usize), (1, 2, 3)] {
            s.assign(
                JobId(big),
                machine,
                pobp_core::SegmentSet::from_intervals([
                    pobp_core::Interval::new(0, 1),
                    pobp_core::Interval::new(4, 11),
                ]),
            );
            s.assign(
                JobId(small),
                machine,
                pobp_core::SegmentSet::singleton(pobp_core::Interval::new(1, 4)),
            );
        }
        s.verify(&jobs, None).unwrap();
        let red = reduce_to_k_bounded(&jobs, &s, 1).unwrap();
        red.schedule.verify(&jobs, Some(1)).unwrap();
        // k = 1 suffices to keep all four jobs (each big job has one child).
        assert_eq!(red.schedule.len(), 4);
        // Machines preserved.
        assert_eq!(red.schedule.machines(), vec![0, 1]);
    }
}
