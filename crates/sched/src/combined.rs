//! Algorithm 3: `k-PreemptionCombined` (§4.3.3).
//!
//! Split the jobs by relative laxity at `k + 1`:
//!
//! * **strict** jobs (`λ ≤ k+1`) go through the §4.1/§4.2 reduction applied
//!   to the input `∞`-preemptive schedule restricted to them — Lemma 4.6
//!   bounds the loss by `log_{k+1}(P·λ_max) ≤ log_{k+1} P + 1`;
//! * **lax** jobs (`λ ≥ k+1`) are rescheduled from scratch by `LSA_CS` —
//!   Lemma 4.10 bounds the loss by `6·log_{k+1} P`.
//!
//! One of the two classes carries at least half of the optimum, so the
//! better branch is an `O(log_{k+1} P)` approximation of `OPT_∞`
//! (Theorem 4.5).

use crate::baselines::greedy_unbounded;
use crate::lsa::lsa_cs;
use crate::reduction::reduce_to_k_bounded;
use pobp_core::{obs_count, Infeasibility, JobId, JobSet, Schedule};

/// The two branches of Algorithm 3, for inspection.
#[derive(Clone, Debug)]
pub struct CombinedOutcome {
    /// Strict-branch schedule (reduction of the restricted input schedule).
    pub strict: Schedule,
    /// Lax-branch schedule (`LSA_CS` from scratch).
    pub lax: Schedule,
    /// The returned schedule: the better branch.
    pub chosen: Schedule,
}

/// Runs Algorithm 3 on the candidate jobs `ids` with a feasible
/// `∞`-preemptive schedule of (a subset of) them.
///
/// Only jobs in `ids` are considered for either branch, which is what the
/// iterative multi-machine extension needs (machine `i+1` must not touch
/// jobs machines `0..=i` already took).
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::{edf_schedule, k_preemption_combined};
///
/// let jobs: JobSet = vec![
///     Job::new(0, 12, 9, 5.0),  // strict (λ = 4/3)
///     Job::new(0, 100, 4, 3.0), // lax
/// ].into_iter().collect();
/// let ids = [JobId(0), JobId(1)];
/// let inf = edf_schedule(&jobs, &ids, None);
/// let out = k_preemption_combined(&jobs, &ids, &inf.schedule, 1).unwrap();
/// out.chosen.verify(&jobs, Some(1)).unwrap();
/// // Chosen is the better of the strict/lax branches.
/// assert!(out.chosen.value(&jobs) >= out.lax.value(&jobs));
/// ```
///
/// # Errors
/// Returns the input schedule's infeasibility, if any.
pub fn k_preemption_combined(
    jobs: &JobSet,
    ids: &[JobId],
    schedule_inf: &Schedule,
    k: u32,
) -> Result<CombinedOutcome, Infeasibility> {
    schedule_inf.verify(jobs, None)?;
    obs_count!("sched.combined.runs");
    let mut strict_ids = Vec::new();
    let mut lax_ids = Vec::new();
    for &j in ids {
        if jobs.job(j).is_strict(k) {
            strict_ids.push(j);
        } else {
            lax_ids.push(j);
        }
    }
    obs_count!("sched.combined.strict_jobs", strict_ids.len());
    obs_count!("sched.combined.lax_jobs", lax_ids.len());
    // Strict branch: restrict the given schedule to strict jobs, reduce.
    let strict = reduce_to_k_bounded(jobs, &schedule_inf.restricted_to(&strict_ids), k)?;
    // Lax branch: LSA_CS on all lax jobs (ignores the input schedule).
    let lax = lsa_cs(jobs, &lax_ids, k);
    let (sv, lv) = (strict.schedule.value(jobs), lax.schedule.value(jobs));
    let chosen = if sv >= lv {
        obs_count!("sched.combined.strict_branch_wins");
        strict.schedule.clone()
    } else {
        obs_count!("sched.combined.lax_branch_wins");
        lax.schedule.clone()
    };
    Ok(CombinedOutcome { strict: strict.schedule, lax: lax.schedule, chosen })
}

/// Convenience entry point when no `∞`-preemptive schedule is at hand:
/// builds one with the greedy EDF acceptance baseline, then runs
/// Algorithm 3.
pub fn combined_from_scratch(jobs: &JobSet, ids: &[JobId], k: u32) -> CombinedOutcome {
    let inf = greedy_unbounded(jobs, ids);
    k_preemption_combined(jobs, ids, &inf.schedule, k).expect("EDF schedule is feasible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::edf_schedule;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn combined_output_is_k_feasible() {
        let jobs: JobSet = vec![
            Job::new(0, 12, 9, 5.0),   // strict (λ = 4/3)
            Job::new(2, 8, 3, 2.0),    // strict (λ = 2) for k=1
            Job::new(0, 100, 4, 3.0),  // lax (λ = 25)
            Job::new(10, 80, 5, 1.0),  // lax (λ = 14)
        ]
        .into_iter()
        .collect();
        let inf = edf_schedule(&jobs, &ids_of(4), None);
        assert!(inf.is_feasible());
        for k in 1..4u32 {
            let out = k_preemption_combined(&jobs, &ids_of(4), &inf.schedule, k).unwrap();
            out.chosen.verify(&jobs, Some(k)).unwrap();
            out.strict.verify(&jobs, Some(k)).unwrap();
            out.lax.verify(&jobs, Some(k)).unwrap();
            // Chosen = max of branches.
            let c = out.chosen.value(&jobs);
            assert!(c >= out.strict.value(&jobs) - 1e-9);
            assert!(c >= out.lax.value(&jobs) - 1e-9);
        }
    }

    #[test]
    fn lax_branch_handles_all_lax_input() {
        // Everything lax: the strict branch is empty.
        let jobs: JobSet = (0..5).map(|i| Job::new(0, 200, 4 + i, 1.0 + i as f64)).collect();
        let inf = edf_schedule(&jobs, &ids_of(5), None);
        let out = k_preemption_combined(&jobs, &ids_of(5), &inf.schedule, 1).unwrap();
        assert!(out.strict.is_empty());
        assert!(!out.lax.is_empty());
        assert_eq!(out.chosen.value(&jobs), out.lax.value(&jobs));
    }

    #[test]
    fn strict_branch_handles_all_strict_input() {
        let jobs: JobSet = vec![Job::new(0, 10, 9, 1.0), Job::new(12, 20, 7, 1.0)]
            .into_iter()
            .collect();
        let inf = edf_schedule(&jobs, &ids_of(2), None);
        let out = k_preemption_combined(&jobs, &ids_of(2), &inf.schedule, 1).unwrap();
        assert!(out.lax.is_empty());
        assert_eq!(out.chosen.len(), 2);
    }

    #[test]
    fn from_scratch_runs_end_to_end() {
        let jobs: JobSet = vec![
            Job::new(0, 40, 30, 10.0),
            Job::new(5, 15, 4, 3.0),
            Job::new(0, 300, 10, 6.0),
        ]
        .into_iter()
        .collect();
        for k in 1..3 {
            let out = combined_from_scratch(&jobs, &ids_of(3), k);
            out.chosen.verify(&jobs, Some(k)).unwrap();
        }
    }

    #[test]
    fn combined_rejects_infeasible_schedule() {
        let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0)].into_iter().collect();
        let mut s = Schedule::new();
        s.assign_single(
            JobId(0),
            pobp_core::SegmentSet::singleton(pobp_core::Interval::new(0, 3)),
        );
        assert!(k_preemption_combined(&jobs, &[JobId(0)], &s, 1).is_err());
    }
}
