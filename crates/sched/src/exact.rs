//! Exact (exponential) reference oracles for small instances.
//!
//! The paper treats `OPT_∞` as given (Lawler's pseudo-polynomial DP [21])
//! and never needs `OPT_k` explicitly — only bounds on it. For the
//! experiments we need concrete numbers, so this module provides:
//!
//! * [`opt_unbounded`] — exact `OPT_∞` via branch-and-bound over job
//!   subsets, using the classical fact that a subset is `∞`-preemptively
//!   feasible iff EDF completes it;
//! * [`opt_nonpreemptive`] — exact `OPT_0` via the Held-Karp-style subset
//!   DP on earliest completion times;
//! * [`opt_k_bounded_small`] — exact `OPT_k` for *tiny* integer instances
//!   via a memoized tick-by-tick search.
//!
//! All three are deliberately exponential and assert small inputs; they are
//! test- and experiment-grade oracles, not production algorithms (see
//! `DESIGN.md` §4 — this is the documented substitution for Lawler's
//! unpublished implementation).

use crate::edf::edf_schedule;
use pobp_core::{Interval, JobId, JobSet, Schedule, SegmentSet, Time, Value};
use std::collections::HashMap;

/// An exact optimum: value, chosen subset, and a witness schedule.
#[derive(Clone, Debug)]
pub struct ExactOpt {
    /// Optimal total value.
    pub value: Value,
    /// The jobs achieving it.
    pub subset: Vec<JobId>,
    /// A feasible witness schedule of `subset` (machine 0).
    pub schedule: Schedule,
}

/// Maximum candidate count accepted by [`opt_unbounded`].
pub const OPT_UNBOUNDED_LIMIT: usize = 24;

/// Exact `OPT_∞` on one machine by branch-and-bound over subsets.
///
/// Sound and complete because `∞`-preemptive feasibility is downward closed
/// and exactly decided by EDF. Jobs are branched in descending value order;
/// a branch is cut when even taking every remaining job cannot beat the
/// incumbent.
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::opt_unbounded;
///
/// // Two of these three length-2 jobs fit in the shared window of 4.
/// let jobs: JobSet = vec![
///     Job::new(0, 4, 2, 5.0),
///     Job::new(0, 4, 2, 3.0),
///     Job::new(0, 4, 2, 4.0),
/// ].into_iter().collect();
/// let ids: Vec<JobId> = jobs.ids().collect();
/// let opt = opt_unbounded(&jobs, &ids);
/// assert_eq!(opt.value, 9.0); // the 5 + 4 pair
/// ```
///
/// # Panics
/// Panics when `ids.len() > OPT_UNBOUNDED_LIMIT`.
pub fn opt_unbounded(jobs: &JobSet, ids: &[JobId]) -> ExactOpt {
    assert!(
        ids.len() <= OPT_UNBOUNDED_LIMIT,
        "opt_unbounded limited to {OPT_UNBOUNDED_LIMIT} jobs, got {}",
        ids.len()
    );
    let mut order = ids.to_vec();
    order.sort_by(|&a, &b| {
        jobs.job(b)
            .value
            .partial_cmp(&jobs.job(a).value)
            .expect("finite values")
            .then(a.cmp(&b))
    });
    // Suffix sums of values for the upper bound.
    let mut suffix: Vec<Value> = vec![0.0; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] + jobs.job(order[i]).value;
    }

    struct Search<'a> {
        jobs: &'a JobSet,
        order: &'a [JobId],
        suffix: &'a [Value],
        best_value: Value,
        /// Best subset as a bitmask over `order` indices (n ≤ 24): recording
        /// an improvement is a register copy, not a `Vec` clone.
        best_mask: u32,
        chosen: Vec<JobId>,
        ws: crate::workspace::SolveWorkspace,
    }
    impl Search<'_> {
        fn dfs(&mut self, i: usize, value: Value, mask: u32) {
            if value > self.best_value {
                self.best_value = value;
                self.best_mask = mask;
            }
            if i == self.order.len() || value + self.suffix[i] <= self.best_value {
                return;
            }
            // Include order[i] if still feasible.
            let j = self.order[i];
            self.chosen.push(j);
            if crate::edf::edf_core(self.jobs, &self.chosen, None, &mut self.ws.edf).is_feasible()
            {
                self.dfs(i + 1, value + self.jobs.job(j).value, mask | (1 << i));
            }
            self.chosen.pop();
            // Exclude.
            self.dfs(i + 1, value, mask);
        }
    }
    let mut search = Search {
        jobs,
        order: &order,
        suffix: &suffix,
        best_value: 0.0,
        best_mask: 0,
        chosen: Vec::new(),
        ws: crate::workspace::SolveWorkspace::new(),
    };
    search.dfs(0, 0.0, 0);
    let mut subset: Vec<JobId> = order
        .iter()
        .enumerate()
        .filter(|(i, _)| search.best_mask & (1 << i) != 0)
        .map(|(_, &j)| j)
        .collect();
    subset.sort_unstable();
    let schedule = edf_schedule(jobs, &subset, None).schedule;
    debug_assert!(schedule.verify(jobs, None).is_ok());
    ExactOpt { value: search.best_value, subset, schedule }
}

/// Maximum candidate count accepted by [`opt_nonpreemptive`].
pub const OPT_NONPREEMPTIVE_LIMIT: usize = 20;

/// Exact `OPT_0` (non-preemptive, en-bloc) on one machine via the subset DP
/// on earliest completion times: `f[S] = min_{j ∈ S, f[S\{j}] defined}`
/// `max(f[S\{j}], r_j) + p_j`, kept only when `≤ d_j`. Left-shifting never
/// hurts feasibility with release times, so the DP is exact.
///
/// # Panics
/// Panics when `ids.len() > OPT_NONPREEMPTIVE_LIMIT`.
pub fn opt_nonpreemptive(jobs: &JobSet, ids: &[JobId]) -> ExactOpt {
    let n = ids.len();
    assert!(
        n <= OPT_NONPREEMPTIVE_LIMIT,
        "opt_nonpreemptive limited to {OPT_NONPREEMPTIVE_LIMIT} jobs, got {n}"
    );
    // f[mask] = earliest completion of scheduling exactly `mask`; None = infeasible.
    let mut f: Vec<Option<Time>> = vec![None; 1 << n];
    // last[mask] = which job goes last in the optimal order (for recovery).
    let mut last: Vec<usize> = vec![usize::MAX; 1 << n];
    f[0] = Some(Time::MIN);
    for mask in 1usize..(1 << n) {
        for (bit, &j) in ids.iter().enumerate() {
            if mask & (1 << bit) == 0 {
                continue;
            }
            let Some(prev) = f[mask ^ (1 << bit)] else { continue };
            let job = jobs.job(j);
            let start = prev.max(job.release);
            let end = start + job.length;
            if end > job.deadline {
                continue;
            }
            if f[mask].is_none_or(|cur| end < cur) {
                f[mask] = Some(end);
                last[mask] = bit;
            }
        }
    }
    // Best-value feasible mask.
    let mut best_mask = 0usize;
    let mut best_value = 0.0f64;
    for (mask, completion) in f.iter().enumerate() {
        if completion.is_none() {
            continue;
        }
        let value: Value = ids
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, &j)| jobs.job(j).value)
            .sum();
        if value > best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    // Recover the order and build the schedule.
    let mut sequence = Vec::new();
    let mut mask = best_mask;
    while mask != 0 {
        let bit = last[mask];
        sequence.push(ids[bit]);
        mask ^= 1 << bit;
    }
    sequence.reverse();
    let mut schedule = Schedule::new();
    let mut t = Time::MIN;
    for &j in &sequence {
        let job = jobs.job(j);
        let start = t.max(job.release);
        schedule.assign_single(j, SegmentSet::singleton(Interval::with_len(start, job.length)));
        t = start + job.length;
    }
    debug_assert!(schedule.verify(jobs, Some(0)).is_ok());
    let mut subset = sequence;
    subset.sort_unstable();
    ExactOpt { value: best_value, subset, schedule }
}

/// Limits for [`opt_k_bounded_small`].
pub const OPT_K_BOUNDED_MAX_JOBS: usize = 6;
/// Maximum horizon length for [`opt_k_bounded_small`].
pub const OPT_K_BOUNDED_MAX_HORIZON: Time = 48;

/// Whether `ids` of `jobs` fits inside [`opt_k_bounded_small`]'s limits
/// (`n ≤ 6`, horizon ≤ 48, lengths < 256) — i.e. whether the exact `OPT_k`
/// oracle is available for this instance. The online competitive-ratio lab
/// (`pobp online`, E13) uses this to upgrade its certified reduction-based
/// denominator to the exact one wherever the state space allows.
pub fn opt_k_bounded_fits(jobs: &JobSet, ids: &[JobId]) -> bool {
    if ids.len() > OPT_K_BOUNDED_MAX_JOBS {
        return false;
    }
    if ids.is_empty() {
        return true;
    }
    let lo = ids.iter().map(|&j| jobs.job(j).release).min().unwrap();
    let hi = ids.iter().map(|&j| jobs.job(j).deadline).max().unwrap();
    hi - lo <= OPT_K_BOUNDED_MAX_HORIZON && ids.iter().all(|&j| jobs.job(j).length < 256)
}

/// Exact `OPT_k` for *tiny* integer instances via memoized tick-by-tick
/// search: at every tick run one released, unfinished job (starting a new
/// segment costs one of its `k + 1` slots) or idle. Exponential state space
/// — strictly a test oracle.
///
/// Returns only the optimal value (no witness schedule).
///
/// # Panics
/// Panics when the instance exceeds the module limits.
pub fn opt_k_bounded_small(jobs: &JobSet, ids: &[JobId], k: u32) -> Value {
    let n = ids.len();
    assert!(n <= OPT_K_BOUNDED_MAX_JOBS, "opt_k_bounded_small: too many jobs ({n})");
    if n == 0 {
        return 0.0;
    }
    let lo = ids.iter().map(|&j| jobs.job(j).release).min().unwrap();
    let hi = ids.iter().map(|&j| jobs.job(j).deadline).max().unwrap();
    let horizon = hi - lo;
    assert!(
        horizon <= OPT_K_BOUNDED_MAX_HORIZON,
        "opt_k_bounded_small: horizon {horizon} too long"
    );
    let segs_cap = (k as usize + 1).min(31);
    let lengths: Vec<Time> = ids.iter().map(|&j| jobs.job(j).length).collect();
    assert!(lengths.iter().all(|&p| p < 256), "lengths must fit the state encoding");

    // State: (tick, remaining ticks per job, segments used per job, running
    // job), packed into one u128 — the module limits (n ≤ 6, lengths < 256,
    // segment counts ≤ 31, horizon ≤ 48) guarantee every field fits its
    // byte, so the memo key is a register copy instead of two `Vec` clones.
    fn encode(t: Time, rem: &[u8], segs: &[u8], running: u8, lo: Time) -> u128 {
        let mut key = (t - lo) as u128;
        for (i, &r) in rem.iter().enumerate() {
            key |= (r as u128) << (8 + 8 * i);
        }
        for (i, &s) in segs.iter().enumerate() {
            key |= (s as u128) << (56 + 8 * i);
        }
        key | ((running as u128) << 104)
    }
    fn dfs(
        t: Time,
        rem: &mut Vec<u8>,
        segs: &mut Vec<u8>,
        running: u8,
        ctx: &Ctx<'_>,
        memo: &mut HashMap<u128, Value>,
    ) -> Value {
        if t >= ctx.hi || rem.iter().all(|&r| r == 0) {
            return 0.0;
        }
        let key = encode(t, rem, segs, running, ctx.lo);
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        // Option 1: idle this tick.
        let mut best = dfs(t + 1, rem, segs, u8::MAX, ctx, memo);
        // Option 2: run some job.
        for (i, &j) in ctx.ids.iter().enumerate() {
            if rem[i] == 0 {
                continue;
            }
            let job = ctx.jobs.job(j);
            if t < job.release || t >= job.deadline {
                continue;
            }
            let starts_segment = running != i as u8;
            if starts_segment && segs[i] as usize >= ctx.segs_cap {
                continue;
            }
            rem[i] -= 1;
            if starts_segment {
                segs[i] += 1;
            }
            let gained = if rem[i] == 0 { job.value } else { 0.0 };
            let v = gained + dfs(t + 1, rem, segs, i as u8, ctx, memo);
            if v > best {
                best = v;
            }
            if starts_segment {
                segs[i] -= 1;
            }
            rem[i] += 1;
        }
        memo.insert(key, best);
        best
    }
    struct Ctx<'a> {
        jobs: &'a JobSet,
        ids: &'a [JobId],
        lo: Time,
        hi: Time,
        segs_cap: usize,
    }
    let ctx = Ctx { jobs, ids, lo, hi, segs_cap };
    let mut rem: Vec<u8> = lengths.iter().map(|&p| p as u8).collect();
    let mut segs = vec![0u8; n];
    let mut memo = HashMap::new();
    dfs(lo, &mut rem, &mut segs, u8::MAX, &ctx, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn opt_unbounded_takes_everything_feasible() {
        let jobs: JobSet = vec![
            Job::new(0, 10, 3, 1.0),
            Job::new(0, 10, 3, 2.0),
            Job::new(0, 10, 3, 3.0),
        ]
        .into_iter()
        .collect();
        let opt = opt_unbounded(&jobs, &ids_of(3));
        assert_eq!(opt.value, 6.0);
        assert_eq!(opt.subset, ids_of(3));
        opt.schedule.verify(&jobs, None).unwrap();
    }

    #[test]
    fn opt_unbounded_picks_best_conflicting_subset() {
        // Three jobs in a window of 4: any two of length 2 fit; values favour
        // jobs 1 and 2.
        let jobs: JobSet = vec![
            Job::new(0, 4, 2, 5.0),
            Job::new(0, 4, 2, 3.0),
            Job::new(0, 4, 2, 4.0),
        ]
        .into_iter()
        .collect();
        let opt = opt_unbounded(&jobs, &ids_of(3));
        assert_eq!(opt.value, 9.0);
        assert_eq!(opt.subset, vec![JobId(0), JobId(2)]);
    }

    #[test]
    fn opt_unbounded_prefers_one_heavy_over_many_light() {
        let jobs: JobSet = vec![
            Job::new(0, 4, 4, 10.0),
            Job::new(0, 4, 2, 3.0),
            Job::new(0, 4, 2, 3.0),
        ]
        .into_iter()
        .collect();
        let opt = opt_unbounded(&jobs, &ids_of(3));
        assert_eq!(opt.value, 10.0);
        assert_eq!(opt.subset, vec![JobId(0)]);
    }

    #[test]
    fn opt_unbounded_empty() {
        let opt = opt_unbounded(&JobSet::new(), &[]);
        assert_eq!(opt.value, 0.0);
        assert!(opt.subset.is_empty());
    }

    #[test]
    fn opt_nonpreemptive_matches_hand_computation() {
        // Figure-2 flavoured: nested windows force preemption, so OPT_0 < OPT_∞.
        let jobs: JobSet = vec![
            Job::new(0, 7, 4, 1.0), // outer: any placement covers [3,4)
            Job::new(2, 5, 3, 1.0), // inner: covers [2,5) ⊇ [3,4)
        ]
        .into_iter()
        .collect();
        let np = opt_nonpreemptive(&jobs, &ids_of(2));
        assert_eq!(np.value, 1.0);
        let inf = opt_unbounded(&jobs, &ids_of(2));
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn opt_nonpreemptive_sequences_with_release_times() {
        let jobs: JobSet = vec![
            Job::new(4, 10, 3, 1.0),
            Job::new(0, 5, 3, 1.0),
            Job::new(0, 20, 5, 1.0),
        ]
        .into_iter()
        .collect();
        let np = opt_nonpreemptive(&jobs, &ids_of(3));
        assert_eq!(np.value, 3.0);
        np.schedule.verify(&jobs, Some(0)).unwrap();
    }

    #[test]
    fn opt_nonpreemptive_value_choice() {
        // Window fits one of two jobs; take the valuable one.
        let jobs: JobSet = vec![Job::new(0, 3, 3, 1.0), Job::new(0, 3, 3, 7.0)]
            .into_iter()
            .collect();
        let np = opt_nonpreemptive(&jobs, &ids_of(2));
        assert_eq!(np.value, 7.0);
        assert_eq!(np.subset, vec![JobId(1)]);
    }

    #[test]
    fn sandwich_opt0_le_optk_le_optinf() {
        let jobs: JobSet = vec![
            Job::new(0, 7, 4, 2.0),
            Job::new(2, 5, 3, 3.0),
            Job::new(5, 12, 4, 1.0),
        ]
        .into_iter()
        .collect();
        let v0 = opt_nonpreemptive(&jobs, &ids_of(3)).value;
        let vinf = opt_unbounded(&jobs, &ids_of(3)).value;
        let mut prev = v0;
        for k in 0..3u32 {
            let vk = opt_k_bounded_small(&jobs, &ids_of(3), k);
            assert!(vk >= prev - 1e-9, "OPT_k not monotone at k={k}");
            assert!(vk <= vinf + 1e-9);
            prev = vk;
        }
        // k = 0 tick search equals the en-bloc DP.
        assert!((opt_k_bounded_small(&jobs, &ids_of(3), 0) - v0).abs() < 1e-9);
    }

    #[test]
    fn one_preemption_unlocks_nested_pair() {
        let jobs: JobSet = vec![
            Job::new(0, 7, 4, 1.0),
            Job::new(2, 5, 3, 1.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(opt_k_bounded_small(&jobs, &ids_of(2), 0), 1.0);
        assert_eq!(opt_k_bounded_small(&jobs, &ids_of(2), 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "too many jobs")]
    fn k_bounded_oracle_rejects_large_n() {
        let jobs: JobSet = (0..7).map(|_| Job::new(0, 4, 1, 1.0)).collect();
        let _ = opt_k_bounded_small(&jobs, &ids_of(7), 1);
    }
}
