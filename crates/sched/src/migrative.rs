//! The *migrative* multi-machine setting (§4.1 remark, §4.3.4): jobs may
//! move between identical machines (but never run on two at once).
//!
//! The paper treats migration by citation: migration can be eliminated at
//! the cost of a constant factor (6× machines, Kalyanasundaram–Pruhs [18]),
//! so all prices carry over in `O` terms. To *measure* that, we need a
//! migrative scheduler as the reference — this module provides **global
//! EDF**: at every scheduling event, the `m` released, unfinished jobs with
//! the earliest deadlines run, one per machine. Global EDF is not
//! feasibility-optimal on multiprocessors (unlike uniprocessor EDF), but it
//! is the standard online reference and suffices as a lower-bound witness
//! for the migrative `OPT_∞` in the experiments.
//!
//! A migrative schedule cannot be a [`Schedule`] (which pins each job to
//! one machine), so it gets its own type with its own Definition 2.1-style
//! checker.

use pobp_core::{Interval, JobId, JobSet, MachineId, SegmentSet, Time};
use std::collections::BTreeMap;

/// A migrative schedule: per-job execution pieces, each on some machine.
#[derive(Clone, Debug, Default)]
pub struct MigrativeSchedule {
    /// `pieces[j]` = the job's `(machine, interval)` execution pieces.
    pieces: BTreeMap<JobId, Vec<(MachineId, Interval)>>,
}

impl MigrativeSchedule {
    /// Jobs with at least one piece.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// The pieces of a job, if scheduled.
    pub fn pieces(&self, job: JobId) -> Option<&[(MachineId, Interval)]> {
        self.pieces.get(&job).map(Vec::as_slice)
    }

    /// Scheduled job ids, ascending.
    pub fn scheduled_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.pieces.keys().copied()
    }

    /// Total value of the scheduled jobs.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.pieces.keys().map(|&j| jobs.job(j).value).sum()
    }

    /// The job's execution as a time-only segment set (machines ignored).
    pub fn time_profile(&self, job: JobId) -> SegmentSet {
        SegmentSet::from_intervals(
            self.pieces.get(&job).into_iter().flatten().map(|&(_, iv)| iv),
        )
    }

    /// Number of *migrations* of a job: adjacent-in-time pieces that switch
    /// machines.
    pub fn migrations(&self, job: JobId) -> usize {
        let Some(pieces) = self.pieces.get(&job) else { return 0 };
        let mut sorted = pieces.clone();
        sorted.sort_unstable_by_key(|&(_, iv)| iv.start);
        sorted.windows(2).filter(|w| w[0].0 != w[1].0).count()
    }

    /// Checks migrative feasibility: every piece inside the job's window,
    /// total time = `p_j`, per machine no overlap, and — the migrative
    /// extra — no job runs on two machines at the same instant.
    pub fn verify(&self, jobs: &JobSet) -> Result<(), String> {
        let mut per_machine: BTreeMap<MachineId, Vec<Interval>> = BTreeMap::new();
        for (&j, pieces) in &self.pieces {
            let job = jobs.get(j).ok_or_else(|| format!("unknown job {j}"))?;
            let mut total = 0;
            let mut own: Vec<Interval> = Vec::new();
            for &(m, iv) in pieces {
                if !job.window().contains(&iv) {
                    return Err(format!("{j}: piece {iv:?} outside window"));
                }
                total += iv.len();
                own.push(iv);
                per_machine.entry(m).or_default().push(iv);
            }
            if total != job.length {
                return Err(format!("{j}: scheduled {total} of {}", job.length));
            }
            own.sort_unstable();
            for w in own.windows(2) {
                if w[0].overlaps(&w[1]) {
                    return Err(format!("{j}: runs on two machines at once"));
                }
            }
        }
        for (m, mut ivs) in per_machine {
            ivs.sort_unstable();
            for w in ivs.windows(2) {
                if w[0].overlaps(&w[1]) {
                    return Err(format!("machine {m}: overlap {:?}/{:?}", w[0], w[1]));
                }
            }
        }
        Ok(())
    }
}

/// Outcome of a global-EDF run.
#[derive(Clone, Debug)]
pub struct GlobalEdfOutcome {
    /// Schedule of the jobs that completed on time.
    pub schedule: MigrativeSchedule,
    /// Jobs that missed their deadlines (aborted, pieces discarded).
    pub missed: Vec<JobId>,
}

impl GlobalEdfOutcome {
    /// Whether every job completed.
    pub fn is_feasible(&self) -> bool {
        self.missed.is_empty()
    }
}

/// Global EDF on `machines` identical machines: at every event the
/// `machines` earliest-deadline released, unfinished jobs run (ties by id).
/// Jobs that cannot finish are aborted at the point of no return and their
/// pieces discarded.
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::global_edf;
///
/// // Two tight jobs in the same window: impossible on one machine.
/// let jobs: JobSet = vec![Job::new(0, 4, 4, 1.0), Job::new(0, 4, 4, 1.0)]
///     .into_iter().collect();
/// let ids = [JobId(0), JobId(1)];
/// assert!(!global_edf(&jobs, &ids, 1).is_feasible());
/// let two = global_edf(&jobs, &ids, 2);
/// assert!(two.is_feasible());
/// two.schedule.verify(&jobs).unwrap();
/// ```
pub fn global_edf(jobs: &JobSet, subset: &[JobId], machines: usize) -> GlobalEdfOutcome {
    assert!(machines >= 1, "need at least one machine");
    let mut outcome = GlobalEdfOutcome {
        schedule: MigrativeSchedule::default(),
        missed: Vec::new(),
    };
    if subset.is_empty() {
        return outcome;
    }
    let mut releases: Vec<(Time, JobId)> =
        subset.iter().map(|&j| (jobs.job(j).release, j)).collect();
    releases.sort_unstable();
    let mut remaining: BTreeMap<JobId, Time> =
        subset.iter().map(|&j| (j, jobs.job(j).length)).collect();
    let mut pieces: BTreeMap<JobId, Vec<(MachineId, Interval)>> = BTreeMap::new();
    // Ready set ordered by (deadline, id).
    let mut ready: std::collections::BTreeSet<(Time, JobId)> = Default::default();
    // Affinity: the machine a job last ran on, to avoid gratuitous
    // migrations (jobs only migrate when their old machine is claimed by a
    // higher-priority job).
    let mut last_machine: BTreeMap<JobId, MachineId> = BTreeMap::new();
    let mut rel_idx = 0usize;
    let mut t = releases[0].0;

    loop {
        while rel_idx < releases.len() && releases[rel_idx].0 <= t {
            let (_, j) = releases[rel_idx];
            ready.insert((jobs.job(j).deadline, j));
            rel_idx += 1;
        }
        if ready.is_empty() {
            match releases.get(rel_idx) {
                Some(&(r, _)) => {
                    t = r;
                    continue;
                }
                None => break,
            }
        }
        // Abort hopeless jobs (cannot finish even running continuously).
        let hopeless: Vec<(Time, JobId)> = ready
            .iter()
            .filter(|&&(d, j)| t + remaining[&j] > d)
            .copied()
            .collect();
        let mut aborted = false;
        for key in hopeless {
            ready.remove(&key);
            pieces.remove(&key.1);
            outcome.missed.push(key.1);
            aborted = true;
        }
        if aborted && ready.is_empty() {
            continue;
        }
        // The `machines` earliest-deadline jobs run until the next event,
        // each preferring its previous machine (affinity) before taking a
        // free one.
        let running: Vec<JobId> = ready.iter().take(machines).map(|&(_, j)| j).collect();
        let mut assignment: BTreeMap<JobId, MachineId> = BTreeMap::new();
        let mut taken = vec![false; machines];
        for &j in &running {
            if let Some(&m) = last_machine.get(&j) {
                if m < machines && !taken[m] {
                    taken[m] = true;
                    assignment.insert(j, m);
                }
            }
        }
        for &j in &running {
            assignment.entry(j).or_insert_with(|| {
                let m = taken.iter().position(|&b| !b).expect("enough machines");
                taken[m] = true;
                m
            });
        }
        let mut until = running
            .iter()
            .map(|j| t + remaining[j])
            .min()
            .expect("running non-empty");
        if let Some(&(r, _)) = releases.get(rel_idx) {
            if r > t {
                until = until.min(r);
            }
        }
        // Also stop at the earliest deadline among running jobs (abort point).
        let d_min = running.iter().map(|&j| jobs.job(j).deadline).min().unwrap();
        until = until.min(d_min);
        debug_assert!(until > t);
        for &j in &running {
            let m = assignment[&j];
            last_machine.insert(j, m);
            pieces.entry(j).or_default().push((m, Interval::new(t, until)));
            let rem = remaining.get_mut(&j).unwrap();
            *rem -= until - t;
            if *rem == 0 {
                ready.remove(&(jobs.job(j).deadline, j));
                outcome
                    .schedule
                    .pieces
                    .insert(j, pieces.remove(&j).expect("pieces recorded"));
            }
        }
        t = until;
    }
    for &(_, j) in &ready {
        if remaining[&j] > 0 {
            outcome.missed.push(j);
        }
    }
    while rel_idx < releases.len() {
        outcome.missed.push(releases[rel_idx].1);
        rel_idx += 1;
    }
    outcome.missed.sort_unstable();
    outcome.missed.dedup();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn single_machine_matches_edf_value() {
        let jobs: JobSet = vec![
            Job::new(0, 20, 8, 1.0),
            Job::new(2, 10, 4, 1.0),
            Job::new(3, 7, 2, 1.0),
        ]
        .into_iter()
        .collect();
        let g = global_edf(&jobs, &ids_of(3), 1);
        assert!(g.is_feasible());
        g.schedule.verify(&jobs).unwrap();
        let e = crate::edf::edf_schedule(&jobs, &ids_of(3), None);
        assert_eq!(g.schedule.value(&jobs), e.schedule.value(&jobs));
    }

    #[test]
    fn two_machines_fit_overloaded_window() {
        // Two tight jobs in the same window: infeasible on one machine,
        // trivial on two.
        let jobs: JobSet = vec![Job::new(0, 4, 4, 1.0), Job::new(0, 4, 4, 1.0)]
            .into_iter()
            .collect();
        assert!(!global_edf(&jobs, &ids_of(2), 1).is_feasible());
        let g = global_edf(&jobs, &ids_of(2), 2);
        assert!(g.is_feasible());
        g.schedule.verify(&jobs).unwrap();
    }

    #[test]
    fn migration_happens_and_is_counted() {
        // A runs on m1 (B holds m0), gets bumped by tight C which claims
        // m1; when A resumes, m1 is still held by C, so A migrates to m0.
        let jobs: JobSet = vec![
            Job::new(0, 30, 10, 1.0), // A: long, latest deadline
            Job::new(0, 6, 6, 1.0),   // B: tight, holds m0 until t=6
            Job::new(2, 8, 5, 1.0),   // C: tight, bumps A at t=2
        ]
        .into_iter()
        .collect();
        let g = global_edf(&jobs, &ids_of(3), 2);
        assert!(g.is_feasible());
        g.schedule.verify(&jobs).unwrap();
        assert!(
            g.schedule.migrations(JobId(0)) >= 1,
            "pieces: {:?}",
            g.schedule.pieces(JobId(0))
        );
    }

    #[test]
    fn affinity_avoids_gratuitous_migration() {
        // A is preempted and resumes while its old machine is free: with
        // affinity it must not migrate.
        let jobs: JobSet = vec![
            Job::new(0, 30, 10, 1.0), // A
            Job::new(2, 7, 5, 1.0),   // tight single competitor
        ]
        .into_iter()
        .collect();
        let g = global_edf(&jobs, &ids_of(2), 2);
        assert!(g.is_feasible());
        assert_eq!(g.schedule.migrations(JobId(0)), 0);
    }

    #[test]
    fn value_monotone_in_machines() {
        let jobs: JobSet = (0..6).map(|_| Job::new(0, 10, 10, 1.0)).collect();
        let mut prev = -1.0;
        for m in 1..=6 {
            let g = global_edf(&jobs, &ids_of(6), m);
            g.schedule.verify(&jobs).unwrap();
            let v = g.schedule.value(&jobs);
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(prev, 6.0);
    }

    #[test]
    fn verify_catches_double_running() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0)].into_iter().collect();
        let mut s = MigrativeSchedule::default();
        s.pieces.insert(
            JobId(0),
            vec![(0, Interval::new(0, 2)), (1, Interval::new(1, 3))],
        );
        assert!(s.verify(&jobs).is_err());
    }

    #[test]
    fn time_profile_merges_pieces() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0)].into_iter().collect();
        let mut s = MigrativeSchedule::default();
        s.pieces.insert(
            JobId(0),
            vec![(0, Interval::new(0, 2)), (1, Interval::new(2, 4))],
        );
        s.verify(&jobs).unwrap();
        assert_eq!(
            s.time_profile(JobId(0)),
            SegmentSet::singleton(Interval::new(0, 4))
        );
        assert_eq!(s.migrations(JobId(0)), 1);
    }

    #[test]
    fn empty_subset() {
        let jobs: JobSet = vec![Job::new(0, 5, 2, 1.0)].into_iter().collect();
        let g = global_edf(&jobs, &[], 2);
        assert!(g.is_feasible());
        assert!(g.schedule.is_empty());
    }
}
