//! Non-paper baselines used by the benches and as `OPT_∞` surrogates on
//! instances too large for the exact branch-and-bound.

use crate::edf::{edf_core, edf_schedule, EdfOutcome};
use crate::workspace::SolveWorkspace;
use pobp_core::{JobId, JobSet, Schedule};

/// Greedy `∞`-preemptive acceptance: consider jobs in descending density
/// order, accept a job iff the accepted set stays EDF-feasible. Returns the
/// accepted set's EDF schedule.
///
/// Not an approximation with a proven factor (that would be Lawler's DP);
/// on the structured instances of this repository it is exact whenever the
/// full set is feasible, which is what the large-scale experiments use.
pub fn greedy_unbounded(jobs: &JobSet, ids: &[JobId]) -> EdfOutcome {
    greedy_unbounded_ws(jobs, ids, &mut SolveWorkspace::new())
}

/// [`greedy_unbounded`] with caller-provided scratch memory: the `n` EDF
/// feasibility probes all share one [`SolveWorkspace`], which is what makes
/// this baseline cheap enough to run per task inside the engine.
pub fn greedy_unbounded_ws(jobs: &JobSet, ids: &[JobId], ws: &mut SolveWorkspace) -> EdfOutcome {
    let mut order = ids.to_vec();
    order.sort_by(|&a, &b| {
        jobs.job(b)
            .density()
            .partial_cmp(&jobs.job(a).density())
            .expect("finite densities")
            .then(a.cmp(&b))
    });
    let mut accepted: Vec<JobId> = Vec::new();
    for j in order {
        accepted.push(j);
        if !edf_core(jobs, &accepted, None, &mut ws.edf).is_feasible() {
            accepted.pop();
        }
    }
    accepted.sort_unstable();
    edf_core(jobs, &accepted, None, &mut ws.edf)
}

/// Baseline: run unbounded EDF, then simply *drop* every job that ended up
/// with more than `k + 1` segments. Feasible (removing jobs preserves
/// feasibility) but can lose almost everything — the benches show the
/// reduction of §4.2 beating it on nested workloads.
pub fn edf_truncate(jobs: &JobSet, ids: &[JobId], k: u32) -> Schedule {
    let out = edf_schedule(jobs, ids, None);
    let keep: Vec<JobId> = out
        .schedule
        .scheduled_ids()
        .filter(|&j| out.schedule.preemptions(j) <= k as usize)
        .collect();
    out.schedule.restricted_to(&keep)
}

/// Baseline: greedy non-preemptive by *value* (not density) without length
/// classes — the strawman that Algorithm 2's density order and
/// classify-and-select improve upon (ablation E10).
pub fn greedy_nonpreemptive_by_value(jobs: &JobSet, ids: &[JobId]) -> Schedule {
    let mut order = ids.to_vec();
    order.sort_by(|&a, &b| {
        jobs.job(b)
            .value
            .partial_cmp(&jobs.job(a).value)
            .expect("finite values")
            .then(a.cmp(&b))
    });
    let mut timeline = pobp_core::Timeline::new();
    let mut schedule = Schedule::new();
    for j in order {
        let job = jobs.job(j);
        let idle = timeline.idle_within(&job.window());
        if let Some(slot) = idle.leftmost_fit(job.length, job.release) {
            timeline.allocate_one(slot).expect("idle slot was busy");
            schedule.assign_single(j, pobp_core::SegmentSet::singleton(slot));
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn greedy_unbounded_accepts_feasible_set() {
        let jobs: JobSet = vec![
            Job::new(0, 10, 3, 1.0),
            Job::new(0, 10, 3, 2.0),
            Job::new(0, 10, 3, 3.0),
        ]
        .into_iter()
        .collect();
        let out = greedy_unbounded(&jobs, &ids_of(3));
        assert!(out.is_feasible());
        assert_eq!(out.schedule.len(), 3);
    }

    #[test]
    fn greedy_unbounded_rejects_overload_by_density() {
        let jobs: JobSet = vec![
            Job::new(0, 4, 4, 8.0), // density 2
            Job::new(0, 4, 4, 4.0), // density 1 — rejected
        ]
        .into_iter()
        .collect();
        let out = greedy_unbounded(&jobs, &ids_of(2));
        assert_eq!(out.schedule.len(), 1);
        assert!(out.schedule.segments(JobId(0)).is_some());
    }

    #[test]
    fn edf_truncate_enforces_bound() {
        // Deeply nested preemptions: the outer job accumulates segments.
        let jobs: JobSet = vec![
            Job::new(0, 30, 10, 1.0),
            Job::new(2, 8, 2, 1.0),
            Job::new(10, 16, 2, 1.0),
            Job::new(18, 24, 2, 1.0),
        ]
        .into_iter()
        .collect();
        let s = edf_truncate(&jobs, &ids_of(4), 3);
        s.verify(&jobs, Some(3)).unwrap();
        assert_eq!(s.len(), 4); // 3 preemptions allowed → outer job survives
        let s1 = edf_truncate(&jobs, &ids_of(4), 1);
        s1.verify(&jobs, Some(1)).unwrap();
        assert_eq!(s1.len(), 3); // outer job dropped
    }

    #[test]
    fn greedy_by_value_is_en_bloc() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(0, 10, 4, 5.0)]
            .into_iter()
            .collect();
        let s = greedy_nonpreemptive_by_value(&jobs, &ids_of(2));
        s.verify(&jobs, Some(0)).unwrap();
        assert_eq!(s.len(), 2);
        // The valuable job got the leftmost slot.
        assert_eq!(
            s.segments(JobId(1)).unwrap().segments(),
            &[pobp_core::Interval::new(0, 4)]
        );
    }
}
