//! Classify-and-select by value and by density — the §1.4 extensions.
//!
//! Albagli-Kim et al. [1] gave `O(1)` approximations (hence `O(1)` price)
//! for the *unit-value* and *unit-density* special cases. The paper notes
//! (§1.4) that classify-and-select turns those into `O(log ρ)` and
//! `O(log σ)` approximations for the general problem, where
//! `ρ = val_max / val_min` and `σ = σ_max / σ_min` (density spread).
//!
//! We implement both: split the jobs into geometric classes of the chosen
//! key (ratio ≤ 2 within a class, so a class is "almost unit"), run LSA on
//! each class — ordered by that key, as in the original algorithm — on its
//! own empty machine, and return the best class.

use crate::lsa::{lsa_in_order, LsaOutcome};
use pobp_core::{JobId, JobSet, Schedule};

/// Geometric classes of an arbitrary positive key: class `c` holds jobs
/// with `2^c ≤ key(j)/key_min < 2^(c+1)`.
pub fn key_classes<F: Fn(&pobp_core::Job) -> f64>(
    jobs: &JobSet,
    ids: &[JobId],
    key: F,
) -> Vec<Vec<JobId>> {
    let Some(min) = ids
        .iter()
        .map(|&j| key(jobs.job(j)))
        .min_by(|a, b| a.partial_cmp(b).expect("finite keys"))
    else {
        return Vec::new();
    };
    assert!(min > 0.0, "classify-and-select needs positive keys");
    let mut classes: Vec<Vec<JobId>> = Vec::new();
    for &j in ids {
        let c = (key(jobs.job(j)) / min).log2().floor().max(0.0) as usize;
        if classes.len() <= c {
            classes.resize_with(c + 1, Vec::new);
        }
        classes[c].push(j);
    }
    classes
}

fn best_class_by<F: Fn(&pobp_core::Job) -> f64 + Copy>(
    jobs: &JobSet,
    classes: Vec<Vec<JobId>>,
    k: u32,
    key: F,
) -> LsaOutcome {
    let mut best: Option<LsaOutcome> = None;
    let mut best_value = -1.0f64;
    for mut class in classes {
        if class.is_empty() {
            continue;
        }
        // Within a class, consider jobs in descending key order (the
        // Albagli-Kim ordering), ties by id.
        class.sort_by(|&a, &b| {
            key(jobs.job(b))
                .partial_cmp(&key(jobs.job(a)))
                .expect("finite keys")
                .then(a.cmp(&b))
        });
        let out = lsa_in_order(jobs, &class, k);
        let v = out.value(jobs);
        if v > best_value {
            best_value = v;
            best = Some(out);
        }
    }
    best.unwrap_or(LsaOutcome {
        accepted: Vec::new(),
        rejected: Vec::new(),
        schedule: Schedule::new(),
    })
}

/// Classify-and-select by **value** (`O(log ρ)` price on lax jobs): value
/// classes of ratio ≤ 2, LSA in value order per class, best class wins.
pub fn cs_by_value(jobs: &JobSet, ids: &[JobId], k: u32) -> LsaOutcome {
    let classes = key_classes(jobs, ids, |j| j.value);
    best_class_by(jobs, classes, k, |j| j.value)
}

/// Classify-and-select by **density** (`O(log σ)` price on lax jobs):
/// density classes of ratio ≤ 2, LSA in density order per class.
pub fn cs_by_density(jobs: &JobSet, ids: &[JobId], k: u32) -> LsaOutcome {
    let classes = key_classes(jobs, ids, |j| j.density());
    best_class_by(jobs, classes, k, |j| j.density())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn key_classes_partition_by_ratio_two() {
        let jobs: JobSet = vec![
            Job::new(0, 100, 1, 1.0),
            Job::new(0, 100, 1, 1.9),
            Job::new(0, 100, 1, 2.0),
            Job::new(0, 100, 1, 5.0),
            Job::new(0, 100, 1, 16.0),
        ]
        .into_iter()
        .collect();
        let classes = key_classes(&jobs, &ids_of(5), |j| j.value);
        assert_eq!(classes.len(), 5);
        assert_eq!(classes[0], vec![JobId(0), JobId(1)]); // [1, 2)
        assert_eq!(classes[1], vec![JobId(2)]); // [2, 4)
        assert_eq!(classes[2], vec![JobId(3)]); // [4, 8)
        assert!(classes[3].is_empty());
        assert_eq!(classes[4], vec![JobId(4)]); // [16, 32)
        // Every class has key-ratio < 2 + ε.
        for class in &classes {
            if class.len() >= 2 {
                let vals: Vec<f64> = class.iter().map(|&j| jobs.job(j).value).collect();
                let ratio = vals.iter().cloned().fold(f64::MIN, f64::max)
                    / vals.iter().cloned().fold(f64::MAX, f64::min);
                assert!(ratio < 2.0 + 1e-9);
            }
        }
    }

    #[test]
    fn empty_input() {
        let jobs = JobSet::new();
        assert!(key_classes(&jobs, &[], |j| j.value).is_empty());
        assert!(cs_by_value(&jobs, &[], 1).accepted.is_empty());
        assert!(cs_by_density(&jobs, &[], 1).accepted.is_empty());
    }

    #[test]
    fn outputs_are_feasible_k_bounded() {
        let jobs: JobSet = vec![
            Job::new(0, 60, 5, 8.0),
            Job::new(0, 60, 10, 3.0),
            Job::new(10, 90, 7, 21.0),
            Job::new(5, 45, 4, 1.0),
            Job::new(0, 200, 20, 40.0),
        ]
        .into_iter()
        .collect();
        for k in 0..4u32 {
            for out in [cs_by_value(&jobs, &ids_of(5), k), cs_by_density(&jobs, &ids_of(5), k)] {
                out.schedule.verify(&jobs, Some(k)).unwrap();
            }
        }
    }

    #[test]
    fn cs_by_value_prefers_valuable_class() {
        // One huge-value job vs many unit jobs that fill the machine.
        let mut v = vec![Job::new(0, 40, 20, 1000.0)];
        for i in 0..6 {
            v.push(Job::new(5 * i, 5 * i + 4, 3, 1.0));
        }
        let jobs: JobSet = v.into_iter().collect();
        let out = cs_by_value(&jobs, &ids_of(7), 1);
        assert!(out.accepted.contains(&JobId(0)));
        assert_eq!(out.value(&jobs), 1000.0);
    }

    #[test]
    fn cs_by_density_groups_similar_densities() {
        // Two density populations; the denser one is worth more in total.
        let jobs: JobSet = vec![
            Job::new(0, 30, 4, 40.0),  // σ = 10
            Job::new(0, 30, 4, 36.0),  // σ = 9
            Job::new(0, 30, 4, 4.0),   // σ = 1
            Job::new(0, 30, 4, 4.4),   // σ = 1.1
        ]
        .into_iter()
        .collect();
        let out = cs_by_density(&jobs, &ids_of(4), 1);
        assert!(out.accepted.contains(&JobId(0)));
        assert!(out.accepted.contains(&JobId(1)));
        assert!(out.value(&jobs) >= 76.0);
    }

    #[test]
    fn unit_value_input_collapses_to_single_class() {
        let jobs: JobSet = (0..5).map(|i| Job::new(4 * i, 4 * i + 3, 2, 1.0)).collect();
        let classes = key_classes(&jobs, &ids_of(5), |j| j.value);
        assert_eq!(classes.len(), 1);
        let out = cs_by_value(&jobs, &ids_of(5), 0);
        assert_eq!(out.accepted.len(), 5);
    }
}
