//! # pobp-sched — the scheduling algorithms of *The Price of Bounded
//! Preemption* (SPAA'18)
//!
//! Everything §4 and §5 of the paper describe, built on `pobp-core` and
//! `pobp-forest`:
//!
//! * [`edf_schedule`] / [`edf_feasible`] — preemptive EDF, the feasibility
//!   oracle and `∞`-preemptive witness generator (with machine-availability
//!   restriction);
//! * [`laminarize`] / [`is_laminar`] — the Figure 1 rearrangement;
//! * [`schedule_forest`] / [`reconstruct`] — schedule ⇄ forest (§4.1,
//!   Lemma 4.1's left-merge);
//! * [`reduce_to_k_bounded`] — the full Theorem 4.2 pipeline
//!   (`O(log_{k+1} n)` price, constructively);
//! * [`lsa`] / [`lsa_cs`] — Algorithm 2 for lax jobs
//!   (`O(log_{k+1} P)` price, Lemma 4.10);
//! * [`k_preemption_combined`] — Algorithm 3 (Theorem 4.5);
//! * [`schedule_k0`] / [`best_single_job`] — the `k = 0` case
//!   (§5, `Θ(min{n, log P})`);
//! * [`iterative_multi_machine`] — the §4.3.4 multi-machine extension;
//! * [`opt_unbounded`] / [`opt_nonpreemptive`] / [`opt_k_bounded_small`] —
//!   exact exponential oracles for small instances (the documented
//!   substitution for Lawler's DP, see `DESIGN.md` §4);
//! * [`greedy_unbounded`] / [`edf_truncate`] /
//!   [`greedy_nonpreemptive_by_value`] — baselines for benches/ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod classical;
mod classify;
mod combined;
mod edf;
mod exact;
mod laminar;
mod lsa;
mod migrative;
mod multi;
mod nonpreemptive;
mod reduction;
mod sforest;
mod workspace;

pub use baselines::{
    edf_truncate, greedy_nonpreemptive_by_value, greedy_unbounded, greedy_unbounded_ws,
};
pub use combined::{combined_from_scratch, k_preemption_combined, CombinedOutcome};
pub use edf::{edf_feasible, edf_feasible_ws, edf_schedule, edf_schedule_ws, EdfOutcome};
#[doc(hidden)]
pub use edf::edf_schedule_reference;
pub use exact::{
    opt_k_bounded_fits, opt_k_bounded_small, opt_nonpreemptive, opt_unbounded, ExactOpt,
    OPT_K_BOUNDED_MAX_HORIZON,
    OPT_K_BOUNDED_MAX_JOBS, OPT_NONPREEMPTIVE_LIMIT, OPT_UNBOUNDED_LIMIT,
};
pub use classical::{lawler_moore, moore_hodgson};
pub use classify::{cs_by_density, cs_by_value, key_classes};
pub use laminar::{is_laminar, laminarize, laminarize_ws};
pub use lsa::{length_classes, lsa, lsa_cs, lsa_in_order, LsaOutcome};
pub use migrative::{global_edf, GlobalEdfOutcome, MigrativeSchedule};
pub use multi::iterative_multi_machine;
pub use nonpreemptive::{best_single_job, schedule_k0};
pub use reduction::{
    reduce_to_k_bounded, reduce_to_k_bounded_with, reduce_to_k_bounded_ws, KbasSolver,
    ReductionOutcome, ReductionPlan,
};
pub use sforest::{
    reconstruct, reconstruct_ws, schedule_forest, schedule_forest_ws, ScheduleForest,
};
pub use workspace::SolveWorkspace;
