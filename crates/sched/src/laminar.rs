//! The Figure 1 rearrangement (§4.1): making the *preempts* relation laminar.
//!
//! The paper observes that any feasible schedule can be rearranged — with no
//! loss of value — so that a segment of `B` lies between two segments of `A`
//! iff no segment of `A` lies between two segments of `B`. Instead of
//! applying the pairwise exchange of Figure 1 until fixpoint, we laminarize
//! *globally*: re-run deterministic EDF restricted to the original
//! schedule's busy timeline (per machine). The original schedule is a
//! witness that its own job set is feasible inside that timeline, EDF is
//! feasibility-optimal under restricted availability, and deterministic EDF
//! output is laminar (see the proof sketch in `edf.rs`). The result is a
//! feasible schedule of the *same* jobs inside the *same* busy time, with a
//! laminar preemption structure — exactly what the schedule-forest
//! construction of §4.1 needs.

use crate::edf::edf_core;
use crate::workspace::SolveWorkspace;
use pobp_core::{obs_count, Infeasibility, JobId, JobSet, Schedule};

/// Whether the single-machine schedule's preemption structure is laminar:
/// no two jobs interleave as `a₁ ≺ b₁ ≺ a₂ ≺ b₂`.
///
/// Runs a sweep over all segments with a stack of *open* jobs (jobs whose
/// span — first segment start to last segment end — contains the current
/// time). A schedule is laminar iff whenever a segment of an already-open
/// job arrives, that job is the top of the stack.
pub fn is_laminar(schedule: &Schedule) -> bool {
    for machine in schedule.machines() {
        if !machine_is_laminar(schedule, machine) {
            return false;
        }
    }
    true
}

fn machine_is_laminar(schedule: &Schedule, machine: usize) -> bool {
    // (start, end, job) of every segment on the machine, in time order.
    let mut segs: Vec<(i64, i64, JobId)> = Vec::new();
    let mut span_end: std::collections::HashMap<JobId, i64> = std::collections::HashMap::new();
    for (id, a) in schedule.iter() {
        if a.machine != machine {
            continue;
        }
        for s in a.segs.iter() {
            segs.push((s.start, s.end, id));
        }
        span_end.insert(id, a.segs.max_end().expect("non-empty assignment"));
    }
    segs.sort_unstable();
    let mut stack: Vec<JobId> = Vec::new();
    let mut open: std::collections::HashSet<JobId> = std::collections::HashSet::new();
    for (start, _end, id) in segs {
        while let Some(&top) = stack.last() {
            if span_end[&top] <= start {
                stack.pop();
                open.remove(&top);
            } else {
                break;
            }
        }
        if open.contains(&id) {
            if stack.last() != Some(&id) {
                return false; // segment of a non-top open job → interleaving
            }
        } else {
            stack.push(id);
            open.insert(id);
        }
    }
    true
}

/// Rearranges `schedule` into an equivalent laminar one (same jobs, same
/// per-machine busy timeline, no value change), per machine.
///
/// ```
/// use pobp_core::{Interval, Job, JobId, JobSet, Schedule, SegmentSet};
/// use pobp_sched::{is_laminar, laminarize};
///
/// let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0), Job::new(0, 4, 2, 1.0)]
///     .into_iter().collect();
/// // The forbidden ABAB interleaving…
/// let mut s = Schedule::new();
/// s.assign_single(JobId(0), SegmentSet::from_intervals([
///     Interval::new(0, 1), Interval::new(2, 3)]));
/// s.assign_single(JobId(1), SegmentSet::from_intervals([
///     Interval::new(1, 2), Interval::new(3, 4)]));
/// assert!(!is_laminar(&s));
/// // …untangled with no loss of value or busy time.
/// let lam = laminarize(&jobs, &s).unwrap();
/// assert!(is_laminar(&lam));
/// assert_eq!(lam.value(&jobs), s.value(&jobs));
/// ```
///
/// # Errors
/// Returns the original schedule's infeasibility if it was not feasible to
/// begin with (the rearrangement is only defined for feasible schedules).
pub fn laminarize(jobs: &JobSet, schedule: &Schedule) -> Result<Schedule, Infeasibility> {
    laminarize_ws(jobs, schedule, &mut SolveWorkspace::new())
}

/// [`laminarize`] with caller-provided scratch memory (see
/// [`SolveWorkspace`]). Identical output.
///
/// # Errors
/// Returns the original schedule's infeasibility if it was not feasible to
/// begin with.
pub fn laminarize_ws(
    jobs: &JobSet,
    schedule: &Schedule,
    ws: &mut SolveWorkspace,
) -> Result<Schedule, Infeasibility> {
    schedule.verify(jobs, None)?;
    obs_count!("sched.laminarize.runs");
    let mut out = Schedule::new();
    for machine in schedule.machines() {
        obs_count!("sched.laminarize.machines");
        ws.sf.on_machine.clear();
        ws.sf.on_machine.extend(
            schedule
                .iter()
                .filter(|(_, a)| a.machine == machine)
                .map(|(id, _)| id),
        );
        let busy = schedule.busy(machine);
        let edf = edf_core(jobs, &ws.sf.on_machine, Some(&busy), &mut ws.edf);
        // The original schedule witnesses feasibility within `busy`, and EDF
        // is optimal under restricted availability — no job can miss.
        assert!(
            edf.is_feasible(),
            "laminarize: EDF missed {:?} inside a witnessed-feasible timeline",
            edf.missed
        );
        for (id, a) in edf.schedule.iter() {
            out.assign(id, machine, a.segs.clone());
        }
    }
    debug_assert!(is_laminar(&out));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::{Interval, Job, SegmentSet};

    fn seg_set(pairs: &[(i64, i64)]) -> SegmentSet {
        SegmentSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn detects_interleaving() {
        let mut s = Schedule::new();
        // A: [0,1) and [2,3); B: [1,2) and [3,4) — the forbidden pattern.
        s.assign_single(JobId(0), seg_set(&[(0, 1), (2, 3)]));
        s.assign_single(JobId(1), seg_set(&[(1, 2), (3, 4)]));
        assert!(!is_laminar(&s));
    }

    #[test]
    fn accepts_nesting_and_sequence() {
        let mut s = Schedule::new();
        // A: [0,1) and [4,5); B entirely inside A's gap; C after everything.
        s.assign_single(JobId(0), seg_set(&[(0, 1), (4, 5)]));
        s.assign_single(JobId(1), seg_set(&[(1, 3)]));
        s.assign_single(JobId(2), seg_set(&[(6, 8)]));
        assert!(is_laminar(&s));
    }

    #[test]
    fn accepts_deep_nesting() {
        let mut s = Schedule::new();
        // A ⊃ B ⊃ C, matryoshka.
        s.assign_single(JobId(0), seg_set(&[(0, 1), (8, 9)]));
        s.assign_single(JobId(1), seg_set(&[(1, 2), (6, 8)]));
        s.assign_single(JobId(2), seg_set(&[(2, 6)]));
        assert!(is_laminar(&s));
    }

    #[test]
    fn rejects_cross_nesting_three_jobs() {
        let mut s = Schedule::new();
        // B starts inside A's gap but ends after A resumes elsewhere:
        // A [0,1), [4,5); B [1,2), [5,6): interleaved.
        s.assign_single(JobId(0), seg_set(&[(0, 1), (4, 5)]));
        s.assign_single(JobId(1), seg_set(&[(1, 2), (5, 6)]));
        s.assign_single(JobId(2), seg_set(&[(2, 4)]));
        assert!(!is_laminar(&s));
    }

    #[test]
    fn different_machines_do_not_interact() {
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, seg_set(&[(0, 1), (2, 3)]));
        s.assign(JobId(1), 1, seg_set(&[(1, 2), (3, 4)]));
        assert!(is_laminar(&s));
    }

    #[test]
    fn laminarize_fixes_interleaving() {
        // Jobs with enough slack to be rearranged: the classic ABAB.
        let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0), Job::new(0, 4, 2, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 1), (2, 3)]));
        s.assign_single(JobId(1), seg_set(&[(1, 2), (3, 4)]));
        assert!(!is_laminar(&s));
        let lam = laminarize(&jobs, &s).unwrap();
        assert!(is_laminar(&lam));
        lam.verify(&jobs, None).unwrap();
        // Same jobs, same value, same busy time.
        assert_eq!(lam.len(), 2);
        assert_eq!(lam.value(&jobs), s.value(&jobs));
        assert_eq!(lam.busy(0), s.busy(0));
    }

    #[test]
    fn laminarize_preserves_feasible_laminar_input() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(1, 6, 2, 2.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 1), (3, 6)]));
        s.assign_single(JobId(1), seg_set(&[(1, 3)]));
        let lam = laminarize(&jobs, &s).unwrap();
        lam.verify(&jobs, None).unwrap();
        assert!(is_laminar(&lam));
        assert_eq!(lam.busy(0), s.busy(0));
        assert_eq!(lam.len(), 2);
    }

    #[test]
    fn laminarize_rejects_infeasible_input() {
        let jobs: JobSet = vec![Job::new(0, 4, 2, 1.0)].into_iter().collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 3)])); // wrong length
        assert!(laminarize(&jobs, &s).is_err());
    }

    #[test]
    fn laminarize_multi_machine() {
        let jobs: JobSet = vec![
            Job::new(0, 4, 2, 1.0),
            Job::new(0, 4, 2, 1.0),
            Job::new(0, 4, 2, 1.0),
            Job::new(0, 4, 2, 1.0),
        ]
        .into_iter()
        .collect();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, seg_set(&[(0, 1), (2, 3)]));
        s.assign(JobId(1), 0, seg_set(&[(1, 2), (3, 4)]));
        s.assign(JobId(2), 1, seg_set(&[(0, 1), (2, 3)]));
        s.assign(JobId(3), 1, seg_set(&[(1, 2), (3, 4)]));
        let lam = laminarize(&jobs, &s).unwrap();
        assert!(is_laminar(&lam));
        lam.verify(&jobs, None).unwrap();
        assert_eq!(lam.machines(), vec![0, 1]);
    }

    #[test]
    fn single_segments_are_trivially_laminar() {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), seg_set(&[(0, 5)]));
        s.assign_single(JobId(1), seg_set(&[(5, 7)]));
        assert!(is_laminar(&s));
        assert!(is_laminar(&Schedule::new()));
    }
}
