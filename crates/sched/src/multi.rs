//! Multiple non-migrative machines (§4.3.4).
//!
//! The paper's extension is *iterative*: machine `i` receives the
//! single-machine algorithm's output on the jobs left over by machines
//! `0..i` (`J_i = J \ ⋃_{k<i} J'_k`). By the argument of [2] this costs at
//! most a constant factor over the multi-machine optimum, preserving every
//! `O(log_{k+1}·)` price bound.

use pobp_core::{JobId, JobSet, Schedule};

/// Iteratively applies a single-machine algorithm to the residual job set,
/// assigning the `i`-th run to machine `i`.
///
/// `alg` must return a feasible single-machine schedule (machine 0) of a
/// subset of the ids it is given; the returned combined schedule places
/// each run on its own machine. Stops early when a run schedules nothing.
pub fn iterative_multi_machine<F>(
    jobs: &JobSet,
    ids: &[JobId],
    machines: usize,
    mut alg: F,
) -> Schedule
where
    F: FnMut(&JobSet, &[JobId]) -> Schedule,
{
    let mut remaining: Vec<JobId> = ids.to_vec();
    let mut out = Schedule::new();
    for machine in 0..machines {
        if remaining.is_empty() {
            break;
        }
        let single = alg(jobs, &remaining);
        if single.is_empty() {
            break;
        }
        let scheduled: std::collections::BTreeSet<JobId> = single.scheduled_ids().collect();
        for (id, a) in single.iter() {
            debug_assert_eq!(a.machine, 0, "alg must schedule on machine 0");
            out.assign(id, machine, a.segs.clone());
        }
        remaining.retain(|j| !scheduled.contains(j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsa::lsa_cs;
    use crate::nonpreemptive::schedule_k0;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn two_machines_double_throughput_on_conflicts() {
        // Four identical jobs fighting for one window of capacity 2.
        let jobs: JobSet = (0..4).map(|_| Job::new(0, 20, 10, 1.0)).collect();
        let one = iterative_multi_machine(&jobs, &ids_of(4), 1, |js, ids| {
            lsa_cs(js, ids, 1).schedule
        });
        one.verify(&jobs, Some(1)).unwrap();
        assert_eq!(one.len(), 2);
        let two = iterative_multi_machine(&jobs, &ids_of(4), 2, |js, ids| {
            lsa_cs(js, ids, 1).schedule
        });
        two.verify(&jobs, Some(1)).unwrap();
        assert_eq!(two.len(), 4);
        assert_eq!(two.machines(), vec![0, 1]);
    }

    #[test]
    fn no_job_is_scheduled_twice() {
        let jobs: JobSet = (0..6).map(|i| Job::new(0, 30, 5 + i, 1.0)).collect();
        let s = iterative_multi_machine(&jobs, &ids_of(6), 3, |js, ids| {
            lsa_cs(js, ids, 2).schedule
        });
        s.verify(&jobs, Some(2)).unwrap();
        // verify() would fail on duplicate ids; also check machine spread.
        assert!(s.machines().len() <= 3);
    }

    #[test]
    fn stops_when_everything_is_scheduled() {
        let jobs: JobSet = vec![Job::new(0, 10, 2, 1.0)].into_iter().collect();
        let s = iterative_multi_machine(&jobs, &ids_of(1), 8, |js, ids| {
            schedule_k0(js, ids).schedule
        });
        assert_eq!(s.len(), 1);
        assert_eq!(s.machines(), vec![0]);
    }

    #[test]
    fn zero_machines_schedules_nothing() {
        let jobs: JobSet = vec![Job::new(0, 10, 2, 1.0)].into_iter().collect();
        let s = iterative_multi_machine(&jobs, &ids_of(1), 0, |js, ids| {
            schedule_k0(js, ids).schedule
        });
        assert!(s.is_empty());
    }

    #[test]
    fn monotone_value_in_machine_count() {
        let jobs: JobSet = (0..8).map(|i| Job::new(0, 25, 6 + (i % 3), (i + 1) as f64)).collect();
        let mut prev = -1.0;
        for m in 1..=4 {
            let s = iterative_multi_machine(&jobs, &ids_of(8), m, |js, ids| {
                lsa_cs(js, ids, 1).schedule
            });
            s.verify(&jobs, Some(1)).unwrap();
            let v = s.value(&jobs);
            assert!(v >= prev - 1e-9, "machines={m}");
            prev = v;
        }
    }
}
