//! Algorithm 2: the Leftmost Schedule Algorithm (`LSA`) and its
//! classify-and-select wrapper (`LSA_CS`), for *lax* jobs (§4.3.2).
//!
//! `LSA` considers jobs in descending *density* order (`σ_j = val(j)/p_j` —
//! the paper's key difference from Albagli-Kim et al., who sorted by value)
//! and tries to place each job into at most `k + 1` idle segments of the
//! timeline, keeping a working set `S` of candidate idle segments: start
//! with the `k + 1` leftmost idle segments in `[r_j, d_j)`; while the job
//! does not fit, drop the shortest member of `S` and admit the next idle
//! segment to the right; give up when the window's idle segments are
//! exhausted.
//!
//! `LSA_CS` first splits the jobs into length classes
//! `(k+1)^{c-1} ≤ p_j < (k+1)^c` — within a class the length ratio is at
//! most `k + 1`, which is what the load argument of Lemma 4.12 needs — runs
//! `LSA` per class on its own empty machine, and returns the best class.
//! Lemma 4.10: on lax input (`λ_j ≥ k+1` for all `j`),
//! `val(LSA_CS) ≥ val(OPT_∞) / (6 · log_{k+1} P)`.

use pobp_core::{obs_count, obs_event, Interval, JobId, JobSet, Schedule, SegmentSet, Time, Timeline};

/// Result of an `LSA` / `LSA_CS` run.
#[derive(Clone, Debug)]
pub struct LsaOutcome {
    /// The accepted jobs, in acceptance (density) order.
    pub accepted: Vec<JobId>,
    /// The rejected jobs.
    pub rejected: Vec<JobId>,
    /// The schedule of the accepted jobs (single machine 0).
    pub schedule: Schedule,
}

impl LsaOutcome {
    /// Total value of the accepted jobs.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.schedule.value(jobs)
    }
}

/// Sorts ids by descending density, tie-broken by id for determinism.
fn density_order(jobs: &JobSet, ids: &[JobId]) -> Vec<JobId> {
    let mut v = ids.to_vec();
    v.sort_by(|&a, &b| {
        jobs.job(b)
            .density()
            .partial_cmp(&jobs.job(a).density())
            .expect("finite densities")
            .then(a.cmp(&b))
    });
    v
}

/// The inner Leftmost Schedule Algorithm on a single machine.
///
/// Callers wanting the paper's guarantee must pass lax jobs of bounded
/// length ratio (`LSA_CS` arranges both); the function itself accepts any
/// jobs and simply produces a feasible `k`-preemptive schedule greedily.
pub fn lsa(jobs: &JobSet, ids: &[JobId], k: u32) -> LsaOutcome {
    lsa_in_order(jobs, &density_order(jobs, ids), k)
}

/// `LSA` with a caller-supplied consideration order (the paper sorts by
/// density; Albagli-Kim et al. sorted by value — `classify.rs` uses this to
/// implement their `O(log ρ)` / `O(log σ)` classify-and-select variants).
pub fn lsa_in_order(jobs: &JobSet, ordered_ids: &[JobId], k: u32) -> LsaOutcome {
    obs_count!("sched.lsa.runs");
    let mut timeline = Timeline::new();
    let mut out = LsaOutcome {
        accepted: Vec::new(),
        rejected: Vec::new(),
        schedule: Schedule::new(),
    };
    let slots = k as usize + 1;
    for &j in ordered_ids {
        obs_count!("sched.lsa.jobs_considered");
        let job = jobs.job(j);
        let idle_all = timeline.idle_within(&job.window());
        let idle: &[Interval] = idle_all.segments();
        let placed = place_into_k_slots(&mut timeline, idle, job.length, slots);
        match placed {
            Some(segs) => {
                obs_count!("sched.lsa.accepted");
                obs_count!("sched.lsa.segments_emitted", segs.count());
                out.schedule.assign_single(j, segs);
                out.accepted.push(j);
            }
            None => {
                obs_count!("sched.lsa.rejected");
                out.rejected.push(j);
            }
        }
    }
    out
}

/// The `S`-window scan of Algorithm 2 lines 12–20: keep a working set of at
/// most `slots` idle segments; if the job fits, fill leftmost; otherwise
/// drop the shortest and slide in the next idle segment to the right.
fn place_into_k_slots(
    timeline: &mut Timeline,
    idle: &[Interval],
    length: Time,
    slots: usize,
) -> Option<SegmentSet> {
    if idle.is_empty() {
        return None;
    }
    // Working set S: indices into `idle` (kept sorted by position).
    let mut s: Vec<usize> = (0..slots.min(idle.len())).collect();
    let mut next = s.len();
    loop {
        let total: Time = s.iter().map(|&i| idle[i].len()).sum();
        if total >= length {
            let members: Vec<Interval> = s.iter().map(|&i| idle[i]).collect();
            return timeline.fill_leftmost(&members, length);
        }
        if next >= idle.len() {
            return None;
        }
        // Remove the shortest member of S, admit the next idle segment.
        obs_count!("sched.lsa.window_slides");
        let (pos, _) = s
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| (idle[i].len(), i))
            .expect("S non-empty");
        s.remove(pos);
        s.push(next);
        next += 1;
    }
}

/// Length classes for classify-and-select: class `c` holds jobs with
/// `base^c ≤ p_j / p_min < base^(c+1)` (0-indexed). Within a class the
/// length ratio is `< base`.
pub fn length_classes(jobs: &JobSet, ids: &[JobId], base: u32) -> Vec<Vec<JobId>> {
    assert!(base >= 2, "classify-and-select needs base ≥ 2");
    let Some(p_min) = ids.iter().map(|&j| jobs.job(j).length).min() else {
        return Vec::new();
    };
    let mut classes: Vec<Vec<JobId>> = Vec::new();
    for &j in ids {
        // Exact integer class index: largest c with base^c ≤ p / p_min.
        let mut c = 0usize;
        let mut bound = p_min;
        while jobs.job(j).length >= bound.saturating_mul(base as Time) {
            bound = bound.saturating_mul(base as Time);
            c += 1;
        }
        if classes.len() <= c {
            classes.resize_with(c + 1, Vec::new);
        }
        classes[c].push(j);
    }
    classes
}

/// `LSA_CS` (Algorithm 2, outer procedure): classify the jobs by length into
/// `(k+1)`-ratio classes, run `LSA` on each class separately (each on an
/// empty machine), and return the best class's outcome.
///
/// For the Lemma 4.10 guarantee the input should be lax (`λ_j ≥ k + 1`);
/// the function itself works on any input.
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::lsa_cs;
///
/// let jobs: JobSet = vec![
///     Job::new(0, 40, 4, 8.0),   // lax, dense
///     Job::new(0, 40, 4, 2.0),   // lax, sparse
/// ].into_iter().collect();
/// let out = lsa_cs(&jobs, &[JobId(0), JobId(1)], 1);
/// out.schedule.verify(&jobs, Some(1)).unwrap();
/// assert_eq!(out.accepted.len(), 2);
/// ```
pub fn lsa_cs(jobs: &JobSet, ids: &[JobId], k: u32) -> LsaOutcome {
    // Classes of length ratio < k+1 (for k = 0 we still need ratio-2
    // classes; §5 uses exactly that).
    obs_count!("sched.lsa_cs.runs");
    let base = (k + 1).max(2);
    let classes = length_classes(jobs, ids, base);
    let mut best: Option<LsaOutcome> = None;
    let mut best_value = -1.0f64;
    for class in &classes {
        if class.is_empty() {
            continue;
        }
        obs_count!("sched.lsa_cs.classes");
        obs_event!("sched.lsa_cs.class_size", class.len());
        let out = lsa(jobs, class, k);
        let v = out.value(jobs);
        if v > best_value {
            best_value = v;
            best = Some(out);
        }
    }
    best.unwrap_or(LsaOutcome {
        accepted: Vec::new(),
        rejected: Vec::new(),
        schedule: Schedule::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn single_job_goes_leftmost() {
        let jobs: JobSet = vec![Job::new(3, 30, 5, 1.0)].into_iter().collect();
        let out = lsa(&jobs, &ids_of(1), 1);
        assert_eq!(out.accepted, vec![JobId(0)]);
        assert_eq!(
            out.schedule.segments(JobId(0)).unwrap().segments(),
            &[Interval::new(3, 8)]
        );
        out.schedule.verify(&jobs, Some(1)).unwrap();
    }

    #[test]
    fn density_order_wins_contention() {
        // Two jobs fighting for the same region; the denser one is placed
        // first and the other must go to its right.
        let jobs: JobSet = vec![
            Job::new(0, 20, 5, 5.0),  // density 1.0
            Job::new(0, 20, 5, 10.0), // density 2.0 — goes first
        ]
        .into_iter()
        .collect();
        let out = lsa(&jobs, &ids_of(2), 0);
        assert_eq!(out.accepted, vec![JobId(1), JobId(0)]);
        assert_eq!(
            out.schedule.segments(JobId(1)).unwrap().segments(),
            &[Interval::new(0, 5)]
        );
        assert_eq!(
            out.schedule.segments(JobId(0)).unwrap().segments(),
            &[Interval::new(5, 10)]
        );
    }

    #[test]
    fn splits_across_k_plus_one_idle_segments() {
        // Pre-occupy the middle so the only room is two fragments; with
        // k = 1 the job may split, with k = 0 it must reject.
        let jobs: JobSet = vec![
            Job::new(4, 12, 8, 1.0),  // blocker: occupies [4,12)
            Job::new(0, 16, 8, 0.5),  // needs [0,4) ∪ [12,16)
        ]
        .into_iter()
        .collect();
        let out = lsa(&jobs, &ids_of(2), 1);
        assert_eq!(out.accepted.len(), 2);
        let segs = out.schedule.segments(JobId(1)).unwrap();
        assert_eq!(
            segs.segments(),
            &[Interval::new(0, 4), Interval::new(12, 16)]
        );
        out.schedule.verify(&jobs, Some(1)).unwrap();

        let out0 = lsa(&jobs, &ids_of(2), 0);
        assert_eq!(out0.accepted, vec![JobId(0)]);
        assert_eq!(out0.rejected, vec![JobId(1)]);
    }

    #[test]
    fn slide_window_replaces_shortest() {
        // Idle pattern: [0,1), [2,3), [4,10) (after blockers), k = 1 →
        // S starts as {[0,1),[2,3)} (total 2 < 4), drops the shortest
        // (leftmost of the two unit slots) and admits [4,10) → fits.
        let jobs: JobSet = vec![
            Job::new(1, 3, 1, 10.0),  // blocker [1,2)
            Job::new(3, 5, 1, 10.0),  // blocker [3,4)
            Job::new(0, 10, 4, 1.0),  // wants 4 ticks, k+1 = 2 slots
        ]
        .into_iter()
        .collect();
        let out = lsa(&jobs, &ids_of(3), 1);
        assert!(out.accepted.contains(&JobId(2)));
        let segs = out.schedule.segments(JobId(2)).unwrap();
        assert!(segs.count() <= 2);
        assert_eq!(segs.total_len(), 4);
        out.schedule.verify(&jobs, Some(1)).unwrap();
    }

    #[test]
    fn rejects_when_window_cannot_fit() {
        let jobs: JobSet = vec![
            Job::new(0, 10, 10, 10.0), // fills everything
            Job::new(0, 10, 1, 1.0),
        ]
        .into_iter()
        .collect();
        let out = lsa(&jobs, &ids_of(2), 3);
        assert_eq!(out.accepted, vec![JobId(0)]);
        assert_eq!(out.rejected, vec![JobId(1)]);
    }

    #[test]
    fn preemption_bound_always_respected() {
        // Fragmented timeline forcing multi-segment placements.
        let mut jv = vec![];
        // Blockers at every other slot of [0,40).
        for i in 0..10 {
            jv.push(Job::new(4 * i, 4 * i + 2, 2, 100.0));
        }
        // Big lax jobs that must weave between blockers.
        for _ in 0..3 {
            jv.push(Job::new(0, 40, 5, 1.0));
        }
        let jobs: JobSet = jv.into_iter().collect();
        for k in 0..4u32 {
            let out = lsa(&jobs, &ids_of(13), k);
            out.schedule.verify(&jobs, Some(k)).unwrap();
        }
    }

    #[test]
    fn length_classes_partition_by_ratio() {
        let jobs: JobSet = vec![
            Job::new(0, 100, 1, 1.0),
            Job::new(0, 100, 2, 1.0),
            Job::new(0, 100, 3, 1.0),
            Job::new(0, 100, 4, 1.0),
            Job::new(0, 100, 9, 1.0),
        ]
        .into_iter()
        .collect();
        let classes = length_classes(&jobs, &ids_of(5), 2);
        // p_min = 1: class 0 = [1,2), class 1 = [2,4), class 2 = [4,8),
        // class 3 = [8,16).
        assert_eq!(classes.len(), 4);
        assert_eq!(classes[0], vec![JobId(0)]);
        assert_eq!(classes[1], vec![JobId(1), JobId(2)]);
        assert_eq!(classes[2], vec![JobId(3)]);
        assert_eq!(classes[3], vec![JobId(4)]);
        for (c, class) in classes.iter().enumerate() {
            for &j in class {
                let ratio = jobs.job(j).length as f64 / 1.0;
                assert!(ratio >= 2f64.powi(c as i32) && ratio < 2f64.powi(c as i32 + 1));
            }
        }
    }

    #[test]
    fn lsa_cs_picks_best_class() {
        // Class of short cheap jobs vs class of one long valuable job that
        // conflicts with them; CS must return the long job's class.
        let jobs: JobSet = vec![
            Job::new(0, 4, 1, 1.0),
            Job::new(4, 8, 1, 1.0),
            Job::new(0, 64, 16, 100.0),
        ]
        .into_iter()
        .collect();
        let out = lsa_cs(&jobs, &ids_of(3), 1);
        assert_eq!(out.accepted, vec![JobId(2)]);
        assert_eq!(out.value(&jobs), 100.0);
    }

    #[test]
    fn lsa_cs_empty_input() {
        let jobs = JobSet::new();
        let out = lsa_cs(&jobs, &[], 1);
        assert!(out.accepted.is_empty());
        assert!(out.schedule.is_empty());
    }

    #[test]
    fn lsa_cs_single_class_equals_lsa() {
        let jobs: JobSet = vec![
            Job::new(0, 30, 3, 2.0),
            Job::new(0, 30, 3, 1.0),
            Job::new(5, 40, 4, 5.0),
        ]
        .into_iter()
        .collect();
        let cs = lsa_cs(&jobs, &ids_of(3), 1);
        let plain = lsa(&jobs, &ids_of(3), 1);
        assert_eq!(cs.accepted, plain.accepted);
        assert_eq!(cs.value(&jobs), plain.value(&jobs));
    }
}
