//! Classical non-preemptive baselines cited in §1.4 of the paper.
//!
//! * **Moore–Hodgson** [24]: maximize the *number* of on-time jobs, common
//!   release time, non-preemptive, `O(n log n)`. The classic exact greedy:
//!   process jobs in deadline order, and whenever the running total
//!   overshoots a deadline, evict the longest job accepted so far.
//! * **Lawler–Moore** [23]: maximize the *value* of on-time jobs, common
//!   release time, non-preemptive, pseudo-polynomial `O(n · Σp)`. A
//!   knapsack-style DP over deadline-sorted jobs where the state is the
//!   total processing time of the accepted set (an exchange argument shows
//!   accepted jobs can always run in EDD order, so feasibility is
//!   `completion ≤ deadline` per accepted job).
//!
//! Both require a **common release time** (they predate release-time
//! generality); the functions assert it. They serve as exact fast baselines
//! for the `k = 0` experiments on common-release instances and as test
//! oracles cross-checked against `opt_nonpreemptive`.

use pobp_core::{Interval, JobId, JobSet, Schedule, SegmentSet, Time, Value};

fn assert_common_release(jobs: &JobSet, ids: &[JobId]) -> Time {
    let Some(first) = ids.first() else { return 0 };
    let r = jobs.job(*first).release;
    assert!(
        ids.iter().all(|&j| jobs.job(j).release == r),
        "classical algorithms require a common release time"
    );
    r
}

/// Ids sorted by deadline (EDD), ties by id.
fn edd_order(jobs: &JobSet, ids: &[JobId]) -> Vec<JobId> {
    let mut v = ids.to_vec();
    v.sort_by_key(|&j| (jobs.job(j).deadline, j));
    v
}

/// Builds the non-preemptive schedule running `accepted` in EDD order from
/// the common release time.
fn edd_schedule(jobs: &JobSet, accepted: &[JobId], release: Time) -> Schedule {
    let mut schedule = Schedule::new();
    let mut t = release;
    for &j in &edd_order(jobs, accepted) {
        let p = jobs.job(j).length;
        schedule.assign_single(j, SegmentSet::singleton(Interval::with_len(t, p)));
        t += p;
    }
    schedule
}

/// Moore–Hodgson: the maximum-cardinality on-time set for unit-value,
/// common-release, non-preemptive scheduling, in `O(n log n)`.
///
/// Returns the accepted ids (sorted) and their EDD schedule.
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::moore_hodgson;
///
/// let jobs: JobSet = [(2i64, 6i64), (3, 7), (2, 8), (5, 9), (6, 11)]
///     .into_iter()
///     .map(|(p, d)| Job::new(0, d, p, 1.0))
///     .collect();
/// let ids: Vec<JobId> = jobs.ids().collect();
/// let (accepted, schedule) = moore_hodgson(&jobs, &ids);
/// assert_eq!(accepted.len(), 3); // any 4 need ≥ 12 ticks by deadline 11
/// schedule.verify(&jobs, Some(0)).unwrap();
/// ```
///
/// # Panics
/// Panics when the jobs do not share a release time.
pub fn moore_hodgson(jobs: &JobSet, ids: &[JobId]) -> (Vec<JobId>, Schedule) {
    let release = assert_common_release(jobs, ids);
    let mut heap: std::collections::BinaryHeap<(Time, JobId)> = Default::default();
    let mut total: Time = 0;
    for j in edd_order(jobs, ids) {
        let job = jobs.job(j);
        heap.push((job.length, j));
        total += job.length;
        if release + total > job.deadline {
            // Evict the longest accepted job — the classical exchange step.
            let (longest, _) = heap.pop().expect("just pushed");
            total -= longest;
        }
    }
    let mut accepted: Vec<JobId> = heap.into_iter().map(|(_, j)| j).collect();
    accepted.sort_unstable();
    let schedule = edd_schedule(jobs, &accepted, release);
    debug_assert!(schedule.verify(jobs, Some(0)).is_ok());
    (accepted, schedule)
}

/// Lawler–Moore: the maximum-*value* on-time set for common-release,
/// non-preemptive scheduling, in `O(n · Σp)` time and space.
///
/// Returns the accepted ids (sorted), their EDD schedule, and the value.
///
/// # Panics
/// Panics when the jobs do not share a release time or `Σp` exceeds
/// 10⁷ (the DP table would be unreasonably large).
pub fn lawler_moore(jobs: &JobSet, ids: &[JobId]) -> (Vec<JobId>, Schedule, Value) {
    let release = assert_common_release(jobs, ids);
    let order = edd_order(jobs, ids);
    let total_p: Time = ids.iter().map(|&j| jobs.job(j).length).sum();
    assert!(total_p <= 10_000_000, "Σp = {total_p} too large for the DP");
    let width = total_p as usize + 1;
    // best[t] = max value of an accepted set of total length exactly t,
    // considering the first i jobs in EDD order; NEG for unreachable.
    const NEG: f64 = f64::NEG_INFINITY;
    let mut best = vec![NEG; width];
    best[0] = 0.0;
    // choice[i][t] = whether job order[i] is taken at state t (for recovery).
    let mut choice: Vec<Vec<bool>> = Vec::with_capacity(order.len());
    for &j in &order {
        let job = jobs.job(j);
        let p = job.length as usize;
        let mut taken = vec![false; width];
        // Iterate t downward (0/1 knapsack) over states still meeting the
        // deadline: accepted set of total length t must finish by d_j when
        // j is its last EDD job: release + t ≤ d_j.
        let t_max = ((job.deadline - release) as usize).min(width - 1);
        for t in (p..=t_max).rev() {
            let cand = best[t - p] + job.value;
            if cand > best[t] {
                best[t] = cand;
                taken[t] = true;
            }
        }
        choice.push(taken);
    }
    // Optimal value and state.
    let (mut t, mut best_value) = (0usize, 0.0f64);
    for (state, &v) in best.iter().enumerate() {
        if v > best_value {
            best_value = v;
            t = state;
        }
    }
    // Recover the accepted set.
    let mut accepted = Vec::new();
    for i in (0..order.len()).rev() {
        if choice[i][t] {
            accepted.push(order[i]);
            t -= jobs.job(order[i]).length as usize;
        }
    }
    debug_assert_eq!(t, 0);
    accepted.sort_unstable();
    let schedule = edd_schedule(jobs, &accepted, release);
    debug_assert!(schedule.verify(jobs, Some(0)).is_ok());
    (accepted, schedule, best_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::opt_nonpreemptive;
    use pobp_core::Job;

    fn ids_of(n: usize) -> Vec<JobId> {
        (0..n).map(JobId).collect()
    }

    #[test]
    fn moore_hodgson_textbook_example() {
        // Instance: jobs (p, d) = (2,6),(3,7),(2,8),(5,9),(6,11). Any four
        // jobs need ≥ 12 ticks but the latest deadline is 11, so the
        // optimum keeps exactly 3 — Moore's greedy evicts j3 then j4.
        let jobs: JobSet = [(2, 6), (3, 7), (2, 8), (5, 9), (6, 11)]
            .into_iter()
            .map(|(p, d)| Job::new(0, d, p, 1.0))
            .collect();
        let (accepted, schedule) = moore_hodgson(&jobs, &ids_of(5));
        schedule.verify(&jobs, Some(0)).unwrap();
        assert_eq!(accepted, vec![JobId(0), JobId(1), JobId(2)]);
        // Exact DP agrees on cardinality (unit values).
        let opt = opt_nonpreemptive(&jobs, &ids_of(5));
        assert_eq!(opt.value, 3.0);
    }

    #[test]
    fn moore_hodgson_all_feasible() {
        let jobs: JobSet = (1..=4).map(|i| Job::new(0, 100, i, 1.0)).collect();
        let (accepted, _) = moore_hodgson(&jobs, &ids_of(4));
        assert_eq!(accepted.len(), 4);
    }

    #[test]
    fn moore_hodgson_matches_exact_on_random_common_release() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.random_range(1..=9usize);
            let jobs: JobSet = (0..n)
                .map(|_| {
                    let p = rng.random_range(1..=8i64);
                    let d = p + rng.random_range(0..=20i64);
                    Job::new(0, d, p, 1.0)
                })
                .collect();
            let ids = ids_of(n);
            let (accepted, schedule) = moore_hodgson(&jobs, &ids);
            schedule.verify(&jobs, Some(0)).unwrap();
            let opt = opt_nonpreemptive(&jobs, &ids);
            assert_eq!(accepted.len() as f64, opt.value, "{jobs:?}");
        }
    }

    #[test]
    fn lawler_moore_prefers_value_over_count() {
        // One heavy job vs two light ones that exclude it.
        let jobs: JobSet = vec![
            Job::new(0, 4, 4, 10.0),
            Job::new(0, 2, 2, 1.0),
            Job::new(0, 4, 2, 1.0),
        ]
        .into_iter()
        .collect();
        let (accepted, schedule, value) = lawler_moore(&jobs, &ids_of(3));
        schedule.verify(&jobs, Some(0)).unwrap();
        assert_eq!(value, 10.0);
        assert_eq!(accepted, vec![JobId(0)]);
    }

    #[test]
    fn lawler_moore_matches_exact_on_random_common_release() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let n = rng.random_range(1..=9usize);
            let jobs: JobSet = (0..n)
                .map(|_| {
                    let p = rng.random_range(1..=8i64);
                    let d = p + rng.random_range(0..=20i64);
                    let v = rng.random_range(1..=9u32) as f64;
                    Job::new(0, d, p, v)
                })
                .collect();
            let ids = ids_of(n);
            let (_, schedule, value) = lawler_moore(&jobs, &ids);
            schedule.verify(&jobs, Some(0)).unwrap();
            let opt = opt_nonpreemptive(&jobs, &ids);
            assert!((value - opt.value).abs() < 1e-9, "LM={value} DP={} {jobs:?}", opt.value);
        }
    }

    #[test]
    fn lawler_moore_unit_values_matches_moore_hodgson() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..15 {
            let n = rng.random_range(1..=10usize);
            let jobs: JobSet = (0..n)
                .map(|_| {
                    let p = rng.random_range(1..=6i64);
                    let d = p + rng.random_range(0..=15i64);
                    Job::new(0, d, p, 1.0)
                })
                .collect();
            let ids = ids_of(n);
            let (mh, _) = moore_hodgson(&jobs, &ids);
            let (_, _, lm) = lawler_moore(&jobs, &ids);
            assert_eq!(mh.len() as f64, lm);
        }
    }

    #[test]
    fn nonzero_common_release_is_supported() {
        let jobs: JobSet = vec![Job::new(50, 60, 5, 1.0), Job::new(50, 70, 10, 1.0)]
            .into_iter()
            .collect();
        let (accepted, schedule) = moore_hodgson(&jobs, &ids_of(2));
        schedule.verify(&jobs, Some(0)).unwrap();
        assert_eq!(accepted.len(), 2);
        let (_, s2, v) = lawler_moore(&jobs, &ids_of(2));
        s2.verify(&jobs, Some(0)).unwrap();
        assert_eq!(v, 2.0);
    }

    #[test]
    #[should_panic(expected = "common release")]
    fn rejects_differing_releases() {
        let jobs: JobSet = vec![Job::new(0, 10, 2, 1.0), Job::new(1, 10, 2, 1.0)]
            .into_iter()
            .collect();
        let _ = moore_hodgson(&jobs, &ids_of(2));
    }

    #[test]
    fn empty_input() {
        let jobs = JobSet::new();
        let (a, s) = moore_hodgson(&jobs, &[]);
        assert!(a.is_empty() && s.is_empty());
        let (a, s, v) = lawler_moore(&jobs, &[]);
        assert!(a.is_empty() && s.is_empty());
        assert_eq!(v, 0.0);
    }
}
