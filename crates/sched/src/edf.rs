//! Preemptive Earliest-Deadline-First on a single machine.
//!
//! EDF is the classical feasibility-optimal policy for
//! `1 | pmtn, r_j | ·`: a job subset can be feasibly scheduled with
//! unbounded preemption iff EDF completes every job by its deadline. We use
//! it in three roles:
//!
//! 1. **Feasibility oracle** — [`edf_feasible`] decides Definition 2.1
//!    feasibility of a subset, powering the exact `OPT_∞` branch-and-bound;
//! 2. **Witness generator** — [`edf_schedule`] produces the concrete
//!    `∞`-preemptive schedule that the §4.1 reduction consumes;
//! 3. **Laminarizer** — with a *machine availability* restriction,
//!    re-running EDF inside an existing schedule's busy timeline yields an
//!    interleaving-free rearrangement of it (see `laminar.rs`).
//!
//! **Laminarity.** With a deterministic tie-break (deadline, then job id),
//! EDF schedules are laminar: if segments interleaved as
//! `a₁ ≺ b₁ ≺ a₂ ≺ b₂`, then at `b₁` EDF preferred `B` over the available,
//! unfinished `A` (so `B` strictly precedes `A` in priority order), yet at
//! `a₂` it preferred `A` over the available, unfinished `B` — a
//! contradiction. The argument never uses continuous machine availability,
//! so it survives the availability-restricted variant. This is exactly the
//! Figure 1 rearrangement invariant, and `laminar.rs` tests it.

use crate::workspace::{EdfScratch, SolveWorkspace};
use pobp_core::{obs_count, Interval, JobId, JobSet, Schedule, SegmentSet, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of an EDF run.
#[derive(Clone, Debug)]
pub struct EdfOutcome {
    /// The schedule of the jobs that *completed by their deadlines*.
    /// Jobs that missed are aborted at their deadline and excluded entirely
    /// (their partial segments are discarded), so `schedule` is always
    /// feasible for the jobs it contains.
    pub schedule: Schedule,
    /// Jobs that could not be completed (empty iff the subset is feasible).
    pub missed: Vec<JobId>,
}

impl EdfOutcome {
    /// Whether every requested job completed on time.
    pub fn is_feasible(&self) -> bool {
        self.missed.is_empty()
    }
}

/// Runs preemptive EDF for `subset` on machine 0, optionally restricted to
/// run only within `availability` (a set of allowed machine-time segments).
///
/// `availability = None` means the machine is always available. Duplicate
/// ids in `subset` are rejected by a panic (they would be two copies of one
/// job).
///
/// ```
/// use pobp_core::{Job, JobId, JobSet};
/// use pobp_sched::{edf_feasible, edf_schedule};
///
/// let jobs: JobSet = vec![
///     Job::new(0, 20, 8, 1.0),
///     Job::new(1, 5, 3, 1.0),   // earlier deadline → preempts job 0
/// ].into_iter().collect();
/// let ids = [JobId(0), JobId(1)];
/// assert!(edf_feasible(&jobs, &ids));
/// let out = edf_schedule(&jobs, &ids, None);
/// assert!(out.is_feasible());
/// assert_eq!(out.schedule.preemptions(JobId(0)), 1);
/// ```
pub fn edf_schedule(
    jobs: &JobSet,
    subset: &[JobId],
    availability: Option<&SegmentSet>,
) -> EdfOutcome {
    edf_core(jobs, subset, availability, &mut EdfScratch::default())
}

/// [`edf_schedule`] with caller-provided scratch memory (see
/// [`SolveWorkspace`]). Identical output; the per-job state arrays, release
/// list and ready queue keep their capacity across calls.
pub fn edf_schedule_ws(
    jobs: &JobSet,
    subset: &[JobId],
    availability: Option<&SegmentSet>,
    ws: &mut SolveWorkspace,
) -> EdfOutcome {
    edf_core(jobs, subset, availability, &mut ws.edf)
}

pub(crate) fn edf_core(
    jobs: &JobSet,
    subset: &[JobId],
    availability: Option<&SegmentSet>,
    es: &mut EdfScratch,
) -> EdfOutcome {
    obs_count!("sched.edf.runs");
    if availability.is_some() {
        obs_count!("sched.edf.restricted_runs");
    }
    let mut outcome = EdfOutcome { schedule: Schedule::new(), missed: Vec::new() };
    if subset.is_empty() {
        return outcome;
    }
    // Availability as a segment list; `None` → one segment covering every
    // window in the subset.
    let default_avail;
    let avail: &[Interval] = match availability {
        Some(a) => a.segments(),
        None => {
            let lo = subset.iter().map(|&j| jobs.job(j).release).min().unwrap();
            let hi = subset.iter().map(|&j| jobs.job(j).deadline).max().unwrap();
            default_avail = [Interval::new(lo, hi)];
            &default_avail
        }
    };

    // Per-job state: flat arrays indexed by the dense job id, stamped with
    // this call's epoch (a stale stamp means "not in this subset"). The
    // stamp doubles as the duplicate check.
    let epoch = es.begin(jobs.len());
    let EdfScratch { remaining, placed, stamp, releases, ready, .. } = es;
    for &j in subset {
        let job = jobs.job(j); // panics first on out-of-range ids
        assert!(
            std::mem::replace(&mut stamp[j.0], epoch) != epoch,
            "duplicate job ids in EDF subset"
        );
        remaining[j.0] = job.length;
        placed[j.0].clear();
        releases.push((job.release, j));
    }
    // Releases ascending.
    releases.sort_unstable();

    // Ready queue ordered by (deadline, id) — the deterministic tie-break
    // that makes the output laminar.
    let mut rel_idx = 0usize;
    let mut ai = 0usize;
    let mut t = Time::MIN;

    let admit = |t: Time, rel_idx: &mut usize, ready: &mut BinaryHeap<Reverse<(Time, JobId)>>| {
        while *rel_idx < releases.len() && releases[*rel_idx].0 <= t {
            let (_, j) = releases[*rel_idx];
            obs_count!("sched.edf.heap_push");
            ready.push(Reverse((jobs.job(j).deadline, j)));
            *rel_idx += 1;
        }
    };

    loop {
        obs_count!("sched.edf.iterations");
        admit(t, &mut rel_idx, ready);
        // Nothing ready: jump to the next release, or finish.
        if ready.is_empty() {
            match releases.get(rel_idx) {
                Some(&(r, _)) => {
                    obs_count!("sched.edf.gap_jumps");
                    t = t.max(r);
                    continue;
                }
                None => break,
            }
        }
        // Clamp `t` into machine availability.
        while ai < avail.len() && avail[ai].end <= t {
            ai += 1;
        }
        if ai == avail.len() {
            // Machine time exhausted; everything still ready misses.
            break;
        }
        if t < avail[ai].start {
            obs_count!("sched.edf.idle_jumps");
            t = avail[ai].start;
            continue; // re-admit releases up to the new time
        }

        let Reverse((deadline, j)) = *ready.peek().expect("non-empty");
        let rem = remaining[j.0];
        if t + rem > deadline {
            // Hopeless: even with exclusive machine use the job cannot meet
            // its deadline. Abort it and discard its partial segments —
            // the rest of the schedule stays feasible, and a miss is an
            // exact certificate of subset infeasibility (EDF optimality).
            obs_count!("sched.edf.heap_pop");
            obs_count!("sched.edf.aborts");
            ready.pop();
            outcome.missed.push(j);
            placed[j.0].clear();
            continue;
        }
        // Run the top job until the next scheduling event.
        let mut run_until = (t + rem).min(avail[ai].end);
        if let Some(&(r, _)) = releases.get(rel_idx) {
            if r > t {
                run_until = run_until.min(r);
            }
        }
        debug_assert!(run_until > t, "no progress at t={t}");
        obs_count!("sched.edf.segments_emitted");
        placed[j.0].push(Interval::new(t, run_until));
        let new_rem = rem - (run_until - t);
        remaining[j.0] = new_rem;
        t = run_until;
        if new_rem == 0 {
            obs_count!("sched.edf.heap_pop");
            ready.pop();
            let segs = SegmentSet::from_intervals(placed[j.0].drain(..));
            outcome.schedule.assign_single(j, segs);
        }
    }
    // Anything still ready or unreleased-but-tracked missed its chance.
    while let Some(Reverse((_, j))) = ready.pop() {
        obs_count!("sched.edf.heap_pop");
        if remaining[j.0] > 0 {
            outcome.missed.push(j);
        }
    }
    while rel_idx < releases.len() {
        outcome.missed.push(releases[rel_idx].1);
        rel_idx += 1;
    }
    outcome.missed.sort_unstable();
    outcome.missed.dedup();
    outcome
}

/// Whether `subset` is `∞`-preemptively feasible on one machine
/// (EDF is exact for this question).
pub fn edf_feasible(jobs: &JobSet, subset: &[JobId]) -> bool {
    edf_schedule(jobs, subset, None).is_feasible()
}

/// [`edf_feasible`] with caller-provided scratch memory.
pub fn edf_feasible_ws(jobs: &JobSet, subset: &[JobId], ws: &mut SolveWorkspace) -> bool {
    edf_core(jobs, subset, None, &mut ws.edf).is_feasible()
}

/// The pre-workspace implementation (`HashMap` per-job state, sort-based
/// duplicate check), kept verbatim as the oracle for the differential
/// proptests in `tests/differential_ws.rs`.
#[doc(hidden)]
pub fn edf_schedule_reference(
    jobs: &JobSet,
    subset: &[JobId],
    availability: Option<&SegmentSet>,
) -> EdfOutcome {
    let mut outcome = EdfOutcome { schedule: Schedule::new(), missed: Vec::new() };
    if subset.is_empty() {
        return outcome;
    }
    let default_avail;
    let avail: &[Interval] = match availability {
        Some(a) => a.segments(),
        None => {
            let lo = subset.iter().map(|&j| jobs.job(j).release).min().unwrap();
            let hi = subset.iter().map(|&j| jobs.job(j).deadline).max().unwrap();
            default_avail = [Interval::new(lo, hi)];
            &default_avail
        }
    };

    let mut releases: Vec<(Time, JobId)> =
        subset.iter().map(|&j| (jobs.job(j).release, j)).collect();
    releases.sort_unstable();
    {
        let mut ids: Vec<JobId> = subset.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), subset.len(), "duplicate job ids in EDF subset");
    }
    let mut remaining: std::collections::HashMap<JobId, Time> =
        subset.iter().map(|&j| (j, jobs.job(j).length)).collect();
    let mut placed: std::collections::HashMap<JobId, Vec<Interval>> =
        subset.iter().map(|&j| (j, Vec::new())).collect();

    let mut ready: BinaryHeap<Reverse<(Time, JobId)>> = BinaryHeap::new();
    let mut rel_idx = 0usize;
    let mut ai = 0usize;
    let mut t = Time::MIN;

    let admit = |t: Time, rel_idx: &mut usize, ready: &mut BinaryHeap<Reverse<(Time, JobId)>>| {
        while *rel_idx < releases.len() && releases[*rel_idx].0 <= t {
            let (_, j) = releases[*rel_idx];
            ready.push(Reverse((jobs.job(j).deadline, j)));
            *rel_idx += 1;
        }
    };

    loop {
        admit(t, &mut rel_idx, &mut ready);
        if ready.is_empty() {
            match releases.get(rel_idx) {
                Some(&(r, _)) => {
                    t = t.max(r);
                    continue;
                }
                None => break,
            }
        }
        while ai < avail.len() && avail[ai].end <= t {
            ai += 1;
        }
        if ai == avail.len() {
            break;
        }
        if t < avail[ai].start {
            t = avail[ai].start;
            continue;
        }

        let Reverse((deadline, j)) = *ready.peek().expect("non-empty");
        let rem = remaining[&j];
        if t + rem > deadline {
            ready.pop();
            outcome.missed.push(j);
            placed.remove(&j);
            continue;
        }
        let mut run_until = (t + rem).min(avail[ai].end);
        if let Some(&(r, _)) = releases.get(rel_idx) {
            if r > t {
                run_until = run_until.min(r);
            }
        }
        placed.get_mut(&j).expect("job placed map").push(Interval::new(t, run_until));
        let new_rem = rem - (run_until - t);
        *remaining.get_mut(&j).unwrap() = new_rem;
        t = run_until;
        if new_rem == 0 {
            ready.pop();
            let segs = SegmentSet::from_intervals(placed.remove(&j).unwrap());
            outcome.schedule.assign_single(j, segs);
        }
    }
    while let Some(Reverse((_, j))) = ready.pop() {
        if remaining[&j] > 0 {
            outcome.missed.push(j);
        }
    }
    while rel_idx < releases.len() {
        outcome.missed.push(releases[rel_idx].1);
        rel_idx += 1;
    }
    outcome.missed.sort_unstable();
    outcome.missed.dedup();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn ids(v: &[usize]) -> Vec<JobId> {
        v.iter().map(|&i| JobId(i)).collect()
    }

    #[test]
    fn single_job_runs_at_release() {
        let jobs: JobSet = vec![Job::new(5, 20, 4, 1.0)].into_iter().collect();
        let out = edf_schedule(&jobs, &ids(&[0]), None);
        assert!(out.is_feasible());
        assert_eq!(
            out.schedule.segments(JobId(0)).unwrap().segments(),
            &[Interval::new(5, 9)]
        );
        out.schedule.verify(&jobs, None).unwrap();
    }

    #[test]
    fn earlier_deadline_preempts() {
        // Long lax job preempted by a tight one released mid-run.
        let jobs: JobSet = vec![
            Job::new(0, 100, 10, 1.0), // j0, lax
            Job::new(3, 8, 5, 1.0),    // j1, tight: must run [3, 8)
        ]
        .into_iter()
        .collect();
        let out = edf_schedule(&jobs, &ids(&[0, 1]), None);
        assert!(out.is_feasible());
        out.schedule.verify(&jobs, None).unwrap();
        assert_eq!(
            out.schedule.segments(JobId(1)).unwrap().segments(),
            &[Interval::new(3, 8)]
        );
        let j0 = out.schedule.segments(JobId(0)).unwrap();
        assert_eq!(j0.segments(), &[Interval::new(0, 3), Interval::new(8, 15)]);
        assert_eq!(out.schedule.preemptions(JobId(0)), 1);
    }

    #[test]
    fn infeasible_overload_reports_miss() {
        // Two tight jobs in the same unit window.
        let jobs: JobSet = vec![Job::new(0, 2, 2, 1.0), Job::new(0, 2, 2, 1.0)]
            .into_iter()
            .collect();
        let out = edf_schedule(&jobs, &ids(&[0, 1]), None);
        assert!(!out.is_feasible());
        // One completes, one misses; the returned schedule is feasible.
        assert_eq!(out.schedule.len() + out.missed.len(), 2);
        out.schedule.verify(&jobs, None).unwrap();
        assert!(!edf_feasible(&jobs, &ids(&[0, 1])));
        assert!(edf_feasible(&jobs, &ids(&[0])));
    }

    #[test]
    fn idle_gap_between_releases() {
        let jobs: JobSet = vec![Job::new(0, 5, 2, 1.0), Job::new(10, 15, 2, 1.0)]
            .into_iter()
            .collect();
        let out = edf_schedule(&jobs, &ids(&[0, 1]), None);
        assert!(out.is_feasible());
        assert_eq!(
            out.schedule.segments(JobId(1)).unwrap().segments(),
            &[Interval::new(10, 12)]
        );
    }

    #[test]
    fn availability_restriction_is_respected() {
        // Machine only available [0,3) and [7,20).
        let jobs: JobSet = vec![Job::new(0, 20, 5, 1.0)].into_iter().collect();
        let avail = SegmentSet::from_intervals([Interval::new(0, 3), Interval::new(7, 20)]);
        let out = edf_schedule(&jobs, &ids(&[0]), Some(&avail));
        assert!(out.is_feasible());
        assert_eq!(
            out.schedule.segments(JobId(0)).unwrap().segments(),
            &[Interval::new(0, 3), Interval::new(7, 9)]
        );
    }

    #[test]
    fn availability_can_cause_misses() {
        let jobs: JobSet = vec![Job::new(0, 10, 5, 1.0)].into_iter().collect();
        let avail = SegmentSet::from_intervals([Interval::new(0, 3)]);
        let out = edf_schedule(&jobs, &ids(&[0]), Some(&avail));
        assert_eq!(out.missed, ids(&[0]));
        assert!(out.schedule.is_empty());
    }

    #[test]
    fn deadline_tie_broken_by_id() {
        // Same window; EDF must be deterministic: lower id first.
        let jobs: JobSet = vec![Job::new(0, 10, 3, 1.0), Job::new(0, 10, 3, 1.0)]
            .into_iter()
            .collect();
        let out = edf_schedule(&jobs, &ids(&[0, 1]), None);
        assert!(out.is_feasible());
        assert_eq!(
            out.schedule.segments(JobId(0)).unwrap().segments(),
            &[Interval::new(0, 3)]
        );
        assert_eq!(
            out.schedule.segments(JobId(1)).unwrap().segments(),
            &[Interval::new(3, 6)]
        );
    }

    #[test]
    fn nested_windows_schedule_inside_out() {
        // Figure-2-like nesting: inner tight job in the middle of the outer.
        let jobs: JobSet = vec![
            Job::new(0, 7, 4, 1.0), // outer, window 7
            Job::new(2, 5, 3, 1.0), // inner, tight [2,5)
        ]
        .into_iter()
        .collect();
        let out = edf_schedule(&jobs, &ids(&[0, 1]), None);
        assert!(out.is_feasible());
        out.schedule.verify(&jobs, None).unwrap();
        assert_eq!(
            out.schedule.segments(JobId(1)).unwrap().segments(),
            &[Interval::new(2, 5)]
        );
        assert_eq!(
            out.schedule.segments(JobId(0)).unwrap().segments(),
            &[Interval::new(0, 2), Interval::new(5, 7)]
        );
    }

    #[test]
    fn empty_subset() {
        let jobs: JobSet = vec![Job::new(0, 5, 2, 1.0)].into_iter().collect();
        let out = edf_schedule(&jobs, &[], None);
        assert!(out.is_feasible());
        assert!(out.schedule.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_rejected() {
        let jobs: JobSet = vec![Job::new(0, 5, 2, 1.0)].into_iter().collect();
        let _ = edf_schedule(&jobs, &ids(&[0, 0]), None);
    }

    #[test]
    fn miss_frees_machine_for_others() {
        // j0 impossible alone? No: j0 and j1 compete; j1 (earlier deadline)
        // wins the slot; j0 misses but j1 and j2 still complete.
        let jobs: JobSet = vec![
            Job::new(0, 4, 4, 1.0),  // j0 needs the whole [0,4)
            Job::new(0, 3, 3, 1.0),  // j1 earlier deadline, takes [0,3)
            Job::new(5, 9, 2, 1.0),  // j2 independent, later
        ]
        .into_iter()
        .collect();
        let out = edf_schedule(&jobs, &ids(&[0, 1, 2]), None);
        assert_eq!(out.missed, ids(&[0]));
        assert_eq!(out.schedule.len(), 2);
        out.schedule.verify(&jobs, None).unwrap();
    }
}
