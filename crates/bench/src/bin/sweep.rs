//! `sweep` — dense, machine-readable data series behind the figures of
//! `EXPERIMENTS.md`, as CSV on stdout.
//!
//! ```text
//! cargo run --release -p pobp-bench --bin sweep -- kbas-loss   > kbas_loss.csv
//! cargo run --release -p pobp-bench --bin sweep -- fig4-price  > fig4_price.csv
//! cargo run --release -p pobp-bench --bin sweep -- lsa-price   > lsa_price.csv
//! cargo run --release -p pobp-bench --bin sweep -- k0-price    > k0_price.csv
//! cargo run --release -p pobp-bench --bin sweep -- switch-cost > switch_cost.csv
//! cargo run --release -p pobp-bench --bin sweep -- choose-k    > choose_k.csv
//! cargo run --release -p pobp-bench --bin sweep -- all --markdown
//! ```

use pobp_bench::report::{num, Table};
use pobp_bench::{geo_mean, lax_workload, small_workload};
use pobp_core::{Job, JobId, JobSet};
use pobp_forest::{tm, LowerBoundTree};
use pobp_instances::{Fig2Instance, Fig4Instance};
use pobp_sched::{edf_feasible, opt_nonpreemptive, opt_unbounded, lsa_cs, schedule_k0};
use pobp_sim::{execute_online, Policy, SimConfig};

/// One sweep entry: selector name, table builder.
type Sweep = (&'static str, fn() -> Table);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let sweeps: &[Sweep] = &[
        ("kbas-loss", sweep_kbas_loss),
        ("fig4-price", sweep_fig4_price),
        ("lsa-price", sweep_lsa_price),
        ("k0-price", sweep_k0_price),
        ("switch-cost", sweep_switch_cost),
        ("choose-k", sweep_choose_k),
    ];
    let mut matched = false;
    for (name, f) in sweeps {
        if which == *name || which == "all" {
            matched = true;
            if which == "all" {
                println!("# {name}");
            }
            let t = f();
            if markdown {
                print!("{}", t.to_markdown());
            } else {
                print!("{}", t.to_csv());
            }
        }
    }
    if !matched {
        eprintln!(
            "unknown sweep `{which}`; available: {} or `all`",
            sweeps.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }
}

/// k-BAS loss on the Appendix A tree: one point per (k, L).
fn sweep_kbas_loss() -> Table {
    let mut t = Table::new(["k", "L", "n", "measured_loss", "closed_form", "half_l_plus_1"]);
    for k in 1..=4u32 {
        for depth in 1..=7u32 {
            let lb = LowerBoundTree::for_k(k, depth);
            if lb.node_count() > 2_500_000 {
                continue;
            }
            let f = lb.build();
            let res = tm(&f, k);
            t.push([
                num(k as f64),
                num(depth as f64),
                num(lb.node_count() as f64),
                num(f.total_value() / res.value),
                num(lb.expected_loss(k)),
                num((depth as f64 + 1.0) / 2.0),
            ]);
        }
    }
    t
}

/// Certified PoBP lower bound on the Figure 4 construction.
fn sweep_fig4_price() -> Table {
    let mut t = Table::new(["k", "L", "n", "P", "opt_inf", "opt_k_bound", "price"]);
    for k in 1..=3u32 {
        for depth in 1..=5u32 {
            let inst = Fig4Instance::for_k(k, depth);
            if inst.job_count() > 50_000 {
                continue;
            }
            let built = inst.build();
            let ids: Vec<JobId> = built.jobs.ids().collect();
            assert!(edf_feasible(&built.jobs, &ids));
            let upper = inst.opt_k_upper_bound(k);
            t.push([
                num(k as f64),
                num(depth as f64),
                num(inst.job_count() as f64),
                format!("{:e}", inst.length_ratio()),
                num(inst.opt_unbounded_value()),
                num(upper),
                num(inst.opt_unbounded_value() / upper),
            ]);
        }
    }
    t
}

/// LSA_CS price vs P on lax workloads (geo-mean over seeds).
fn sweep_lsa_price() -> Table {
    let mut t = Table::new(["k", "p_max", "geo_P", "geo_price", "worst_price"]);
    for k in 1..=3u32 {
        for &p_max in &[2i64, 4, 8, 16, 32, 64, 128, 256] {
            let mut prices = Vec::new();
            let mut ps = Vec::new();
            for seed in 0..15u64 {
                let (jobs, ids) = lax_workload(14, k, p_max, seed);
                let opt = opt_unbounded(&jobs, &ids);
                if opt.value == 0.0 {
                    continue;
                }
                let out = lsa_cs(&jobs, &ids, k);
                prices.push(opt.value / out.value(&jobs).max(f64::MIN_POSITIVE));
                ps.push(jobs.length_ratio().unwrap());
            }
            t.push([
                num(k as f64),
                num(p_max as f64),
                num(geo_mean(&ps)),
                num(geo_mean(&prices)),
                num(prices.iter().copied().fold(0.0, f64::max)),
            ]);
        }
    }
    t
}

/// k = 0 price: the Figure 2 exact staircase plus random-instance means.
fn sweep_k0_price() -> Table {
    let mut t = Table::new(["kind", "n", "P", "price", "bound_min_n_3log2P"]);
    for n in 2..=16u32 {
        let inst = Fig2Instance::new(n);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        let opt0 = if n <= 16 { opt_nonpreemptive(&jobs, &ids).value } else { 1.0 };
        t.push([
            "fig2".into(),
            num(n as f64),
            num(inst.length_ratio()),
            num(n as f64 / opt0),
            num((n as f64).min(3.0 * inst.length_ratio().log2().max(1.0))),
        ]);
    }
    for &p_max in &[2i64, 8, 32, 128] {
        let mut prices = Vec::new();
        let mut bounds = Vec::new();
        let mut ps = Vec::new();
        for seed in 0..15u64 {
            let (jobs, ids) = small_workload(12, seed);
            // Re-scale lengths into the requested range.
            let jobs: JobSet = jobs
                .iter()
                .map(|(_, j)| {
                    let p = 1 + (j.length - 1) % p_max;
                    Job::new(j.release, j.release + (j.deadline - j.release).max(p), p, j.value)
                })
                .collect();
            let opt = opt_unbounded(&jobs, &ids);
            if opt.value == 0.0 {
                continue;
            }
            let alg = schedule_k0(&jobs, &ids);
            prices.push(opt.value / alg.value(&jobs).max(f64::MIN_POSITIVE));
            let p = jobs.length_ratio().unwrap();
            ps.push(p);
            bounds.push((jobs.len() as f64).min(3.0 * p.log2().max(1.0)));
        }
        t.push([
            "random".into(),
            "12".into(),
            num(geo_mean(&ps)),
            num(geo_mean(&prices)),
            num(geo_mean(&bounds)),
        ]);
    }
    t
}

/// The E12 crossover: value per policy per switch cost.
fn sweep_switch_cost() -> Table {
    let mut t = Table::new(["delta", "edf", "budget2", "budget1", "budget0"]);
    let mut jobs = JobSet::new();
    for i in 0..8i64 {
        jobs.push(Job::new(30 * i, 30 * i + 200, 40, 40.0));
    }
    for i in 0..30i64 {
        jobs.push(Job::new(12 * i, 12 * i + 8, 3, 3.0));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    for delta in 0..=10i64 {
        let run = |policy: Policy| {
            num(execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta })
                .value(&jobs))
        };
        t.push([
            num(delta as f64),
            run(Policy::Edf),
            run(Policy::EdfBudget(2)),
            run(Policy::EdfBudget(1)),
            run(Policy::EdfBudget(0)),
        ]);
    }
    t
}

/// The recommended preemption budget as a function of switch cost
/// (the `choose_k` API over the E12 workload).
fn sweep_choose_k() -> Table {
    let mut t = Table::new(["delta", "recommended_k", "replayed_value", "planned_value"]);
    let mut jobs = JobSet::new();
    for i in 0..8i64 {
        jobs.push(Job::new(30 * i, 30 * i + 200, 40, 40.0));
    }
    for i in 0..30i64 {
        jobs.push(Job::new(12 * i, 12 * i + 8, 3, 3.0));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    let inf = pobp_sched::greedy_unbounded(&jobs, &ids);
    for delta in 0..=10i64 {
        let choice = pobp_sim::choose_k(&jobs, &inf.schedule, delta, 4);
        t.push([
            num(delta as f64),
            num(choice.k as f64),
            num(choice.replayed_value),
            num(choice.planned_value),
        ]);
    }
    t
}
