//! The paper-experiment harness: regenerates every figure/theorem table of
//! *The Price of Bounded Preemption* (see `DESIGN.md` §3 for the E1–E10
//! index and `EXPERIMENTS.md` for recorded results).
//!
//! ```text
//! cargo run --release -p pobp-bench --bin experiments            # all
//! cargo run --release -p pobp-bench --bin experiments -- e5 e8   # subset
//! ```
//!
//! With `--obs` (and a `--features obs` build) the harness additionally
//! prints the aggregated counter tables and writes the JSON counter report
//! to `obs-report.json` (override with `--obs-out FILE`); see
//! `docs/observability.md`.
//!
//! The seed-sweep experiments (E4, E6, E7, E9) dispatch their per-seed
//! solves through the `pobp-engine` worker pool; `--threads N` sets the
//! pool size (default: hardware parallelism). Results are deterministic —
//! identical tables — for every thread count (`docs/engine.md`).
//!
//! Three extra modes ride along:
//!
//! * `bench-snapshot` (selector, excluded from `all`) re-times the
//!   benchmark grid (`reduction`, `lsa`, `tm`) single-threaded, plus the
//!   `dense` small-n rows (thousands of tiny cells through a 4-thread
//!   engine — the executor-overhead gauge), and writes the
//!   schema-versioned median-wall-clock snapshot to `BENCH_e6.json`
//!   (`--bench-out FILE` overrides);
//! * `bench-compare --baseline A.json --candidate B.json` diffs two
//!   snapshots cell by cell and exits nonzero when any cell regressed by
//!   more than `--tolerance PCT` (default 25%) — the CI perf gate;
//! * `--trace FILE` (needs a `--features trace` build) writes the Chrome
//!   trace-event JSON of everything the harness ran; see
//!   `docs/observability.md`.

use std::collections::BTreeMap;

use pobp::cli::{flag_value, has_flag, parse_num};
use pobp_bench::{geo_mean, lax_workload, log_base_k1, mixed_workload, small_workload};
use pobp_core::{JobId, JobSet};
use pobp_engine::{Algo, Engine, EngineConfig, GridSpec, SolveTask, TaskResult};
use pobp_forest::{levelled_contraction, loss_bound, tm, LowerBoundTree};
use pobp_instances::{
    random_forest, round_robin_schedule, zoo_instance, Fig2Instance, Fig4Instance, ZooFamily,
    ZOO_FAMILIES,
};
use pobp_sched::{
    cs_by_density, cs_by_value, edf_feasible, edf_schedule, edf_truncate, global_edf,
    greedy_nonpreemptive_by_value, greedy_unbounded, is_laminar, iterative_multi_machine,
    laminarize, lsa, lsa_cs, opt_k_bounded_fits, opt_k_bounded_small, opt_nonpreemptive,
    opt_unbounded, reduce_to_k_bounded, schedule_k0, KbasSolver, ReductionPlan, SolveWorkspace,
};

/// One harness entry: selector name, table title, runner.
type Experiment = (&'static str, &'static str, fn(&Engine));

/// Exits with a CLI usage error.
fn die(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs_out: Option<String> = match flag_value(&args, "--obs-out") {
        Ok(Some(path)) => Some(path),
        Ok(None) if has_flag(&args, "--obs") => Some("obs-report.json".into()),
        Ok(None) => None,
        Err(e) => die(e),
    };
    let trace_out: Option<String> = flag_value(&args, "--trace").unwrap_or_else(|e| die(e));
    if trace_out.is_some() && !pobp_core::trace::enabled() {
        die("--trace needs a binary built with --features trace");
    }
    let threads: usize = parse_num(&args, "--threads", 0usize).unwrap_or_else(|e| die(e));
    // The ladder is armed so a misbehaving solver degrades a table row to
    // the polynomial fallback (flagged on stderr) instead of killing the
    // whole harness run.
    let engine = Engine::new(EngineConfig { threads, degrade: true, ..EngineConfig::default() });
    let is_flag_or_value = |i: usize| {
        args[i].starts_with("--")
            || (i > 0
                && ["--obs-out", "--threads", "--trace", "--bench-out", "--baseline",
                    "--candidate", "--tolerance"]
                    .contains(&args[i - 1].as_str()))
    };
    let selectors: Vec<&String> =
        (0..args.len()).filter(|&i| !is_flag_or_value(i)).map(|i| &args[i]).collect();
    let run =
        |name: &str| selectors.is_empty() || selectors.iter().any(|a| *a == name || *a == "all");
    if obs_out.is_some() {
        pobp_core::obs::reset();
    }
    let experiments: &[Experiment] = &[
        ("e1", "Figure 1: laminar rearrangement", |_| e1_laminar()),
        ("e2", "Theorem 3.9: k-BAS loss upper bound", |_| e2_kbas_upper()),
        ("e3", "Theorem 3.20 / Fig 3: k-BAS loss tightness", |_| e3_kbas_lower()),
        ("e4", "Theorem 4.2: reduction vs exact OPT_inf", e4_reduction),
        ("e5", "Theorems 4.3/4.13 / Fig 4: PoBP lower bound", |_| e5_fig4()),
        ("e6", "Theorem 4.5 / Alg 2: LSA_CS vs P", e6_lsa),
        ("e7", "Alg 3: combined algorithm", e7_combined),
        ("e8", "Section 5 / Fig 2: k = 0", |_| e8_k0()),
        ("e9", "Section 4.3.4: multiple machines", e9_multi),
        ("e10", "Ablations", |_| e10_ablations()),
        ("e11", "Extensions: migrative machines, CS-by-value/density", |_| e11_extensions()),
        ("e12", "Motivation: context-switch cost crossover", |_| e12_switch_cost()),
        ("e13", "Online arrival: empirical competitive ratios vs OPT_k oracle", e13_online),
    ];
    // `bench-snapshot` is an explicit mode, not part of `all`: it re-times
    // the E4 grid and snapshots the medians for regression tracking.
    if selectors.iter().any(|s| *s == "bench-snapshot") {
        let out = flag_value(&args, "--bench-out")
            .unwrap_or_else(|e| die(e))
            .unwrap_or_else(|| "BENCH_e6.json".into());
        if let Err(e) = bench_snapshot(&out) {
            die(e);
        }
    }
    // `bench-compare` diffs two snapshots cell by cell and exits nonzero on
    // a regression beyond tolerance — the CI perf gate.
    if selectors.iter().any(|s| *s == "bench-compare") {
        let baseline = flag_value(&args, "--baseline")
            .unwrap_or_else(|e| die(e))
            .unwrap_or_else(|| die("bench-compare needs --baseline FILE"));
        let candidate = flag_value(&args, "--candidate")
            .unwrap_or_else(|e| die(e))
            .unwrap_or_else(|| die("bench-compare needs --candidate FILE"));
        let tolerance: f64 = flag_value(&args, "--tolerance")
            .unwrap_or_else(|e| die(e))
            .map(|s| s.parse().unwrap_or_else(|e| die(format!("--tolerance: {e}"))))
            .unwrap_or(25.0);
        match bench_compare(&baseline, &candidate, tolerance) {
            Ok(true) => {}
            Ok(false) => std::process::exit(1),
            Err(e) => die(e),
        }
    }
    for (name, title, f) in experiments {
        // A bare `bench-snapshot` invocation leaves `selectors` non-empty,
        // so no e* experiment matches and only the snapshot runs.
        if run(name) {
            println!("\n################ {name}: {title} ################\n");
            f(&engine);
        }
    }
    if let Some(path) = trace_out {
        if let Err(e) = emit_trace(&path) {
            die(e);
        }
    }
    if let Some(path) = obs_out {
        let snap = pobp_core::obs::snapshot();
        println!("\n################ obs: counter report ################\n");
        print!("{}", pobp_bench::report::obs_tables(&snap));
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote JSON counter report to {path}");
        if !pobp_core::obs::enabled() {
            println!("(note: built without --features obs — all counters are empty)");
        }
    }
}


/// Schema version of the `BENCH_*.json` snapshot — bump on any shape
/// change so downstream diffing can refuse to compare across versions.
/// Schema 2 adds the top-level `algs` list and a per-cell `alg` field.
const BENCH_SCHEMA_VERSION: u32 = 2;

/// Algorithms timed by `bench-snapshot`.
const BENCH_ALGS: [&str; 3] = ["reduction", "lsa", "tm"];

/// The dense-grid scheduler-overhead rows: per `(n, k)` cell, one engine
/// batch of this many tiny tasks (distinct seeds) at [`DENSE_THREADS`]
/// workers, with a contiguous run of [`DENSE_FLAKY`] always-panicking
/// tasks retried under backoff. The solves are microseconds each, so the
/// batch wall-clock is dominated by executor behaviour — claim path,
/// report collection, retry requeueing — which is exactly what these rows
/// gate.
const DENSE_NS: [usize; 2] = [4, 6];
/// Budgets crossed with [`DENSE_NS`] for the dense rows.
const DENSE_KS: [u32; 2] = [1, 2];
/// Tasks per dense cell (seeds `0..DENSE_CELL_TASKS`).
const DENSE_CELL_TASKS: usize = 4000;
/// Always-panicking tasks sprinkled through each dense cell. Each one is
/// retried [`DENSE_RETRIES`] times with [`DENSE_BACKOFF_MS`] exponential
/// backoff — an executor that sleeps the backoff out in the worker loses
/// the slot for milliseconds per attempt; one that requeues with a
/// not-before timestamp keeps draining the batch.
const DENSE_FLAKY: usize = 16;
/// Retry budget for the dense cells.
const DENSE_RETRIES: u32 = 2;
/// Base backoff (doubles per attempt) for the dense cells, in ms.
const DENSE_BACKOFF_MS: u64 = 2;
/// Worker threads for the dense rows (the standard rows stay at 1).
const DENSE_THREADS: usize = 4;
/// Timed repetitions per dense cell; the median is recorded.
const DENSE_REPS: usize = 5;

/// `bench-snapshot`: re-times the benchmark grid single-threaded (no cache,
/// no degradation — pure solver wall-clock) and writes the median per grid
/// cell to `path` as schema-versioned JSON. `reduction` and `lsa` run full
/// engine tasks on the E4 mixed workload; `tm` times the bare k-BAS dynamic
/// program on the schedule forest derived from the same workload (the
/// forest build is outside the timed region). Medians over 5 seeds keep the
/// snapshot robust to one-off scheduler noise; the snapshot is a coarse
/// regression tripwire, not a Criterion replacement (those benches live in
/// `crates/bench/benches/`).
///
/// A fourth `dense` row family times the *executor*, not the solvers: per
/// `(n, k)` cell with tiny `n`, one [`DENSE_THREADS`]-worker engine batch of
/// [`DENSE_CELL_TASKS`] microsecond-scale `K0` tasks, cache off, plus a
/// contiguous run of [`DENSE_FLAKY`] always-panicking tasks retried with
/// exponential backoff (a failing parameter region of a sweep, where
/// retries are correlated). Those rows gate scheduler behaviour (claim
/// path, stealing, report collection, and above all backoff handling: a
/// pool that sleeps backoffs out in the worker stalls outright on the
/// flaky region) — a regression there means batch dispatch got slower even
/// if every solver is unchanged.
fn bench_snapshot(path: &str) -> Result<(), String> {
    const NS: [usize; 3] = [20, 40, 80];
    const KS: [u32; 4] = [0, 1, 2, 4];
    const SEEDS: u64 = 5;
    let engine = Engine::new(EngineConfig {
        threads: 1,
        use_cache: false,
        degrade: false,
        ..EngineConfig::default()
    });
    let mut cells = Vec::new();
    for alg in BENCH_ALGS {
        for &n in &NS {
            for &k in &KS {
                let mut runs_ns: Vec<u128> = (0..SEEDS)
                    .map(|seed| match alg {
                        "reduction" | "lsa" => {
                            let engine_alg =
                                if alg == "reduction" { Algo::Reduction } else { Algo::LsaCs };
                            let task = SolveTask::new(mixed_workload(n, seed).0, k, engine_alg);
                            let t0 = std::time::Instant::now();
                            let batch = engine.run_batch(std::slice::from_ref(&task));
                            let dt = t0.elapsed().as_nanos();
                            assert!(
                                batch.reports[0].result.output().is_some(),
                                "bench-snapshot cell alg={alg} n={n} k={k} seed={seed} \
                                 did not complete"
                            );
                            dt
                        }
                        "tm" => {
                            // Forest build (greedy reference → laminarize →
                            // schedule forest) stays outside the timer.
                            let (jobs, ids) = mixed_workload(n, seed);
                            let inf = greedy_unbounded(&jobs, &ids);
                            let plan = ReductionPlan::new(&jobs, &inf.schedule)
                                .expect("greedy reference is feasible");
                            let t0 = std::time::Instant::now();
                            let res = tm(&plan.forest.forest, k);
                            let dt = t0.elapsed().as_nanos();
                            assert!(res.value >= 0.0);
                            dt
                        }
                        _ => unreachable!("unknown bench alg"),
                    })
                    .collect();
                runs_ns.sort_unstable();
                let median_ns = runs_ns[runs_ns.len() / 2];
                eprintln!("bench-snapshot: alg={alg} n={n} k={k} median {median_ns} ns");
                cells.push(format!(
                    "    {{\"alg\": \"{alg}\", \"n\": {n}, \"k\": {k}, \"median_ns\": {median_ns}}}"
                ));
            }
        }
    }
    // Dense scheduler-overhead rows: thousands of tiny tasks per batch at
    // DENSE_THREADS workers, so per-task executor overhead — not solver
    // time — dominates the cell.
    let dense_engine = Engine::new(EngineConfig {
        threads: DENSE_THREADS,
        use_cache: false,
        degrade: false,
        max_retries: DENSE_RETRIES,
        backoff: std::time::Duration::from_millis(DENSE_BACKOFF_MS),
        ..EngineConfig::default()
    });
    for &n in &DENSE_NS {
        for &k in &DENSE_KS {
            // `K0` is the cheapest certified solver path, so the cell is
            // executor-bound. The flaky run is *contiguous* — modelling a
            // failing parameter region of a sweep grid, where retries are
            // correlated: an executor that sleeps backoffs out in the
            // worker has every worker asleep at once when it hits the
            // region, while a not-before requeue keeps draining the batch.
            let mut tasks: Vec<SolveTask> = (0..DENSE_CELL_TASKS)
                .map(|seed| SolveTask::new(small_workload(n, seed as u64).0, k, Algo::K0))
                .collect();
            for f in 0..DENSE_FLAKY {
                let at = 64 + f;
                let mut bad =
                    SolveTask::new(tasks[at].instance.clone(), k, Algo::PanicForTest);
                bad.label = format!("flaky@{at}");
                tasks[at] = bad;
            }
            let mut runs_ns: Vec<u128> = (0..DENSE_REPS)
                .map(|rep| {
                    let t0 = std::time::Instant::now();
                    let batch = dense_engine.run_batch(&tasks);
                    let dt = t0.elapsed().as_nanos();
                    assert_eq!(
                        batch.stats.run + batch.stats.panicked,
                        tasks.len(),
                        "dense cell n={n} k={k} rep={rep} lost tasks"
                    );
                    assert_eq!(batch.stats.panicked, DENSE_FLAKY);
                    dt
                })
                .collect();
            runs_ns.sort_unstable();
            let median_ns = runs_ns[runs_ns.len() / 2];
            eprintln!(
                "bench-snapshot: alg=dense n={n} k={k} ({DENSE_CELL_TASKS} tasks, \
                 {DENSE_THREADS} threads) median {median_ns} ns"
            );
            cells.push(format!(
                "    {{\"alg\": \"dense\", \"n\": {n}, \"k\": {k}, \"median_ns\": {median_ns}}}"
            ));
        }
    }
    let algs_json: Vec<String> =
        BENCH_ALGS.iter().chain(std::iter::once(&"dense")).map(|a| format!("\"{a}\"")).collect();
    let json = format!(
        "{{\n  \"schema\": {BENCH_SCHEMA_VERSION},\n  \"experiment\": \"bench\",\n  \
         \"algs\": [{}],\n  \"threads\": 1,\n  \"seeds\": {SEEDS},\n  \"cells\": [\n{}\n  ]\n}}\n",
        algs_json.join(", "),
        cells.join(",\n")
    );
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote bench snapshot to {path}");
    Ok(())
}

/// One parsed snapshot cell: `(alg, n, k, median_ns)`.
type BenchCell = (String, u64, u64, u128);

/// Parses a `BENCH_*.json` snapshot (the exact format `bench_snapshot`
/// writes — one cell object per line). Accepts schema 1 (no per-cell alg:
/// inherits the file-level `"alg"`) and schema 2.
fn parse_bench_snapshot(path: &str) -> Result<Vec<BenchCell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let field_u = |line: &str, key: &str| -> Option<u128> {
        let at = line.find(&format!("\"{key}\""))?;
        let rest = &line[at..];
        let digits: String =
            rest.chars().skip_while(|c| !c.is_ascii_digit()).take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    };
    let field_s = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\""))?;
        let rest = &line[at + key.len() + 2..];
        let open = rest.find('"')?;
        let rest = &rest[open + 1..];
        Some(rest[..rest.find('"')?].to_string())
    };
    let schema = field_u(&text, "schema").ok_or_else(|| format!("{path}: no \"schema\" field"))?;
    if schema > BENCH_SCHEMA_VERSION as u128 {
        return Err(format!(
            "{path}: snapshot schema {schema} is newer than supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    // Schema 1 stamps one file-level alg; cells inherit it.
    let file_alg = field_s(text.lines().find(|l| l.contains("\"alg\"")).unwrap_or(""), "alg");
    let mut cells = Vec::new();
    for line in text.lines() {
        if !line.contains("\"median_ns\"") {
            continue;
        }
        let alg = field_s(line, "alg")
            .or_else(|| file_alg.clone())
            .ok_or_else(|| format!("{path}: cell without alg: {line}"))?;
        let n =
            field_u(line, "n").ok_or_else(|| format!("{path}: cell without n: {line}"))? as u64;
        let k = field_u(line, "k").ok_or_else(|| format!("{path}: cell without k: {line}"))? as u64;
        let median = field_u(line, "median_ns")
            .ok_or_else(|| format!("{path}: cell without median_ns: {line}"))?;
        cells.push((alg, n, k, median));
    }
    if cells.is_empty() {
        return Err(format!("{path}: no cells found"));
    }
    Ok(cells)
}

/// `bench-compare`: prints per-cell `candidate / baseline` wall-clock
/// ratios for every `(alg, n, k)` cell present in both snapshots and
/// returns `Ok(false)` when any cell regressed by more than `tolerance`
/// percent — the CI perf gate. The tolerance (default 25%) absorbs shared
/// runner noise; genuine algorithmic regressions blow well past it.
fn bench_compare(baseline: &str, candidate: &str, tolerance: f64) -> Result<bool, String> {
    let base = parse_bench_snapshot(baseline)?;
    let cand = parse_bench_snapshot(candidate)?;
    println!("bench-compare: {candidate} vs {baseline} (tolerance {tolerance}%)\n");
    println!("       alg |     n | k |   baseline ns |  candidate ns | ratio | status");
    println!("-----------+-------+---+---------------+---------------+-------+-------");
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (alg, n, k, base_ns) in &base {
        let Some((_, _, _, cand_ns)) =
            cand.iter().find(|(a, cn, ck, _)| a == alg && cn == n && ck == k)
        else {
            println!("{alg:>10} | {n:5} | {k} | {base_ns:13} |       missing |     - | SKIP");
            continue;
        };
        compared += 1;
        let ratio = *cand_ns as f64 / (*base_ns).max(1) as f64;
        let status = if ratio > 1.0 + tolerance / 100.0 {
            regressions += 1;
            "REGRESSED"
        } else if ratio < 1.0 - tolerance / 100.0 {
            "improved"
        } else {
            "ok"
        };
        println!("{alg:>10} | {n:5} | {k} | {base_ns:13} | {cand_ns:13} | {ratio:5.2} | {status}");
    }
    if compared == 0 {
        return Err("no comparable cells between the two snapshots".into());
    }
    if regressions > 0 {
        println!("\nbench-compare: {regressions} cell(s) regressed beyond {tolerance}%");
        return Ok(false);
    }
    println!("\nbench-compare: no regression beyond {tolerance}% across {compared} cells");
    Ok(true)
}

/// Writes the Chrome trace-event JSON of everything the harness ran.
/// Compiled only with the `trace` feature; `main` rejects `--trace` before
/// reaching this in trace-less builds.
#[cfg(feature = "trace")]
fn emit_trace(path: &str) -> Result<(), String> {
    let events = pobp_core::trace::drain();
    std::fs::write(path, pobp_core::trace::chrome_json(&events))
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote Chrome trace to {path} ({} events)", events.len());
    Ok(())
}

/// Trace-less stub: unreachable because `main` rejects `--trace` first.
#[cfg(not(feature = "trace"))]
fn emit_trace(_path: &str) -> Result<(), String> {
    Err("--trace needs a binary built with --features trace".into())
}

fn e1_laminar() {
    println!("EDF schedules are laminar by construction; arbitrary feasible");
    println!("schedules are rearranged by laminarize() with no value change.\n");
    println!("   n | RR max segs | RR laminar? | after: max segs | laminar? | value kept");
    println!("-----+-------------+-------------+-----------------+----------+-----------");
    for &n in &[6usize, 12, 24] {
        // n fully-overlapping lax jobs → round-robin interleaves heavily.
        let jobs: JobSet = (0..n)
            .map(|i| pobp_core::Job::new(0, 4 * n as i64, 3, (i + 1) as f64))
            .collect();
        let ids: Vec<JobId> = jobs.ids().collect();
        let rr = round_robin_schedule(&jobs, &ids);
        rr.verify(&jobs, None).unwrap();
        let max_before = rr.scheduled_ids().map(|j| rr.preemptions(j) + 1).max().unwrap();
        let lam = laminarize(&jobs, &rr).unwrap();
        lam.verify(&jobs, None).unwrap();
        let max_after = lam.scheduled_ids().map(|j| lam.preemptions(j) + 1).max().unwrap();
        println!(
            "{n:4} | {max_before:11} | {:11} | {max_after:15} | {:8} | {}",
            is_laminar(&rr),
            is_laminar(&lam),
            (lam.value(&jobs) - rr.value(&jobs)).abs() < 1e-9,
        );
    }
    // EDF on random mixed workloads: always laminar.
    let mut all_laminar = true;
    for seed in 0..20u64 {
        let (jobs, ids) = mixed_workload(100, seed);
        let out = edf_schedule(&jobs, &ids, None);
        all_laminar &= is_laminar(&out.schedule);
    }
    println!("\nEDF laminar on 20 random mixed workloads (n = 100): {all_laminar}");
}

fn e2_kbas_upper() {
    println!("random forests: measured loss val(T)/val(TM) vs the log_(k+1) n bound\n");
    println!("       n | k | measured loss | bound | LC loss | LC iters | iters bound");
    println!("---------+---+---------------+-------+---------+----------+------------");
    for &n in &[100usize, 1_000, 10_000, 100_000, 1_000_000] {
        for &k in &[1u32, 2, 4, 8] {
            let f = random_forest(n, 0.05, 1000 + n as u64 + k as u64);
            let res = tm(&f, k);
            let lc = levelled_contraction(&f, k);
            let loss = f.total_value() / res.value;
            let lc_loss = f.total_value() / lc.value();
            let bound = loss_bound(n, k);
            assert!(loss <= bound + 1e-9);
            println!(
                "{n:8} | {k} | {loss:13.3} | {bound:5.2} | {lc_loss:7.3} | {:8} | {:10.1}",
                lc.iterations(),
                (n as f64).ln() / ((k + 1) as f64).ln() + 1.0,
            );
        }
    }
}

fn e3_kbas_lower() {
    println!("Appendix A adversarial tree (K = 2k): loss grows as (L+1)/2\n");
    println!(" k |  L |        n | measured loss | closed form | (L+1)/2 | bound log_(k+1) n");
    println!("---+----+----------+---------------+-------------+---------+------------------");
    for k in 1..=4u32 {
        for depth in [2u32, 4, 6] {
            let lb = LowerBoundTree::for_k(k, depth);
            if lb.node_count() > 3_000_000 {
                continue;
            }
            let f = lb.build();
            let res = tm(&f, k);
            let loss = f.total_value() / res.value;
            println!(
                " {k} | {depth:2} | {:8} | {loss:13.4} | {:11.4} | {:7.1} | {:10.2}",
                lb.node_count(),
                lb.expected_loss(k),
                (depth as f64 + 1.0) / 2.0,
                loss_bound(lb.node_count(), k),
            );
        }
        println!();
    }
}

/// Unwraps an engine report into its certified output. Degraded rescues are
/// accepted — the fallback output passed the same certification as a Done
/// result — but flagged on stderr so a table built from rescued rows is
/// attributable (docs/robustness.md). Anything else is a harness bug.
fn done(report: &pobp_engine::TaskReport) -> &pobp_engine::SolveOutput {
    if let TaskResult::Degraded { fallback, cause, .. } = &report.result {
        eprintln!(
            "note: task `{}` degraded to {} after {}",
            report.label,
            fallback.name(),
            cause.name()
        );
    }
    report.result.output().unwrap_or_else(|| {
        panic!("task {} did not complete: {}", report.label, report.result.status())
    })
}

fn e4_reduction(engine: &Engine) {
    println!("reduction (Thm 4.2) vs exact OPT_inf, small random instances");
    println!("(n = 14, 20 seeds; price = OPT_inf / value(reduction))\n");
    println!(" k | geo-mean price | worst price | bound log_(k+1) n");
    println!("---+----------------+-------------+------------------");
    let mut grid = GridSpec::new(vec![14], vec![1, 2, 3, 4], (0..20).collect(), Algo::Reduction);
    grid.exact_ref = true;
    let tasks = grid.tasks_with(|n, seed| small_workload(n, seed).0);
    let batch = engine.run_batch(&tasks);
    let mut by_k: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for (report, task) in batch.reports.iter().zip(&tasks) {
        let out = done(report);
        if out.ref_value == 0.0 {
            continue;
        }
        by_k.entry(task.k).or_default().push(out.ref_value / out.alg_value);
    }
    for &k in &grid.ks {
        let prices = by_k.get(&k).cloned().unwrap_or_default();
        let worst = prices.iter().copied().fold(0.0f64, f64::max);
        println!(
            " {k} | {:14.3} | {worst:11.3} | {:10.2}",
            geo_mean(&prices),
            loss_bound(14, k),
        );
    }
    println!("\nlarge instances (n = 400, greedy ∞-reference, 5 seeds):\n");
    println!(" k | geo-mean price vs greedy-∞ | bound");
    println!("---+----------------------------+------");
    let grid = GridSpec::new(vec![400], vec![1, 2, 3, 4], (0..5).collect(), Algo::Reduction);
    let tasks = grid.tasks_with(|n, seed| mixed_workload(n, seed).0);
    let batch = engine.run_batch(&tasks);
    let mut by_k: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for (report, task) in batch.reports.iter().zip(&tasks) {
        let out = done(report);
        by_k.entry(task.k).or_default().push(out.ref_value / out.alg_value);
    }
    for &k in &grid.ks {
        let prices = by_k.get(&k).cloned().unwrap_or_default();
        println!(" {k} | {:26.3} | {:4.2}", geo_mean(&prices), loss_bound(400, k));
    }
}

fn e5_fig4() {
    println!("Figure 4 construction: certified price lower bound vs L");
    println!("(price_cert = OPT_inf / analytic OPT_k bound; reduction cross-check)\n");
    println!(" k |  L |      n |        P | OPT_inf | OPT_k<= | reduction | price_cert | (L+1)/2");
    println!("---+----+--------+----------+---------+---------+-----------+------------+--------");
    for k in 1..=3u32 {
        for depth in 1..=5u32 {
            let inst = Fig4Instance::for_k(k, depth);
            if inst.job_count() > 50_000 {
                continue;
            }
            let built = inst.build();
            let ids: Vec<JobId> = built.jobs.ids().collect();
            assert!(edf_feasible(&built.jobs, &ids));
            let inf = edf_schedule(&built.jobs, &ids, None);
            let red = reduce_to_k_bounded(&built.jobs, &inf.schedule, k).unwrap();
            red.schedule.verify(&built.jobs, Some(k)).unwrap();
            let alg = red.schedule.value(&built.jobs);
            let upper = inst.opt_k_upper_bound(k);
            assert!(alg <= upper + 1e-6);
            println!(
                " {k} | {depth:2} | {:6} | {:8.1e} | {:7} | {upper:7.1} | {alg:9} | {:10.3} | {:6.1}",
                inst.job_count(),
                inst.length_ratio(),
                inst.opt_unbounded_value(),
                inst.opt_unbounded_value() / upper,
                (depth as f64 + 1.0) / 2.0,
            );
        }
        println!();
    }
}

fn e6_lsa(engine: &Engine) {
    println!("LSA_CS on lax jobs: measured price vs P sweep (Thm 4.5 bound 6·log_(k+1) P)");
    println!("(n = 14, 15 seeds, exact OPT_inf)\n");
    println!(" k | p_max |  geo-P | geo-mean price | worst | bound 6·log_(k+1) P (at geo-P)");
    println!("---+-------+--------+----------------+-------+-------------------------------");
    // The lax workload generator depends on (k, p_max), so the grid is built
    // by hand instead of through GridSpec.
    let p_maxes = [4i64, 16, 64, 256];
    let mut tasks = Vec::new();
    let mut coords = Vec::new();
    for k in 1..=3u32 {
        for &p_max in &p_maxes {
            for seed in 0..15u64 {
                let mut task = SolveTask::new(lax_workload(14, k, p_max, seed).0, k, Algo::LsaCs);
                task.exact_ref = true;
                task.label = format!("k={k} p_max={p_max} seed={seed}");
                tasks.push(task);
                coords.push((k, p_max));
            }
        }
    }
    let batch = engine.run_batch(&tasks);
    let mut cells: BTreeMap<(u32, i64), (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for ((report, task), &coord) in batch.reports.iter().zip(&tasks).zip(&coords) {
        let out = done(report);
        if out.ref_value == 0.0 {
            continue;
        }
        let (prices, ps) = cells.entry(coord).or_default();
        prices.push(out.ref_value / out.alg_value);
        ps.push(task.instance.length_ratio().unwrap());
    }
    for k in 1..=3u32 {
        for &p_max in &p_maxes {
            let (prices, ps) = cells.get(&(k, p_max)).cloned().unwrap_or_default();
            let geo_p = geo_mean(&ps);
            let worst = prices.iter().copied().fold(0.0f64, f64::max);
            println!(
                " {k} | {p_max:5} | {geo_p:6.1} | {:14.3} | {worst:5.2} | {:6.2}",
                geo_mean(&prices),
                6.0 * log_base_k1(geo_p, k),
            );
        }
        println!();
    }
}

fn e7_combined(engine: &Engine) {
    println!("Algorithm 3 on mixed-laxity workloads (n = 14, exact OPT_inf, 15 seeds)\n");
    println!(" k | geo price | worst | strict-branch wins | lax-branch wins");
    println!("---+-----------+-------+--------------------+----------------");
    let mut grid = GridSpec::new(vec![14], vec![1, 2, 3, 4], (0..15).collect(), Algo::Combined);
    grid.exact_ref = true;
    let tasks = grid.tasks_with(|n, seed| small_workload(n, seed).0);
    let batch = engine.run_batch(&tasks);
    let mut rows: BTreeMap<u32, (Vec<f64>, usize, usize)> = BTreeMap::new();
    for (report, task) in batch.reports.iter().zip(&tasks) {
        let out = done(report);
        if out.ref_value == 0.0 {
            continue;
        }
        let (prices, sw, lw) = rows.entry(task.k).or_default();
        prices.push(out.ref_value / out.alg_value.max(1e-12));
        let (strict, lax) = out.branch_values.expect("combined reports branch values");
        if strict >= lax {
            *sw += 1;
        } else {
            *lw += 1;
        }
    }
    for &k in &grid.ks {
        let (prices, sw, lw) = rows.get(&k).cloned().unwrap_or_default();
        let worst = prices.iter().copied().fold(0.0f64, f64::max);
        println!(
            " {k} | {:9.3} | {worst:5.2} | {sw:18} | {lw:14}",
            geo_mean(&prices)
        );
    }
}

fn e8_k0() {
    println!("Figure 2: price at k = 0 equals n = log2 P + 1 exactly\n");
    println!("  n |        P | OPT_inf | OPT_0 | §5 alg | price | log2 P + 1");
    println!("----+----------+---------+-------+--------+-------+-----------");
    for n in [2u32, 4, 6, 8, 10, 12, 14] {
        let inst = Fig2Instance::new(n);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        assert!(edf_feasible(&jobs, &ids));
        let opt0 = opt_nonpreemptive(&jobs, &ids).value;
        let alg = schedule_k0(&jobs, &ids);
        println!(
            " {n:2} | {:8.1e} | {n:7} | {opt0:5} | {:6} | {:5.1} | {:9.1}",
            inst.length_ratio(),
            alg.value(&jobs),
            n as f64 / opt0,
            inst.length_ratio().log2() + 1.0,
        );
    }
    println!("\nrandom instances: §5 algorithm vs exact OPT_inf (n = 12, 15 seeds)\n");
    println!(" p_max | geo price | worst | bound min(n, 3·log2 P)");
    println!("-------+-----------+-------+-----------------------");
    for &p_max in &[2i64, 8, 32, 128] {
        let mut prices = Vec::new();
        let mut bounds = Vec::new();
        for seed in 0..15u64 {
            let jobs = pobp_instances::RandomWorkload {
                n: 12,
                horizon: 50,
                length_range: (1, p_max),
                laxity: pobp_instances::LaxityModel::Uniform { max: 5.0 },
                values: pobp_instances::ValueModel::Uniform { max: 40 },
            }
            .generate(seed);
            let ids: Vec<JobId> = jobs.ids().collect();
            let opt = opt_unbounded(&jobs, &ids);
            if opt.value == 0.0 {
                continue;
            }
            let alg = schedule_k0(&jobs, &ids);
            prices.push(opt.value / alg.value(&jobs).max(1e-12));
            let p = jobs.length_ratio().unwrap();
            bounds.push((jobs.len() as f64).min(3.0 * p.log2().max(1.0)));
        }
        let worst = prices.iter().copied().fold(0.0f64, f64::max);
        println!(
            " {p_max:5} | {:9.3} | {worst:5.2} | {:6.2}",
            geo_mean(&prices),
            geo_mean(&bounds),
        );
    }
}

fn e9_multi(engine: &Engine) {
    println!("iterative multi-machine extension (k = 2, n = 300 mixed, 3 seeds avg)\n");
    println!(" machines | LSA_CS value | combined value | value / 1-machine");
    println!("----------+--------------+----------------+------------------");
    let machines = [1usize, 2, 4, 8];
    let mut tasks = Vec::new();
    for &m in &machines {
        for algo in [Algo::LsaCs, Algo::Combined] {
            for seed in 0..3u64 {
                let mut task = SolveTask::new(mixed_workload(300, seed).0, 2, algo);
                task.machines = m;
                task.label = format!("m={m} alg={} seed={seed}", algo.name());
                tasks.push(task);
            }
        }
    }
    let batch = engine.run_batch(&tasks);
    let mut sums: BTreeMap<(usize, bool), f64> = BTreeMap::new();
    for (report, task) in batch.reports.iter().zip(&tasks) {
        *sums.entry((task.machines, task.algo == Algo::Combined)).or_default() +=
            done(report).alg_value;
    }
    let mut base = 0.0f64;
    for &m in &machines {
        let v_lsa = sums[&(m, false)];
        let v_comb = sums[&(m, true)];
        if m == 1 {
            base = v_comb;
        }
        println!(
            " {m:8} | {:12.0} | {v_comb:14.0} | {:16.2}×",
            v_lsa / 3.0,
            v_comb / base
        );
    }
}

fn e10_ablations() {
    println!("(a) LSA sort key: density (paper) vs value (Albagli-Kim et al.)\n");
    println!(" k | density-order value | value-order value | density wins by");
    println!("---+---------------------+-------------------+----------------");
    for k in 1..=3u32 {
        let mut dv = 0.0;
        let mut vv = 0.0;
        for seed in 0..10u64 {
            let (jobs, ids) = lax_workload(200, k, 64, seed);
            dv += lsa(&jobs, &ids, k).value(&jobs);
            // Value-order: reuse LSA but with values flattened into density
            // by giving each job value·p as its sort surrogate — emulate by
            // sorting externally and feeding one job at a time? Simpler:
            // compare against the greedy-by-value non-preemptive baseline.
            vv += {
                let s = greedy_nonpreemptive_by_value(&jobs, &ids);
                s.value(&jobs)
            };
        }
        println!(" {k} | {dv:19.0} | {vv:17.0} | {:13.2}×", dv / vv);
    }

    println!("\n(b) TM (optimal DP) vs LevelledContraction on random forests\n");
    println!("      n | k | TM value | LC value | TM/LC");
    println!("--------+---+----------+----------+------");
    for &n in &[1_000usize, 100_000] {
        for &k in &[1u32, 4] {
            let f = random_forest(n, 0.05, 77 + n as u64);
            let a = tm(&f, k).value;
            let b = levelled_contraction(&f, k).value();
            println!("{n:7} | {k} | {a:8.0} | {b:8.0} | {:4.2}", a / b);
        }
    }

    println!("\n(c) reduction (Thm 4.2) vs EDF-truncate baseline (n = 400 mixed)\n");
    println!(" k | reduction | EDF-truncate | reduction wins by");
    println!("---+-----------+--------------+------------------");
    // The greedy reference and the laminarize → schedule-forest prefix are
    // k-independent: build one ReductionPlan per seed, reused across the
    // k-loop (only the k-BAS DP + reconstruction re-run per k).
    let mut ws = SolveWorkspace::new();
    let per_seed: Vec<(JobSet, Vec<JobId>, ReductionPlan)> = (0..5u64)
        .map(|seed| {
            let (jobs, ids) = mixed_workload(400, seed);
            let inf = greedy_unbounded(&jobs, &ids);
            let plan = ReductionPlan::new_ws(&jobs, &inf.schedule, &mut ws)
                .expect("greedy reference is feasible");
            (jobs, ids, plan)
        })
        .collect();
    for k in 0..4u32 {
        let mut rv = 0.0;
        let mut tv = 0.0;
        for (jobs, ids, plan) in &per_seed {
            rv += plan.solve_ws(jobs, k, KbasSolver::Tm, &mut ws).schedule.value(jobs);
            tv += edf_truncate(jobs, ids, k).value(jobs);
        }
        println!(" {k} | {rv:9.0} | {tv:12.0} | {:16.2}×", rv / tv);
    }
}

fn e11_extensions() {
    println!("(a) migrative reference vs non-migrative iterative extension");
    println!("(global EDF with affinity vs §4.3.4 iteration; n = 200 mixed, 3 seeds)\n");
    println!(" machines | migrative global-EDF | non-migrative iter (k=2) | ratio");
    println!("----------+----------------------+--------------------------+------");
    for m in [1usize, 2, 4, 8] {
        let mut mig = 0.0;
        let mut non = 0.0;
        for seed in 0..3u64 {
            let (jobs, ids) = mixed_workload(200, seed);
            let g = global_edf(&jobs, &ids, m);
            g.schedule.verify(&jobs).unwrap();
            mig += g.schedule.value(&jobs);
            let s = iterative_multi_machine(&jobs, &ids, m, |js, rem| {
                pobp_sched::combined_from_scratch(js, rem, 2).chosen
            });
            s.verify(&jobs, Some(2)).unwrap();
            non += s.value(&jobs);
        }
        println!(
            " {m:8} | {:20.0} | {:24.0} | {:4.2}",
            mig / 3.0,
            non / 3.0,
            mig / non
        );
    }
    println!("\n(the migrative scheduler also pays unbounded preemptions; the gap");
    println!("stays a small constant, matching the §4.3.4 'constant factor' claim)");

    println!("\n(b) classify-and-select key: length (paper, Alg 2) vs value vs density");
    println!("(§1.4: value → O(log ρ), density → O(log σ); lax jobs, exact OPT, n = 14)\n");
    println!(" k | LSA_CS (length) | CS-by-value | CS-by-density | OPT_inf");
    println!("---+-----------------+-------------+---------------+--------");
    for k in 1..=3u32 {
        let mut w = [0.0f64; 4];
        for seed in 0..15u64 {
            let (jobs, ids) = lax_workload(14, k, 64, seed);
            w[0] += lsa_cs(&jobs, &ids, k).value(&jobs);
            w[1] += cs_by_value(&jobs, &ids, k).value(&jobs);
            w[2] += cs_by_density(&jobs, &ids, k).value(&jobs);
            w[3] += opt_unbounded(&jobs, &ids).value;
        }
        println!(
            " {k} | {:15.0} | {:11.0} | {:13.0} | {:6.0}",
            w[0], w[1], w[2], w[3]
        );
    }
}

/// E13: the online-arrival competitive-ratio lab (`docs/online.md`,
/// `docs/results/e13_competitive.md`). Sweeps the instance zoo, runs every
/// online algorithm *and* a paired offline `OPT_k` oracle task through the
/// engine, and tables the empirical ratio `oracle / online` per family.
/// Gate: every measured ratio must stay under the `(1+√P)²` reference bound
/// — the run panics (fails CI) if any row escapes it.
fn e13_online(engine: &Engine) {
    println!("online arrival vs offline OPT_k oracle (pobp_sim::online, docs/online.md)");
    println!("(zoo: n in {{8, 16}}, k in {{1, 2}}, 3 seeds; ratio = oracle / online value;");
    println!(" oracle = certified Thm-4.2 reduction, exact OPT_k where it fits)\n");
    let online_algs = [Algo::OnlineDjn, Algo::OnlineGreedy, Algo::OnlineEdf];
    let (ns, ks, seeds) = (vec![8usize, 16], vec![1u32, 2], 0..3u64);

    // The paired batch: one oracle task opens each cell, the online tasks
    // follow. Everything runs through one engine batch so the tables are
    // deterministic for any --threads.
    struct Cell {
        family: ZooFamily,
        bound: f64,
        exact: Option<f64>,
    }
    let mut tasks: Vec<SolveTask> = Vec::new();
    let mut cell_of: Vec<(usize, Option<Algo>)> = Vec::new(); // (cell idx, alg)
    let mut cells: Vec<Cell> = Vec::new();
    for &family in &ZOO_FAMILIES {
        for &n in &ns {
            for seed in seeds.clone() {
                for &k in &ks {
                    let instance = zoo_instance(family, n, k, seed);
                    let ids: Vec<JobId> = instance.ids().collect();
                    let bound = pobp_sim::djn_ratio_bound(instance.length_ratio().unwrap_or(1.0));
                    let exact = opt_k_bounded_fits(&instance, &ids)
                        .then(|| opt_k_bounded_small(&instance, &ids, k));
                    let cell = cells.len();
                    cells.push(Cell { family, bound, exact });
                    let mut push = |algo: Algo, tag: &str| {
                        tasks.push(SolveTask {
                            instance: instance.clone(),
                            k,
                            machines: 1,
                            algo,
                            exact_ref: false,
                            label: format!("{family} n={n} k={k} seed={seed} {tag}"),
                        });
                        cell_of.push((cell, (algo != Algo::Reduction).then_some(algo)));
                    };
                    push(Algo::Reduction, "oracle");
                    for &alg in &online_algs {
                        push(alg, alg.name());
                    }
                }
            }
        }
    }
    let batch = engine.run_batch(&tasks);

    // Aggregate ratios per (family, alg); enforce the bound per row.
    let mut ratios: BTreeMap<(&'static str, &'static str), Vec<f64>> = BTreeMap::new();
    let mut exact_cells = 0usize;
    let mut oracle_value = 0.0f64;
    for ((cell, alg), report) in cell_of.iter().zip(&batch.reports) {
        let out = done(report);
        let c = &cells[*cell];
        let Some(alg) = alg else {
            // The oracle row: a certified k-bounded value, i.e. a lower
            // bound on OPT_k — upgraded to OPT_k itself where exact fits.
            oracle_value = match c.exact {
                Some(e) if e >= out.alg_value => {
                    exact_cells += 1;
                    e
                }
                _ => out.alg_value,
            };
            continue;
        };
        assert!(out.alg_value > 0.0, "online {} scheduled nothing: {}", alg.name(), report.label);
        let ratio = oracle_value / out.alg_value;
        assert!(
            ratio <= c.bound,
            "measured ratio {ratio:.3} escapes the (1+sqrt P)^2 bound {:.3} on {}",
            c.bound,
            report.label
        );
        ratios.entry((c.family.name(), alg.name())).or_default().push(ratio);
    }

    println!(" family   | algorithm     | geo-mean ratio | worst ratio | n rows");
    println!("----------+---------------+----------------+-------------+-------");
    for ((family, alg), rs) in &ratios {
        let worst = rs.iter().cloned().fold(0.0f64, f64::max);
        println!(
            " {family:8} | {alg:13} | {:14.3} | {worst:11.3} | {:5}",
            geo_mean(rs),
            rs.len()
        );
    }
    println!(
        "\nevery measured ratio within the (1+sqrt P)^2 reference bound \
         ({} cells, {} with exact OPT_k oracle)",
        cells.len(),
        exact_cells
    );
}

fn e12_switch_cost() {
    println!("online execution under context-switch cost δ (pobp-sim):");
    println!("bimodal workload (8 long lax + 30 short tight jobs), value by policy\n");
    println!("  δ | EDF (k=inf) | budget k=2 | budget k=1 | budget k=0 | winner");
    println!("----+-------------+------------+------------+------------+-------");
    use pobp_sim::{execute_online, Policy, SimConfig};
    let mut jobs = pobp_core::JobSet::new();
    for i in 0..8i64 {
        jobs.push(pobp_core::Job::new(30 * i, 30 * i + 200, 40, 40.0));
    }
    for i in 0..30i64 {
        jobs.push(pobp_core::Job::new(12 * i, 12 * i + 8, 3, 3.0));
    }
    let ids: Vec<JobId> = jobs.ids().collect();
    for delta in [0i64, 1, 2, 4, 8] {
        let run = |policy: Policy| {
            execute_online(&jobs, &ids, SimConfig { policy, switch_cost: delta }).value(&jobs)
        };
        let vals = [
            ("EDF", run(Policy::Edf)),
            ("k=2", run(Policy::EdfBudget(2))),
            ("k=1", run(Policy::EdfBudget(1))),
            ("k=0", run(Policy::EdfBudget(0))),
        ];
        let winner = vals.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        println!(
            " {delta:2} | {:11} | {:10} | {:10} | {:10} | {}",
            vals[0].1, vals[1].1, vals[2].1, vals[3].1, winner.0
        );
    }
    println!("\noffline robustness of Theorem 4.2 reduction outputs (mixed n = 200):\n");
    println!(" k | switches | efficiency @ δ=2 | efficiency @ δ=8");
    println!("---+----------+------------------+-----------------");
    let (jobs, ids) = mixed_workload(200, 4);
    let inf = greedy_unbounded(&jobs, &ids).schedule;
    // k-independent prefix hoisted: one plan, four k-BAS solves.
    let plan = ReductionPlan::new(&jobs, &inf).expect("greedy reference is feasible");
    let mut ws = SolveWorkspace::new();
    for k in 0..4u32 {
        let red = plan.solve_ws(&jobs, k, KbasSolver::Tm, &mut ws).schedule;
        println!(
            " {k} | {:8} | {:16.3} | {:15.3}",
            pobp_sim::switch_count(&red),
            pobp_sim::efficiency(&jobs, &red, 2),
            pobp_sim::efficiency(&jobs, &red, 8),
        );
    }
}
