//! Small table/report infrastructure: build a table once, render it as
//! aligned text, Markdown, or CSV. Used by the `sweep` binary to emit
//! machine-readable data series for the figures in `EXPERIMENTS.md`.

/// A rectangular table of strings with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180-ish: quotes fields containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells.iter().map(|c| field(c)).collect();
            format!("{}\n", joined.join(","))
        };
        out.push_str(&line(&self.headers));
        for r in &self.rows {
            out.push_str(&line(r));
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("| {} |\n", self.headers.join(" | "));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Renders as aligned plain text (right-aligned columns).
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = width[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push_str(&format!("{}\n", "-".repeat(out.len().saturating_sub(1))));
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }
}

/// Renders an observability [`Snapshot`](pobp_core::obs::Snapshot) as three
/// aligned-text tables (counters, timers, events), in name order. Empty
/// sections are omitted; an entirely empty snapshot renders a hint that the
/// `obs` feature is off.
pub fn obs_tables(snap: &pobp_core::obs::Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let mut t = Table::new(["counter", "value"]);
        for (name, v) in &snap.counters {
            t.push([name.to_string(), v.to_string()]);
        }
        out.push_str(&t.to_text());
    }
    if !snap.timers.is_empty() {
        let mut t = Table::new(["timer", "total_ms", "spans"]);
        for (name, s) in &snap.timers {
            t.push([
                name.to_string(),
                format!("{:.3}", s.total.as_secs_f64() * 1e3),
                s.spans.to_string(),
            ]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&t.to_text());
    }
    if !snap.events.is_empty() {
        let mut t = Table::new(["event", "count", "sum", "min", "max", "p50", "p90", "p99"]);
        for (name, e) in &snap.events {
            t.push([
                name.to_string(),
                e.count.to_string(),
                e.sum.to_string(),
                e.min.to_string(),
                e.max.to_string(),
                format!("{:.1}", e.quantile(0.50)),
                format!("{:.1}", e.quantile(0.90)),
                format!("{:.1}", e.quantile(0.99)),
            ]);
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&t.to_text());
    }
    if out.is_empty() {
        out.push_str(if pobp_core::obs::enabled() {
            "(no obs data recorded)\n"
        } else {
            "(obs feature disabled; rebuild with --features obs)\n"
        });
    }
    out
}

/// Formats an `f64` compactly (trailing-zero-free, 4 significant decimals).
pub fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        let s = format!("{x:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["k", "price"]);
        t.push(["1", "2.5"]);
        t.push(["2", "1.7"]);
        t
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv, "k,price\n1,2.5\n2,1.7\n");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push(["x,y", "he said \"hi\""]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| k | price |\n|---|---|\n"));
        assert!(md.contains("| 1 | 2.5 |"));
    }

    #[test]
    fn text_alignment() {
        let mut t = Table::new(["name", "v"]);
        t.push(["long-name", "1"]);
        t.push(["x", "22"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align right.
        assert!(lines[2].starts_with("long-name"));
        assert!(lines[3].trim_start().starts_with("x"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(1.0 / 3.0), "0.3333");
        assert_eq!(num(-4.0), "-4");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.to_csv(), "a\n");
    }

    #[test]
    fn obs_tables_rendering() {
        let mut snap = pobp_core::obs::Snapshot::default();
        snap.counters.insert("sched.edf.runs", 3);
        snap.events.insert(
            "sched.lsa_cs.class_size",
            pobp_core::obs::EventSnapshot {
                count: 2,
                sum: 7,
                min: 3,
                max: 4,
                ..Default::default()
            },
        );
        let text = obs_tables(&snap);
        assert!(text.contains("sched.edf.runs"));
        assert!(text.contains("sched.lsa_cs.class_size"));
        assert!(text.contains("p99"));

        let empty = obs_tables(&pobp_core::obs::Snapshot::default());
        assert!(empty.contains("obs"));
    }
}
