//! Shared workload builders for the pobp benches and the `experiments`
//! binary, so that Criterion targets and the paper-table harness measure
//! exactly the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use pobp_core::{JobId, JobSet};
use pobp_instances::{LaxityModel, RandomWorkload, ValueModel};

/// The standard mixed-laxity workload used across benches (seeded).
pub fn mixed_workload(n: usize, seed: u64) -> (JobSet, Vec<JobId>) {
    let jobs = RandomWorkload {
        n,
        horizon: (n as i64).max(1) * 6,
        length_range: (2, 64),
        laxity: LaxityModel::Uniform { max: 10.0 },
        values: ValueModel::Uniform { max: 100 },
    }
    .generate(seed);
    let ids = jobs.ids().collect();
    (jobs, ids)
}

/// An all-lax workload for the LSA benches (`λ ≥ k+1`).
pub fn lax_workload(n: usize, k: u32, p_max: i64, seed: u64) -> (JobSet, Vec<JobId>) {
    let jobs = RandomWorkload {
        n,
        horizon: (n as i64).max(1) * 8,
        length_range: (1, p_max.max(1)),
        laxity: LaxityModel::Lax { k, factor: 3.0 },
        values: ValueModel::Uniform { max: 50 },
    }
    .generate(seed);
    let ids = jobs.ids().collect();
    (jobs, ids)
}

/// A small workload sized for the exact oracles.
pub fn small_workload(n: usize, seed: u64) -> (JobSet, Vec<JobId>) {
    let jobs = RandomWorkload {
        n,
        horizon: 40,
        length_range: (1, 12),
        laxity: LaxityModel::Uniform { max: 4.0 },
        values: ValueModel::Uniform { max: 20 },
    }
    .generate(seed);
    let ids = jobs.ids().collect();
    (jobs, ids)
}

/// Geometric mean of a slice (for summarizing measured ratios).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// `log_{k+1} x`, floored at 1 — the recurring bound expression.
pub fn log_base_k1(x: f64, k: u32) -> f64 {
    (x.ln() / ((k + 1) as f64).ln()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_seeded_and_sized() {
        let (a, ids) = mixed_workload(64, 3);
        let (b, _) = mixed_workload(64, 3);
        assert_eq!(a, b);
        assert_eq!(ids.len(), 64);
        let (lax, _) = lax_workload(32, 2, 16, 1);
        for (_, j) in lax.iter() {
            assert!(j.laxity() >= 3.0);
        }
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geo_mean(&[]).is_nan());
    }

    #[test]
    fn log_base() {
        assert!((log_base_k1(8.0, 1) - 3.0).abs() < 1e-12);
        assert_eq!(log_base_k1(1.5, 7), 1.0);
    }
}
