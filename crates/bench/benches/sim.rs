//! E12 benches: the overhead-aware online executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_bench::mixed_workload;
use pobp_sim::{execute_online, switch_points, Policy, SimConfig};
use std::hint::black_box;

fn bench_execute_online(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/execute-online");
    g.sample_size(20);
    for &n in &[200usize, 1_000] {
        let (jobs, ids) = mixed_workload(n, 19);
        g.throughput(Throughput::Elements(n as u64));
        for (name, policy) in [
            ("edf", Policy::Edf),
            ("budget1", Policy::EdfBudget(1)),
            ("nonpre", Policy::NonPreemptive),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, n),
                &(jobs.clone(), ids.clone()),
                |b, (jobs, ids)| {
                    b.iter(|| {
                        execute_online(
                            black_box(jobs),
                            ids,
                            SimConfig { policy, switch_cost: 2 },
                        )
                        .schedule
                        .len()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_switch_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/switch-points");
    g.sample_size(30);
    let (jobs, ids) = mixed_workload(2_000, 19);
    let sched = pobp_sched::edf_schedule(&jobs, &ids, None).schedule;
    g.bench_function("n2000", |b| b.iter(|| switch_points(black_box(&sched)).len()));
    g.finish();
}

criterion_group!(benches, bench_execute_online, bench_switch_analysis);
criterion_main!(benches);
