//! E7 benches: Algorithm 3 end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_bench::mixed_workload;
use pobp_sched::{combined_from_scratch, greedy_unbounded, k_preemption_combined};
use std::hint::black_box;

fn bench_combined_given_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("combined/given-inf-schedule");
    g.sample_size(20);
    for &n in &[100usize, 400] {
        let (jobs, ids) = mixed_workload(n, 5);
        let inf = greedy_unbounded(&jobs, &ids).schedule;
        g.throughput(Throughput::Elements(n as u64));
        for &k in &[1u32, 3] {
            g.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &(jobs.clone(), ids.clone(), inf.clone()),
                |b, (jobs, ids, inf)| {
                    b.iter(|| {
                        k_preemption_combined(black_box(jobs), ids, inf, k)
                            .unwrap()
                            .chosen
                            .len()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_combined_from_scratch(c: &mut Criterion) {
    let mut g = c.benchmark_group("combined/from-scratch");
    g.sample_size(10);
    for &n in &[100usize, 300] {
        let (jobs, ids) = mixed_workload(n, 5);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(jobs, ids), |b, (jobs, ids)| {
            b.iter(|| combined_from_scratch(black_box(jobs), ids, 2).chosen.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_combined_given_schedule, bench_combined_from_scratch);
criterion_main!(benches);
