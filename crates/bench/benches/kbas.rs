//! E2/E3 benches: the k-BAS algorithms (`TM`, `LevelledContraction`) on
//! random forests and the Appendix A adversarial tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_forest::{levelled_contraction, tm, LowerBoundTree};
use pobp_instances::random_forest;
use std::hint::black_box;

fn bench_tm_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("tm/random-forest");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let f = random_forest(n, 0.05, 42);
        g.throughput(Throughput::Elements(n as u64));
        for &k in &[1u32, 4] {
            g.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &f, |b, f| {
                b.iter(|| tm(black_box(f), k).value)
            });
        }
    }
    g.finish();
}

fn bench_contraction_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("levelled-contraction/random-forest");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let f = random_forest(n, 0.05, 42);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("k1", n), &f, |b, f| {
            b.iter(|| levelled_contraction(black_box(f), 1).value())
        });
    }
    g.finish();
}

fn bench_tm_adversarial(c: &mut Criterion) {
    let mut g = c.benchmark_group("tm/appendix-a-tree");
    g.sample_size(15);
    for depth in [4u32, 6] {
        let lb = LowerBoundTree::for_k(2, depth);
        let f = lb.build();
        g.throughput(Throughput::Elements(f.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(depth), &f, |b, f| {
            b.iter(|| tm(black_box(f), 2).value)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tm_random, bench_contraction_random, bench_tm_adversarial);
criterion_main!(benches);
