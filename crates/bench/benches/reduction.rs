//! E4 benches: the full Theorem 4.2 pipeline (laminarize → forest → TM →
//! reconstruct) and its stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_bench::mixed_workload;
use pobp_sched::{edf_schedule, laminarize, reduce_to_k_bounded, schedule_forest};
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction/full");
    g.sample_size(20);
    for &n in &[100usize, 400, 1_600] {
        let (jobs, ids) = mixed_workload(n, 3);
        let inf = edf_schedule(&jobs, &ids, None).schedule;
        g.throughput(Throughput::Elements(n as u64));
        for &k in &[1u32, 3] {
            g.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &(jobs.clone(), inf.clone()),
                |b, (jobs, inf)| {
                    b.iter(|| {
                        reduce_to_k_bounded(black_box(jobs), inf, k)
                            .unwrap()
                            .schedule
                            .len()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_forest_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction/schedule-forest");
    g.sample_size(30);
    let (jobs, ids) = mixed_workload(1_000, 3);
    let lam = laminarize(&jobs, &edf_schedule(&jobs, &ids, None).schedule).unwrap();
    g.bench_function("n1000", |b| {
        b.iter(|| schedule_forest(black_box(&jobs), &lam).forest.len())
    });
    g.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_forest_stage);
criterion_main!(benches);
