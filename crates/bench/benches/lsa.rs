//! E6 benches: Algorithm 2 (`LSA` / `LSA_CS`) throughput on lax workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_bench::lax_workload;
use pobp_sched::{lsa, lsa_cs};
use std::hint::black_box;

fn bench_lsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsa/plain");
    g.sample_size(20);
    for &n in &[200usize, 1_000, 4_000] {
        let (jobs, ids) = lax_workload(n, 2, 64, 11);
        g.throughput(Throughput::Elements(n as u64));
        for &k in &[1u32, 3] {
            g.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &(jobs.clone(), ids.clone()),
                |b, (jobs, ids)| b.iter(|| lsa(black_box(jobs), ids, k).accepted.len()),
            );
        }
    }
    g.finish();
}

fn bench_lsa_cs(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsa/classify-and-select");
    g.sample_size(20);
    for &n in &[200usize, 1_000, 4_000] {
        let (jobs, ids) = lax_workload(n, 2, 64, 11);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(jobs, ids),
            |b, (jobs, ids)| b.iter(|| lsa_cs(black_box(jobs), ids, 2).accepted.len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lsa, bench_lsa_cs);
criterion_main!(benches);
