//! E9 benches: the iterative multi-machine extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pobp_bench::mixed_workload;
use pobp_sched::{iterative_multi_machine, lsa_cs};
use std::hint::black_box;

fn bench_multi(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi-machine/lsa-cs-k2");
    g.sample_size(15);
    let (jobs, ids) = mixed_workload(400, 21);
    for &m in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                iterative_multi_machine(black_box(&jobs), &ids, m, |js, rem| {
                    lsa_cs(js, rem, 2).schedule
                })
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multi);
criterion_main!(benches);
