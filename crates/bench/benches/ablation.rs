//! E10 benches: ablations — TM vs LevelledContraction, reduction vs
//! EDF-truncate, density vs value greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pobp_bench::{lax_workload, mixed_workload};
use pobp_forest::{levelled_contraction, tm};
use pobp_instances::random_forest;
use pobp_sched::{
    edf_truncate, greedy_nonpreemptive_by_value, greedy_unbounded, lawler_moore, lsa,
    moore_hodgson, opt_nonpreemptive, reduce_to_k_bounded,
};
use std::hint::black_box;

fn bench_tm_vs_lc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/kbas-solvers");
    g.sample_size(15);
    let f = random_forest(50_000, 0.05, 33);
    g.bench_function("tm", |b| b.iter(|| tm(black_box(&f), 2).value));
    g.bench_function("levelled-contraction", |b| {
        b.iter(|| levelled_contraction(black_box(&f), 2).value())
    });
    g.finish();
}

fn bench_reduction_vs_truncate(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/k-bounding");
    g.sample_size(15);
    let (jobs, ids) = mixed_workload(400, 9);
    let inf = greedy_unbounded(&jobs, &ids).schedule;
    g.bench_function("reduction", |b| {
        b.iter(|| {
            reduce_to_k_bounded(black_box(&jobs), &inf, 2)
                .unwrap()
                .schedule
                .value(&jobs)
        })
    });
    g.bench_function("edf-truncate", |b| {
        b.iter(|| edf_truncate(black_box(&jobs), &ids, 2).value(&jobs))
    });
    g.finish();
}

fn bench_sort_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/greedy-sort-key");
    g.sample_size(15);
    {
        let &n = &500usize;
        let (jobs, ids) = lax_workload(n, 1, 64, 17);
        g.bench_with_input(BenchmarkId::new("density-lsa", n), &(jobs.clone(), ids.clone()),
            |b, (jobs, ids)| b.iter(|| lsa(black_box(jobs), ids, 1).accepted.len()));
        g.bench_with_input(BenchmarkId::new("value-greedy", n), &(jobs, ids),
            |b, (jobs, ids)| b.iter(|| greedy_nonpreemptive_by_value(black_box(jobs), ids).len()));
    }
    g.finish();
}

fn bench_classical(c: &mut Criterion) {
    // Common-release instances for the cited classical baselines.
    let mut g = c.benchmark_group("ablation/classical-common-release");
    g.sample_size(20);
    for &n in &[12usize, 200] {
        let jobs: pobp_core::JobSet = (0..n)
            .map(|i| {
                let p = 1 + (i as i64 * 7 + 3) % 12;
                pobp_core::Job::new(0, p + (i as i64 * 13) % 80, p, 1.0 + (i % 9) as f64)
            })
            .collect();
        let ids: Vec<pobp_core::JobId> = jobs.ids().collect();
        g.bench_with_input(
            BenchmarkId::new("moore-hodgson", n),
            &(jobs.clone(), ids.clone()),
            |b, (jobs, ids)| b.iter(|| moore_hodgson(black_box(jobs), ids).0.len()),
        );
        g.bench_with_input(
            BenchmarkId::new("lawler-moore", n),
            &(jobs.clone(), ids.clone()),
            |b, (jobs, ids)| b.iter(|| lawler_moore(black_box(jobs), ids).2),
        );
        if n <= 12 {
            g.bench_with_input(
                BenchmarkId::new("exact-dp", n),
                &(jobs, ids),
                |b, (jobs, ids)| b.iter(|| opt_nonpreemptive(black_box(jobs), ids).value),
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tm_vs_lc,
    bench_reduction_vs_truncate,
    bench_sort_keys,
    bench_classical
);
criterion_main!(benches);
