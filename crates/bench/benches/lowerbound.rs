//! E5/E8 benches: building and solving the paper's lower-bound instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pobp_core::JobId;
use pobp_instances::{Fig2Instance, Fig4Instance};
use pobp_sched::{edf_schedule, opt_nonpreemptive, reduce_to_k_bounded};
use std::hint::black_box;

fn bench_fig4_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/edf+reduction");
    g.sample_size(15);
    for depth in [3u32, 4] {
        let inst = Fig4Instance::for_k(2, depth);
        let built = inst.build();
        let ids: Vec<JobId> = built.jobs.ids().collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(depth),
            &(built.jobs, ids),
            |b, (jobs, ids)| {
                b.iter(|| {
                    let inf = edf_schedule(black_box(jobs), ids, None);
                    reduce_to_k_bounded(jobs, &inf.schedule, 2)
                        .unwrap()
                        .schedule
                        .value(jobs)
                })
            },
        );
    }
    g.finish();
}

fn bench_fig4_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/build");
    g.sample_size(20);
    for depth in [3u32, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| Fig4Instance::for_k(2, d).build().jobs.len())
        });
    }
    g.finish();
}

fn bench_fig2_opt0(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/opt-nonpreemptive");
    g.sample_size(10);
    for n in [10u32, 14] {
        let jobs = Fig2Instance::new(n).build();
        let ids: Vec<JobId> = jobs.ids().collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(jobs, ids), |b, (jobs, ids)| {
            b.iter(|| opt_nonpreemptive(black_box(jobs), ids).value)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig4_pipeline, bench_fig4_build, bench_fig2_opt0);
criterion_main!(benches);
