//! E1 benches: EDF scheduling and the Figure 1 laminar rearrangement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_bench::mixed_workload;
use pobp_sched::{edf_schedule, is_laminar, laminarize};
use std::hint::black_box;

fn bench_edf(c: &mut Criterion) {
    let mut g = c.benchmark_group("edf/schedule");
    g.sample_size(30);
    for &n in &[100usize, 1_000, 10_000] {
        let (jobs, ids) = mixed_workload(n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(jobs, ids), |b, (jobs, ids)| {
            b.iter(|| edf_schedule(black_box(jobs), ids, None).schedule.len())
        });
    }
    g.finish();
}

fn bench_laminarize(c: &mut Criterion) {
    let mut g = c.benchmark_group("laminarize");
    g.sample_size(30);
    for &n in &[100usize, 1_000] {
        let (jobs, ids) = mixed_workload(n, 7);
        let sched = edf_schedule(&jobs, &ids, None).schedule;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(jobs, sched), |b, (jobs, s)| {
            b.iter(|| laminarize(black_box(jobs), s).unwrap().len())
        });
    }
    g.finish();
}

fn bench_is_laminar(c: &mut Criterion) {
    let mut g = c.benchmark_group("is-laminar");
    g.sample_size(40);
    let (jobs, ids) = mixed_workload(2_000, 7);
    let sched = edf_schedule(&jobs, &ids, None).schedule;
    g.bench_function("n2000", |b| b.iter(|| is_laminar(black_box(&sched))));
    g.finish();
}

criterion_group!(benches, bench_edf, bench_laminarize, bench_is_laminar);
criterion_main!(benches);
