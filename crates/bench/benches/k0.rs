//! E8 benches: the k = 0 algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pobp_bench::mixed_workload;
use pobp_core::JobId;
use pobp_instances::Fig2Instance;
use pobp_sched::{opt_nonpreemptive, schedule_k0};
use std::hint::black_box;

fn bench_schedule_k0(c: &mut Criterion) {
    let mut g = c.benchmark_group("k0/schedule");
    g.sample_size(20);
    for &n in &[200usize, 1_000, 4_000] {
        let (jobs, ids) = mixed_workload(n, 13);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(jobs, ids), |b, (jobs, ids)| {
            b.iter(|| schedule_k0(black_box(jobs), ids).accepted.len())
        });
    }
    g.finish();
}

fn bench_exact_opt0(c: &mut Criterion) {
    let mut g = c.benchmark_group("k0/exact-dp");
    g.sample_size(10);
    for n in [12u32, 16] {
        let jobs = Fig2Instance::new(n).build();
        let ids: Vec<JobId> = jobs.ids().collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(jobs, ids), |b, (jobs, ids)| {
            b.iter(|| opt_nonpreemptive(black_box(jobs), ids).value)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedule_k0, bench_exact_opt0);
criterion_main!(benches);
