//! The Figure 4 / Appendix B instance: the general lower bound
//! `PoBP_k = Ω(log_{k+1} n) = Ω(log_{k+1} P)` (Theorems 4.3 and 4.13).
//!
//! Construction (all integers; see the scaling note below):
//!
//! * `L + 1` levels `l = 0..=L`; level `l` holds `K^l` jobs
//!   (`K > k`, the theorems take `K = 2k`);
//! * value of a level-`l` job: `K^{-l}` — scaled by `K^L` to the integer
//!   `K^{L-l}`;
//! * length `p(l) = P·(3K²)^{-l}` — scaled by `(3K-1)·(3K²)^{-L}·…`, i.e.
//!   we *define* `p(l) = (3K-1)·(3K²)^{L-l}`, which makes both `p(l)/K` and
//!   `p(l)/(3K-1)` integers;
//! * relative laxity `λ = 1 + 1/(3K-1)` for every job, i.e.
//!   `d = r + p + p/(3K-1)`;
//! * the `m`-th job of level `l` has `K` *child jobs* at level `l+1` with
//!   release times `r(l+1, m') = r(l, m) + (m' - mK + 1)·p(l)/K − p(l+1)`
//!   for `mK ≤ m' ≤ (m+1)K − 1`, and `r(0,0) = 0`.
//!
//! Intended behaviour (Lemmas B.1, B.2): with unbounded preemption all
//! `L + 1` levels can be scheduled (`OPT_∞ = (L+1)·K^L` scaled); with only
//! `k` preemptions each job can host at most `k` of its child jobs, so
//! `OPT_k < K/(K−k)·K^L` (scaled) — `< 2·K^L` at `K = 2k` — and the price
//! grows as `Ω(L) = Ω(log_{k+1} P) = Ω(log_{k+1} n)`.

use pobp_core::{Job, JobId, JobSet, Time};

/// Builder for the Figure 4 instance.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Instance {
    /// Branching factor `K` (> k; the theorems use `K = 2k`).
    pub branching: u32,
    /// `L`: levels are `0..=L`.
    pub depth: u32,
}

/// A Figure 4 instance together with its level structure.
#[derive(Clone, Debug)]
pub struct Fig4Built {
    /// The jobs; `level_of[j]` gives each job's level.
    pub jobs: JobSet,
    /// Level of each job (indexed by `JobId.0`).
    pub level_of: Vec<u32>,
    /// Ids grouped by level.
    pub by_level: Vec<Vec<JobId>>,
    /// The parent job of each job (`None` for the root job).
    pub parent_of: Vec<Option<JobId>>,
}

impl Fig4Instance {
    /// The paper's parameterization for bound `k`: `K = 2k`.
    pub fn for_k(k: u32, depth: u32) -> Self {
        assert!(k >= 1, "the construction needs k ≥ 1");
        Fig4Instance { branching: 2 * k, depth }
    }

    /// Number of jobs `n = Σ K^l = (K^{L+1} − 1)/(K − 1)`.
    pub fn job_count(&self) -> usize {
        let k = self.branching as usize;
        if k == 1 {
            return self.depth as usize + 1;
        }
        (k.pow(self.depth + 1) - 1) / (k - 1)
    }

    /// Scaled length of a level-`l` job: `(3K−1)·(3K²)^{L−l}`.
    pub fn length_at(&self, level: u32) -> Time {
        let base = 3 * (self.branching as i128) * (self.branching as i128);
        let p = (3 * self.branching as i128 - 1) * base.pow(self.depth - level);
        Time::try_from(p).expect("length overflows i64; reduce depth")
    }

    /// Scaled value of a level-`l` job: `K^{L−l}` (exact in `f64`).
    pub fn value_at(&self, level: u32) -> f64 {
        (self.branching as f64).powi((self.depth - level) as i32)
    }

    /// The scaled length ratio `P = (3K²)^L`.
    pub fn length_ratio(&self) -> f64 {
        (3.0 * (self.branching as f64).powi(2)).powi(self.depth as i32)
    }

    /// Scaled `OPT_∞ = (L+1)·K^L` (all jobs; Lemma B.2).
    pub fn opt_unbounded_value(&self) -> f64 {
        (self.depth as f64 + 1.0) * (self.branching as f64).powi(self.depth as i32)
    }

    /// Scaled Lemma B.2 upper bound on `OPT_k`:
    /// `K^L · Σ_{i=0}^{L} (k/K)^i < K^L · K/(K−k)`.
    pub fn opt_k_upper_bound(&self, k: u32) -> f64 {
        let scale = (self.branching as f64).powi(self.depth as i32);
        let q = k as f64 / self.branching as f64;
        scale * (0..=self.depth).map(|i| q.powi(i as i32)).sum::<f64>()
    }

    /// Builds the instance.
    ///
    /// # Panics
    /// Panics when lengths would overflow `i64` or values lose `f64` integer
    /// exactness; for `K = 2k ≤ 8` depths up to 6–7 are safe.
    pub fn build(&self) -> Fig4Built {
        let kb = self.branching as usize;
        assert!(kb >= 2, "branching must be ≥ 2");
        assert!(
            (self.branching as f64).powi(self.depth as i32) < 2f64.powi(53),
            "values exceed exact f64 integers"
        );
        // Check the largest time quantity: r grows by at most ~λ·p(0) total.
        let _ = self.length_at(0); // panics on overflow

        let mut jobs = JobSet::new();
        let mut level_of = Vec::with_capacity(self.job_count());
        let mut by_level: Vec<Vec<JobId>> = vec![Vec::new(); self.depth as usize + 1];
        let mut parent_of: Vec<Option<JobId>> = Vec::with_capacity(self.job_count());

        // Level 0: the root job at r = 0.
        let p0 = self.length_at(0);
        let d0 = p0 + p0 / (3 * self.branching as Time - 1);
        let root = jobs.push(Job::new(0, d0, p0, self.value_at(0)));
        level_of.push(0);
        by_level[0].push(root);
        parent_of.push(None);

        // `frontier[m]` = release time of the m-th job of the current level.
        let mut frontier: Vec<(JobId, Time)> = vec![(root, 0)];
        for l in 0..self.depth {
            let p_l = self.length_at(l);
            let p_child = self.length_at(l + 1);
            let lam_add_child = p_child / (3 * self.branching as Time - 1);
            let mut next = Vec::with_capacity(frontier.len() * kb);
            for &(parent_id, r_parent) in &frontier {
                for c in 0..self.branching {
                    // r(l+1, m') = r(l, m) + (m' − mK + 1)·p(l)/K − p(l+1),
                    // with m' − mK = c.
                    let r = r_parent + (c as Time + 1) * (p_l / self.branching as Time) - p_child;
                    let d = r + p_child + lam_add_child;
                    let id = jobs.push(Job::new(r, d, p_child, self.value_at(l + 1)));
                    level_of.push(l + 1);
                    by_level[l as usize + 1].push(id);
                    parent_of.push(Some(parent_id));
                    next.push((id, r));
                }
            }
            frontier = next;
        }
        Fig4Built { jobs, level_of, by_level, parent_of }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_sched::{edf_feasible, edf_schedule, reduce_to_k_bounded};

    #[test]
    fn shape_and_scaling() {
        let inst = Fig4Instance::for_k(1, 2); // K = 2, L = 2
        assert_eq!(inst.job_count(), 7);
        let built = inst.build();
        assert_eq!(built.jobs.len(), 7);
        assert_eq!(built.by_level.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 2, 4]);
        // Lengths: (3K−1)(3K²)^{L−l} = 5·12^{2−l}.
        assert_eq!(inst.length_at(0), 5 * 144);
        assert_eq!(inst.length_at(1), 5 * 12);
        assert_eq!(inst.length_at(2), 5);
        // Laxity is exactly 1 + 1/(3K−1) = 1.2 for every job.
        for (_, j) in built.jobs.iter() {
            assert!((j.laxity() - 1.2).abs() < 1e-12);
        }
        // Values: K^{L−l} = 4, 2, 1.
        assert_eq!(built.jobs.job(JobId(0)).value, 4.0);
        assert_eq!(inst.opt_unbounded_value(), 12.0);
    }

    #[test]
    fn children_nest_within_parent_window() {
        let built = Fig4Instance::for_k(2, 2).build();
        for (id, job) in built.jobs.iter() {
            if let Some(p) = built.parent_of[id.0] {
                let parent = built.jobs.job(p);
                assert!(job.release > parent.release, "{id}");
                assert!(job.deadline < parent.deadline, "{id}");
            }
        }
    }

    #[test]
    fn whole_instance_is_edf_feasible() {
        // Lemma B.2: OPT_∞ takes everything.
        for (k, depth) in [(1u32, 3u32), (2, 2), (3, 2)] {
            let inst = Fig4Instance::for_k(k, depth);
            let built = inst.build();
            let ids: Vec<JobId> = built.jobs.ids().collect();
            assert!(edf_feasible(&built.jobs, &ids), "k={k} L={depth}");
        }
    }

    #[test]
    fn reduction_price_matches_lemma_b2() {
        // OPT_k via the reduction is below the analytic bound, and the
        // price OPT_∞ / OPT_k grows ~ (L+1)·(K−k)/K.
        for (k, depth) in [(1u32, 4u32), (2, 3)] {
            let inst = Fig4Instance::for_k(k, depth);
            let built = inst.build();
            let ids: Vec<JobId> = built.jobs.ids().collect();
            let inf = edf_schedule(&built.jobs, &ids, None);
            assert!(inf.is_feasible());
            let red = reduce_to_k_bounded(&built.jobs, &inf.schedule, k).unwrap();
            red.schedule.verify(&built.jobs, Some(k)).unwrap();
            let upper = inst.opt_k_upper_bound(k);
            assert!(
                red.value(&built.jobs) <= upper + 1e-6,
                "k={k} L={depth}: reduction {} exceeds analytic OPT_k bound {upper}",
                red.value(&built.jobs)
            );
            // The price from the analytic bound: ≥ (L+1)/2 for K = 2k.
            let price = inst.opt_unbounded_value() / upper;
            assert!(price >= (depth as f64 + 1.0) / 2.0 - 1e-9);
        }
    }

    #[test]
    fn sibling_jobs_do_not_overlap_windows_fully() {
        // Consecutive siblings are released p(l)/K apart — strictly
        // increasing release times within a level.
        let built = Fig4Instance::for_k(1, 3).build();
        for level in &built.by_level {
            for w in level.windows(2) {
                let a = built.jobs.job(w[0]);
                let b = built.jobs.job(w[1]);
                assert!(a.release < b.release);
            }
        }
    }
}
