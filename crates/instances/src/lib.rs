//! # pobp-instances — workloads for *The Price of Bounded Preemption*
//!
//! The paper's lower-bound constructions as runnable instance generators,
//! plus seeded random workloads:
//!
//! * [`Fig2Instance`] — §5 geometric nesting (`PoBP_0 = Ω(min{n, log P})`);
//! * [`Fig4Instance`] — Appendix B nested K-ary jobs
//!   (`PoBP_k = Ω(log_{k+1} n) = Ω(log_{k+1} P)`);
//! * [`LowerBoundTree`] (re-export) — Appendix A adversarial k-BAS tree;
//! * [`TaskSet`] — periodic real-time task sets unrolled into job instances
//!   (the workload shape of the limited-preemption literature);
//! * [`RandomWorkload`] / [`random_forest`] — reproducible random instances;
//! * [`zoo_instance`] / [`ZooFamily`] — the instance **zoo**: every family
//!   above behind one `(family, n, k, seed)` axis, for cross-cutting
//!   sweeps like `pobp online` and experiment E13;
//! * [`write_jobs`] / [`parse_jobs`] — plain-text instance round-tripping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod fig2;
mod fig4;
mod periodic;
mod random;
mod textio;
mod zoo;

pub use adversarial::{bursty_workload, overlapping_block, round_robin_schedule};
pub use fig2::Fig2Instance;
pub use fig4::{Fig4Built, Fig4Instance};
pub use periodic::{PeriodicTask, TaskSet};
pub use pobp_forest::LowerBoundTree;
pub use random::{random_forest, LaxityModel, RandomWorkload, ValueModel};
pub use textio::{parse_jobs, parse_schedule, write_jobs, write_schedule};
pub use zoo::{zoo_instance, ZooFamily, ZOO_FAMILIES};
