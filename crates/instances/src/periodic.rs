//! Periodic real-time task sets, unrolled into job instances.
//!
//! The bounded-preemption literature the paper builds on ([11], [12], [27] —
//! limited-preemption EDF and fixed-priority scheduling) lives in the
//! periodic-task world: task `τ_i = (C_i, T_i, D_i)` releases a job of
//! length `C_i` every `T_i` ticks with relative deadline `D_i`. Unrolling a
//! task set over a hyperperiod produces exactly the job model of §2.1, which
//! lets the paper's offline algorithms and the `pobp-sim` executor run on
//! workloads shaped like the motivating systems.

use pobp_core::{Job, JobSet, Time, Value};

/// A periodic task `(C, T, D)` with a per-job value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicTask {
    /// Worst-case execution time `C` (the job length).
    pub wcet: Time,
    /// Period `T` between releases.
    pub period: Time,
    /// Relative deadline `D` (constrained: `C ≤ D`; often `D ≤ T`).
    pub deadline: Time,
    /// Value of each job of this task.
    pub value: Value,
    /// Release offset of the first job.
    pub offset: Time,
}

impl PeriodicTask {
    /// A task with implicit deadline (`D = T`), zero offset, unit value.
    pub fn implicit(wcet: Time, period: Time) -> Self {
        PeriodicTask { wcet, period, deadline: period, value: 1.0, offset: 0 }
    }

    /// Utilization `C / T`.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }

    /// Laxity of every job of this task: `D / C`.
    pub fn laxity(&self) -> f64 {
        self.deadline as f64 / self.wcet as f64
    }
}

/// A set of periodic tasks.
///
/// ```
/// use pobp_instances::{PeriodicTask, TaskSet};
///
/// let ts = TaskSet::new(vec![
///     PeriodicTask::implicit(2, 6),
///     PeriodicTask::implicit(3, 9),
/// ]);
/// assert_eq!(ts.hyperperiod(), 18);
/// let (jobs, task_of) = ts.unroll_hyperperiod();
/// assert_eq!(jobs.len(), 18 / 6 + 18 / 9);
/// assert_eq!(task_of.len(), jobs.len());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskSet {
    /// The tasks.
    pub tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Creates a task set, validating each task (`C ≥ 1`, `C ≤ D`, `T ≥ 1`).
    ///
    /// # Panics
    /// Panics on an invalid task.
    pub fn new(tasks: Vec<PeriodicTask>) -> Self {
        for (i, t) in tasks.iter().enumerate() {
            assert!(t.wcet >= 1, "task {i}: C must be ≥ 1");
            assert!(t.period >= 1, "task {i}: T must be ≥ 1");
            assert!(t.deadline >= t.wcet, "task {i}: D < C can never be met");
            assert!(t.value > 0.0, "task {i}: value must be positive");
            assert!(t.offset >= 0, "task {i}: negative offset");
        }
        TaskSet { tasks }
    }

    /// Total utilization `Σ C_i / T_i` — > 1 means the set is overloaded on
    /// one machine and the value objective starts to bite.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(PeriodicTask::utilization).sum()
    }

    /// The hyperperiod (lcm of the periods).
    pub fn hyperperiod(&self) -> Time {
        self.tasks.iter().fold(1, |acc, t| lcm(acc, t.period))
    }

    /// Unrolls all jobs released in `[0, horizon)`; `JobId`s are assigned in
    /// release order (task-major). Returns the jobs and, parallel to ids,
    /// the index of the generating task.
    pub fn unroll(&self, horizon: Time) -> (JobSet, Vec<usize>) {
        let mut stamped: Vec<(Time, usize, Job)> = Vec::new();
        for (ti, t) in self.tasks.iter().enumerate() {
            let mut r = t.offset;
            while r < horizon {
                stamped.push((r, ti, Job::new(r, r + t.deadline, t.wcet, t.value)));
                r += t.period;
            }
        }
        stamped.sort_by_key(|&(r, ti, _)| (r, ti));
        let mut jobs = JobSet::new();
        let mut task_of = Vec::with_capacity(stamped.len());
        for (_, ti, job) in stamped {
            jobs.push(job);
            task_of.push(ti);
        }
        (jobs, task_of)
    }

    /// Unrolls exactly one hyperperiod.
    pub fn unroll_hyperperiod(&self) -> (JobSet, Vec<usize>) {
        self.unroll(self.hyperperiod())
    }
}

fn gcd(a: Time, b: Time) -> Time {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: Time, b: Time) -> Time {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_task_shape() {
        let t = PeriodicTask::implicit(2, 10);
        assert_eq!(t.deadline, 10);
        assert_eq!(t.utilization(), 0.2);
        assert_eq!(t.laxity(), 5.0);
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let ts = TaskSet::new(vec![
            PeriodicTask::implicit(1, 4),
            PeriodicTask::implicit(1, 6),
            PeriodicTask::implicit(1, 10),
        ]);
        assert_eq!(ts.hyperperiod(), 60);
        assert!((ts.utilization() - (0.25 + 1.0 / 6.0 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn unroll_counts_and_windows() {
        let ts = TaskSet::new(vec![
            PeriodicTask::implicit(2, 5),
            PeriodicTask { wcet: 3, period: 10, deadline: 8, value: 4.0, offset: 1 },
        ]);
        let (jobs, task_of) = ts.unroll(20);
        // Task 0: releases 0,5,10,15 → 4 jobs; task 1: releases 1,11 → 2.
        assert_eq!(jobs.len(), 6);
        assert_eq!(task_of.iter().filter(|&&t| t == 0).count(), 4);
        for (id, job) in jobs.iter() {
            let t = &ts.tasks[task_of[id.0]];
            assert_eq!(job.length, t.wcet);
            assert_eq!(job.deadline - job.release, t.deadline);
            assert_eq!(job.value, t.value);
        }
        // Jobs are in release order.
        for w in jobs.ids().collect::<Vec<_>>().windows(2) {
            assert!(jobs.job(w[0]).release <= jobs.job(w[1]).release);
        }
    }

    #[test]
    fn unroll_hyperperiod_matches_manual() {
        let ts = TaskSet::new(vec![PeriodicTask::implicit(1, 3), PeriodicTask::implicit(2, 4)]);
        let (jobs, _) = ts.unroll_hyperperiod();
        assert_eq!(jobs.len(), 12 / 3 + 12 / 4);
    }

    #[test]
    fn underloaded_implicit_set_is_edf_feasible() {
        // U = 0.9 < 1 with implicit deadlines → EDF schedules everything.
        let ts = TaskSet::new(vec![
            PeriodicTask::implicit(2, 5),
            PeriodicTask::implicit(3, 10),
            PeriodicTask::implicit(4, 20),
        ]);
        assert!(ts.utilization() <= 1.0);
        let (jobs, _) = ts.unroll_hyperperiod();
        let ids: Vec<pobp_core::JobId> = jobs.ids().collect();
        assert!(pobp_sched::edf_feasible(&jobs, &ids));
    }

    #[test]
    #[should_panic(expected = "D < C")]
    fn rejects_impossible_deadline() {
        let _ = TaskSet::new(vec![PeriodicTask {
            wcet: 5,
            period: 10,
            deadline: 4,
            value: 1.0,
            offset: 0,
        }]);
    }
}
