//! Seeded random workload generators for property tests, examples and the
//! average-case experiments.
//!
//! All generators are deterministic functions of their `seed`, so every
//! experiment in `EXPERIMENTS.md` is reproducible bit-for-bit.

use pobp_core::{obs_count, Job, JobSet, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the random workload generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomWorkload {
    /// Number of jobs to generate.
    pub n: usize,
    /// Horizon: release times are drawn from `0..horizon`.
    pub horizon: Time,
    /// Inclusive length range `p_min..=p_max` (controls `P`).
    pub length_range: (Time, Time),
    /// Laxity regime for windows.
    pub laxity: LaxityModel,
    /// Value distribution.
    pub values: ValueModel,
}

/// How job windows relate to lengths.
#[derive(Clone, Copy, Debug)]
pub enum LaxityModel {
    /// `λ_j` uniform in `[1, max]` — mixed strict/lax populations.
    Uniform {
        /// Upper end of the laxity range (≥ 1).
        max: f64,
    },
    /// All jobs strict for bound `k`: `λ_j ∈ [1, k+1]`.
    Strict {
        /// The preemption bound defining strictness.
        k: u32,
    },
    /// All jobs lax for bound `k`: `λ_j ∈ [k+1, factor·(k+1)]`.
    Lax {
        /// The preemption bound defining laxity.
        k: u32,
        /// Multiplier for the upper end (≥ 1).
        factor: f64,
    },
}

/// How job values are drawn.
#[derive(Clone, Copy, Debug)]
pub enum ValueModel {
    /// Every job has value 1.
    Unit,
    /// Integer values uniform in `1..=max`.
    Uniform {
        /// Largest value.
        max: u64,
    },
    /// Value proportional to length times an integer factor in `1..=max` —
    /// bounded density `σ`, the regime LSA's sort exploits.
    DensityBounded {
        /// Largest density factor.
        max: u64,
    },
}

impl RandomWorkload {
    /// A reasonable default: mixed laxity, moderate `P`.
    pub fn standard(n: usize) -> Self {
        RandomWorkload {
            n,
            horizon: (n as Time).max(1) * 8,
            length_range: (1, 32),
            laxity: LaxityModel::Uniform { max: 8.0 },
            values: ValueModel::Uniform { max: 100 },
        }
    }

    /// Generates the job set for `seed`.
    pub fn generate(&self, seed: u64) -> JobSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let (p_lo, p_hi) = self.length_range;
        assert!(p_lo >= 1 && p_hi >= p_lo, "invalid length range");
        let mut jobs = JobSet::new();
        obs_count!("instances.random.jobs_generated", self.n);
        for _ in 0..self.n {
            let length = rng.random_range(p_lo..=p_hi);
            let lam = match self.laxity {
                LaxityModel::Uniform { max } => rng.random_range(1.0..=max.max(1.0)),
                LaxityModel::Strict { k } => rng.random_range(1.0..=(k as f64 + 1.0)),
                LaxityModel::Lax { k, factor } => {
                    let lo = k as f64 + 1.0;
                    rng.random_range(lo..=lo * factor.max(1.0))
                }
            };
            // Window = ceil(λ·p), so the realized laxity is ≥ the drawn one
            // (strict classes stay strict thanks to the integer ceil only
            // when λ was at most k+1 — we re-clamp below).
            let mut window = (lam * length as f64).ceil() as Time;
            if let LaxityModel::Strict { k } = self.laxity {
                window = window.min((k as Time + 1) * length);
            }
            if let LaxityModel::Lax { k, .. } = self.laxity {
                window = window.max((k as Time + 1) * length);
            }
            window = window.max(length);
            let release = rng.random_range(0..self.horizon.max(1));
            let value = match self.values {
                ValueModel::Unit => 1.0,
                ValueModel::Uniform { max } => rng.random_range(1..=max.max(1)) as f64,
                ValueModel::DensityBounded { max } => {
                    (rng.random_range(1..=max.max(1)) * length as u64) as f64
                }
            };
            jobs.push(Job::new(release, release + window, length, value));
        }
        jobs
    }
}

/// Random node-valued forests for the k-BAS experiments: `n` nodes, each
/// attached to a uniformly random earlier node with probability
/// `1 − root_prob`, values uniform in `1..=100`.
pub fn random_forest(n: usize, root_prob: f64, seed: u64) -> pobp_forest::Forest {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n);
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        values.push(rng.random_range(1..=100u32) as f64);
        if i == 0 || rng.random_range(0.0..1.0) < root_prob {
            parents.push(None);
        } else {
            parents.push(Some(rng.random_range(0..i)));
        }
    }
    pobp_forest::Forest::from_parents(values, parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let w = RandomWorkload::standard(50);
        assert_eq!(w.generate(7), w.generate(7));
        assert_ne!(w.generate(7), w.generate(8));
    }

    #[test]
    fn respects_length_range() {
        let w = RandomWorkload {
            length_range: (3, 9),
            ..RandomWorkload::standard(200)
        };
        let jobs = w.generate(1);
        for (_, j) in jobs.iter() {
            assert!((3..=9).contains(&j.length));
        }
        assert!(jobs.length_ratio().unwrap() <= 3.0);
    }

    #[test]
    fn strict_model_produces_strict_jobs() {
        let w = RandomWorkload {
            laxity: LaxityModel::Strict { k: 2 },
            ..RandomWorkload::standard(300)
        };
        for (_, j) in w.generate(3).iter() {
            assert!(j.is_strict(2), "λ = {}", j.laxity());
        }
    }

    #[test]
    fn lax_model_produces_lax_jobs() {
        let w = RandomWorkload {
            laxity: LaxityModel::Lax { k: 2, factor: 4.0 },
            ..RandomWorkload::standard(300)
        };
        for (_, j) in w.generate(3).iter() {
            assert!(j.laxity() >= 3.0, "λ = {}", j.laxity());
        }
    }

    #[test]
    fn unit_values() {
        let w = RandomWorkload {
            values: ValueModel::Unit,
            ..RandomWorkload::standard(40)
        };
        let jobs = w.generate(0);
        assert_eq!(jobs.total_value(), 40.0);
    }

    #[test]
    fn density_bounded_values_track_length() {
        let w = RandomWorkload {
            values: ValueModel::DensityBounded { max: 5 },
            ..RandomWorkload::standard(100)
        };
        for (_, j) in w.generate(9).iter() {
            let sigma = j.density();
            assert!((1.0..=5.0).contains(&sigma), "σ = {sigma}");
            assert_eq!(sigma.fract(), 0.0);
        }
    }

    #[test]
    fn random_forest_is_valid_and_seeded() {
        let f = random_forest(500, 0.1, 42);
        assert_eq!(f.len(), 500);
        assert_eq!(f, random_forest(500, 0.1, 42));
        assert!(!f.roots().is_empty());
        // All-roots degenerate case.
        let g = random_forest(50, 1.1, 0);
        assert_eq!(g.roots().len(), 50);
    }
}
