//! The instance **zoo**: one named generator per workload family, behind a
//! single `(family, n, k, seed) → JobSet` entry point.
//!
//! The zoo exists so that cross-cutting experiments — `pobp online`, the
//! `e13` competitive-ratio lab, future serve-mode scenarios — can sweep
//! *every* workload shape the repository knows about through one axis
//! instead of hand-wiring each generator. The families:
//!
//! * [`ZooFamily::Periodic`] — a seeded periodic task set unrolled over a
//!   horizon sized so the unrolling yields ≈ `n` jobs (the workload of the
//!   limited-preemption literature; [`TaskSet`]);
//! * [`ZooFamily::Bursty`] — release bursts of tight jobs separated by
//!   gaps ([`bursty_workload`]), the adversarial shape for non-preemptive
//!   and budgeted policies;
//! * [`ZooFamily::Fig2`] — the §5 geometric-nesting lower bound for
//!   `k = 0` ([`Fig2Instance`]; deterministic, ignores `seed`);
//! * [`ZooFamily::Fig4`] — the Appendix B nested K-ary lower bound for
//!   general `k` ([`Fig4Instance::for_k`]; deterministic, ignores `seed`;
//!   depth chosen as the largest that stays within ≈ `n` jobs);
//! * [`ZooFamily::Random`] — the standard seeded random workload
//!   ([`RandomWorkload::standard`]).
//!
//! Every family is a pure function of its `(n, k, seed)` cell, so zoo
//! sweeps inherit the engine's determinism contract for free.

use pobp_core::JobSet;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::{bursty_workload, Fig2Instance, Fig4Instance, PeriodicTask, RandomWorkload, TaskSet};

/// A named workload family of the instance zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZooFamily {
    /// Seeded periodic task set, unrolled to ≈ `n` jobs.
    Periodic,
    /// Bursts of tight jobs separated by idle gaps.
    Bursty,
    /// Figure 2 (§5): geometric nesting, the `k = 0` lower bound.
    Fig2,
    /// Figure 4 (Appendix B): nested K-ary jobs, the general-`k` lower
    /// bound (`K = 2·max(k, 1)`).
    Fig4,
    /// The standard seeded random workload.
    Random,
}

/// Every family, in the canonical sweep order.
pub const ZOO_FAMILIES: [ZooFamily; 5] = [
    ZooFamily::Periodic,
    ZooFamily::Bursty,
    ZooFamily::Fig2,
    ZooFamily::Fig4,
    ZooFamily::Random,
];

impl ZooFamily {
    /// The stable lowercase name used by CLIs and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            ZooFamily::Periodic => "periodic",
            ZooFamily::Bursty => "bursty",
            ZooFamily::Fig2 => "fig2",
            ZooFamily::Fig4 => "fig4",
            ZooFamily::Random => "random",
        }
    }

    /// Parses [`ZooFamily::name`] back into a variant.
    pub fn parse(s: &str) -> Option<ZooFamily> {
        ZOO_FAMILIES.iter().copied().find(|f| f.name() == s)
    }
}

impl std::fmt::Display for ZooFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the zoo instance of one `(family, n, k, seed)` cell.
///
/// `n` is a size *target*: the structured families (periodic, fig4) land on
/// the nearest size their construction admits. `k` only shapes
/// [`ZooFamily::Fig4`] (its branching factor is `2·max(k, 1)`); `seed` only
/// shapes the seeded families (periodic, bursty, random). The result is a
/// pure function of the four arguments.
pub fn zoo_instance(family: ZooFamily, n: usize, k: u32, seed: u64) -> JobSet {
    let n = n.max(1);
    match family {
        ZooFamily::Periodic => periodic_zoo(n, seed),
        ZooFamily::Bursty => bursty_zoo(n, seed),
        ZooFamily::Fig2 => Fig2Instance::new(n as u32).build(),
        ZooFamily::Fig4 => fig4_zoo(n, k),
        ZooFamily::Random => RandomWorkload::standard(n).generate(seed),
    }
}

/// A seeded task set (3–4 tasks, periods from a harmonic menu, constrained
/// deadlines) unrolled over a horizon sized so ≈ `n` jobs are released.
fn periodic_zoo(n: usize, seed: u64) -> JobSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_2e00);
    let menu: [i64; 4] = [6, 8, 12, 24];
    let task_count = 3 + (seed as usize % 2);
    let mut tasks = Vec::with_capacity(task_count);
    for i in 0..task_count {
        let period = menu[rng.random_range(0..menu.len())];
        let wcet = rng.random_range(1..=(period / 3).max(1));
        let deadline = rng.random_range(wcet..=period);
        tasks.push(PeriodicTask {
            wcet,
            period,
            deadline,
            value: (1 + i as i64) as f64,
            offset: rng.random_range(0..period),
        });
    }
    let set = TaskSet::new(tasks);
    // Jobs released per tick is Σ 1/T_i; size the horizon to hit ≈ n jobs.
    let rate: f64 = set.tasks.iter().map(|t| 1.0 / t.period as f64).sum();
    let horizon = ((n as f64 / rate).ceil() as i64).max(1);
    set.unroll(horizon).0
}

/// Seeded burst parameters: ≈ `n` tight jobs in bursts of 2–4.
fn bursty_zoo(n: usize, seed: u64) -> JobSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb00_57ed);
    let per_burst = rng.random_range(2..=4usize);
    let bursts = n.div_ceil(per_burst).max(1);
    let length = rng.random_range(2..=5i64);
    // Gaps shorter than a full burst keep adjacent bursts contending.
    let gap = rng.random_range(1..=length * per_burst as i64);
    bursty_workload(bursts, per_burst, length, gap)
}

/// The deepest Figure 4 construction whose job count stays ≤ `max(n, 3)`
/// and whose scaled lengths stay well inside `i64`.
fn fig4_zoo(n: usize, k: u32) -> JobSet {
    let k = k.max(1);
    let branching = 2 * k;
    // Lengths are (3K−1)·(3K²)^depth; keep the exponent safely inside i64.
    let base = 3.0 * (branching as f64) * (branching as f64);
    let depth_cap = (60.0 / base.log2()).floor() as u32;
    let mut depth = 1u32;
    while depth < depth_cap && Fig4Instance::for_k(k, depth + 1).job_count() <= n.max(3) {
        depth += 1;
    }
    Fig4Instance::for_k(k, depth.min(depth_cap.max(1))).build().jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in ZOO_FAMILIES {
            assert_eq!(ZooFamily::parse(f.name()), Some(f));
        }
        assert_eq!(ZooFamily::parse("nope"), None);
    }

    #[test]
    fn every_family_is_deterministic_and_nonempty() {
        for f in ZOO_FAMILIES {
            for &(n, k, seed) in &[(8usize, 1u32, 0u64), (16, 2, 3), (5, 0, 7)] {
                let a = zoo_instance(f, n, k, seed);
                let b = zoo_instance(f, n, k, seed);
                assert_eq!(a, b, "{f} not deterministic at n={n} k={k} seed={seed}");
                assert!(!a.is_empty(), "{f} empty at n={n} k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn seeds_vary_the_seeded_families() {
        for f in [ZooFamily::Periodic, ZooFamily::Bursty, ZooFamily::Random] {
            let differs = (1..6u64).any(|s| zoo_instance(f, 12, 1, s) != zoo_instance(f, 12, 1, 0));
            assert!(differs, "{f} ignores its seed");
        }
    }

    #[test]
    fn sizes_track_the_target() {
        for f in ZOO_FAMILIES {
            for n in [4usize, 10, 24] {
                let jobs = zoo_instance(f, n, 2, 1);
                assert!(
                    jobs.len() <= 3 * n + 4,
                    "{f} overshoots: asked {n}, got {}",
                    jobs.len()
                );
            }
        }
    }

    #[test]
    fn fig4_depth_respects_k_and_overflow_caps() {
        // Large k → huge branching; the depth cap must keep lengths finite.
        for k in [1u32, 2, 4, 8] {
            let jobs = zoo_instance(ZooFamily::Fig4, 40, k, 0);
            assert!(!jobs.is_empty());
            for (_, j) in jobs.iter() {
                assert!(j.length > 0 && j.deadline > j.release);
            }
        }
    }
}
