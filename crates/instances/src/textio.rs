//! Plain-text serialization of job sets, so experiments can be dumped,
//! versioned and re-loaded without any serialization dependency.
//!
//! Format (one job per line, `#` comments and blank lines ignored):
//!
//! ```text
//! # release deadline length value
//! 0 14 9 5
//! 2 8 3 2.5
//! ```

use pobp_core::{Interval, Job, JobId, JobSet, Schedule, SegmentSet};

/// Writes a job set in the line format above (with a header comment).
pub fn write_jobs(jobs: &JobSet) -> String {
    let mut out = String::from("# release deadline length value\n");
    for (_, j) in jobs.iter() {
        out.push_str(&format!("{} {} {} {}\n", j.release, j.deadline, j.length, j.value));
    }
    out
}

/// Parses the line format back into a job set.
///
/// # Errors
/// Returns a message naming the offending line on malformed input or on
/// jobs violating the model constraints (`p ≥ 1`, `val > 0`, `p ≤ d − r`).
/// Derived time quantities are computed with checked arithmetic in
/// `Job::try_new` — inputs where `deadline − release` or
/// `release + length` would overflow `i64` are rejected with an error
/// naming the line and the offending expression, never wrapped.
pub fn parse_jobs(text: &str) -> Result<JobSet, String> {
    let mut jobs = JobSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields, got {}", lineno + 1, fields.len()));
        }
        let release = fields[0]
            .parse::<i64>()
            .map_err(|e| format!("line {}: bad release: {e}", lineno + 1))?;
        let deadline = fields[1]
            .parse::<i64>()
            .map_err(|e| format!("line {}: bad deadline: {e}", lineno + 1))?;
        let length = fields[2]
            .parse::<i64>()
            .map_err(|e| format!("line {}: bad length: {e}", lineno + 1))?;
        let value = fields[3]
            .parse::<f64>()
            .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
        let job = Job::try_new(release, deadline, length, value)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        jobs.push(job);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let jobs: JobSet = vec![
            Job::new(0, 14, 9, 5.0),
            Job::new(-3, 8, 3, 2.5),
            Job::new(100, 200, 50, 0.125),
        ]
        .into_iter()
        .collect();
        let text = write_jobs(&jobs);
        let back = parse_jobs(&text).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n  0 10 5 1\n# trailing comment\n 2 20 3 2 \n";
        let jobs = parse_jobs(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs.job(pobp_core::JobId(1)).length, 3);
    }

    #[test]
    fn empty_input_is_empty_set() {
        assert!(parse_jobs("").unwrap().is_empty());
        assert!(parse_jobs("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn reports_field_count() {
        let err = parse_jobs("0 10 5\n").unwrap_err();
        assert!(err.contains("line 1"));
        assert!(err.contains("4 fields"));
    }

    #[test]
    fn reports_parse_errors_with_line() {
        let err = parse_jobs("0 10 5 1\nx 10 5 1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("release"));
    }

    #[test]
    fn reports_model_violations() {
        let err = parse_jobs("0 4 10 1\n").unwrap_err();
        assert!(err.contains("window"), "{err}");
        let err = parse_jobs("0 4 2 -1\n").unwrap_err();
        assert!(err.contains("not positive"), "{err}");
    }

    #[test]
    fn overflowing_jobs_are_rejected_with_line_and_field() {
        // deadline − release overflows i64.
        let err = parse_jobs(&format!("0 5 2 1\n-2 {} 1 1\n", i64::MAX)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("deadline - release"), "{err}");
        // release + length overflows i64.
        let err = parse_jobs(&format!("{} {} {} 1\n", i64::MAX - 1, i64::MAX, i64::MAX)).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("overflows"), "{err}");
        // Extreme but representable values still parse.
        assert!(parse_jobs(&format!("0 {} 7 1\n", i64::MAX)).is_ok());
    }

    #[test]
    fn random_workload_round_trips() {
        let jobs = crate::RandomWorkload::standard(100).generate(5);
        let back = parse_jobs(&write_jobs(&jobs)).unwrap();
        assert_eq!(jobs, back);
    }
}

/// Writes a schedule in a line format: one scheduled job per line,
/// `job_index machine seg_start:seg_end seg_start:seg_end …`.
///
/// ```text
/// # job machine segments...
/// 0 0 0:2 5:7
/// 1 0 2:5
/// ```
pub fn write_schedule(schedule: &Schedule) -> String {
    let mut out = String::from("# job machine segments (start:end ...)\n");
    for (id, a) in schedule.iter() {
        out.push_str(&format!("{} {}", id.0, a.machine));
        for seg in a.segs.iter() {
            out.push_str(&format!(" {}:{}", seg.start, seg.end));
        }
        out.push('\n');
    }
    out
}

/// Parses the [`write_schedule`] format back into a [`Schedule`].
///
/// # Errors
/// Returns a message naming the offending line on malformed input,
/// including segments whose `end − start` length or per-job length total
/// would overflow `i64`. The result is *not* validated against a job set —
/// call [`Schedule::verify`] with the matching jobs afterwards.
pub fn parse_schedule(text: &str) -> Result<Schedule, String> {
    let mut schedule = Schedule::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let job: usize = fields
            .next()
            .ok_or_else(|| format!("line {}: missing job index", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad job index: {e}", lineno + 1))?;
        let machine: usize = fields
            .next()
            .ok_or_else(|| format!("line {}: missing machine", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad machine: {e}", lineno + 1))?;
        let mut segs = Vec::new();
        // Checked running total: segment lengths are summed by
        // `SegmentSet::total_len` and compared against `p_j` downstream, so
        // an input whose lengths wrap i64 must be rejected here, not folded
        // into a plausible-looking sum.
        let mut total: i64 = 0;
        for f in fields {
            let (a, b) = f
                .split_once(':')
                .ok_or_else(|| format!("line {}: segment `{f}` is not start:end", lineno + 1))?;
            let start: i64 = a
                .parse()
                .map_err(|e| format!("line {}: bad segment start: {e}", lineno + 1))?;
            let end: i64 = b
                .parse()
                .map_err(|e| format!("line {}: bad segment end: {e}", lineno + 1))?;
            if end <= start {
                return Err(format!("line {}: empty or reversed segment {start}:{end}", lineno + 1));
            }
            let len = end.checked_sub(start).ok_or_else(|| {
                format!(
                    "line {}: segment {start}:{end} end - start overflows i64",
                    lineno + 1
                )
            })?;
            total = total.checked_add(len).ok_or_else(|| {
                format!(
                    "line {}: total scheduled length of job {job} overflows i64",
                    lineno + 1
                )
            })?;
            segs.push(Interval::new(start, end));
        }
        if segs.is_empty() {
            return Err(format!("line {}: job {job} has no segments", lineno + 1));
        }
        let set = SegmentSet::from_intervals(segs);
        schedule.assign(JobId(job), machine, set);
    }
    Ok(schedule)
}

#[cfg(test)]
mod schedule_io_tests {
    use super::*;

    fn sample() -> Schedule {
        let mut s = Schedule::new();
        s.assign(
            JobId(0),
            0,
            SegmentSet::from_intervals([Interval::new(0, 2), Interval::new(5, 7)]),
        );
        s.assign(JobId(3), 2, SegmentSet::singleton(Interval::new(-4, -1)));
        s
    }

    #[test]
    fn schedule_round_trip() {
        let s = sample();
        let text = write_schedule(&s);
        let back = parse_schedule(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn schedule_parse_errors_name_lines() {
        assert!(parse_schedule("0\n").unwrap_err().contains("line 1"));
        assert!(parse_schedule("0 0 5-7\n").unwrap_err().contains("start:end"));
        assert!(parse_schedule("0 0 7:5\n").unwrap_err().contains("reversed"));
        assert!(parse_schedule("0 0\n").unwrap_err().contains("no segments"));
        assert!(parse_schedule("x 0 0:1\n").unwrap_err().contains("job index"));
    }

    #[test]
    fn schedule_overflowing_segments_are_rejected() {
        // end − start overflows i64 for a single huge segment.
        let line = format!("0 0 {}:{}\n", i64::MIN + 1, i64::MAX);
        let err = parse_schedule(&line).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("overflows"), "{err}");
        // Two half-range segments whose lengths sum past i64::MAX.
        let half = i64::MAX / 2 + 2;
        let line = format!("0 0 {}:0 1:{}\n", -half, half);
        let err = parse_schedule(&line).unwrap_err();
        assert!(err.contains("total scheduled length"), "{err}");
        // A large representable segment still parses.
        assert!(parse_schedule(&format!("0 0 0:{}\n", i64::MAX)).is_ok());
    }

    #[test]
    fn schedule_empty_and_comments() {
        assert!(parse_schedule("# nothing\n\n").unwrap().is_empty());
        assert_eq!(write_schedule(&Schedule::new()).lines().count(), 1);
    }

    #[test]
    fn parsed_schedule_verifies_against_jobs() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0)].into_iter().collect();
        let text = "0 0 0:2 5:7\n";
        let s = parse_schedule(text).unwrap();
        s.verify(&jobs, Some(1)).unwrap();
        assert!(s.verify(&jobs, Some(0)).is_err());
    }
}
