//! Adversarial schedules and workloads used by the experiments:
//! maximally-interleaved round-robin schedules (the stress input for the
//! Figure 1 laminarization) and bursty arrival patterns (stress input for
//! LSA and the online executor).

use pobp_core::{Interval, Job, JobId, JobSet, Schedule, SegmentSet, Time};

/// A block of `n` fully-overlapping lax jobs — every pair contends, so a
/// quantum-1 round-robin execution interleaves maximally.
pub fn overlapping_block(n: usize, length: Time, window_factor: Time) -> JobSet {
    assert!(n >= 1 && length >= 1 && window_factor >= 1);
    (0..n)
        .map(|i| {
            Job::new(
                0,
                (n as Time) * length * window_factor,
                length,
                (i + 1) as f64,
            )
        })
        .collect()
}

/// A deliberately interleaved feasible schedule: round-robin with quantum 1
/// over the given jobs. The *worst case* for the preempts relation — the
/// input `laminarize` (Figure 1) untangles in the E1 experiment.
///
/// Jobs that cannot be completed inside their windows under round robin are
/// simply left out of the schedule.
pub fn round_robin_schedule(jobs: &JobSet, ids: &[JobId]) -> Schedule {
    let mut remaining: Vec<(JobId, Time)> =
        ids.iter().map(|&j| (j, jobs.job(j).length)).collect();
    let mut placed: std::collections::HashMap<JobId, Vec<Interval>> = Default::default();
    let mut t = ids
        .iter()
        .map(|&j| jobs.job(j).release)
        .min()
        .unwrap_or(0);
    while !remaining.is_empty() {
        let mut progressed = false;
        remaining.retain_mut(|(j, rem)| {
            if *rem == 0 {
                return false;
            }
            let job = jobs.job(*j);
            if t < job.release || t >= job.deadline {
                return *rem > 0;
            }
            placed.entry(*j).or_default().push(Interval::new(t, t + 1));
            *rem -= 1;
            t += 1;
            progressed = true;
            *rem > 0
        });
        if !progressed {
            t += 1;
            if remaining.iter().all(|&(j, _)| t >= jobs.job(j).deadline) {
                break;
            }
        }
    }
    let mut s = Schedule::new();
    for (j, ivs) in placed {
        if SegmentSet::from_intervals(ivs.clone()).total_len() == jobs.job(j).length {
            s.assign_single(j, SegmentSet::from_intervals(ivs));
        }
    }
    s
}

/// Bursty arrivals: `bursts` groups of `per_burst` jobs released together,
/// `gap` ticks apart; each burst's jobs share a window but differ in value.
/// Stress input for LSA's idle-segment scan and the online executor's
/// overload handling.
pub fn bursty_workload(bursts: usize, per_burst: usize, length: Time, gap: Time) -> JobSet {
    assert!(bursts >= 1 && per_burst >= 1 && length >= 1 && gap >= 1);
    let mut jobs = JobSet::new();
    for b in 0..bursts {
        let release = b as Time * gap;
        // Window fits roughly half the burst → forced rejections.
        let window = length * ((per_burst as Time + 1) / 2).max(1) + length;
        for i in 0..per_burst {
            jobs.push(Job::new(release, release + window, length, (i + 1) as f64));
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_sched::{is_laminar, laminarize};

    #[test]
    fn overlapping_block_shape() {
        let jobs = overlapping_block(6, 3, 4);
        assert_eq!(jobs.len(), 6);
        for (_, j) in jobs.iter() {
            assert_eq!(j.release, 0);
            assert_eq!(j.length, 3);
            assert_eq!(j.deadline, 72);
        }
        assert_eq!(jobs.total_value(), 21.0);
    }

    #[test]
    fn round_robin_is_feasible_but_not_laminar() {
        let jobs = overlapping_block(6, 3, 4);
        let ids: Vec<JobId> = jobs.ids().collect();
        let rr = round_robin_schedule(&jobs, &ids);
        rr.verify(&jobs, None).unwrap();
        assert_eq!(rr.len(), 6);
        assert!(!is_laminar(&rr));
        // Every job is chopped into `length` unit pieces.
        for id in rr.scheduled_ids() {
            assert_eq!(rr.preemptions(id), 2);
        }
        // And Figure 1 untangles it.
        let lam = laminarize(&jobs, &rr).unwrap();
        assert!(is_laminar(&lam));
        assert_eq!(lam.value(&jobs), rr.value(&jobs));
    }

    #[test]
    fn round_robin_drops_infeasible_jobs() {
        // Two tight jobs sharing a unit window: RR can finish at most one.
        let jobs: JobSet = vec![
            Job::new(0, 2, 2, 1.0),
            Job::new(0, 2, 2, 1.0),
        ]
        .into_iter()
        .collect();
        let ids: Vec<JobId> = jobs.ids().collect();
        let rr = round_robin_schedule(&jobs, &ids);
        rr.verify(&jobs, None).unwrap();
        assert!(rr.len() <= 1);
    }

    #[test]
    fn bursty_workload_forces_rejections() {
        let jobs = bursty_workload(4, 6, 5, 40);
        assert_eq!(jobs.len(), 24);
        let ids: Vec<JobId> = jobs.ids().collect();
        // A burst of 6×5 ticks in a window of 4×5: not all fit.
        assert!(!pobp_sched::edf_feasible(&jobs, &ids));
        // But LSA still produces something feasible.
        let out = pobp_sched::lsa_cs(&jobs, &ids, 1);
        out.schedule.verify(&jobs, Some(1)).unwrap();
        assert!(!out.accepted.is_empty());
        assert!(!out.rejected.is_empty());
    }
}
