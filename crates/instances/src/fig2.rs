//! The Figure 2 instance (§5): geometric nesting showing
//! `PoBP_0 = Ω(min{n, log P})`.
//!
//! `n` unit-value jobs with lengths `1, 2, 4, …, 2^{n-1}` and windows nested
//! around a common *center slot*:
//!
//! * job `i` has `p_i = 2^i` and window length `2^{i+1} - 1 < 2·p_i`, so any
//!   en-bloc placement must cover the center slot — hence **no two jobs**
//!   can be scheduled without preemption and `OPT_0 = 1`;
//! * the windows telescope (`w_i = p_i + w_{i-1}`), so with a single
//!   preemption per job, job `i` runs half before and half after job
//!   `i - 1`'s window — **all `n` jobs** fit, `OPT_1 = OPT_∞ = n`, with zero
//!   slack (total length = outermost window, exactly).
//!
//! The price at `k = 0` is therefore `n = log2 P + 1`: simultaneously the
//! `n` and the `log P` lower bounds of §5.

use pobp_core::{Interval, Job, JobId, JobSet, Schedule, SegmentSet, Time};

/// Builder for the Figure 2 instance.
///
/// ```
/// use pobp_instances::Fig2Instance;
///
/// let inst = Fig2Instance::new(5);
/// let jobs = inst.build();
/// assert_eq!(jobs.len(), 5);
/// // OPT_1 schedules everything (witness), OPT_0 only one job.
/// let witness = inst.witness_schedule();
/// witness.verify(&jobs, Some(1)).unwrap();
/// assert_eq!(inst.length_ratio(), 16.0); // P = 2^(n-1)
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fig2Instance {
    /// Number of jobs (`n ≥ 1`); job lengths go up to `2^{n-1}`.
    pub n: u32,
}

impl Fig2Instance {
    /// A new instance with `n` jobs.
    ///
    /// # Panics
    /// Panics for `n = 0` or `n > 62` (length overflow).
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "need at least one job");
        assert!(n <= 62, "2^(n-1) must fit in i64");
        Fig2Instance { n }
    }

    /// The length ratio `P = 2^{n-1}`.
    pub fn length_ratio(&self) -> f64 {
        2f64.powi(self.n as i32 - 1)
    }

    /// Builds the job set. Job `i` (innermost = 0) has `p_i = 2^i`,
    /// unit value, and window `[r_0 - (2^i - 1), r_0 + 2^{i+1} - ... )` —
    /// concretely `r_i = -(2^i - 1)`, `d_i = r_i + 2^{i+1} - 1 = 2^i`.
    pub fn build(&self) -> JobSet {
        let mut jobs = JobSet::new();
        for i in 0..self.n {
            let p: Time = 1 << i;
            let r = -(p - 1);
            let d = r + 2 * p - 1;
            jobs.push(Job::new(r, d, p, 1.0));
        }
        jobs
    }

    /// The witness 1-preemptive schedule of **all** jobs: job 0 occupies the
    /// center slot `[0, 1)`; job `i` runs `2^{i-1}` ticks on each side of
    /// the inner block.
    pub fn witness_schedule(&self) -> Schedule {
        let mut s = Schedule::new();
        // Inner block of jobs 0..i spans [-(2^i - 1), 2^i) after placing i
        // jobs... track the occupied block [lo, hi).
        let mut lo: Time = 0;
        let mut hi: Time = 1;
        s.assign_single(JobId(0), SegmentSet::singleton(Interval::new(0, 1)));
        for i in 1..self.n {
            let half: Time = 1 << (i - 1);
            s.assign_single(
                JobId(i as usize),
                SegmentSet::from_intervals([
                    Interval::new(lo - half, lo),
                    Interval::new(hi, hi + half),
                ]),
            );
            lo -= half;
            hi += half;
        }
        s
    }

    /// The common center slot every en-bloc placement must cover.
    pub fn center_slot(&self) -> Interval {
        Interval::new(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_sched::{edf_feasible, opt_nonpreemptive, schedule_k0};

    #[test]
    fn construction_shape() {
        let inst = Fig2Instance::new(4);
        let jobs = inst.build();
        assert_eq!(jobs.len(), 4);
        let lens: Vec<Time> = jobs.iter().map(|(_, j)| j.length).collect();
        assert_eq!(lens, vec![1, 2, 4, 8]);
        assert_eq!(jobs.length_ratio(), Some(8.0));
        assert_eq!(inst.length_ratio(), 8.0);
        // Window of job i is 2^{i+1} - 1 < 2 p_i.
        for (_, j) in jobs.iter() {
            assert_eq!(j.window_len(), 2 * j.length - 1);
        }
    }

    #[test]
    fn witness_is_feasible_one_preemptive() {
        for n in 1..=10u32 {
            let inst = Fig2Instance::new(n);
            let jobs = inst.build();
            let w = inst.witness_schedule();
            w.verify(&jobs, Some(1)).unwrap();
            assert_eq!(w.len(), n as usize);
            // Job 0 is never preempted; the rest once each.
            assert_eq!(w.preemptions(JobId(0)), 0);
            for i in 1..n as usize {
                assert_eq!(w.preemptions(JobId(i)), 1);
            }
        }
    }

    #[test]
    fn whole_set_is_edf_feasible() {
        let inst = Fig2Instance::new(8);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        assert!(edf_feasible(&jobs, &ids));
    }

    #[test]
    fn every_en_bloc_placement_covers_center() {
        let inst = Fig2Instance::new(6);
        let jobs = inst.build();
        let center = inst.center_slot();
        for (_, j) in jobs.iter() {
            // Any start s ∈ [r, d - p] gives execution ⊇ center.
            for s in j.release..=(j.deadline - j.length) {
                let exec = Interval::with_len(s, j.length);
                assert!(exec.contains(&center), "{exec:?} misses center");
            }
        }
    }

    #[test]
    fn opt0_is_one() {
        let inst = Fig2Instance::new(6);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        let np = opt_nonpreemptive(&jobs, &ids);
        assert_eq!(np.value, 1.0);
        // And the §5 algorithm attains it.
        let alg = schedule_k0(&jobs, &ids);
        assert_eq!(alg.value(&jobs), 1.0);
    }

    #[test]
    fn price_at_k0_is_n() {
        // OPT_∞ = n (witness), OPT_0 = 1 → price = n = log2 P + 1.
        let inst = Fig2Instance::new(7);
        let jobs = inst.build();
        let ids: Vec<JobId> = jobs.ids().collect();
        assert!(edf_feasible(&jobs, &ids));
        let np = opt_nonpreemptive(&jobs, &ids);
        let price = jobs.len() as f64 / np.value;
        assert_eq!(price, 7.0);
        assert_eq!(price, inst.length_ratio().log2() + 1.0);
    }
}
