//! Parametric property tests for the paper's constructions: the claimed
//! invariants hold for *every* admissible parameter choice, not just the
//! sampled values in the unit tests.

use pobp_core::JobId;
use pobp_instances::{Fig2Instance, Fig4Instance, LowerBoundTree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fig2_invariants(n in 1u32..20) {
        let inst = Fig2Instance::new(n);
        let jobs = inst.build();
        prop_assert_eq!(jobs.len(), n as usize);
        // Lengths are the geometric sequence 2^i.
        for (id, j) in jobs.iter() {
            prop_assert_eq!(j.length, 1i64 << id.0);
            // Window strictly shorter than twice the length.
            prop_assert!(j.window_len() < 2 * j.length);
            // Every en-bloc placement covers the center slot.
            prop_assert!(j.release <= 0 && j.deadline >= 1);
            prop_assert!(j.deadline - j.length <= 0);
        }
        // Witness: feasible with exactly ≤ 1 preemption, covers all jobs.
        let w = inst.witness_schedule();
        w.verify(&jobs, Some(1)).unwrap();
        prop_assert_eq!(w.len(), n as usize);
        // Total work exactly fills the outermost window (zero slack).
        let total: i64 = jobs.iter().map(|(_, j)| j.length).sum();
        let outer = jobs.job(JobId(n as usize - 1));
        prop_assert_eq!(total, outer.window_len());
    }

    #[test]
    fn fig4_invariants(k in 1u32..4, depth in 1u32..4) {
        let inst = Fig4Instance::for_k(k, depth);
        let built = inst.build();
        prop_assert_eq!(built.jobs.len(), inst.job_count());
        let kb = inst.branching as i64;
        for (id, j) in built.jobs.iter() {
            let level = built.level_of[id.0];
            // Exact lengths and values per level.
            prop_assert_eq!(j.length, inst.length_at(level));
            prop_assert_eq!(j.value, inst.value_at(level));
            // Laxity is exactly 1 + 1/(3K−1): window·(3K−1) = p·3K.
            prop_assert_eq!(j.window_len() * (3 * kb - 1), j.length * 3 * kb);
            // Children nest strictly inside the parent's window.
            if let Some(p) = built.parent_of[id.0] {
                let parent = built.jobs.job(p);
                prop_assert!(j.release > parent.release);
                prop_assert!(j.deadline < parent.deadline);
            }
        }
        // Levels have K^l jobs.
        for (l, level) in built.by_level.iter().enumerate() {
            prop_assert_eq!(level.len(), (inst.branching as usize).pow(l as u32));
        }
        // Scaled OPT_∞ value equals the total value.
        prop_assert_eq!(built.jobs.total_value(), inst.opt_unbounded_value());
        // The analytic OPT_k bound is below OPT_∞ and above one level.
        let upper = inst.opt_k_upper_bound(k);
        prop_assert!(upper < inst.opt_unbounded_value());
        prop_assert!(upper >= inst.value_at(0));
    }

    #[test]
    fn appendix_a_tree_invariants(k in 1u32..4, depth in 1u32..5) {
        let lb = LowerBoundTree::for_k(k, depth);
        let f = lb.build();
        prop_assert_eq!(f.len(), lb.node_count());
        // Every non-leaf has exactly K children.
        for u in f.ids() {
            let d = f.degree(u);
            prop_assert!(d == 0 || d == lb.branching as usize);
        }
        // Per-level value is constant: total = (L+1)·K^L.
        prop_assert_eq!(f.total_value(), lb.total_value());
        // Value halves... scales by 1/K per level.
        let depths = f.depths();
        for u in f.ids() {
            let expect = (lb.branching as f64).powi((depth - depths[u.0] as u32) as i32);
            prop_assert_eq!(f.value(u), expect);
        }
    }

    #[test]
    fn fig4_edf_feasible_small(k in 1u32..3, depth in 1u32..3) {
        // Lemma B.2's OPT_∞ claim holds for every small parameterization.
        let built = Fig4Instance::for_k(k, depth).build();
        let ids: Vec<JobId> = built.jobs.ids().collect();
        prop_assert!(pobp_sched::edf_feasible(&built.jobs, &ids));
    }
}
