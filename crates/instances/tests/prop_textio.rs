//! Property tests for the plain-text I/O layer: the parsers must be total
//! (an error, never a panic, on arbitrary byte soup) and the writers must
//! round-trip exactly through them.

use pobp_core::{Interval, JobId, JobSet, Schedule, SegmentSet};
use pobp_instances::{parse_jobs, parse_schedule, write_jobs, write_schedule};
use proptest::prelude::*;

/// Arbitrary (release, deadline, length) triples that form a valid job,
/// including extreme-but-representable times.
fn arb_job() -> impl Strategy<Value = (i64, i64, i64, f64)> {
    (-1_000_000i64..1_000_000, 1i64..10_000, 1i64..1_000, 1u32..1_000_000).prop_map(
        |(release, slack, length, value)| {
            // deadline ≥ release + length always holds by construction.
            (release, release + length + slack, length, value as f64)
        },
    )
}

fn arb_jobset() -> impl Strategy<Value = JobSet> {
    proptest::collection::vec(arb_job(), 0..12).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(r, d, p, v)| pobp_core::Job::new(r, d, p, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totality: `parse_jobs` returns `Ok` or `Err` on any byte soup —
    /// it never panics, wraps, or overflows, whatever the bytes decode to.
    #[test]
    fn parse_jobs_never_panics_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_jobs(&text);
    }

    #[test]
    fn parse_schedule_never_panics_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_schedule(&text);
    }

    /// Adversarial numeric soup: lines built from numeric-ish tokens hit
    /// the checked-arithmetic paths far more often than raw bytes do.
    #[test]
    fn parse_jobs_never_panics_on_numeric_soup(
        rows in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..6).prop_map(|sel| match sel {
                    0 => i64::MAX.to_string(),
                    1 => i64::MIN.to_string(),
                    2 => "-1".to_string(),
                    3 => "0".to_string(),
                    4 => "9223372036854775808".to_string(), // i64::MAX + 1
                    _ => "1e308".to_string(),
                }),
                0..6,
            ),
            0..8,
        ),
    ) {
        let text: String =
            rows.iter().map(|r| r.join(" ") + "\n").collect();
        let _ = parse_jobs(&text);
        let _ = parse_schedule(&text);
    }

    /// Round trip: writing a job set and parsing it back is the identity
    /// (integer-valued f64 values survive the decimal rendering exactly).
    #[test]
    fn write_parse_jobs_round_trips(jobs in arb_jobset()) {
        let back = parse_jobs(&write_jobs(&jobs)).unwrap();
        prop_assert_eq!(jobs, back);
    }

    /// Round trip for schedules over arbitrary disjoint segment sets.
    #[test]
    fn write_parse_schedule_round_trips(
        rows in proptest::collection::vec(
            (0usize..50, 0usize..4, proptest::collection::vec((0i64..1_000, 1i64..40), 1..5)),
            0..8,
        ),
    ) {
        let mut schedule = Schedule::new();
        let mut used = std::collections::HashSet::new();
        for (job, machine, segs) in rows {
            if !used.insert(job) {
                continue; // one assignment per job id
            }
            // Make the segments disjoint by laying them end to end.
            let mut at = 0i64;
            let ivs: Vec<Interval> = segs
                .iter()
                .map(|&(gap, len)| {
                    let start = at + gap;
                    at = start + len;
                    Interval::new(start, at)
                })
                .collect();
            schedule.assign(JobId(job), machine, SegmentSet::from_intervals(ivs));
        }
        let back = parse_schedule(&write_schedule(&schedule)).unwrap();
        prop_assert_eq!(schedule, back);
    }
}
