//! Windowed live metrics: a ring of timestamped samples with counter-delta
//! rate math, plus Prometheus text exposition.
//!
//! The [`obs`](crate::obs) layer aggregates *cumulative* process-lifetime
//! totals, which is the right shape for end-of-run reports but useless for
//! an operator watching a daemon: "4 311 tasks done" says nothing about
//! whether the service is currently moving. This module adds the live view:
//! a sampler thread (owned by the daemon, not this module) periodically
//! captures a [`Sample`] — monotone counters plus instantaneous gauges —
//! and pushes it into a fixed-capacity [`MetricsWindow`]. Rates are then
//! *derived* from counter deltas across the window:
//!
//! * [`MetricsWindow::rate`] — Σ max(0, cᵢ₊₁ − cᵢ) over consecutive sample
//!   pairs, divided by the window's elapsed time. Per-pair saturation makes
//!   a counter reset (process restart, `obs::reset`) cost at most the one
//!   spanning interval instead of poisoning the whole window.
//! * [`MetricsWindow::ratio`] — delta(numerator) / delta(denominator) over
//!   the same window (cache-hit ratio, degrade rate), `None` when the
//!   denominator did not move.
//! * [`MetricsWindow::gauge`] — the latest sample's value; gauges are
//!   levels, not totals, so no delta math applies.
//!
//! [`Prom`] renders metrics in the Prometheus text exposition format
//! (version 0.0.4): `# HELP` / `# TYPE` header pairs, label values escaped
//! per the spec (`\\`, `\"`, `\n`). It is hand-rolled and std-only, like
//! [`json`](crate::json).
//!
//! Everything here is wall-clock telemetry (Timing class): samples never
//! feed logical traces, job results, or durable bytes, and the module is
//! compiled out entirely without the `telemetry` feature.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One timestamped capture of the process's counters and gauges.
///
/// `counters` are monotone non-decreasing totals (resets allowed, see
/// [`MetricsWindow::rate`]); `gauges` are instantaneous levels (queue
/// depth, running jobs, journal bytes). Timestamps are milliseconds on any
/// monotone clock — only differences are used.
#[derive(Clone, Debug, Default)]
pub struct Sample {
    /// Milliseconds since an arbitrary (monotone) epoch.
    pub ts_ms: u64,
    /// Cumulative counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges by name.
    pub gauges: BTreeMap<String, f64>,
}

impl Sample {
    /// An empty sample at `ts_ms`.
    pub fn at(ts_ms: u64) -> Self {
        Sample { ts_ms, ..Sample::default() }
    }

    /// Sets a counter (builder-style, for tests and sampler loops).
    pub fn counter(mut self, name: &str, value: u64) -> Self {
        self.counters.insert(name.to_string(), value);
        self
    }

    /// Sets a gauge (builder-style).
    pub fn gauge(mut self, name: &str, value: f64) -> Self {
        self.gauges.insert(name.to_string(), value);
        self
    }
}

/// Fixed-capacity ring of [`Sample`]s ordered by push time.
///
/// Pushing beyond capacity evicts the oldest sample, so the window always
/// covers the most recent `capacity` ticks; with a sampler period of `p`
/// the derived rates are trailing averages over ≈ `capacity × p`.
#[derive(Debug)]
pub struct MetricsWindow {
    cap: usize,
    ring: VecDeque<Sample>,
}

impl MetricsWindow {
    /// A window retaining the last `cap` samples (`cap ≥ 2` to ever derive
    /// a rate; a cap of 0 is clamped to 1).
    pub fn new(cap: usize) -> Self {
        MetricsWindow { cap: cap.max(1), ring: VecDeque::new() }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Appends a sample, evicting the oldest if the ring is full. Samples
    /// whose timestamp is not newer than the latest are still accepted (the
    /// rate math treats a non-positive elapsed window as "no rate").
    pub fn push(&mut self, sample: Sample) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(sample);
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&Sample> {
        self.ring.back()
    }

    /// The oldest retained sample.
    pub fn oldest(&self) -> Option<&Sample> {
        self.ring.front()
    }

    /// Seconds covered by the retained window (0.0 with < 2 samples).
    pub fn window_secs(&self) -> f64 {
        match (self.oldest(), self.latest()) {
            (Some(a), Some(b)) if b.ts_ms > a.ts_ms => (b.ts_ms - a.ts_ms) as f64 / 1000.0,
            _ => 0.0,
        }
    }

    /// Total increase of counter `name` across the window: the sum of
    /// per-pair saturating deltas, so a mid-window counter reset loses only
    /// the interval containing the reset. A counter absent from a sample
    /// contributes no delta for the pairs it is missing from.
    pub fn delta(&self, name: &str) -> u64 {
        let mut total = 0u64;
        let mut prev: Option<u64> = None;
        for s in &self.ring {
            if let Some(&v) = s.counters.get(name) {
                if let Some(p) = prev {
                    total += v.saturating_sub(p);
                }
                prev = Some(v);
            }
        }
        total
    }

    /// Events per second for counter `name` over the window: `None` until
    /// two samples with distinct timestamps exist.
    pub fn rate(&self, name: &str) -> Option<f64> {
        let secs = self.window_secs();
        if secs <= 0.0 {
            return None;
        }
        Some(self.delta(name) as f64 / secs)
    }

    /// delta(`num`) / delta(`den`) over the window (e.g. cache hits per
    /// admitted job): `None` when the denominator did not increase.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.delta(den);
        if d == 0 {
            return None;
        }
        Some(self.delta(num) as f64 / d as f64)
    }

    /// The latest value of gauge `name` (levels are read, never
    /// differenced).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.ring.iter().rev().find_map(|s| s.gauges.get(name).copied())
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (version 0.0.4)
// ---------------------------------------------------------------------------

/// The `Content-Type` a scrape endpoint should serve for [`Prom`] output.
pub const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a label *value* per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value: integers render without a fractional part,
/// non-finite values use the spec spellings (`NaN`, `+Inf`, `-Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Builder for a Prometheus text exposition body.
///
/// Call [`header`](Prom::header) once per metric family, then
/// [`sample`](Prom::sample) for each (possibly labelled) series of that
/// family; [`finish`](Prom::finish) yields the body.
#[derive(Debug, Default)]
pub struct Prom {
    out: String,
}

impl Prom {
    /// An empty exposition.
    pub fn new() -> Self {
        Prom::default()
    }

    /// Emits the `# HELP` / `# TYPE` pair for a metric family. `kind` is
    /// `"counter"` or `"gauge"`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        // HELP text escapes only backslash and newline.
        for c in help.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c => self.out.push(c),
            }
        }
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// Emits one sample line, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
        self
    }

    /// The exposition body accumulated so far.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(ts: u64, done: u64, hits: u64, depth: f64) -> Sample {
        Sample::at(ts)
            .counter("done", done)
            .counter("hits", hits)
            .gauge("queue_depth", depth)
    }

    #[test]
    fn counters_accumulate_monotonically_across_ticks() {
        let mut w = MetricsWindow::new(8);
        for (ts, done) in [(0, 0), (1000, 4), (2000, 4), (3000, 10)] {
            w.push(Sample::at(ts).counter("done", done));
        }
        assert_eq!(w.delta("done"), 10);
        assert_eq!(w.rate("done"), Some(10.0 / 3.0));
    }

    #[test]
    fn ring_wraps_and_rates_cover_only_the_retained_window() {
        let mut w = MetricsWindow::new(3);
        // Five ticks at 1 Hz, +2 events per tick; only the last 3 retained.
        for i in 0..5u64 {
            w.push(Sample::at(i * 1000).counter("done", i * 2));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.oldest().unwrap().ts_ms, 2000);
        assert_eq!(w.latest().unwrap().ts_ms, 4000);
        // Window covers ticks 2..4: delta = 8 - 4 = 4 over 2 s.
        assert_eq!(w.delta("done"), 4);
        assert_eq!(w.rate("done"), Some(2.0));
    }

    #[test]
    fn irregular_tick_intervals_divide_by_actual_elapsed_time() {
        let mut w = MetricsWindow::new(8);
        w.push(Sample::at(0).counter("done", 0));
        w.push(Sample::at(100).counter("done", 1));
        w.push(Sample::at(4100).counter("done", 9));
        // 9 events over 4.1 s of actual wall clock, not over "2 ticks".
        assert_eq!(w.window_secs(), 4.1);
        let r = w.rate("done").unwrap();
        assert!((r - 9.0 / 4.1).abs() < 1e-12, "{r}");
    }

    #[test]
    fn counter_reset_loses_only_the_spanning_interval() {
        let mut w = MetricsWindow::new(8);
        // 0→90, restart (counter back to 0), 0→5.
        for (ts, v) in [(0, 0), (1000, 90), (2000, 3), (3000, 5)] {
            w.push(Sample::at(ts).counter("done", v));
        }
        // Per-pair saturation: 90 + 0 + 2, not a negative window delta.
        assert_eq!(w.delta("done"), 92);
    }

    #[test]
    fn gauges_are_levels_not_totals() {
        let mut w = MetricsWindow::new(4);
        w.push(tick(0, 0, 0, 7.0));
        w.push(tick(1000, 3, 1, 2.0));
        // Latest wins — no delta math on gauges.
        assert_eq!(w.gauge("queue_depth"), Some(2.0));
        // A gauge missing from the newest sample falls back to the most
        // recent sample that carries it.
        w.push(Sample::at(2000).counter("done", 4));
        assert_eq!(w.gauge("queue_depth"), Some(2.0));
        assert_eq!(w.gauge("nope"), None);
    }

    #[test]
    fn ratios_need_a_moving_denominator() {
        let mut w = MetricsWindow::new(4);
        w.push(tick(0, 10, 2, 0.0));
        assert_eq!(w.ratio("hits", "done"), None, "one sample, no deltas");
        w.push(tick(1000, 10, 2, 0.0));
        assert_eq!(w.ratio("hits", "done"), None, "denominator flat");
        w.push(tick(2000, 18, 4, 0.0));
        assert_eq!(w.ratio("hits", "done"), Some(0.25));
    }

    #[test]
    fn missing_counters_contribute_no_delta() {
        let mut w = MetricsWindow::new(4);
        w.push(Sample::at(0).counter("done", 5));
        w.push(Sample::at(1000)); // sampler skipped the counter this tick
        w.push(Sample::at(2000).counter("done", 8));
        // The 5→8 pair spans the gap; nothing is double-counted.
        assert_eq!(w.delta("done"), 3);
        assert_eq!(w.rate("nope"), Some(0.0), "unknown counter has rate 0 over a live window");
    }

    #[test]
    fn no_rate_until_time_passes() {
        let mut w = MetricsWindow::new(4);
        assert_eq!(w.rate("done"), None);
        w.push(Sample::at(500).counter("done", 1));
        assert_eq!(w.rate("done"), None, "single sample");
        w.push(Sample::at(500).counter("done", 9));
        assert_eq!(w.rate("done"), None, "zero elapsed time");
    }

    #[test]
    fn prometheus_exposition_shape_and_label_escaping() {
        let mut p = Prom::new();
        p.header("pobp_serve_jobs_done_total", "counter", "Jobs finished.")
            .sample("pobp_serve_jobs_done_total", &[("alg", "reduction")], 3.0)
            .sample("pobp_serve_jobs_done_total", &[("alg", "a\"b\\c\nd")], 1.0);
        p.header("pobp_serve_queue_depth", "gauge", "Queued jobs.")
            .sample("pobp_serve_queue_depth", &[], 2.5);
        let body = p.finish();
        assert_eq!(
            body,
            "# HELP pobp_serve_jobs_done_total Jobs finished.\n\
             # TYPE pobp_serve_jobs_done_total counter\n\
             pobp_serve_jobs_done_total{alg=\"reduction\"} 3\n\
             pobp_serve_jobs_done_total{alg=\"a\\\"b\\\\c\\nd\"} 1\n\
             # HELP pobp_serve_queue_depth Queued jobs.\n\
             # TYPE pobp_serve_queue_depth gauge\n\
             pobp_serve_queue_depth 2.5\n"
        );
    }

    #[test]
    fn value_formatting_covers_integers_floats_and_non_finite() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(-7.0), "-7");
        assert_eq!(fmt_value(0.125), "0.125");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
    }
}
