//! # pobp-core — scheduling substrate for *The Price of Bounded Preemption*
//!
//! The data model shared by every crate in the `pobp` workspace:
//!
//! * [`Time`] / [`Interval`] — integer ticks and half-open intervals, with
//!   the segment-precedence relation of §2.2 of the paper;
//! * [`SegmentSet`] — normalized disjoint segment sets (job schedules, busy
//!   timelines, idle complements);
//! * [`Job`] / [`JobSet`] — jobs `⟨r_j, d_j, p_j⟩` with values, laxity
//!   (Definition 4.4), density, and the strict/lax split of Algorithm 3;
//! * [`Schedule`] — per-job machine assignments with a complete checker for
//!   Definition 2.1 (window containment, exact lengths, machine
//!   disjointness, the `k`-preemption bound);
//! * [`Timeline`] — busy/idle bookkeeping for the constructive algorithms.
//!
//! Everything is exact integer arithmetic; feasibility is a decidable
//! predicate with no epsilons ([`Schedule::verify`]).
//!
//! The crate also exports the workspace's zero-cost instrumentation layers
//! ([`obs`], with the [`obs_count!`], [`obs_time!`], and [`obs_event!`]
//! macros, and [`trace`], with [`obs_span!`] and [`trace_event!`]), both
//! compiled to no-ops unless the matching cargo feature (`obs` / `trace`)
//! is enabled, plus the live-telemetry layer (`metrics` and `flight`,
//! gated on the `telemetry` feature) — see `docs/observability.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
#[cfg(feature = "telemetry")]
pub mod flight;
pub mod json;
#[cfg(feature = "telemetry")]
pub mod metrics;
pub mod obs;
pub mod trace;

mod job;
mod render;
mod schedule;
mod segs;
mod stats;
mod svg;
mod time;
mod timeline;

pub use job::{Job, JobError, JobId, JobSet, Value};
pub use render::{render_gantt, render_timeline, RenderOptions};
pub use schedule::{Assignment, Infeasibility, MachineId, Schedule};
pub use segs::SegmentSet;
pub use stats::{schedule_stats, window_load, ScheduleStats};
pub use svg::{render_svg, SvgOptions};
pub use time::{Interval, Time};
pub use timeline::Timeline;
