//! A single machine's busy/idle timeline for constructive algorithms.
//!
//! The Leftmost Schedule Algorithm (Algorithm 2) and its k = 0 variant only
//! ever need three operations, all provided here: enumerate the idle segments
//! inside a window, measure the busy load of a window, and mark new segments
//! busy. Lemma 4.11/4.12 reason about exactly these quantities.

use crate::segs::SegmentSet;
use crate::time::{Interval, Time};

/// Busy/idle bookkeeping for one machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    busy: SegmentSet,
}

impl Timeline {
    /// An entirely idle timeline.
    pub fn new() -> Self {
        Timeline { busy: SegmentSet::new() }
    }

    /// The busy segments, in normal form.
    pub fn busy(&self) -> &SegmentSet {
        &self.busy
    }

    /// The idle segments within `window` — the candidates LSA scans.
    pub fn idle_within(&self, window: &Interval) -> SegmentSet {
        self.busy.complement_within(window)
    }

    /// Total busy ticks inside `window` (`L_busy` of Lemma 4.12).
    pub fn busy_len_within(&self, window: &Interval) -> Time {
        self.busy.clip(window).total_len()
    }

    /// Total idle ticks inside `window` (`L_idle` of Lemma 4.12).
    pub fn idle_len_within(&self, window: &Interval) -> Time {
        window.len() - self.busy_len_within(window)
    }

    /// Whether every tick of `iv` is currently idle.
    pub fn is_free(&self, iv: &Interval) -> bool {
        !self.busy.intersects(iv)
    }

    /// Marks `segs` busy.
    ///
    /// # Errors
    /// Returns the first overlapping segment if any tick is already busy —
    /// constructive algorithms never double-book, so an overlap is a bug in
    /// the caller.
    pub fn allocate(&mut self, segs: &SegmentSet) -> Result<(), Interval> {
        for s in segs.iter() {
            if self.busy.intersects(s) {
                return Err(*s);
            }
        }
        for s in segs.iter() {
            self.busy.insert(*s);
        }
        Ok(())
    }

    /// Marks a single interval busy; see [`Timeline::allocate`].
    pub fn allocate_one(&mut self, iv: Interval) -> Result<(), Interval> {
        if self.busy.intersects(&iv) {
            return Err(iv);
        }
        self.busy.insert(iv);
        Ok(())
    }

    /// Fills `need` ticks into the given idle segments from the left,
    /// returning the occupied sub-segments (the "leftmost possible way" of
    /// Algorithm 2, line 15). Returns `None` if the segments cannot hold
    /// `need` ticks; the timeline is not modified in that case.
    pub fn fill_leftmost(
        &mut self,
        idle: &[Interval],
        need: Time,
    ) -> Option<SegmentSet> {
        debug_assert!(need > 0);
        let total: Time = idle.iter().map(Interval::len).sum();
        if total < need {
            return None;
        }
        let mut remaining = need;
        let mut placed = Vec::new();
        let mut sorted: Vec<Interval> = idle.to_vec();
        sorted.sort_unstable_by_key(|s| s.start);
        for s in sorted {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(s.len());
            placed.push(Interval::with_len(s.start, take));
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0);
        let set = SegmentSet::from_intervals(placed);
        self.allocate(&set).expect("idle segments were busy");
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Time, b: Time) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn allocate_and_query() {
        let mut t = Timeline::new();
        t.allocate_one(iv(2, 5)).unwrap();
        t.allocate_one(iv(8, 10)).unwrap();
        assert!(t.is_free(&iv(5, 8)));
        assert!(!t.is_free(&iv(4, 6)));
        assert_eq!(t.busy_len_within(&iv(0, 10)), 5);
        assert_eq!(t.idle_len_within(&iv(0, 10)), 5);
        assert_eq!(
            t.idle_within(&iv(0, 12)),
            SegmentSet::from_intervals([iv(0, 2), iv(5, 8), iv(10, 12)])
        );
    }

    #[test]
    fn allocate_rejects_double_booking() {
        let mut t = Timeline::new();
        t.allocate_one(iv(0, 5)).unwrap();
        assert_eq!(t.allocate_one(iv(4, 6)), Err(iv(4, 6)));
        // Timeline unchanged by the failed allocation.
        assert_eq!(t.busy(), &SegmentSet::from_intervals([iv(0, 5)]));
        // Touching is fine.
        t.allocate_one(iv(5, 6)).unwrap();
    }

    #[test]
    fn allocate_set_is_atomic() {
        let mut t = Timeline::new();
        t.allocate_one(iv(10, 12)).unwrap();
        let bad = SegmentSet::from_intervals([iv(0, 2), iv(11, 13)]);
        assert!(t.allocate(&bad).is_err());
        // Nothing from the failed batch leaked in.
        assert_eq!(t.busy(), &SegmentSet::from_intervals([iv(10, 12)]));
    }

    #[test]
    fn fill_leftmost_spreads_work() {
        let mut t = Timeline::new();
        let idle = [iv(0, 3), iv(5, 7), iv(9, 20)];
        let placed = t.fill_leftmost(&idle, 7).unwrap();
        assert_eq!(
            placed,
            SegmentSet::from_intervals([iv(0, 3), iv(5, 7), iv(9, 11)])
        );
        assert_eq!(placed.total_len(), 7);
        assert_eq!(t.busy(), &placed);
    }

    #[test]
    fn fill_leftmost_exact_fit_uses_all() {
        let mut t = Timeline::new();
        let placed = t.fill_leftmost(&[iv(0, 3), iv(5, 7)], 5).unwrap();
        assert_eq!(placed.total_len(), 5);
        assert_eq!(placed.count(), 2);
    }

    #[test]
    fn fill_leftmost_insufficient_leaves_timeline_untouched() {
        let mut t = Timeline::new();
        assert!(t.fill_leftmost(&[iv(0, 3)], 4).is_none());
        assert!(t.busy().is_empty());
    }

    #[test]
    fn fill_leftmost_single_segment_partial() {
        let mut t = Timeline::new();
        let placed = t.fill_leftmost(&[iv(4, 100)], 6).unwrap();
        assert_eq!(placed, SegmentSet::from_intervals([iv(4, 10)]));
    }
}
