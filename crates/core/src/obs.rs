//! Zero-cost algorithm-level observability: counters, span timers, and a
//! structured event sink.
//!
//! Every hot path in the workspace is instrumented with the three macros
//! exported from this crate — [`obs_count!`](crate::obs_count),
//! [`obs_time!`](crate::obs_time), and [`obs_event!`](crate::obs_event).
//! When the `obs` cargo feature is **off** (the default) the
//! macros expand to nothing: `obs_count!`/`obs_event!` become `()` without
//! evaluating their arguments, and `obs_time!` becomes its body expression
//! unchanged. No atomics, no branches, no registry — release code is
//! byte-for-byte free of instrumentation.
//!
//! When the feature is **on**, each macro call site materialises a `static`
//! [`Counter`], [`Timer`], or [`EventStat`] that registers itself in a global
//! registry on first touch and is updated with relaxed atomics thereafter.
//! [`snapshot`] merges call sites that share a name, so the same logical
//! counter (e.g. `sched.edf.heap_push`) may be bumped from several places.
//!
//! Names follow the `crate.algorithm.counter` convention documented in
//! `docs/observability.md` — e.g. `forest.tm.nodes_visited` or
//! `sched.reduction.time.laminarize`.
//!
//! The registry types below are compiled unconditionally (they are tiny) so
//! binaries can call [`snapshot`] / [`report_json`] whether or not the
//! feature is on; with the feature off the registry is simply empty and
//! [`enabled`] reports `false`.
//!
//! Tests that assert on counters must serialise access to the global
//! registry; use [`measure`], which takes a lock, resets, runs the closure,
//! and returns the resulting [`Snapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Version of the JSON report schema emitted by [`Snapshot::to_json`].
///
/// * **1** — counters / timers / events with count, sum, min, max.
/// * **2** — adds the `schema` key itself plus `p50` / `p90` / `p99`
///   quantile estimates per event (log₂-bucket histogram).
pub const SCHEMA_VERSION: u32 = 2;

/// Number of log₂ buckets in a [`LogHistogram`] (covers all of `u64`).
pub const HIST_BUCKETS: usize = 64;

/// A fixed-size log₂-bucket histogram of `u64` observations.
///
/// Bucket 0 holds values `{0, 1}`; bucket `i ≥ 1` holds `[2^i, 2^(i+1))`.
/// Recording is one relaxed `fetch_add` — cheap enough for hot paths.
/// Quantiles are estimated with linear interpolation inside the selected
/// bucket (see [`quantile_from_buckets`]), so they carry at most one
/// bucket's width of error (a factor ≤ 2) but never allocate.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LogHistogram { buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS] }
    }

    /// The bucket index for `value`: `floor(log2(max(value, 1)))`.
    pub fn bucket_of(value: u64) -> usize {
        value.max(1).ilog2() as usize
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current bucket counts.
    pub fn counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (slot, b) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimated `q`-quantile of the recorded observations; see
    /// [`quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.counts(), q)
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Estimates the `q`-quantile (`q ∈ [0, 1]`) from log₂ bucket counts.
///
/// Uses the 1-based rank `ceil(q · n)` clamped to `[1, n]`, then linear
/// interpolation between the selected bucket's bounds: with `c`
/// observations in the bucket and the rank falling `w` deep into it
/// (`1 ≤ w ≤ c`), the estimate is `lo + (hi − lo) · w / c`. Returns 0.0
/// for an empty histogram.
pub fn quantile_from_buckets(buckets: &[u64; HIST_BUCKETS], q: f64) -> f64 {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        if cum >= target {
            let lo = LogHistogram::bucket_lo(i) as f64;
            let hi = if i + 1 >= HIST_BUCKETS {
                u64::MAX as f64
            } else {
                (1u128 << (i + 1)) as f64
            };
            let within = (target - (cum - c)) as f64;
            return lo + (hi - lo) * (within / c as f64);
        }
    }
    unreachable!("cumulative bucket count covers every rank")
}

/// A named monotonic counter. One `static` per `obs_count!` call site.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates an unregistered counter (used by macro expansions).
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds `n`, registering the call site on first touch.
    pub fn add(&'static self, n: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }
}

/// A named span timer accumulating total wall-clock time and span count.
/// One `static` per `obs_time!` call site.
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    total_ns: AtomicU64,
    spans: AtomicU64,
    registered: AtomicBool,
}

impl Timer {
    /// Creates an unregistered timer (used by macro expansions).
    pub const fn new(name: &'static str) -> Self {
        Timer {
            name,
            total_ns: AtomicU64::new(0),
            spans: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one span, registering the call site on first touch.
    pub fn record(&'static self, elapsed: Duration) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().timers.lock().unwrap().push(self);
        }
        self.total_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.spans.fetch_add(1, Ordering::Relaxed);
    }
}

/// A named value distribution (count / sum / min / max), fed by
/// [`obs_event!`](crate::obs_event). One `static` per call site.
#[derive(Debug)]
pub struct EventStat {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    hist: LogHistogram,
    registered: AtomicBool,
}

impl EventStat {
    /// Creates an unregistered event sink (used by macro expansions).
    pub const fn new(name: &'static str) -> Self {
        EventStat {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            hist: LogHistogram::new(),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one observation, registering the call site on first touch.
    pub fn observe(&'static self, value: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().events.lock().unwrap().push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.hist.record(value);
    }
}

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    timers: Mutex<Vec<&'static Timer>>,
    events: Mutex<Vec<&'static EventStat>>,
    /// Serialises reset/snapshot windows across test threads; see [`measure`].
    window: Mutex<()>,
}

fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry {
        counters: Mutex::new(Vec::new()),
        timers: Mutex::new(Vec::new()),
        events: Mutex::new(Vec::new()),
        window: Mutex::new(()),
    };
    &REGISTRY
}

/// Whether instrumentation is compiled in (the `obs` cargo feature).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Aggregated state of one timer name in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct TimerSnapshot {
    /// Total wall-clock time across all spans.
    pub total: Duration,
    /// Number of spans recorded.
    pub spans: u64,
}

/// Aggregated state of one event name in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct EventSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when `count == 0`).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Log₂ bucket counts (see [`LogHistogram`]); feeds the quantiles.
    pub buckets: [u64; HIST_BUCKETS],
}

impl EventSnapshot {
    /// Estimated `q`-quantile; see [`quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets, q)
    }
}

impl Default for EventSnapshot {
    fn default() -> Self {
        EventSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: [0; HIST_BUCKETS] }
    }
}

/// A point-in-time copy of every registered counter, timer, and event,
/// merged by name and sorted (BTreeMap order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Timer totals by name.
    pub timers: BTreeMap<&'static str, TimerSnapshot>,
    /// Event distributions by name.
    pub events: BTreeMap<&'static str, EventSnapshot>,
}

impl Snapshot {
    /// The value of counter `name`, or 0 when it never fired.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the workspace has
    /// no serde). Shape:
    ///
    /// ```json
    /// {
    ///   "schema": 2,
    ///   "obs_enabled": true,
    ///   "counters": { "sched.edf.heap_push": 40 },
    ///   "timers": { "sched.reduction.time.laminarize": { "total_ns": 1200, "spans": 1 } },
    ///   "events": { "sched.lsa_cs.class_size": { "count": 3, "sum": 17, "min": 2, "max": 9,
    ///               "p50": 4.7, "p90": 8.9, "p99": 9.9 } }
    /// }
    /// ```
    ///
    /// `p50`/`p90`/`p99` are histogram estimates ([`quantile_from_buckets`]);
    /// the bump to `"schema": 2` marks their introduction.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"obs_enabled\": {},\n", enabled()));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"timers\": {");
        for (i, (name, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{name}\": {{ \"total_ns\": {}, \"spans\": {} }}",
                t.total.as_nanos(),
                t.spans
            ));
        }
        out.push_str(if self.timers.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"events\": {");
        for (i, (name, e)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                e.count,
                e.sum,
                e.min,
                e.max,
                fmt_f64(e.quantile(0.50)),
                fmt_f64(e.quantile(0.90)),
                fmt_f64(e.quantile(0.99))
            ));
        }
        out.push_str(if self.events.is_empty() { "}\n" } else { "\n  }\n" });
        out.push('}');
        out
    }
}

/// Formats a quantile estimate with one decimal place (stable JSON shape).
fn fmt_f64(v: f64) -> String {
    format!("{v:.1}")
}

/// Copies the current state of every registered instrument, merging call
/// sites that share a name.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for c in registry().counters.lock().unwrap().iter() {
        *snap.counters.entry(c.name).or_insert(0) += c.value.load(Ordering::Relaxed);
    }
    for t in registry().timers.lock().unwrap().iter() {
        let e = snap
            .timers
            .entry(t.name)
            .or_insert(TimerSnapshot { total: Duration::ZERO, spans: 0 });
        e.total += Duration::from_nanos(t.total_ns.load(Ordering::Relaxed));
        e.spans += t.spans.load(Ordering::Relaxed);
    }
    for ev in registry().events.lock().unwrap().iter() {
        let count = ev.count.load(Ordering::Relaxed);
        let e = snap
            .events
            .entry(ev.name)
            .or_insert(EventSnapshot { min: u64::MAX, ..EventSnapshot::default() });
        e.count += count;
        e.sum += ev.sum.load(Ordering::Relaxed);
        e.min = e.min.min(ev.min.load(Ordering::Relaxed));
        e.max = e.max.max(ev.max.load(Ordering::Relaxed));
        for (slot, c) in e.buckets.iter_mut().zip(ev.hist.counts()) {
            *slot += c;
        }
    }
    for e in snap.events.values_mut() {
        if e.count == 0 {
            e.min = 0;
        }
    }
    snap
}

/// Zeroes every registered instrument (the registry itself is kept).
pub fn reset() {
    for c in registry().counters.lock().unwrap().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for t in registry().timers.lock().unwrap().iter() {
        t.total_ns.store(0, Ordering::Relaxed);
        t.spans.store(0, Ordering::Relaxed);
    }
    for e in registry().events.lock().unwrap().iter() {
        e.count.store(0, Ordering::Relaxed);
        e.sum.store(0, Ordering::Relaxed);
        e.min.store(u64::MAX, Ordering::Relaxed);
        e.max.store(0, Ordering::Relaxed);
        e.hist.reset();
    }
}

/// Guard holding the exclusive measurement window; see [`exclusive`].
pub struct WindowGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

/// Takes the global measurement lock without resetting; pair with manual
/// [`reset`]/[`snapshot`] calls when [`measure`]'s closure shape is awkward.
pub fn exclusive() -> WindowGuard {
    let guard = match registry().window.lock() {
        Ok(g) => g,
        // A panicking test inside `measure` must not wedge every later test.
        Err(poisoned) => poisoned.into_inner(),
    };
    WindowGuard(guard)
}

/// Runs `f` in an exclusive, freshly-reset measurement window and returns
/// `f`'s output together with the snapshot of everything it recorded.
///
/// This is the only sound way to assert on counter values from tests: the
/// cargo test harness runs tests on parallel threads and the registry is
/// global, so unsynchronised windows would observe each other's increments.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    let _guard = exclusive();
    reset();
    let out = f();
    (out, snapshot())
}

/// Renders the current registry state as a JSON counter report
/// (convenience for `--obs` flags in binaries).
pub fn report_json() -> String {
    snapshot().to_json()
}

/// Counts occurrences: `obs_count!("name")` adds 1, `obs_count!("name", n)`
/// adds `n`. With the `obs` feature off this expands to `()` and the
/// argument expressions are **not evaluated**.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_count {
    ($name:literal) => {
        $crate::obs_count!($name, 1u64)
    };
    ($name:literal, $n:expr) => {{
        static __OBS_COUNTER: $crate::obs::Counter = $crate::obs::Counter::new($name);
        __OBS_COUNTER.add(($n) as u64);
    }};
}

/// Counts occurrences: `obs_count!("name")` adds 1, `obs_count!("name", n)`
/// adds `n`. With the `obs` feature off this expands to `()` and the
/// argument expressions are **not evaluated**.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_count {
    ($($args:tt)*) => {
        ()
    };
}

/// Times a span: `obs_time!("name", { body })` evaluates to the body's
/// value, accumulating its wall-clock time. With the `trace` feature on it
/// additionally emits a timing-class trace span under the same name (via
/// [`obs_span!`](crate::obs_span)). With both features off this expands to
/// the body expression unchanged — the body always runs.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_time {
    ($name:literal, $body:expr) => {
        $crate::obs_span!(timing $name, {
            static __OBS_TIMER: $crate::obs::Timer = $crate::obs::Timer::new($name);
            let __obs_start = ::std::time::Instant::now();
            let __obs_out = $body;
            __OBS_TIMER.record(__obs_start.elapsed());
            __obs_out
        })
    };
}

/// Times a span: `obs_time!("name", { body })` evaluates to the body's
/// value, accumulating its wall-clock time. With the `trace` feature on it
/// additionally emits a timing-class trace span under the same name (via
/// [`obs_span!`](crate::obs_span)). With both features off this expands to
/// the body expression unchanged — the body always runs.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_time {
    ($name:literal, $body:expr) => {
        $crate::obs_span!(timing $name, $body)
    };
}

/// Records one observation of a value into a named distribution
/// (count/sum/min/max): `obs_event!("name", value)`. With the `obs` feature
/// off this expands to `()` and the value expression is **not evaluated**.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_event {
    ($name:literal, $value:expr) => {{
        static __OBS_EVENT: $crate::obs::EventStat = $crate::obs::EventStat::new($name);
        __OBS_EVENT.observe(($value) as u64);
    }};
}

/// Records one observation of a value into a named distribution
/// (count/sum/min/max): `obs_event!("name", value)`. With the `obs` feature
/// off this expands to `()` and the value expression is **not evaluated**.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_event {
    ($($args:tt)*) => {
        ()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_shape_when_empty() {
        let s = Snapshot::default();
        let j = s.to_json();
        assert!(j.contains(&format!("\"schema\": {SCHEMA_VERSION}")));
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"timers\": {}"));
        assert!(j.contains("\"events\": {}"));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(7), 2);
        assert_eq!(LogHistogram::bucket_of(8), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
        assert_eq!(LogHistogram::bucket_lo(0), 0);
        assert_eq!(LogHistogram::bucket_lo(1), 2);
        assert_eq!(LogHistogram::bucket_lo(3), 8);
        assert_eq!(LogHistogram::bucket_lo(63), 1u64 << 63);
    }

    #[test]
    fn histogram_quantile_interpolation() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0); // empty histogram
        for v in 0..8u64 {
            h.record(v);
        }
        // Buckets: [0,2)=2 obs, [2,4)=2 obs, [4,8)=4 obs. n = 8.
        assert_eq!(h.quantile(0.0), 1.0); // rank 1, half into bucket 0
        assert_eq!(h.quantile(0.5), 4.0); // rank 4, end of bucket 1
        assert_eq!(h.quantile(1.0), 8.0); // rank 8, end of bucket 2
        h.reset();
        assert_eq!(h.counts(), [0u64; HIST_BUCKETS]);
    }

    #[test]
    fn histogram_quantile_error_is_bounded_by_bucket_width() {
        let h = LogHistogram::new();
        for _ in 0..10 {
            h.record(8);
        }
        // All mass in [8,16): any quantile estimate stays inside the bucket.
        for q in [0.5, 0.9, 0.99] {
            let est = h.quantile(q);
            assert!((8.0..=16.0).contains(&est), "q={q} est={est}");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn macros_record_and_merge() {
        fn workload() {
            for i in 0..5u64 {
                crate::obs_count!("core.test.ticks");
                crate::obs_event!("core.test.size", i);
            }
            crate::obs_count!("core.test.ticks", 5);
            let out = crate::obs_time!("core.test.span", { 40 + 2 });
            assert_eq!(out, 42);
        }
        let ((), snap) = measure(workload);
        assert_eq!(snap.counter("core.test.ticks"), 10);
        let ev = &snap.events["core.test.size"];
        assert_eq!((ev.count, ev.sum, ev.min, ev.max), (5, 10, 0, 4));
        // Observations 0..5 land in buckets [0,2)=2, [2,4)=2, [4,8)=1.
        assert_eq!((ev.buckets[0], ev.buckets[1], ev.buckets[2]), (2, 2, 1));
        assert_eq!(ev.quantile(0.5), 3.0);
        assert_eq!(snap.timers["core.test.span"].spans, 1);
        let j = snap.to_json();
        assert!(j.contains("\"core.test.ticks\": 10"));
        assert!(j.contains("\"p50\": 3.0"));
        assert!(j.contains("\"p90\":"));
        assert!(j.contains("\"p99\":"));
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn macros_are_inert_when_disabled() {
        // obs_count!/obs_event! must not evaluate their arguments...
        #[allow(unreachable_code, clippy::diverging_sub_expression)]
        fn not_evaluated() {
            crate::obs_count!("core.test.never", panic!("evaluated"));
            crate::obs_event!("core.test.never", panic!("evaluated"));
        }
        not_evaluated();
        // ...while obs_time! must still evaluate its body.
        let out = crate::obs_time!("core.test.span", { 40 + 2 });
        assert_eq!(out, 42);
        assert!(!enabled());
        let ((), snap) = measure(|| ());
        assert!(snap.counters.is_empty());
    }
}
