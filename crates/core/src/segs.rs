//! [`SegmentSet`]: a normalized set of disjoint time segments.
//!
//! This is the workhorse of the crate. A job's schedule (Definition 2.1(a))
//! is a `SegmentSet` inside its window; a machine's busy time is the union of
//! its jobs' `SegmentSet`s; the idle timeline that the Leftmost Schedule
//! Algorithm searches is the complement of a `SegmentSet` within a window.
//!
//! Invariant ("normal form"): segments are non-empty, sorted by start, and
//! pairwise *non-touching* (`a.end < b.start` for consecutive `a`, `b`).
//! Touching segments are coalesced on construction, so `segments().len() - 1`
//! is exactly the number of preemptions a job with this schedule suffers.

use crate::time::{Interval, Time};

/// A normalized (sorted, disjoint, coalesced) set of time segments.
///
/// ```
/// use pobp_core::{Interval, SegmentSet};
///
/// // Touching segments coalesce; order does not matter.
/// let s = SegmentSet::from_intervals([
///     Interval::new(5, 9),
///     Interval::new(0, 3),
///     Interval::new(3, 5),
/// ]);
/// assert_eq!(s.count(), 1);
/// assert_eq!(s.total_len(), 9);
/// let idle = s.complement_within(&Interval::new(-2, 12));
/// assert_eq!(idle.segments(), &[Interval::new(-2, 0), Interval::new(9, 12)]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SegmentSet {
    segs: Vec<Interval>,
}

impl std::fmt::Debug for SegmentSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.segs.iter()).finish()
    }
}

impl SegmentSet {
    /// The empty set.
    #[inline]
    pub fn new() -> Self {
        SegmentSet { segs: Vec::new() }
    }

    /// A set holding a single interval (or empty, if the interval is empty).
    pub fn singleton(iv: Interval) -> Self {
        if iv.is_empty() {
            Self::new()
        } else {
            SegmentSet { segs: vec![iv] }
        }
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// touching, unsorted, empty) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> Self {
        let mut v: Vec<Interval> = ivs.into_iter().filter(|i| !i.is_empty()).collect();
        v.sort_unstable_by_key(|i| (i.start, i.end));
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                // Coalesce overlapping *and* touching segments.
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => out.push(iv),
            }
        }
        SegmentSet { segs: out }
    }

    /// The segments in normal form (sorted, disjoint, non-touching).
    #[inline]
    pub fn segments(&self) -> &[Interval] {
        &self.segs
    }

    /// Number of segments in normal form.
    #[inline]
    pub fn count(&self) -> usize {
        self.segs.len()
    }

    /// Whether the set covers no ticks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Total number of ticks covered (`Σ |g|` of Definition 2.1(a)).
    pub fn total_len(&self) -> Time {
        self.segs.iter().map(Interval::len).sum()
    }

    /// Earliest covered tick, if any.
    pub fn min_start(&self) -> Option<Time> {
        self.segs.first().map(|s| s.start)
    }

    /// Tick just past the latest covered tick, if any.
    pub fn max_end(&self) -> Option<Time> {
        self.segs.last().map(|s| s.end)
    }

    /// The smallest interval containing the whole set, if non-empty.
    pub fn span(&self) -> Option<Interval> {
        match (self.min_start(), self.max_end()) {
            (Some(s), Some(e)) => Some(Interval::new(s, e)),
            _ => None,
        }
    }

    /// Whether `t` is covered.
    pub fn contains_point(&self, t: Time) -> bool {
        // Binary search on start; candidate is the last segment with start <= t.
        match self.segs.partition_point(|s| s.start <= t) {
            0 => false,
            i => self.segs[i - 1].contains_point(t),
        }
    }

    /// Whether every tick of `iv` is covered.
    pub fn covers(&self, iv: &Interval) -> bool {
        if iv.is_empty() {
            return true;
        }
        match self.segs.partition_point(|s| s.start <= iv.start) {
            0 => false,
            i => self.segs[i - 1].contains(iv),
        }
    }

    /// Whether the set shares at least one tick with `iv`.
    pub fn intersects(&self, iv: &Interval) -> bool {
        if iv.is_empty() {
            return false;
        }
        let i = self.segs.partition_point(|s| s.end <= iv.start);
        self.segs.get(i).is_some_and(|s| s.overlaps(iv))
    }

    /// Whether the set shares at least one tick with `other`.
    pub fn intersects_set(&self, other: &SegmentSet) -> bool {
        // Merge-scan; both sides are sorted.
        let (mut i, mut j) = (0, 0);
        while i < self.segs.len() && j < other.segs.len() {
            if self.segs[i].overlaps(&other.segs[j]) {
                return true;
            }
            if self.segs[i].end <= other.segs[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Set union.
    pub fn union(&self, other: &SegmentSet) -> SegmentSet {
        // Merge two sorted lists, then coalesce in one pass.
        let mut merged: Vec<Interval> = Vec::with_capacity(self.segs.len() + other.segs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.segs.len() || j < other.segs.len() {
            let take_left = match (self.segs.get(i), other.segs.get(j)) {
                (Some(a), Some(b)) => a.start <= b.start,
                (Some(_), None) => true,
                _ => false,
            };
            let iv = if take_left {
                i += 1;
                self.segs[i - 1]
            } else {
                j += 1;
                other.segs[j - 1]
            };
            match merged.last_mut() {
                // Coalesce overlapping and touching segments.
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => merged.push(iv),
            }
        }
        SegmentSet { segs: merged }
    }

    /// Set intersection.
    pub fn intersect_set(&self, other: &SegmentSet) -> SegmentSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.segs.len() && j < other.segs.len() {
            if let Some(iv) = self.segs[i].intersect(&other.segs[j]) {
                out.push(iv);
            }
            if self.segs[i].end <= other.segs[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        SegmentSet { segs: out }
    }

    /// Restriction of the set to `window` (intersection with one interval).
    pub fn clip(&self, window: &Interval) -> SegmentSet {
        let mut out = Vec::new();
        let start = self.segs.partition_point(|s| s.end <= window.start);
        for s in &self.segs[start..] {
            if s.start >= window.end {
                break;
            }
            if let Some(iv) = s.intersect(window) {
                out.push(iv);
            }
        }
        SegmentSet { segs: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &SegmentSet) -> SegmentSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &s in &self.segs {
            let mut cur = s.start;
            // Skip blockers entirely before this segment.
            while j < other.segs.len() && other.segs[j].end <= s.start {
                j += 1;
            }
            let mut jj = j;
            while jj < other.segs.len() && other.segs[jj].start < s.end {
                let b = other.segs[jj];
                if b.start > cur {
                    out.push(Interval::new(cur, b.start.min(s.end)));
                }
                cur = cur.max(b.end);
                if cur >= s.end {
                    break;
                }
                jj += 1;
            }
            if cur < s.end {
                out.push(Interval::new(cur, s.end));
            }
        }
        SegmentSet { segs: out }
    }

    /// Complement of the set within `window`: the *idle* segments of a busy
    /// timeline, clipped to a job's `[r_j, d_j)` window.
    pub fn complement_within(&self, window: &Interval) -> SegmentSet {
        SegmentSet::singleton(*window).subtract(self)
    }

    /// Adds one interval in place (keeping normal form).
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Find the range of existing segments that overlap or touch `iv`.
        let lo = self.segs.partition_point(|s| s.end < iv.start);
        let hi = self.segs.partition_point(|s| s.start <= iv.end);
        if lo == hi {
            self.segs.insert(lo, iv);
        } else {
            let start = iv.start.min(self.segs[lo].start);
            let end = iv.end.max(self.segs[hi - 1].end);
            self.segs.splice(lo..hi, std::iter::once(Interval::new(start, end)));
        }
    }

    /// Removes one interval in place.
    pub fn remove(&mut self, iv: Interval) {
        if iv.is_empty() || self.segs.is_empty() {
            return;
        }
        *self = self.subtract(&SegmentSet::singleton(iv));
    }

    /// The leftmost covered sub-interval of length exactly `len` that starts
    /// no earlier than `from`, staying within a single segment.
    ///
    /// Used by the en-bloc (k = 0) scheduler: "find the leftmost idle slot
    /// that fits the whole job".
    pub fn leftmost_fit(&self, len: Time, from: Time) -> Option<Interval> {
        debug_assert!(len > 0);
        for s in &self.segs {
            let start = s.start.max(from);
            if start + len <= s.end {
                return Some(Interval::with_len(start, len));
            }
        }
        None
    }

    /// Iterates over the segments.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.segs.iter()
    }
}

impl FromIterator<Interval> for SegmentSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        SegmentSet::from_intervals(iter)
    }
}

impl<'a> IntoIterator for &'a SegmentSet {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.segs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss(pairs: &[(Time, Time)]) -> SegmentSet {
        SegmentSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn construction_normalizes() {
        let s = ss(&[(5, 9), (0, 3), (3, 5), (20, 20), (15, 18)]);
        // [0,3) and [3,5) and [5,9) coalesce; empty [20,20) dropped.
        assert_eq!(s.segments(), &[Interval::new(0, 9), Interval::new(15, 18)]);
        assert_eq!(s.total_len(), 12);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn construction_overlapping() {
        let s = ss(&[(0, 10), (2, 4), (8, 15), (14, 16)]);
        assert_eq!(s.segments(), &[Interval::new(0, 16)]);
    }

    #[test]
    fn empty_set_properties() {
        let s = SegmentSet::new();
        assert!(s.is_empty());
        assert_eq!(s.total_len(), 0);
        assert_eq!(s.span(), None);
        assert!(!s.contains_point(0));
        assert!(!s.intersects(&Interval::new(0, 100)));
        assert!(s.covers(&Interval::new(3, 3))); // empty interval trivially covered
    }

    #[test]
    fn point_queries() {
        let s = ss(&[(0, 3), (10, 12)]);
        assert!(s.contains_point(0));
        assert!(s.contains_point(2));
        assert!(!s.contains_point(3));
        assert!(!s.contains_point(9));
        assert!(s.contains_point(10));
        assert!(s.contains_point(11));
        assert!(!s.contains_point(12));
    }

    #[test]
    fn covers_and_intersects() {
        let s = ss(&[(0, 5), (10, 20)]);
        assert!(s.covers(&Interval::new(1, 4)));
        assert!(s.covers(&Interval::new(10, 20)));
        assert!(!s.covers(&Interval::new(4, 11)));
        assert!(s.intersects(&Interval::new(4, 11)));
        assert!(!s.intersects(&Interval::new(5, 10)));
        assert!(s.intersects(&Interval::new(5, 11)));
    }

    #[test]
    fn union_and_intersection() {
        let a = ss(&[(0, 5), (10, 15)]);
        let b = ss(&[(3, 12), (14, 20)]);
        assert_eq!(a.union(&b), ss(&[(0, 20)]));
        assert_eq!(a.intersect_set(&b), ss(&[(3, 5), (10, 12), (14, 15)]));
        assert!(a.intersects_set(&b));
        let c = ss(&[(5, 10), (15, 16)]);
        assert!(!a.intersects_set(&c));
        assert_eq!(a.union(&c), ss(&[(0, 16)]));
        assert!(a.intersect_set(&c).is_empty());
    }

    #[test]
    fn union_with_empty() {
        let a = ss(&[(0, 5)]);
        assert_eq!(a.union(&SegmentSet::new()), a);
        assert_eq!(SegmentSet::new().union(&a), a);
    }

    #[test]
    fn subtract_cases() {
        let a = ss(&[(0, 10)]);
        assert_eq!(a.subtract(&ss(&[(3, 5)])), ss(&[(0, 3), (5, 10)]));
        assert_eq!(a.subtract(&ss(&[(0, 10)])), SegmentSet::new());
        assert_eq!(a.subtract(&ss(&[(-5, 2), (8, 20)])), ss(&[(2, 8)]));
        assert_eq!(a.subtract(&ss(&[(10, 20)])), a);
        let b = ss(&[(0, 4), (6, 10), (12, 16)]);
        assert_eq!(b.subtract(&ss(&[(2, 13)])), ss(&[(0, 2), (13, 16)]));
    }

    #[test]
    fn complement_within_window() {
        let busy = ss(&[(2, 4), (6, 8)]);
        let idle = busy.complement_within(&Interval::new(0, 10));
        assert_eq!(idle, ss(&[(0, 2), (4, 6), (8, 10)]));
        // Window entirely busy.
        assert!(busy.complement_within(&Interval::new(2, 4)).is_empty());
        // Window entirely idle.
        assert_eq!(
            busy.complement_within(&Interval::new(20, 25)),
            ss(&[(20, 25)])
        );
    }

    #[test]
    fn clip_window() {
        let s = ss(&[(0, 5), (10, 15), (20, 25)]);
        assert_eq!(s.clip(&Interval::new(3, 22)), ss(&[(3, 5), (10, 15), (20, 22)]));
        assert_eq!(s.clip(&Interval::new(5, 10)), SegmentSet::new());
    }

    #[test]
    fn insert_coalesces() {
        let mut s = ss(&[(0, 3), (10, 12)]);
        s.insert(Interval::new(5, 7));
        assert_eq!(s, ss(&[(0, 3), (5, 7), (10, 12)]));
        s.insert(Interval::new(3, 5)); // touches both sides
        assert_eq!(s, ss(&[(0, 7), (10, 12)]));
        s.insert(Interval::new(6, 11)); // bridges
        assert_eq!(s, ss(&[(0, 12)]));
        s.insert(Interval::new(4, 4)); // empty no-op
        assert_eq!(s, ss(&[(0, 12)]));
    }

    #[test]
    fn insert_before_everything() {
        let mut s = ss(&[(10, 12)]);
        s.insert(Interval::new(0, 2));
        assert_eq!(s, ss(&[(0, 2), (10, 12)]));
    }

    #[test]
    fn remove_in_place() {
        let mut s = ss(&[(0, 10)]);
        s.remove(Interval::new(4, 6));
        assert_eq!(s, ss(&[(0, 4), (6, 10)]));
        s.remove(Interval::new(0, 100));
        assert!(s.is_empty());
    }

    #[test]
    fn leftmost_fit_scans_segments() {
        let idle = ss(&[(0, 2), (5, 8), (12, 30)]);
        assert_eq!(idle.leftmost_fit(2, 0), Some(Interval::new(0, 2)));
        assert_eq!(idle.leftmost_fit(3, 0), Some(Interval::new(5, 8)));
        assert_eq!(idle.leftmost_fit(4, 0), Some(Interval::new(12, 16)));
        assert_eq!(idle.leftmost_fit(4, 13), Some(Interval::new(13, 17)));
        assert_eq!(idle.leftmost_fit(19, 0), None);
        assert_eq!(idle.leftmost_fit(3, 6), Some(Interval::new(12, 15)));
    }

    #[test]
    fn span_and_extremes() {
        let s = ss(&[(3, 5), (10, 12)]);
        assert_eq!(s.min_start(), Some(3));
        assert_eq!(s.max_end(), Some(12));
        assert_eq!(s.span(), Some(Interval::new(3, 12)));
    }

    #[test]
    fn from_iterator_collects() {
        let s: SegmentSet = vec![Interval::new(0, 2), Interval::new(2, 4)].into_iter().collect();
        assert_eq!(s, ss(&[(0, 4)]));
    }
}
