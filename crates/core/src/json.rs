//! A minimal JSON value: parser, writer, and typed accessors.
//!
//! The workspace is std-only (the offline build has no serde), and before
//! this module every JSON producer wrote strings by hand while consumers
//! were external (`python3` in CI, Perfetto for traces). The serve line
//! protocol (`docs/serve.md`) and the sweep checkpoint manifest
//! (`docs/sweeps.md`) need both directions in-process — requests are
//! parsed off the wire, the journal and manifests are replayed at
//! recovery — so this module carries a small, total JSON implementation:
//!
//! * [`Json::parse`] accepts any RFC 8259 document (objects, arrays,
//!   strings with escapes, numbers, booleans, null) and returns a
//!   structured error — never panics on malformed input, which matters
//!   because both the TCP socket and the tail of a `kill -9`'d journal
//!   feed it arbitrary bytes;
//! * the `Display` impl writes a canonical form: object keys in insertion
//!   order, numbers via Rust's shortest-roundtrip float formatting —
//!   matching the hand-written producers elsewhere in the workspace, so
//!   `parse ∘ write` is an identity on the protocol's documents.
//!
//! Deliberately not a general-purpose library: no streaming, no
//! borrowed-str zero-copy, no number-precision preservation beyond `f64`
//! (the protocol's integers — job ids, sizes, seeds — stay well inside the
//! 2^53 exact range; ids are `u64` counters starting at 1).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. A `Vec` of pairs, not a map, so writing preserves
    /// insertion order and duplicate-key documents round-trip losslessly
    /// (last key wins on lookup, like serde).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable reason.
    pub why: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.why)
    }
}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integral values print without a fractional part (`3`, not
                // `3.0`), matching the workspace's hand-written emitters.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Convenience builder for object literals in protocol code:
/// `obj([("ok", Json::Bool(true)), ("id", Json::Num(7.0))])`.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a JSON object from a `BTreeMap` (sorted keys).
pub fn obj_sorted(map: BTreeMap<String, Json>) -> Json {
    Json::Obj(map.into_iter().collect())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, why: &str) -> JsonError {
        JsonError { at: self.pos, why: why.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; walk to the next char start).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    /// Parses `uXXXX` (cursor on the `u`), including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("non-hex in \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, why: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"op":"submit","name":"a b","n":20,"k":2,"priority":-3,"exact_ref":false,
                "tags":[1,2.5,null,true],"nested":{"x":"\u00e9\n"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(20));
        assert_eq!(v.get("priority").and_then(Json::as_i64), Some(-3));
        assert_eq!(v.get("exact_ref").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("tags").and_then(Json::as_arr).unwrap().len(), 4);
        assert_eq!(
            v.get("nested").and_then(|n| n.get("x")).and_then(Json::as_str),
            Some("é\n")
        );
    }

    #[test]
    fn write_parse_roundtrips() {
        let v = obj([
            ("ok", Json::Bool(true)),
            ("id", Json::Num(7.0)),
            ("ratio", Json::Num(1.25)),
            ("label", Json::Str("n=8 \"q\" \\ tab\t".into())),
            ("items", Json::Arr(vec![Json::Null, Json::Num(-2.0)])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Integral floats print as integers.
        assert!(text.contains("\"id\":7,"), "{text}");
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "", "{", "}", "{\"a\"}", "{\"a\":}", "[1,", "\"abc", "tru", "1.2.3", "{} x",
            "\"\\u12\"", "\"\\ud800\"", "nul", "--1", "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
    }

    #[test]
    fn duplicate_keys_last_wins_on_lookup() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
