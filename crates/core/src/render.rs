//! ASCII rendering of schedules — Gantt-style charts for examples, docs and
//! debugging. Pure formatting; no behaviour depends on this module.

use crate::job::{JobId, JobSet};
use crate::schedule::Schedule;
use crate::time::{Interval, Time};

/// Options for [`render_gantt`].
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Maximum chart width in characters (time axis is scaled to fit).
    pub width: usize,
    /// Also draw each job's `[release, deadline)` window as dots.
    pub show_windows: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { width: 72, show_windows: true }
    }
}

/// Renders a single-machine view of `schedule` (all machines stacked,
/// grouped by machine) as an ASCII Gantt chart. Each job is one row:
/// `█` where it executes, `·` inside its window (if enabled), spaces
/// elsewhere.
///
/// Rows are sorted by machine, then by first execution time. Returns an
/// empty string for an empty schedule.
pub fn render_gantt(jobs: &JobSet, schedule: &Schedule, opts: RenderOptions) -> String {
    if schedule.is_empty() {
        return String::new();
    }
    // Chart bounds: union of windows (if shown) and executions.
    let mut lo = Time::MAX;
    let mut hi = Time::MIN;
    for (id, a) in schedule.iter() {
        let job = jobs.job(id);
        if opts.show_windows {
            lo = lo.min(job.release);
            hi = hi.max(job.deadline);
        }
        lo = lo.min(a.segs.min_start().expect("non-empty"));
        hi = hi.max(a.segs.max_end().expect("non-empty"));
    }
    let span = (hi - lo).max(1);
    let width = opts.width.max(8);
    // Columns map to half-open time cells of `scale` ticks.
    let scale = (span as f64 / width as f64).max(1.0);
    let col_of = |t: Time| -> usize {
        (((t - lo) as f64 / scale).floor() as usize).min(width.saturating_sub(1))
    };

    let mut rows: Vec<(usize, Time, JobId)> = schedule
        .iter()
        .map(|(id, a)| (a.machine, a.segs.min_start().expect("non-empty"), id))
        .collect();
    rows.sort_unstable();

    let label_w = rows
        .iter()
        .map(|&(m, _, id)| format!("m{m} {id}").len())
        .max()
        .unwrap_or(4);

    let mut out = String::new();
    // Time axis header.
    out.push_str(&format!("{:label_w$} {lo}", ""));
    let axis_tail = format!("{hi}");
    let pad = width.saturating_sub(format!("{lo}").len() + axis_tail.len());
    out.push_str(&" ".repeat(pad));
    out.push_str(&axis_tail);
    out.push('\n');

    let mut last_machine = usize::MAX;
    for (machine, _, id) in rows {
        if machine != last_machine && last_machine != usize::MAX {
            out.push_str(&format!("{:-<w$}\n", "", w = label_w + 1 + width));
        }
        last_machine = machine;
        let job = jobs.job(id);
        let mut line = vec![b' '; width];
        if opts.show_windows {
            let (a, b) = (col_of(job.release), col_of(job.deadline - 1));
            for cell in line.iter_mut().take(b + 1).skip(a) {
                *cell = b'.';
            }
        }
        let segs = schedule.segments(id).expect("row exists");
        for seg in segs.iter() {
            let (a, b) = (col_of(seg.start), col_of(seg.end - 1));
            for cell in line.iter_mut().take(b + 1).skip(a) {
                *cell = b'#';
            }
        }
        out.push_str(&format!(
            "{:label_w$} {}\n",
            format!("m{machine} {id}"),
            String::from_utf8(line).expect("ascii"),
        ));
    }
    out
}

/// Renders the busy/idle structure of one machine as a single line
/// (`#` busy, `.` idle) over `window`.
pub fn render_timeline(schedule: &Schedule, machine: usize, window: Interval, width: usize) -> String {
    let busy = schedule.busy(machine);
    let width = width.max(8);
    let scale = (window.len() as f64 / width as f64).max(1.0);
    (0..width)
        .map(|c| {
            let t = window.start + (c as f64 * scale) as Time;
            if busy.contains_point(t) {
                '#'
            } else {
                '.'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::segs::SegmentSet;

    fn setup() -> (JobSet, Schedule) {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(2, 8, 3, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(
            JobId(0),
            SegmentSet::from_intervals([Interval::new(0, 2), Interval::new(5, 7)]),
        );
        s.assign_single(JobId(1), SegmentSet::from_intervals([Interval::new(2, 5)]));
        (jobs, s)
    }

    #[test]
    fn renders_rows_for_each_job() {
        let (jobs, s) = setup();
        let out = render_gantt(&jobs, &s, RenderOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert!(lines[1].contains("j0"));
        assert!(lines[2].contains("j1"));
        assert!(out.contains('#'));
        assert!(out.contains('.'));
    }

    #[test]
    fn empty_schedule_renders_empty() {
        let (jobs, _) = setup();
        assert_eq!(render_gantt(&jobs, &Schedule::new(), RenderOptions::default()), "");
    }

    #[test]
    fn windows_can_be_hidden() {
        let (jobs, s) = setup();
        let out = render_gantt(
            &jobs,
            &s,
            RenderOptions { width: 40, show_windows: false },
        );
        assert!(!out.contains('.'));
    }

    #[test]
    fn multi_machine_rows_are_separated() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(0, 10, 4, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::singleton(Interval::new(0, 4)));
        s.assign(JobId(1), 1, SegmentSet::singleton(Interval::new(0, 4)));
        let out = render_gantt(&jobs, &s, RenderOptions::default());
        assert!(out.contains("m0 j0"));
        assert!(out.contains("m1 j1"));
        assert!(out.contains("---"), "machine separator expected");
    }

    #[test]
    fn timeline_line_marks_busy_cells() {
        let (_, s) = setup();
        let line = render_timeline(&s, 0, Interval::new(0, 10), 10);
        assert_eq!(line.len(), 10);
        assert_eq!(&line[0..1], "#");
        assert!(line.contains('.'));
        // Idle machine renders all dots.
        let empty = render_timeline(&Schedule::new(), 0, Interval::new(0, 10), 10);
        assert_eq!(empty, "..........");
    }

    #[test]
    fn narrow_width_is_clamped() {
        let (jobs, s) = setup();
        let out = render_gantt(&jobs, &s, RenderOptions { width: 1, show_windows: true });
        assert!(!out.is_empty()); // clamped to the minimum, no panic
    }

    #[test]
    fn long_horizon_scales_down() {
        let jobs: JobSet = vec![Job::new(0, 1_000_000, 500_000, 1.0)].into_iter().collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::singleton(Interval::new(0, 500_000)));
        let out = render_gantt(&jobs, &s, RenderOptions { width: 50, show_windows: true });
        for line in out.lines().skip(1) {
            assert!(line.len() <= 50 + 10, "row too wide: {}", line.len());
        }
    }
}
