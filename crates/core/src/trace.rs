//! Zero-cost structured tracing: typed lifecycle events with Chrome-trace
//! and deterministic logical-trace exporters.
//!
//! Where [`obs`](crate::obs) aggregates (counters, span totals,
//! distributions), `trace` records *individual* events — `(seq, ts, worker,
//! task, phase, kind, class, payload)` — so a single task's journey through
//! the engine (enqueue → dequeue → attempt → chaos site → cache probe →
//! cert → degrade → emit) can be replayed after the fact. Two exporters
//! consume the recorded stream:
//!
//! * [`chrome_json`] — the Chrome trace-event format (load the file in
//!   Perfetto / `chrome://tracing`): one track per worker thread, `B`/`E`
//!   span pairs and `i` instants, microsecond timestamps.
//! * [`logical_text`] — a timestamp-free rendering of only the
//!   [`TraceClass::Logical`] events, grouped per task and ordered by the
//!   global sequence number. For deterministic engine configurations this
//!   text is byte-identical across thread counts (see
//!   `docs/observability.md` for the exact contract).
//!
//! Like `obs`, the layer is **zero-cost when off**: the `trace` cargo
//! feature (default: off) gates the macro expansions. With the feature off,
//! [`trace_event!`](crate::trace_event) expands to `()` without evaluating
//! its arguments, [`obs_span!`](crate::obs_span) expands to its body
//! unchanged, and the recording functions in this module become empty inline
//! stubs, so call sites need no `cfg` of their own.
//!
//! Events are buffered in per-thread `Vec`s (no locks on the hot path
//! except a global relaxed fetch-add for the sequence number) and flushed
//! into a global sink when a buffer fills, when its thread exits, or on
//! [`drain`]. Tests must serialise their recording windows with
//! [`capture`], which mirrors `obs::measure`.

#[cfg(feature = "trace")]
use std::cell::RefCell;
#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
#[cfg(feature = "trace")]
use std::sync::{Mutex, MutexGuard, OnceLock};
#[cfg(feature = "trace")]
use std::time::Instant;

/// Task id carried by events recorded outside any task scope.
pub const NO_TASK: u64 = u64::MAX;

/// Whether tracing is compiled in (the `trace` cargo feature).
pub const fn enabled() -> bool {
    cfg!(feature = "trace")
}

/// Span boundary or point event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Span start; must be balanced by an [`End`](TraceKind::End) on the
    /// same thread (guards guarantee this, including during unwinding).
    Begin,
    /// Span end.
    End,
    /// A point event with no duration.
    Instant,
}

/// Determinism class of an event; decides whether it appears in the
/// logical trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClass {
    /// Part of the deterministic task lifecycle: for a fixed batch and
    /// config, logical events fire identically regardless of `--threads`.
    Logical,
    /// Timing- or schedule-dependent (cache races, backoff, stage
    /// wall-clock): excluded from the logical trace, kept in Chrome output.
    Timing,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global sequence number (allocation order across all threads).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch (first recorded event).
    pub ts_ns: u64,
    /// Recording thread's worker id (assigned on first record per thread).
    pub worker: u32,
    /// Task key the event belongs to, or [`NO_TASK`].
    pub task: u64,
    /// Phase name, e.g. `"attempt"` or `"engine.solve.time.bounded"`.
    pub phase: &'static str,
    /// Span boundary or instant.
    pub kind: TraceKind,
    /// Logical (deterministic) or timing-dependent.
    pub class: TraceClass,
    /// Numeric payload (0 when unused).
    pub value: u64,
    /// Optional text payload (task label, emit status, cert stage).
    pub text: Option<Box<str>>,
}

// ---------------------------------------------------------------------------
// Recording (feature on)
// ---------------------------------------------------------------------------

#[cfg(feature = "trace")]
mod imp {
    use super::*;

    /// Per-thread buffer flushed into the global sink at this size.
    const FLUSH_AT: usize = 4096;

    static SEQ: AtomicU64 = AtomicU64::new(0);
    static WORKER_IDS: AtomicU32 = AtomicU32::new(0);
    static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    /// Serialises capture windows across test threads; see [`capture`].
    static WINDOW: Mutex<()> = Mutex::new(());
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    struct Local {
        worker: u32,
        task: u64,
        buf: Vec<TraceEvent>,
    }

    impl Local {
        fn new() -> Self {
            Local {
                worker: WORKER_IDS.fetch_add(1, Ordering::Relaxed),
                task: NO_TASK,
                buf: Vec::new(),
            }
        }
    }

    impl Drop for Local {
        fn drop(&mut self) {
            flush(&mut self.buf);
        }
    }

    thread_local! {
        static LOCAL: RefCell<Local> = RefCell::new(Local::new());
    }

    fn sink_lock() -> MutexGuard<'static, Vec<TraceEvent>> {
        match SINK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn flush(buf: &mut Vec<TraceEvent>) {
        if !buf.is_empty() {
            sink_lock().append(buf);
        }
    }

    fn ts_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Records one event on the current thread. Drops the event silently if
    /// the thread's buffer is already being destroyed (thread teardown).
    pub fn record(
        phase: &'static str,
        kind: TraceKind,
        class: TraceClass,
        value: u64,
        text: Option<&str>,
    ) {
        let ts_ns = ts_ns();
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let _ = LOCAL.try_with(|cell| {
            let mut l = cell.borrow_mut();
            let ev = TraceEvent {
                seq,
                ts_ns,
                worker: l.worker,
                task: l.task,
                phase,
                kind,
                class,
                value,
                text: text.map(Box::from),
            };
            // The flight recorder mirrors the full stream, keeping only the
            // newest events (same seq/worker/task attribution as the trace).
            #[cfg(feature = "telemetry")]
            crate::flight::push(ev.clone());
            l.buf.push(ev);
            if l.buf.len() >= FLUSH_AT {
                flush(&mut l.buf);
            }
        });
    }

    fn set_task(task: u64) -> u64 {
        LOCAL
            .try_with(|cell| {
                let mut l = cell.borrow_mut();
                std::mem::replace(&mut l.task, task)
            })
            .unwrap_or(NO_TASK)
    }

    /// Guard restoring the previous task context (and closing the task span
    /// if one was opened) on drop. See [`task_scope`] / [`task_context`].
    #[must_use = "the task context ends when the guard drops"]
    pub struct TaskScope {
        prev: u64,
        span: bool,
    }

    impl Drop for TaskScope {
        fn drop(&mut self) {
            if self.span {
                record("task", TraceKind::End, TraceClass::Logical, 0, None);
            }
            set_task(self.prev);
        }
    }

    /// Opens a logical `"task"` span for `task` (with `label` as text
    /// payload) and tags every event recorded on this thread with `task`
    /// until the guard drops.
    pub fn task_scope(task: u64, label: &str) -> TaskScope {
        let prev = set_task(task);
        record("task", TraceKind::Begin, TraceClass::Logical, 0, Some(label));
        TaskScope { prev, span: true }
    }

    /// Tags events with `task` without opening a span (e.g. enqueue marks
    /// recorded from the submitting thread).
    pub fn task_context(task: u64) -> TaskScope {
        let prev = set_task(task);
        TaskScope { prev, span: false }
    }

    /// Guard emitting the span's [`End`](TraceKind::End) event on drop
    /// (including during panic unwinding). Created by
    /// [`obs_span!`](crate::obs_span) — prefer the macro.
    #[must_use = "the span ends when the guard drops"]
    pub struct SpanGuard {
        phase: &'static str,
        class: TraceClass,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            record(self.phase, TraceKind::End, self.class, 0, None);
        }
    }

    /// Opens a span: emits the [`Begin`](TraceKind::Begin) event now and the
    /// matching end when the returned guard drops.
    pub fn span(phase: &'static str, class: TraceClass) -> SpanGuard {
        record(phase, TraceKind::Begin, class, 0, None);
        SpanGuard { phase, class }
    }

    /// Records a point event. Used by [`trace_event!`](crate::trace_event) —
    /// prefer the macro.
    pub fn instant(phase: &'static str, class: TraceClass, value: u64, text: Option<&str>) {
        record(phase, TraceKind::Instant, class, value, text);
    }

    /// Flushes the current thread's buffer and takes every event recorded so
    /// far, in arbitrary cross-thread order (sort by `seq` for a global
    /// order). Buffers of *live* other threads that have not reached their
    /// flush threshold are not visible — drain after joining workers.
    pub fn drain() -> Vec<TraceEvent> {
        let _ = LOCAL.try_with(|cell| flush(&mut cell.borrow_mut().buf));
        std::mem::take(&mut *sink_lock())
    }

    /// Runs `f` in an exclusive, freshly-drained trace window and returns
    /// its output together with the events it recorded. The only sound way
    /// to assert on traces from tests (the sink is process-global and the
    /// test harness is multi-threaded).
    pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<TraceEvent>) {
        let _guard = match WINDOW.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        drop(drain());
        let out = f();
        let events = drain();
        (out, events)
    }
}

#[cfg(feature = "trace")]
pub use imp::{capture, drain, instant, record, span, task_context, task_scope, SpanGuard, TaskScope};

// ---------------------------------------------------------------------------
// Stubs (feature off) — same signatures for the items engine code calls
// directly, so call sites need no cfg.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "trace"))]
mod imp {
    /// Inert stand-in for the tracing task guard (feature off).
    #[must_use = "the task context ends when the guard drops"]
    pub struct TaskScope;

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn task_scope(_task: u64, _label: &str) -> TaskScope {
        TaskScope
    }

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn task_context(_task: u64) -> TaskScope {
        TaskScope
    }
}

#[cfg(not(feature = "trace"))]
pub use imp::{task_context, task_scope, TaskScope};

// ---------------------------------------------------------------------------
// Exporters (feature on; exporters are meaningless without recorded events)
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping for text payloads and labels.
#[cfg(any(feature = "trace", feature = "telemetry"))]
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders events in the Chrome trace-event format (a JSON object with a
/// `traceEvents` array), loadable in Perfetto / `chrome://tracing`.
///
/// Tracks: `pid` is always 1, `tid` is the recording worker id. Spans use
/// `ph: "B"`/`"E"` pairs, instants `ph: "i"` with thread scope. Timestamps
/// are microseconds (fractional) from the process trace epoch. The task
/// key, numeric value, and text payload are carried in `args`.
///
/// Available under either the `trace` feature (full-run exports) or the
/// `telemetry` feature (flight-recorder dumps).
#[cfg(any(feature = "trace", feature = "telemetry"))]
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.worker, e.seq));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.kind {
            TraceKind::Begin => "B",
            TraceKind::End => "E",
            TraceKind::Instant => "i",
        };
        let cat = match e.class {
            TraceClass::Logical => "logical",
            TraceClass::Timing => "timing",
        };
        out.push_str("\n{\"name\":\"");
        escape(e.phase, &mut out);
        out.push_str(&format!(
            "\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
            e.worker,
            e.ts_ns as f64 / 1000.0
        ));
        if e.kind == TraceKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if e.kind != TraceKind::End {
            out.push_str(",\"args\":{");
            let mut first = true;
            if e.task != NO_TASK {
                out.push_str(&format!("\"task\":{}", e.task));
                first = false;
            }
            if e.value != 0 {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("\"value\":{}", e.value));
                first = false;
            }
            if let Some(t) = &e.text {
                if !first {
                    out.push(',');
                }
                out.push_str("\"text\":\"");
                escape(t, &mut out);
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the deterministic logical trace: only
/// [`TraceClass::Logical`] events that belong to a task, grouped per task
/// (ascending key) and ordered within a task by the global sequence number,
/// with every timestamp/worker/sequence field stripped.
///
/// Within one task, events are recorded either by the submitting thread
/// (before workers spawn) or by the single worker that claimed the task, so
/// per-task sequence order equals program order — the rendered text is a
/// pure function of the batch for deterministic configurations, regardless
/// of thread count. See `docs/observability.md` for the contract and its
/// exclusions (real deadlines, duplicate-task cache hits).
#[cfg(feature = "trace")]
pub fn logical_text(events: &[TraceEvent]) -> String {
    let mut logical: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.class == TraceClass::Logical && e.task != NO_TASK)
        .collect();
    logical.sort_by_key(|e| (e.task, e.seq));
    let mut out = String::from("# pobp logical trace v1\n");
    for e in logical {
        out.push_str(&format!("task {} ", e.task));
        match e.kind {
            TraceKind::Begin => {
                out.push_str("begin ");
            }
            TraceKind::End => {
                out.push_str("end ");
            }
            TraceKind::Instant => {}
        }
        out.push_str(e.phase);
        if e.value != 0 {
            out.push_str(&format!(" value={}", e.value));
        }
        if let Some(t) = &e.text {
            out.push_str(" \"");
            // Logical text is line-oriented; keep payloads on one line.
            for c in t.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Records a point trace event: `trace_event!("phase")`,
/// `trace_event!("phase", value)`, or `trace_event!("phase", text: expr)`
/// record a [`TraceClass::Logical`] instant; prefix the phase with `timing`
/// (e.g. `trace_event!(timing "cache.ref_hit")`) for a
/// [`TraceClass::Timing`] one. With the `trace` feature off this expands to
/// `()` and the payload expressions are **not evaluated**.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! trace_event {
    (timing $phase:literal) => {
        $crate::trace::instant($phase, $crate::trace::TraceClass::Timing, 0u64, ::core::option::Option::None)
    };
    (timing $phase:literal, $value:expr) => {
        $crate::trace::instant($phase, $crate::trace::TraceClass::Timing, ($value) as u64, ::core::option::Option::None)
    };
    ($phase:literal) => {
        $crate::trace::instant($phase, $crate::trace::TraceClass::Logical, 0u64, ::core::option::Option::None)
    };
    ($phase:literal, text: $text:expr) => {
        $crate::trace::instant($phase, $crate::trace::TraceClass::Logical, 0u64, ::core::option::Option::Some(&$text))
    };
    ($phase:literal, $value:expr) => {
        $crate::trace::instant($phase, $crate::trace::TraceClass::Logical, ($value) as u64, ::core::option::Option::None)
    };
}

/// Records a point trace event: `trace_event!("phase")`,
/// `trace_event!("phase", value)`, or `trace_event!("phase", text: expr)`
/// record a [`TraceClass::Logical`] instant; prefix the phase with `timing`
/// (e.g. `trace_event!(timing "cache.ref_hit")`) for a
/// [`TraceClass::Timing`] one. With `trace` off but `telemetry` on, the
/// event goes only to the bounded flight-recorder ring
/// ([`flight`](crate::flight)).
#[cfg(all(not(feature = "trace"), feature = "telemetry"))]
#[macro_export]
macro_rules! trace_event {
    (timing $phase:literal) => {
        $crate::flight::instant($phase, $crate::trace::TraceClass::Timing, 0u64, ::core::option::Option::None)
    };
    (timing $phase:literal, $value:expr) => {
        $crate::flight::instant($phase, $crate::trace::TraceClass::Timing, ($value) as u64, ::core::option::Option::None)
    };
    ($phase:literal) => {
        $crate::flight::instant($phase, $crate::trace::TraceClass::Logical, 0u64, ::core::option::Option::None)
    };
    ($phase:literal, text: $text:expr) => {
        $crate::flight::instant($phase, $crate::trace::TraceClass::Logical, 0u64, ::core::option::Option::Some(&$text))
    };
    ($phase:literal, $value:expr) => {
        $crate::flight::instant($phase, $crate::trace::TraceClass::Logical, ($value) as u64, ::core::option::Option::None)
    };
}

/// Records a point trace event: `trace_event!("phase")`,
/// `trace_event!("phase", value)`, or `trace_event!("phase", text: expr)`
/// record a [`TraceClass::Logical`] instant; prefix the phase with `timing`
/// (e.g. `trace_event!(timing "cache.ref_hit")`) for a
/// [`TraceClass::Timing`] one. With the `trace` feature off this expands to
/// `()` and the payload expressions are **not evaluated**.
#[cfg(all(not(feature = "trace"), not(feature = "telemetry")))]
#[macro_export]
macro_rules! trace_event {
    ($($args:tt)*) => {
        ()
    };
}

/// Wraps an expression in a trace span: `obs_span!("phase", { body })`
/// evaluates to the body's value, emitting begin/end events around it (the
/// end fires even on early return or panic, via a drop guard). The span is
/// [`TraceClass::Logical`]; use `obs_span!(timing "phase", { body })` for a
/// [`TraceClass::Timing`] span. With the `trace` feature off this expands
/// to the body expression unchanged — the body always runs.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! obs_span {
    (timing $phase:literal, $body:expr) => {{
        let __trace_guard = $crate::trace::span($phase, $crate::trace::TraceClass::Timing);
        $body
    }};
    ($phase:literal, $body:expr) => {{
        let __trace_guard = $crate::trace::span($phase, $crate::trace::TraceClass::Logical);
        $body
    }};
}

/// Wraps an expression in a trace span: `obs_span!("phase", { body })`
/// evaluates to the body's value, emitting begin/end events around it (the
/// end fires even on early return or panic, via a drop guard). With `trace`
/// off but `telemetry` on, the span's begin/end events go only to the
/// bounded flight-recorder ring ([`flight`](crate::flight)).
#[cfg(all(not(feature = "trace"), feature = "telemetry"))]
#[macro_export]
macro_rules! obs_span {
    (timing $phase:literal, $body:expr) => {{
        let __flight_guard = $crate::flight::span($phase, $crate::trace::TraceClass::Timing);
        $body
    }};
    ($phase:literal, $body:expr) => {{
        let __flight_guard = $crate::flight::span($phase, $crate::trace::TraceClass::Logical);
        $body
    }};
}

/// Wraps an expression in a trace span: `obs_span!("phase", { body })`
/// evaluates to the body's value, emitting begin/end events around it (the
/// end fires even on early return or panic, via a drop guard). The span is
/// [`TraceClass::Logical`]; use `obs_span!(timing "phase", { body })` for a
/// [`TraceClass::Timing`] span. With the `trace` feature off this expands
/// to the body expression unchanged — the body always runs.
#[cfg(all(not(feature = "trace"), not(feature = "telemetry")))]
#[macro_export]
macro_rules! obs_span {
    (timing $phase:literal, $body:expr) => {
        $body
    };
    ($phase:literal, $body:expr) => {
        $body
    };
}

#[cfg(test)]
mod tests {
    #[cfg(feature = "trace")]
    use super::*;

    #[cfg(feature = "trace")]
    #[test]
    fn spans_and_instants_are_recorded_in_order() {
        let ((), events) = capture(|| {
            let _t = task_scope(3, "t3");
            let out = crate::obs_span!("attempt", {
                crate::trace_event!("chaos.flaky", 2);
                7
            });
            assert_eq!(out, 7);
            crate::trace_event!("emit", text: "ok");
        });
        let phases: Vec<(&str, TraceKind)> = events.iter().map(|e| (e.phase, e.kind)).collect();
        assert_eq!(
            phases,
            vec![
                ("task", TraceKind::Begin),
                ("attempt", TraceKind::Begin),
                ("chaos.flaky", TraceKind::Instant),
                ("attempt", TraceKind::End),
                ("emit", TraceKind::Instant),
                ("task", TraceKind::End),
            ]
        );
        assert!(events.iter().all(|e| e.task == 3));
        assert_eq!(events[0].text.as_deref(), Some("t3"));
        assert_eq!(events[2].value, 2);
        assert_eq!(events[4].text.as_deref(), Some("ok"));
        // seq strictly increasing on one thread; timestamps monotone.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn span_end_fires_during_unwind() {
        let (result, events) = capture(|| {
            std::panic::catch_unwind(|| {
                crate::obs_span!("attempt", {
                    panic!("boom");
                })
            })
        });
        assert!(result.is_err());
        let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::Begin, TraceKind::End]);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn task_context_tags_without_span() {
        let ((), events) = capture(|| {
            let _c = task_context(9);
            crate::trace_event!("task.enqueue");
        });
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].task, events[0].phase), (9, "task.enqueue"));
        // Context restored after the guard drops.
        let ((), after) = capture(|| crate::trace_event!("task.enqueue"));
        assert_eq!(after[0].task, NO_TASK);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn chrome_json_shape() {
        let ((), events) = capture(|| {
            let _t = task_scope(0, "lab\"el");
            crate::trace_event!(timing "cache.ref_hit");
        });
        let j = chrome_json(&events);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"cat\":\"timing\""));
        assert!(j.contains("lab\\\"el"));
        assert!(j.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn logical_text_strips_timing_and_untasked_events() {
        let ((), events) = capture(|| {
            crate::trace_event!("untasked");
            let _t = task_scope(1, "one");
            crate::trace_event!(timing "cache.probe");
            crate::trace_event!("retry", 2);
            crate::trace_event!("emit", text: "ok");
        });
        let text = logical_text(&events);
        assert_eq!(
            text,
            "# pobp logical trace v1\n\
             task 1 begin task \"one\"\n\
             task 1 retry value=2\n\
             task 1 emit \"ok\"\n\
             task 1 end task\n"
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn logical_text_groups_by_task_key() {
        let ((), events) = capture(|| {
            for task in [2u64, 0, 1] {
                let _c = task_context(task);
                crate::trace_event!("task.enqueue");
            }
        });
        let text = logical_text(&events);
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(
            lines,
            vec!["task 0 task.enqueue", "task 1 task.enqueue", "task 2 task.enqueue"]
        );
    }

    #[cfg(all(not(feature = "trace"), not(feature = "telemetry")))]
    #[test]
    fn macros_are_inert_when_disabled() {
        // trace_event! must not evaluate its arguments...
        #[allow(unreachable_code, clippy::diverging_sub_expression)]
        fn not_evaluated() {
            crate::trace_event!("core.test.never", panic!("evaluated"));
            crate::trace_event!(timing "core.test.never", panic!("evaluated"));
        }
        not_evaluated();
        // ...while obs_span! must still evaluate its body.
        let out = crate::obs_span!("core.test.span", { 40 + 2 });
        assert_eq!(out, 42);
        let out = crate::obs_span!(timing "core.test.span", { out + 1 });
        assert_eq!(out, 43);
        assert!(!super::enabled());
        // Stub guards compile and drop without effect.
        let _scope = super::task_scope(0, "x");
        let _ctx = super::task_context(1);
    }
}
