//! SVG rendering of schedules — self-contained vector Gantt charts with
//! windows, segments, and machine lanes. No dependencies; the output is a
//! plain SVG 1.1 string suitable for embedding in docs.

use crate::job::{JobId, JobSet};
use crate::schedule::Schedule;
use crate::time::Time;

/// Options for [`render_svg`].
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Total image width in pixels.
    pub width: u32,
    /// Height of one job row in pixels.
    pub row_height: u32,
    /// Draw the `[release, deadline)` window behind each job's bar.
    pub show_windows: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions { width: 800, row_height: 22, show_windows: true }
    }
}

/// A small qualitative palette (cycled per job).
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders the schedule as an SVG document (one row per scheduled job,
/// grouped by machine, time on the x-axis). Returns an empty `<svg/>`
/// element for an empty schedule.
pub fn render_svg(jobs: &JobSet, schedule: &Schedule, opts: SvgOptions) -> String {
    let label_w = 64u32;
    if schedule.is_empty() {
        return format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"24\"/>\n",
            w = opts.width
        );
    }
    // Bounds.
    let mut lo = Time::MAX;
    let mut hi = Time::MIN;
    for (id, a) in schedule.iter() {
        let job = jobs.job(id);
        if opts.show_windows {
            lo = lo.min(job.release);
            hi = hi.max(job.deadline);
        }
        lo = lo.min(a.segs.min_start().expect("non-empty"));
        hi = hi.max(a.segs.max_end().expect("non-empty"));
    }
    let span = (hi - lo).max(1) as f64;
    let plot_w = opts.width.saturating_sub(label_w).max(64) as f64;
    let x_of = |t: Time| label_w as f64 + (t - lo) as f64 / span * plot_w;

    let mut rows: Vec<(usize, Time, JobId)> = schedule
        .iter()
        .map(|(id, a)| (a.machine, a.segs.min_start().expect("non-empty"), id))
        .collect();
    rows.sort_unstable();

    let rh = opts.row_height.max(10);
    let height = rh * rows.len() as u32 + 28;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n",
        opts.width
    );
    // Time axis labels.
    svg.push_str(&format!(
        "  <text x=\"{label_w}\" y=\"12\" fill=\"#555\">{lo}</text>\n\
         \x20 <text x=\"{}\" y=\"12\" fill=\"#555\" text-anchor=\"end\">{hi}</text>\n",
        opts.width - 4
    ));
    let top = 18u32;
    for (row, &(machine, _, id)) in rows.iter().enumerate() {
        let y = top + row as u32 * rh;
        let color = PALETTE[id.0 % PALETTE.len()];
        let job = jobs.job(id);
        // Label.
        svg.push_str(&format!(
            "  <text x=\"2\" y=\"{}\" fill=\"#333\">{}</text>\n",
            y + rh * 2 / 3,
            esc(&format!("m{machine} {id}"))
        ));
        // Window backdrop.
        if opts.show_windows {
            let (x0, x1) = (x_of(job.release), x_of(job.deadline));
            svg.push_str(&format!(
                "  <rect x=\"{x0:.1}\" y=\"{}\" width=\"{:.1}\" height=\"{}\" \
                 fill=\"{color}\" opacity=\"0.15\"/>\n",
                y + 2,
                (x1 - x0).max(1.0),
                rh - 4
            ));
        }
        // Segments.
        for seg in schedule.segments(id).expect("row exists").iter() {
            let (x0, x1) = (x_of(seg.start), x_of(seg.end));
            svg.push_str(&format!(
                "  <rect x=\"{x0:.1}\" y=\"{}\" width=\"{:.1}\" height=\"{}\" \
                 fill=\"{color}\"><title>{}: [{}, {})</title></rect>\n",
                y + 2,
                (x1 - x0).max(1.0),
                rh - 4,
                esc(&id.to_string()),
                seg.start,
                seg.end
            ));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::segs::SegmentSet;
    use crate::time::Interval;

    fn setup() -> (JobSet, Schedule) {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(2, 8, 3, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign_single(
            JobId(0),
            SegmentSet::from_intervals([Interval::new(0, 2), Interval::new(5, 7)]),
        );
        s.assign_single(JobId(1), SegmentSet::from_intervals([Interval::new(2, 5)]));
        (jobs, s)
    }

    #[test]
    fn produces_wellformed_svg() {
        let (jobs, s) = setup();
        let svg = render_svg(&jobs, &s, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced rect tags: 2 windows + 3 segments = 5 rects.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("m0 j0"));
        assert!(svg.contains("m0 j1"));
        // Tooltips carry the exact segment bounds.
        assert!(svg.contains("[0, 2)"));
        assert!(svg.contains("[5, 7)"));
    }

    #[test]
    fn empty_schedule_is_empty_svg() {
        let (jobs, _) = setup();
        let svg = render_svg(&jobs, &Schedule::new(), SvgOptions::default());
        assert!(svg.contains("<svg"));
        assert!(!svg.contains("<rect"));
    }

    #[test]
    fn windows_can_be_hidden() {
        let (jobs, s) = setup();
        let svg = render_svg(
            &jobs,
            &s,
            SvgOptions { width: 400, row_height: 16, show_windows: false },
        );
        assert_eq!(svg.matches("<rect").count(), 3); // segments only
        assert!(!svg.contains("opacity"));
    }

    #[test]
    fn axis_labels_present() {
        let (jobs, s) = setup();
        let svg = render_svg(&jobs, &s, SvgOptions::default());
        // lo = 0, hi = 10 (windows shown).
        assert!(svg.contains(">0</text>"));
        assert!(svg.contains(">10</text>"));
    }

    #[test]
    fn negative_times_render() {
        let jobs: JobSet = vec![Job::new(-8, 4, 3, 1.0)].into_iter().collect();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::singleton(Interval::new(-8, -5)));
        let svg = render_svg(&jobs, &s, SvgOptions::default());
        assert!(svg.contains(">-8</text>"));
        assert!(svg.contains("[-8, -5)"));
    }
}
