//! Jobs and job sets (§2.1 of the paper).

use crate::time::{Interval, Time};

/// Job values. The experiments only ever *compare and sum* values; all
/// constructions in this repository use integer-valued `f64`s (exact up to
/// 2^53), so sums and ratios are exact. See `DESIGN.md` §4.
pub type Value = f64;

/// Identifier of a job inside a [`JobSet`] (its index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub usize);

impl std::fmt::Debug for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A job `⟨r_j, d_j, p_j⟩` with a value, as in §2.1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Release time `r_j`: the job may not run before this tick.
    pub release: Time,
    /// Deadline `d_j`: the job must finish by this tick.
    pub deadline: Time,
    /// Length (processing time) `p_j > 0`.
    pub length: Time,
    /// Value `val(j) > 0`.
    pub value: Value,
}

impl Job {
    /// Creates a job, validating `p_j > 0`, `val(j) > 0` and `p_j ≤ d_j - r_j`.
    ///
    /// # Panics
    /// Panics when the job could never be scheduled (window shorter than the
    /// length) or has a non-positive length/value. Use [`Job::try_new`] for a
    /// fallible variant.
    pub fn new(release: Time, deadline: Time, length: Time, value: Value) -> Self {
        Self::try_new(release, deadline, length, value).expect("invalid job")
    }

    /// Fallible constructor; see [`Job::new`].
    ///
    /// All derived quantities are computed with checked arithmetic: a job
    /// whose `d_j − r_j` or `r_j + p_j` does not fit in an `i64` is rejected
    /// with [`JobError::TimeOverflow`] instead of silently wrapping past the
    /// `p ≤ d − r` check.
    pub fn try_new(
        release: Time,
        deadline: Time,
        length: Time,
        value: Value,
    ) -> Result<Self, JobError> {
        if length <= 0 {
            return Err(JobError::NonPositiveLength(length));
        }
        if value.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !value.is_finite() {
            return Err(JobError::NonPositiveValue(value));
        }
        let window = deadline
            .checked_sub(release)
            .ok_or(JobError::TimeOverflow { expr: "deadline - release" })?;
        release
            .checked_add(length)
            .ok_or(JobError::TimeOverflow { expr: "release + length" })?;
        if window < length {
            return Err(JobError::WindowTooSmall { window, length });
        }
        Ok(Job { release, deadline, length, value })
    }

    /// The time window `[r_j, d_j)` the job must execute within.
    #[inline]
    pub fn window(&self) -> Interval {
        Interval::new(self.release, self.deadline)
    }

    /// Window length `w(j) = d_j - r_j` (§4.3.1).
    #[inline]
    pub fn window_len(&self) -> Time {
        self.deadline - self.release
    }

    /// Relative laxity `λ_j = (d_j - r_j) / p_j` (Definition 4.4).
    ///
    /// Always ≥ 1 for a valid job.
    #[inline]
    pub fn laxity(&self) -> f64 {
        self.window_len() as f64 / self.length as f64
    }

    /// Whether the job is *strict* for a given `k`, i.e. `λ_j ≤ k + 1`
    /// (the `J_1` class of §4.3).
    #[inline]
    pub fn is_strict(&self, k: u32) -> bool {
        // λ ≤ k+1  ⟺  window ≤ (k+1)·p, exactly, in integers.
        self.window_len() <= (k as Time + 1) * self.length
    }

    /// Density `σ_j = val(j) / p_j` (§4.3.2) — the sort key of LSA.
    #[inline]
    pub fn density(&self) -> f64 {
        self.value / self.length as f64
    }
}

/// Errors from [`Job::try_new`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobError {
    /// `p_j ≤ 0`.
    NonPositiveLength(Time),
    /// `val(j) ≤ 0` or not finite.
    NonPositiveValue(Value),
    /// `d_j - r_j < p_j`: the job cannot fit in its own window.
    WindowTooSmall {
        /// `d_j - r_j`.
        window: Time,
        /// `p_j`.
        length: Time,
    },
    /// A derived time quantity (`d_j − r_j` or `r_j + p_j`) overflows `i64`.
    TimeOverflow {
        /// The expression that overflowed.
        expr: &'static str,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::NonPositiveLength(p) => write!(f, "job length {p} is not positive"),
            JobError::NonPositiveValue(v) => write!(f, "job value {v} is not positive"),
            JobError::WindowTooSmall { window, length } => {
                write!(f, "window {window} is shorter than length {length}")
            }
            JobError::TimeOverflow { expr } => {
                write!(f, "{expr} overflows the i64 time range")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// An indexed set of jobs `J`; `JobId(i)` names the `i`-th job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    /// The empty job set.
    pub fn new() -> Self {
        JobSet { jobs: Vec::new() }
    }

    /// Builds a set from jobs in order; `JobId(i)` is the `i`-th element.
    pub fn from_jobs(jobs: Vec<Job>) -> Self {
        JobSet { jobs }
    }

    /// Appends a job, returning its id.
    pub fn push(&mut self, job: Job) -> JobId {
        self.jobs.push(job);
        JobId(self.jobs.len() - 1)
    }

    /// Number of jobs `n = |J|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job named by `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.0]
    }

    /// The job named by `id`, if in range.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id.0)
    }

    /// Iterates `(JobId, &Job)` in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (JobId, &Job)> + Clone {
        self.jobs.iter().enumerate().map(|(i, j)| (JobId(i), j))
    }

    /// All job ids in order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = JobId> + Clone + use<> {
        (0..self.jobs.len()).map(JobId)
    }

    /// Total value `val(J) = Σ val(j)`.
    pub fn total_value(&self) -> Value {
        self.jobs.iter().map(|j| j.value).sum()
    }

    /// Total value of a subset of the jobs.
    pub fn value_of<'a, I: IntoIterator<Item = &'a JobId>>(&self, ids: I) -> Value {
        ids.into_iter().map(|id| self.job(*id).value).sum()
    }

    /// The length ratio `P = max_j p_j / min_j p_j` (≥ 1), or `None` when
    /// the set is empty.
    pub fn length_ratio(&self) -> Option<f64> {
        let max = self.jobs.iter().map(|j| j.length).max()?;
        let min = self.jobs.iter().map(|j| j.length).min()?;
        Some(max as f64 / min as f64)
    }

    /// Maximal relative laxity `λ_max` (Definition 4.4), or `None` when empty.
    pub fn max_laxity(&self) -> Option<f64> {
        self.jobs.iter().map(Job::laxity).fold(None, |acc, l| {
            Some(match acc {
                None => l,
                Some(a) => a.max(l),
            })
        })
    }

    /// Earliest release time, or `None` when empty.
    pub fn min_release(&self) -> Option<Time> {
        self.jobs.iter().map(|j| j.release).min()
    }

    /// Latest deadline, or `None` when empty.
    pub fn max_deadline(&self) -> Option<Time> {
        self.jobs.iter().map(|j| j.deadline).max()
    }

    /// The horizon `[min release, max deadline)`, or `None` when empty.
    pub fn horizon(&self) -> Option<Interval> {
        Some(Interval::new(self.min_release()?, self.max_deadline()?))
    }

    /// Splits job ids into strict (`λ ≤ k+1`) and lax (`λ > k+1`) classes —
    /// the `J_1` / `J_2` partition of Algorithm 3.
    ///
    /// Jobs with `λ = k+1` exactly land in the strict class (the paper
    /// includes the boundary in both and the choice does not affect bounds).
    pub fn split_by_laxity(&self, k: u32) -> (Vec<JobId>, Vec<JobId>) {
        let mut strict = Vec::new();
        let mut lax = Vec::new();
        for (id, job) in self.iter() {
            if job.is_strict(k) {
                strict.push(id);
            } else {
                lax.push(id);
            }
        }
        (strict, lax)
    }

    /// The sub-multiset of jobs named by `ids`, re-indexed from 0, together
    /// with the mapping from new ids back to the originals.
    pub fn subset(&self, ids: &[JobId]) -> (JobSet, Vec<JobId>) {
        let jobs = ids.iter().map(|id| *self.job(*id)).collect();
        (JobSet::from_jobs(jobs), ids.to_vec())
    }
}

impl std::ops::Index<JobId> for JobSet {
    type Output = Job;
    fn index(&self, id: JobId) -> &Job {
        &self.jobs[id.0]
    }
}

impl FromIterator<Job> for JobSet {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        JobSet { jobs: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_validation() {
        assert!(Job::try_new(0, 10, 10, 1.0).is_ok());
        assert!(matches!(
            Job::try_new(0, 9, 10, 1.0),
            Err(JobError::WindowTooSmall { window: 9, length: 10 })
        ));
        assert!(matches!(Job::try_new(0, 10, 0, 1.0), Err(JobError::NonPositiveLength(0))));
        assert!(matches!(Job::try_new(0, 10, 5, 0.0), Err(JobError::NonPositiveValue(_))));
        assert!(matches!(
            Job::try_new(0, 10, 5, f64::NAN),
            Err(JobError::NonPositiveValue(_))
        ));
        assert!(matches!(
            Job::try_new(0, 10, 5, f64::INFINITY),
            Err(JobError::NonPositiveValue(_))
        ));
    }

    #[test]
    fn extreme_times_are_rejected_not_wrapped() {
        // deadline − release wraps: i64::MAX − (−2) overflows. Before the
        // checked arithmetic this produced a bogus negative window that the
        // `p ≤ d − r` check accepted or rejected arbitrarily.
        assert!(matches!(
            Job::try_new(-2, i64::MAX, 1, 1.0),
            Err(JobError::TimeOverflow { expr: "deadline - release" })
        ));
        assert!(matches!(
            Job::try_new(i64::MIN, 10, 1, 1.0),
            Err(JobError::TimeOverflow { expr: "deadline - release" })
        ));
        // release + length wraps even though the window subtraction is fine.
        assert!(matches!(
            Job::try_new(i64::MAX - 1, i64::MAX, 2, 1.0),
            Err(JobError::TimeOverflow { .. })
        ));
        // Large but representable values still work.
        assert!(Job::try_new(0, i64::MAX, 5, 1.0).is_ok());
        let err = Job::try_new(-2, i64::MAX, 1, 1.0).unwrap_err();
        assert!(err.to_string().contains("deadline - release"), "{err}");
    }

    #[test]
    fn laxity_and_strictness() {
        let tight = Job::new(0, 10, 10, 1.0);
        assert_eq!(tight.laxity(), 1.0);
        assert!(tight.is_strict(0));
        assert!(tight.is_strict(3));

        let lax = Job::new(0, 100, 10, 1.0);
        assert_eq!(lax.laxity(), 10.0);
        assert!(!lax.is_strict(1)); // λ = 10 > 2
        assert!(!lax.is_strict(8)); // λ = 10 > 9
        assert!(lax.is_strict(9)); // λ = 10 ≤ 10 — boundary goes strict
    }

    #[test]
    fn density() {
        let j = Job::new(0, 10, 4, 8.0);
        assert_eq!(j.density(), 2.0);
    }

    #[test]
    fn jobset_stats() {
        let js: JobSet = vec![
            Job::new(0, 10, 2, 1.0),
            Job::new(5, 30, 8, 3.0),
            Job::new(-5, 3, 4, 2.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(js.len(), 3);
        assert_eq!(js.total_value(), 6.0);
        assert_eq!(js.length_ratio(), Some(4.0));
        assert_eq!(js.min_release(), Some(-5));
        assert_eq!(js.max_deadline(), Some(30));
        assert_eq!(js.horizon(), Some(Interval::new(-5, 30)));
        assert_eq!(js.value_of(&[JobId(0), JobId(2)]), 3.0);
        assert_eq!(js.max_laxity(), Some(5.0));
    }

    #[test]
    fn empty_jobset_stats() {
        let js = JobSet::new();
        assert!(js.is_empty());
        assert_eq!(js.total_value(), 0.0);
        assert_eq!(js.length_ratio(), None);
        assert_eq!(js.horizon(), None);
        assert_eq!(js.max_laxity(), None);
    }

    #[test]
    fn laxity_split() {
        let js: JobSet = vec![
            Job::new(0, 10, 10, 1.0), // λ = 1, strict for any k
            Job::new(0, 20, 10, 1.0), // λ = 2, strict for k ≥ 1
            Job::new(0, 100, 10, 1.0), // λ = 10, lax for k ≤ 8
        ]
        .into_iter()
        .collect();
        let (strict, lax) = js.split_by_laxity(1);
        assert_eq!(strict, vec![JobId(0), JobId(1)]);
        assert_eq!(lax, vec![JobId(2)]);
        let (strict, _) = js.split_by_laxity(9);
        assert_eq!(strict.len(), 3);
    }

    #[test]
    fn subset_reindexes() {
        let js: JobSet = vec![
            Job::new(0, 10, 1, 1.0),
            Job::new(0, 10, 2, 2.0),
            Job::new(0, 10, 3, 3.0),
        ]
        .into_iter()
        .collect();
        let (sub, back) = js.subset(&[JobId(2), JobId(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.job(JobId(0)).length, 3);
        assert_eq!(sub.job(JobId(1)).length, 1);
        assert_eq!(back, vec![JobId(2), JobId(0)]);
    }
}
