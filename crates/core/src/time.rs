//! Discrete time, half-open intervals, and the precedence relation of §2.2.
//!
//! All quantities in the paper (release times, deadlines, lengths) are reals;
//! every construction used in the experiments can be pre-scaled to integers
//! (see `DESIGN.md` §4), so we model time as `i64` ticks. Integer time makes
//! every feasibility check exact — there is no epsilon anywhere in the crate.

/// A point in time, in abstract integer ticks.
pub type Time = i64;

/// A half-open interval `[start, end)` on the time line.
///
/// Half-open intervals compose without double-counting boundary points:
/// `[0,5)` and `[5,9)` are disjoint but *touching*, which is exactly the
/// distinction needed when counting preemptions (two touching segments of the
/// same job are one contiguous run, not a preemption).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start tick.
    pub start: Time,
    /// Exclusive end tick. Invariant: `end >= start`.
    pub end: Time,
}

impl std::fmt::Debug for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl Interval {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end < start` (empty intervals `[t, t)` are allowed; they
    /// behave as the neutral element and are dropped by [`crate::SegmentSet`]).
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end >= start, "Interval end {end} precedes start {start}");
        Interval { start, end }
    }

    /// Creates `[start, start + len)`.
    #[inline]
    pub fn with_len(start: Time, len: Time) -> Self {
        Self::new(start, start + len)
    }

    /// Number of ticks covered.
    #[inline]
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// Whether the interval covers no ticks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `t` lies inside `[start, end)`.
    #[inline]
    pub fn contains_point(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// The overlap of two intervals, or `None` when they share no tick.
    ///
    /// Touching intervals (`[0,5)` / `[5,9)`) do *not* intersect.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// Whether the two intervals share at least one tick.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start.max(other.start) < self.end.min(other.end)
    }

    /// The precedence relation of §2.2: `g1 ≺ g2 ⟺ t1 ≤ s2`,
    /// i.e. `self` ends no later than `other` starts.
    #[inline]
    pub fn precedes(&self, other: &Interval) -> bool {
        self.end <= other.start
    }

    /// Translates the interval by `delta` ticks.
    #[inline]
    pub fn shifted(&self, delta: Time) -> Interval {
        Interval { start: self.start + delta, end: self.end + delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let a = Interval::new(0, 5);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(a.contains_point(0));
        assert!(a.contains_point(4));
        assert!(!a.contains_point(5));
        assert!(!a.contains_point(-1));
        assert!(Interval::new(3, 3).is_empty());
    }

    #[test]
    fn with_len_matches_new() {
        assert_eq!(Interval::with_len(7, 4), Interval::new(7, 11));
    }

    #[test]
    #[should_panic]
    fn reversed_interval_panics() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn intersection_cases() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(&b), Some(Interval::new(5, 10)));
        assert_eq!(b.intersect(&a), Some(Interval::new(5, 10)));
        // Touching intervals do not intersect.
        assert_eq!(Interval::new(0, 5).intersect(&Interval::new(5, 9)), None);
        // Nested.
        assert_eq!(a.intersect(&Interval::new(2, 3)), Some(Interval::new(2, 3)));
        // Disjoint.
        assert_eq!(a.intersect(&Interval::new(20, 30)), None);
    }

    #[test]
    fn containment() {
        let a = Interval::new(0, 10);
        assert!(a.contains(&Interval::new(0, 10)));
        assert!(a.contains(&Interval::new(3, 7)));
        assert!(!a.contains(&Interval::new(-1, 7)));
        assert!(!a.contains(&Interval::new(3, 11)));
    }

    #[test]
    fn precedence_is_the_paper_relation() {
        // g1 ≺ g2 ⟺ t1 ≤ s2 — touching segments are ordered.
        assert!(Interval::new(0, 5).precedes(&Interval::new(5, 9)));
        assert!(Interval::new(0, 5).precedes(&Interval::new(6, 9)));
        assert!(!Interval::new(0, 5).precedes(&Interval::new(4, 9)));
    }

    #[test]
    fn shift() {
        assert_eq!(Interval::new(2, 5).shifted(10), Interval::new(12, 15));
        assert_eq!(Interval::new(2, 5).shifted(-2), Interval::new(0, 3));
    }
}
