//! Flight recorder: a bounded in-memory ring of recent trace events.
//!
//! Where [`trace`](crate::trace) records *everything* for a full-run export
//! (and therefore only exists under the `trace` feature), the flight
//! recorder keeps only the **last [`capacity`] events** at a fixed memory
//! cost, so a long-running daemon can afford to leave it on and dump "what
//! just happened" when something goes wrong — a task panics, a certificate
//! fails, or the journal poisons (see `docs/observability.md`).
//!
//! The ring is fed from the same `trace_event!`/`obs_span!` call sites as
//! the trace layer:
//!
//! * with the `trace` feature **on**, every recorded event is mirrored into
//!   the ring as it is built (same sequence numbers, worker ids, and task
//!   context as the full trace);
//! * with `trace` **off**, the macros record directly into the ring with
//!   the recorder's own sequence/epoch (task attribution is unavailable —
//!   events carry [`NO_TASK`]).
//!
//! [`dump_json`] renders the ring in the Chrome trace-event format (the
//! same exporter as `--trace`, loadable in Perfetto), oldest event first.
//!
//! Everything here is wall-clock-class telemetry: the ring never feeds the
//! logical trace, job results, or any durable bytes, and the whole module
//! is compiled out (strings and all) without the `telemetry` feature.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::trace::{chrome_json, TraceClass, TraceEvent, TraceKind, NO_TASK};

/// Number of events retained; pushing the `capacity + 1`-th event evicts
/// the oldest.
pub const fn capacity() -> usize {
    4096
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static WORKER_IDS: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RING: Mutex<Ring> = Mutex::new(Ring { buf: Vec::new(), next: 0 });

struct Ring {
    /// Grows to [`capacity`], then becomes a circular buffer.
    buf: Vec<TraceEvent>,
    /// Overwrite position once full (index of the oldest event).
    next: usize,
}

fn ring_lock() -> MutexGuard<'static, Ring> {
    match RING.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn ts_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

thread_local! {
    static WORKER: u32 = WORKER_IDS.fetch_add(1, Ordering::Relaxed);
}

/// Pushes an already-built event (the `trace` layer mirrors through here),
/// evicting the oldest event once the ring is full.
pub fn push(ev: TraceEvent) {
    let mut ring = ring_lock();
    if ring.buf.len() < capacity() {
        ring.buf.push(ev);
    } else {
        let at = ring.next;
        ring.buf[at] = ev;
        ring.next = (at + 1) % capacity();
    }
}

/// Records a point event with the recorder's own sequence/epoch. Used by
/// `trace_event!` when the `trace` feature is off — prefer the macro.
pub fn instant(phase: &'static str, class: TraceClass, value: u64, text: Option<&str>) {
    record(phase, TraceKind::Instant, class, value, text);
}

/// Records one event into the ring.
pub fn record(
    phase: &'static str,
    kind: TraceKind,
    class: TraceClass,
    value: u64,
    text: Option<&str>,
) {
    let ev = TraceEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns: ts_ns(),
        worker: WORKER.try_with(|w| *w).unwrap_or(0),
        task: NO_TASK,
        phase,
        kind,
        class,
        value,
        text: text.map(Box::from),
    };
    push(ev);
}

/// Guard emitting the span's [`End`](TraceKind::End) event on drop. Created
/// by `obs_span!` when the `trace` feature is off — prefer the macro.
#[must_use = "the span ends when the guard drops"]
pub struct FlightSpan {
    phase: &'static str,
    class: TraceClass,
}

impl Drop for FlightSpan {
    fn drop(&mut self) {
        record(self.phase, TraceKind::End, self.class, 0, None);
    }
}

/// Opens a span recorded only in the flight ring: the begin event now, the
/// end event when the guard drops (including during panic unwinding).
pub fn span(phase: &'static str, class: TraceClass) -> FlightSpan {
    record(phase, TraceKind::Begin, class, 0, None);
    FlightSpan { phase, class }
}

/// Copies the ring's contents, oldest event first.
pub fn snapshot() -> Vec<TraceEvent> {
    let ring = ring_lock();
    let mut out = Vec::with_capacity(ring.buf.len());
    if ring.buf.len() < capacity() {
        out.extend(ring.buf.iter().cloned());
    } else {
        out.extend(ring.buf[ring.next..].iter().cloned());
        out.extend(ring.buf[..ring.next].iter().cloned());
    }
    out
}

/// Empties the ring (tests and post-dump hygiene).
pub fn clear() {
    let mut ring = ring_lock();
    ring.buf.clear();
    ring.next = 0;
}

/// Renders the current ring as Chrome trace-event JSON (Perfetto-loadable),
/// exactly like the full-trace exporter but bounded to the last
/// [`capacity`] events.
pub fn dump_json() -> String {
    chrome_json(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The ring is process-global; serialise tests that assert its contents.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let _g = locked();
        clear();
        for i in 0..(capacity() as u64 + 10) {
            instant("flight.test.tick", TraceClass::Timing, i, None);
        }
        let events = snapshot();
        assert_eq!(events.len(), capacity());
        // Oldest-first order, and the first 10 values were evicted.
        assert_eq!(events[0].value, 10);
        assert_eq!(events[events.len() - 1].value, capacity() as u64 + 9);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        clear();
    }

    #[test]
    fn span_guard_closes_even_on_unwind() {
        let _g = locked();
        clear();
        let caught = std::panic::catch_unwind(|| {
            let _s = span("flight.test.span", TraceClass::Timing);
            panic!("boom");
        });
        assert!(caught.is_err());
        let kinds: Vec<TraceKind> = snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::Begin, TraceKind::End]);
        clear();
    }

    #[test]
    fn dump_is_chrome_trace_shaped() {
        let _g = locked();
        clear();
        instant("flight.test.mark", TraceClass::Timing, 7, Some("he\"llo"));
        let j = dump_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("he\\\"llo"));
        assert!(j.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        clear();
    }
}
