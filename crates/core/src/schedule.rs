//! Schedules and the feasibility predicate of Definition 2.1.

use std::collections::BTreeMap;

use crate::job::{JobId, JobSet, Value};
use crate::segs::SegmentSet;
use crate::time::Interval;

/// Identifier of a machine (0-based). The single-machine setting is machine 0.
pub type MachineId = usize;

/// A scheduled job: which machine it runs on and when.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Machine executing every segment of the job (non-migrative model).
    pub machine: MachineId,
    /// The job's execution segments `G_j` in normal form.
    pub segs: SegmentSet,
}

/// A (partial) schedule `G_{J'}` of a job set: each *scheduled* job is mapped
/// to one machine and a set of execution segments. Jobs absent from the map
/// are rejected (not scheduled), which is always allowed by the model — the
/// objective only counts the value of scheduled jobs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    by_job: BTreeMap<JobId, Assignment>,
}

impl Schedule {
    /// The empty schedule (every job rejected).
    pub fn new() -> Self {
        Schedule { by_job: BTreeMap::new() }
    }

    /// Schedules `job` on `machine` over `segs`, replacing any previous
    /// assignment of the same job. Empty `segs` removes the job.
    pub fn assign(&mut self, job: JobId, machine: MachineId, segs: SegmentSet) {
        if segs.is_empty() {
            self.by_job.remove(&job);
        } else {
            self.by_job.insert(job, Assignment { machine, segs });
        }
    }

    /// Convenience for the single-machine setting: machine 0.
    pub fn assign_single(&mut self, job: JobId, segs: SegmentSet) {
        self.assign(job, 0, segs);
    }

    /// Removes a job from the schedule (rejects it).
    pub fn reject(&mut self, job: JobId) -> Option<Assignment> {
        self.by_job.remove(&job)
    }

    /// The assignment of `job`, if scheduled.
    pub fn assignment(&self, job: JobId) -> Option<&Assignment> {
        self.by_job.get(&job)
    }

    /// The execution segments of `job`, if scheduled.
    pub fn segments(&self, job: JobId) -> Option<&SegmentSet> {
        self.by_job.get(&job).map(|a| &a.segs)
    }

    /// Number of scheduled jobs.
    pub fn len(&self) -> usize {
        self.by_job.len()
    }

    /// Whether no job is scheduled.
    pub fn is_empty(&self) -> bool {
        self.by_job.is_empty()
    }

    /// Ids of scheduled jobs, ascending.
    pub fn scheduled_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.by_job.keys().copied()
    }

    /// Iterates `(JobId, &Assignment)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &Assignment)> {
        self.by_job.iter().map(|(id, a)| (*id, a))
    }

    /// Total value of the scheduled jobs under `jobs`.
    pub fn value(&self, jobs: &JobSet) -> Value {
        self.by_job.keys().map(|id| jobs.job(*id).value).sum()
    }

    /// Number of preemptions of `job`: segments − 1 (0 when unscheduled).
    pub fn preemptions(&self, job: JobId) -> usize {
        self.by_job.get(&job).map_or(0, |a| a.segs.count().saturating_sub(1))
    }

    /// The largest preemption count over all scheduled jobs.
    pub fn max_preemptions(&self) -> usize {
        self.by_job.values().map(|a| a.segs.count().saturating_sub(1)).max().unwrap_or(0)
    }

    /// Machines used by at least one job, ascending, deduplicated.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut v: Vec<MachineId> = self.by_job.values().map(|a| a.machine).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Union of the busy time of every job on `machine`.
    pub fn busy(&self, machine: MachineId) -> SegmentSet {
        let mut acc = SegmentSet::new();
        for a in self.by_job.values() {
            if a.machine == machine {
                acc = acc.union(&a.segs);
            }
        }
        acc
    }

    /// Restriction of the schedule to the given jobs (drops everything else).
    ///
    /// Removing jobs from a feasible schedule keeps it feasible — this is the
    /// `G_{J_1}` restriction step of Algorithm 3.
    pub fn restricted_to(&self, keep: &[JobId]) -> Schedule {
        let keep: std::collections::BTreeSet<JobId> = keep.iter().copied().collect();
        Schedule {
            by_job: self
                .by_job
                .iter()
                .filter(|(id, _)| keep.contains(id))
                .map(|(id, a)| (*id, a.clone()))
                .collect(),
        }
    }

    /// Checks every clause of Definition 2.1 against `jobs`:
    ///
    /// * (a) per job: segments within `[r_j, d_j)`, total length exactly
    ///   `p_j`;
    /// * (b) per machine: segments of different jobs pairwise disjoint;
    /// * (c) when `k = Some(k)`: `|G_j| ≤ k + 1` for every job;
    /// * multi-machine extension: each job entirely on one machine (enforced
    ///   structurally by [`Assignment`]).
    ///
    /// `k = None` means unbounded preemption.
    pub fn verify(&self, jobs: &JobSet, k: Option<u32>) -> Result<(), Infeasibility> {
        // Per-job constraints.
        for (&id, a) in &self.by_job {
            let job = jobs.get(id).ok_or(Infeasibility::UnknownJob(id))?;
            let window = job.window();
            for seg in a.segs.iter() {
                if !window.contains(seg) {
                    return Err(Infeasibility::OutsideWindow { job: id, segment: *seg, window });
                }
            }
            let scheduled = a.segs.total_len();
            if scheduled != job.length {
                return Err(Infeasibility::WrongLength { job: id, scheduled, required: job.length });
            }
            if let Some(k) = k {
                let segments = a.segs.count();
                if segments > k as usize + 1 {
                    return Err(Infeasibility::TooManyPreemptions {
                        job: id,
                        segments,
                        allowed: k as usize + 1,
                    });
                }
            }
        }
        // Per-machine disjointness: sort each machine's segments by start
        // and sweep with the furthest-reaching segment seen so far, so an
        // overlap is caught even when a long segment contains several later
        // ones and the adjacent pair happens to be disjoint.
        let mut by_machine: BTreeMap<MachineId, Vec<(Interval, JobId)>> = BTreeMap::new();
        for (&id, a) in &self.by_job {
            let entry = by_machine.entry(a.machine).or_default();
            entry.extend(a.segs.iter().map(|s| (*s, id)));
        }
        for (machine, mut segs) in by_machine {
            segs.sort_unstable_by_key(|(s, _)| (s.start, s.end));
            let mut reach: Option<(Interval, JobId)> = None;
            for (b, jb) in segs {
                if let Some((a, ja)) = reach {
                    if a.overlaps(&b) {
                        return Err(Infeasibility::Overlap { machine, a: (ja, a), b: (jb, b) });
                    }
                }
                if reach.is_none_or(|(a, _)| b.end > a.end) {
                    reach = Some((b, jb));
                }
            }
        }
        Ok(())
    }

    /// [`Schedule::verify`] plus the machine-count clause: every assignment
    /// must target a machine in `0..machines`. [`verify`](Schedule::verify)
    /// alone cannot check this — a schedule does not know the machine count
    /// it was produced for — so harnesses that do know it (the batch
    /// engine's certification layer, for one) call this form.
    pub fn verify_on(
        &self,
        jobs: &JobSet,
        k: Option<u32>,
        machines: usize,
    ) -> Result<(), Infeasibility> {
        for (&id, a) in &self.by_job {
            if a.machine >= machines {
                return Err(Infeasibility::MachineOutOfRange {
                    job: id,
                    machine: a.machine,
                    machines,
                });
            }
        }
        self.verify(jobs, k)
    }
}

/// A violated clause of Definition 2.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Infeasibility {
    /// The schedule references a job id not present in the job set.
    UnknownJob(JobId),
    /// A segment leaves the job's `[r_j, d_j)` window.
    OutsideWindow {
        /// Offending job.
        job: JobId,
        /// Offending segment.
        segment: Interval,
        /// The job's window.
        window: Interval,
    },
    /// Total scheduled time differs from `p_j`.
    WrongLength {
        /// Offending job.
        job: JobId,
        /// Ticks actually scheduled.
        scheduled: crate::time::Time,
        /// `p_j`.
        required: crate::time::Time,
    },
    /// Two segments on one machine overlap.
    Overlap {
        /// Machine on which the overlap occurs.
        machine: MachineId,
        /// First offending `(job, segment)`.
        a: (JobId, Interval),
        /// Second offending `(job, segment)`.
        b: (JobId, Interval),
    },
    /// An assignment targets a machine outside `0..machines`
    /// (only checked by [`Schedule::verify_on`]).
    MachineOutOfRange {
        /// Offending job.
        job: JobId,
        /// Machine the job was assigned to.
        machine: MachineId,
        /// Number of machines available.
        machines: usize,
    },
    /// A job uses more than `k + 1` segments.
    TooManyPreemptions {
        /// Offending job.
        job: JobId,
        /// Number of segments used.
        segments: usize,
        /// Maximum allowed (`k + 1`).
        allowed: usize,
    },
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasibility::UnknownJob(j) => write!(f, "schedule references unknown job {j}"),
            Infeasibility::OutsideWindow { job, segment, window } => {
                write!(f, "{job}: segment {segment:?} outside window {window:?}")
            }
            Infeasibility::WrongLength { job, scheduled, required } => {
                write!(f, "{job}: scheduled {scheduled} ticks, needs exactly {required}")
            }
            Infeasibility::Overlap { machine, a, b } => write!(
                f,
                "machine {machine}: {}:{:?} overlaps {}:{:?}",
                a.0, a.1, b.0, b.1
            ),
            Infeasibility::MachineOutOfRange { job, machine, machines } => {
                write!(f, "{job}: assigned to machine {machine}, but only {machines} exist")
            }
            Infeasibility::TooManyPreemptions { job, segments, allowed } => {
                write!(f, "{job}: {segments} segments exceed the allowed {allowed}")
            }
        }
    }
}

impl std::error::Error for Infeasibility {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::time::Interval;

    fn jobs3() -> JobSet {
        vec![
            Job::new(0, 10, 4, 1.0),
            Job::new(0, 20, 5, 2.0),
            Job::new(5, 15, 3, 4.0),
        ]
        .into_iter()
        .collect()
    }

    fn seg(a: i64, b: i64) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn assign_and_query() {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 4)]));
        s.assign_single(JobId(2), SegmentSet::from_intervals([seg(5, 7), seg(9, 10)]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.preemptions(JobId(0)), 0);
        assert_eq!(s.preemptions(JobId(2)), 1);
        assert_eq!(s.preemptions(JobId(1)), 0); // unscheduled
        assert_eq!(s.max_preemptions(), 1);
        assert_eq!(s.value(&jobs3()), 5.0);
        assert_eq!(s.machines(), vec![0]);
    }

    #[test]
    fn empty_assignment_rejects() {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 4)]));
        s.assign_single(JobId(0), SegmentSet::new());
        assert!(s.is_empty());
    }

    #[test]
    fn verify_accepts_valid_schedule() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 4)]));
        s.assign_single(JobId(1), SegmentSet::from_intervals([seg(4, 5), seg(8, 12)]));
        s.assign_single(JobId(2), SegmentSet::from_intervals([seg(5, 8)]));
        assert_eq!(s.verify(&jobs, None), Ok(()));
        assert_eq!(s.verify(&jobs, Some(1)), Ok(()));
    }

    #[test]
    fn verify_rejects_window_violation() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        // Job 2 releases at 5; starting at 4 is infeasible.
        s.assign_single(JobId(2), SegmentSet::from_intervals([seg(4, 7)]));
        assert!(matches!(
            s.verify(&jobs, None),
            Err(Infeasibility::OutsideWindow { job: JobId(2), .. })
        ));
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 3)])); // needs 4
        assert!(matches!(
            s.verify(&jobs, None),
            Err(Infeasibility::WrongLength { job: JobId(0), scheduled: 3, required: 4 })
        ));
        // Over-scheduling is also wrong.
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 5)]));
        assert!(matches!(s.verify(&jobs, None), Err(Infeasibility::WrongLength { .. })));
    }

    #[test]
    fn verify_rejects_overlap_same_machine_only() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::from_intervals([seg(0, 4)]));
        s.assign(JobId(1), 0, SegmentSet::from_intervals([seg(3, 8)]));
        assert!(matches!(s.verify(&jobs, None), Err(Infeasibility::Overlap { machine: 0, .. })));
        // Same segments on different machines are fine.
        s.assign(JobId(1), 1, SegmentSet::from_intervals([seg(3, 8)]));
        assert_eq!(s.verify(&jobs, None), Ok(()));
    }

    #[test]
    fn verify_rejects_cross_job_collision_on_shared_machine_of_many() {
        // Regression: a genuinely multi-machine schedule where two
        // *different* jobs collide on machine 0 while machine 1 is clean.
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::from_intervals([seg(0, 4)]));
        s.assign(JobId(2), 0, SegmentSet::from_intervals([seg(6, 9)]));
        s.assign(JobId(1), 1, SegmentSet::from_intervals([seg(0, 5)]));
        assert_eq!(s.verify(&jobs, None), Ok(()));
        // Move job 2 onto machine 0's busy time: [3, 6) vs job 0's [0, 4).
        s.assign(JobId(2), 0, SegmentSet::from_intervals([seg(5, 8)]));
        s.assign(JobId(0), 0, SegmentSet::from_intervals([seg(3, 7)]));
        let err = s.verify(&jobs, None).unwrap_err();
        assert!(
            matches!(err, Infeasibility::Overlap { machine: 0, .. }),
            "expected machine-0 overlap, got {err:?}"
        );
    }

    #[test]
    fn verify_catches_containment_past_a_disjoint_adjacent_pair() {
        // Machine 0: job 1 runs [0, 12); jobs 0 and 2 run inside it at
        // [5, 9) and [9, 12). Sorted by start the adjacent pair
        // ([5,9), [9,12)) is disjoint — only the furthest-reach sweep sees
        // that both collide with the long containing segment.
        let jobs: JobSet = vec![
            Job::new(0, 20, 4, 1.0),
            Job::new(0, 20, 12, 2.0),
            Job::new(0, 20, 3, 4.0),
        ]
        .into_iter()
        .collect();
        let mut s = Schedule::new();
        s.assign(JobId(1), 0, SegmentSet::from_intervals([seg(0, 12)]));
        s.assign(JobId(0), 0, SegmentSet::from_intervals([seg(5, 9)]));
        s.assign(JobId(2), 0, SegmentSet::from_intervals([seg(9, 12)]));
        assert!(matches!(s.verify(&jobs, None), Err(Infeasibility::Overlap { machine: 0, .. })));
    }

    #[test]
    fn verify_on_enforces_the_machine_range() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::from_intervals([seg(0, 4)]));
        s.assign(JobId(1), 3, SegmentSet::from_intervals([seg(0, 5)]));
        // Plain verify cannot know the machine count; verify_on can.
        assert_eq!(s.verify(&jobs, None), Ok(()));
        assert_eq!(s.verify_on(&jobs, None, 4), Ok(()));
        assert!(matches!(
            s.verify_on(&jobs, None, 2),
            Err(Infeasibility::MachineOutOfRange { job: JobId(1), machine: 3, machines: 2 })
        ));
    }

    #[test]
    fn verify_enforces_preemption_bound() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign_single(
            JobId(1),
            SegmentSet::from_intervals([seg(0, 2), seg(4, 6), seg(8, 9)]),
        );
        assert_eq!(s.verify(&jobs, None), Ok(()));
        assert_eq!(s.verify(&jobs, Some(2)), Ok(()));
        assert!(matches!(
            s.verify(&jobs, Some(1)),
            Err(Infeasibility::TooManyPreemptions { job: JobId(1), segments: 3, allowed: 2 })
        ));
    }

    #[test]
    fn touching_segments_do_not_count_as_preemption() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        // [0,2) and [2,4) coalesce on construction → zero preemptions.
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 2), seg(2, 4)]));
        assert_eq!(s.preemptions(JobId(0)), 0);
        assert_eq!(s.verify(&jobs, Some(0)), Ok(()));
    }

    #[test]
    fn verify_rejects_unknown_job() {
        let jobs = jobs3();
        let mut s = Schedule::new();
        s.assign_single(JobId(7), SegmentSet::from_intervals([seg(0, 1)]));
        assert!(matches!(s.verify(&jobs, None), Err(Infeasibility::UnknownJob(JobId(7)))));
    }

    #[test]
    fn busy_unions_per_machine() {
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::from_intervals([seg(0, 4)]));
        s.assign(JobId(1), 0, SegmentSet::from_intervals([seg(4, 6)]));
        s.assign(JobId(2), 1, SegmentSet::from_intervals([seg(0, 3)]));
        assert_eq!(s.busy(0), SegmentSet::from_intervals([seg(0, 6)]));
        assert_eq!(s.busy(1), SegmentSet::from_intervals([seg(0, 3)]));
        assert!(s.busy(2).is_empty());
        assert_eq!(s.machines(), vec![0, 1]);
    }

    #[test]
    fn restriction_keeps_subset() {
        let mut s = Schedule::new();
        s.assign_single(JobId(0), SegmentSet::from_intervals([seg(0, 4)]));
        s.assign_single(JobId(1), SegmentSet::from_intervals([seg(4, 9)]));
        let r = s.restricted_to(&[JobId(1)]);
        assert_eq!(r.len(), 1);
        assert!(r.segments(JobId(1)).is_some());
        assert!(r.segments(JobId(0)).is_none());
    }
}
