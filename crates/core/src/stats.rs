//! Schedule statistics: preemption histograms, utilization, per-machine
//! load. Used by the experiment harness and the examples to report the
//! quantities the paper's motivation cares about (context-switch counts).

use crate::job::{JobSet, Value};
use crate::schedule::{MachineId, Schedule};
use crate::time::{Interval, Time};

/// Aggregate statistics of a schedule against its job set.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Number of scheduled jobs.
    pub scheduled: usize,
    /// Number of rejected jobs (in the job set but not the schedule).
    pub rejected: usize,
    /// Total value of the scheduled jobs.
    pub value: Value,
    /// Fraction of the job set's total value retained (1.0 when all of it).
    pub value_fraction: f64,
    /// Total preemptions across jobs (`Σ (segments − 1)`), i.e. the number
    /// of extra context switches the schedule pays vs running each job
    /// en bloc.
    pub total_preemptions: usize,
    /// `histogram[p]` = number of scheduled jobs preempted exactly `p`
    /// times.
    pub preemption_histogram: Vec<usize>,
    /// Per-machine busy time.
    pub machine_busy: Vec<(MachineId, Time)>,
    /// Machine utilization within the schedule's own span (busy / span),
    /// averaged over used machines. 0 for an empty schedule.
    pub utilization: f64,
}

/// Computes [`ScheduleStats`].
pub fn schedule_stats(jobs: &JobSet, schedule: &Schedule) -> ScheduleStats {
    let scheduled = schedule.len();
    let rejected = jobs.len().saturating_sub(scheduled);
    let value = schedule.value(jobs);
    let total_value = jobs.total_value();
    let value_fraction = if total_value > 0.0 { value / total_value } else { 0.0 };

    let max_p = schedule.max_preemptions();
    let mut histogram = vec![0usize; max_p + 1];
    let mut total_preemptions = 0usize;
    for id in schedule.scheduled_ids() {
        let p = schedule.preemptions(id);
        histogram[p] += 1;
        total_preemptions += p;
    }
    if schedule.is_empty() {
        histogram.clear();
    }

    let mut machine_busy = Vec::new();
    let mut util_sum = 0.0;
    let machines = schedule.machines();
    for &m in &machines {
        let busy = schedule.busy(m);
        let len = busy.total_len();
        if let Some(span) = busy.span() {
            util_sum += len as f64 / span.len() as f64;
        }
        machine_busy.push((m, len));
    }
    let utilization = if machines.is_empty() { 0.0 } else { util_sum / machines.len() as f64 };

    ScheduleStats {
        scheduled,
        rejected,
        value,
        value_fraction,
        total_preemptions,
        preemption_histogram: histogram,
        machine_busy,
        utilization,
    }
}

/// The busy fraction of `window` on `machine` — the `b0`-load of
/// Lemma 4.12, measurable for experiment assertions.
pub fn window_load(schedule: &Schedule, machine: MachineId, window: &Interval) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let busy = schedule.busy(machine).clip(window).total_len();
    busy as f64 / window.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId};
    use crate::segs::SegmentSet;

    fn setup() -> (JobSet, Schedule) {
        let jobs: JobSet = vec![
            Job::new(0, 10, 4, 4.0),
            Job::new(2, 8, 3, 3.0),
            Job::new(0, 50, 5, 3.0), // rejected
        ]
        .into_iter()
        .collect();
        let mut s = Schedule::new();
        s.assign_single(
            JobId(0),
            SegmentSet::from_intervals([Interval::new(0, 2), Interval::new(5, 7)]),
        );
        s.assign_single(JobId(1), SegmentSet::from_intervals([Interval::new(2, 5)]));
        (jobs, s)
    }

    #[test]
    fn counts_and_values() {
        let (jobs, s) = setup();
        let st = schedule_stats(&jobs, &s);
        assert_eq!(st.scheduled, 2);
        assert_eq!(st.rejected, 1);
        assert_eq!(st.value, 7.0);
        assert!((st.value_fraction - 0.7).abs() < 1e-12);
        assert_eq!(st.total_preemptions, 1);
        assert_eq!(st.preemption_histogram, vec![1, 1]); // one 0-preempt, one 1-preempt
    }

    #[test]
    fn machine_busy_and_utilization() {
        let (jobs, s) = setup();
        let st = schedule_stats(&jobs, &s);
        assert_eq!(st.machine_busy, vec![(0, 7)]);
        assert_eq!(st.utilization, 1.0); // busy [0,7) is contiguous
    }

    #[test]
    fn empty_schedule() {
        let (jobs, _) = setup();
        let st = schedule_stats(&jobs, &Schedule::new());
        assert_eq!(st.scheduled, 0);
        assert_eq!(st.rejected, 3);
        assert_eq!(st.value, 0.0);
        assert_eq!(st.utilization, 0.0);
        assert!(st.preemption_histogram.is_empty());
    }

    #[test]
    fn multi_machine_busy() {
        let jobs: JobSet = vec![Job::new(0, 10, 4, 1.0), Job::new(0, 10, 2, 1.0)]
            .into_iter()
            .collect();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::singleton(Interval::new(0, 4)));
        s.assign(JobId(1), 2, SegmentSet::singleton(Interval::new(4, 6)));
        let st = schedule_stats(&jobs, &s);
        assert_eq!(st.machine_busy, vec![(0, 4), (2, 2)]);
        assert_eq!(st.value_fraction, 1.0);
    }

    #[test]
    fn window_load_matches_lemma_4_12_quantity() {
        let (_, s) = setup();
        assert_eq!(window_load(&s, 0, &Interval::new(0, 7)), 1.0);
        assert_eq!(window_load(&s, 0, &Interval::new(0, 14)), 0.5);
        assert_eq!(window_load(&s, 0, &Interval::new(7, 14)), 0.0);
        assert_eq!(window_load(&s, 0, &Interval::new(3, 3)), 0.0);
        assert_eq!(window_load(&s, 1, &Interval::new(0, 7)), 0.0);
    }
}
