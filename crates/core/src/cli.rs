//! Shared command-line helpers for the `pobp` binary and the bench
//! harnesses: `--name value` flag extraction and number/list parsing with
//! errors that name the offending flag and echo the raw value.
//!
//! These used to live inline in `src/bin/pobp.rs`; they are a module of
//! `pobp-core` so the `pobp` subcommands, the `experiments` binary, and the
//! `pobp-serve` daemon/client share one implementation instead of each
//! growing its own. The facade crate re-exports this module as `pobp::cli`.

/// Returns the value following `--name`, if present: `flag(args, "--k")`
/// on `["--k", "2"]` is `Some("2")`.
pub fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether the boolean flag `--name` is present.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Like [`flag`], but a flag that is present **must** carry a value: `Err`
/// when `--name` is the last argument or is followed by another `--flag`.
/// Use this for flags where silently ignoring a missing value would look
/// like success (e.g. `--obs-out`, `--trace`).
pub fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{name} needs a value (e.g. `{name} FILE`)")),
        },
    }
}

/// Parses the value of `--name` as a `T`, falling back to `default` when
/// the flag is absent. A malformed value reports the flag name **and** the
/// raw text: `invalid value for --n: invalid digit found in string (got
/// "ten")`.
pub fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name) {
        Some(v) => parse_as(&v, name),
        None => Ok(default),
    }
}

/// Like [`parse_num`], but a flag that is present **must** carry a value
/// (the [`flag_value`] contract): `--workers` as a trailing flag is a loud
/// error instead of a silent fall-back to the default. Use this wherever a
/// swallowed flag would change long-running behaviour — the `pobp serve`
/// daemon and `pobp-client` parse every numeric flag through this.
pub fn parse_num_strict<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, name)? {
        Some(v) => parse_as(&v, name),
        None => Ok(default),
    }
}

/// Parses the comma-separated value of `--name` (e.g. `--n 10,20,40`) into
/// a list, falling back to `default` when the flag is absent. Empty items
/// (trailing commas) are rejected with the same flag-naming error shape as
/// [`parse_num`].
pub fn parse_num_list<T>(
    args: &[String],
    name: &str,
    default: &[T],
) -> Result<Vec<T>, String>
where
    T: std::str::FromStr + Clone,
    T::Err: std::fmt::Display,
{
    match flag(args, name) {
        Some(v) => v.split(',').map(|item| parse_as(item.trim(), name)).collect(),
        None => Ok(default.to_vec()),
    }
}

/// Like [`parse_num_list`], but a flag that is present **must** carry a
/// value (the [`flag_value`] contract): `pobp sweep --n` with nothing after
/// it is a loud error, not a silent fall-back to the default grid.
pub fn parse_num_list_strict<T>(
    args: &[String],
    name: &str,
    default: &[T],
) -> Result<Vec<T>, String>
where
    T: std::str::FromStr + Clone,
    T::Err: std::fmt::Display,
{
    match flag_value(args, name)? {
        Some(v) => v.split(',').map(|item| parse_as(item.trim(), name)).collect(),
        None => Ok(default.to_vec()),
    }
}

/// The single place a raw flag value is parsed — every error produced by
/// this module names the flag and echoes the exact text it choked on.
fn parse_as<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("invalid value for {name}: {e} (got {raw:?})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flags_and_defaults() {
        let a = args(&["--n", "12", "--gantt"]);
        assert_eq!(flag(&a, "--n").as_deref(), Some("12"));
        assert_eq!(flag(&a, "--k"), None);
        assert!(has_flag(&a, "--gantt"));
        assert!(!has_flag(&a, "--svg"));
        assert_eq!(parse_num(&a, "--n", 0u32), Ok(12));
        assert_eq!(parse_num(&a, "--k", 7u32), Ok(7));
    }

    #[test]
    fn parse_errors_name_the_flag_and_echo_the_value() {
        let a = args(&["--n", "ten"]);
        let err = parse_num(&a, "--n", 0u32).unwrap_err();
        assert!(err.contains("--n"), "{err}");
        assert!(err.contains("\"ten\""), "{err}");
        let err = parse_num_list(&a, "--n", &[0u32]).unwrap_err();
        assert!(err.contains("--n") && err.contains("\"ten\""), "{err}");
    }

    #[test]
    fn strict_parse_rejects_a_trailing_flag() {
        let a = args(&["--workers", "4", "--queue-cap"]);
        assert_eq!(parse_num_strict(&a, "--workers", 1u32), Ok(4));
        assert_eq!(parse_num_strict(&a, "--threads", 9u32), Ok(9));
        // The lenient helper silently defaults here; the strict one names
        // the flag instead.
        assert_eq!(parse_num(&a, "--queue-cap", 64u32), Ok(64));
        let err = parse_num_strict(&a, "--queue-cap", 64u32).unwrap_err();
        assert!(err.contains("--queue-cap"), "{err}");
        let bad = args(&["--workers", "ten"]);
        let err = parse_num_strict(&bad, "--workers", 1u32).unwrap_err();
        assert!(err.contains("--workers") && err.contains("\"ten\""), "{err}");
    }

    #[test]
    fn flag_value_demands_a_value() {
        let a = args(&["--obs-out", "report.json", "--trace"]);
        assert_eq!(flag_value(&a, "--obs-out"), Ok(Some("report.json".into())));
        assert_eq!(flag_value(&a, "--svg"), Ok(None));
        // Trailing flag with no value.
        let err = flag_value(&a, "--trace").unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        // Flag followed by another flag: the "value" is not a value.
        let b = args(&["--obs-out", "--obs"]);
        let err = flag_value(&b, "--obs-out").unwrap_err();
        assert!(err.contains("--obs-out"), "{err}");
    }

    #[test]
    fn lists_parse_and_trim() {
        let a = args(&["--k", "1, 2,4"]);
        assert_eq!(parse_num_list(&a, "--k", &[9u32]), Ok(vec![1, 2, 4]));
        assert_eq!(parse_num_list(&a, "--n", &[9u32]), Ok(vec![9]));
        let bad = args(&["--k", "1,,2"]);
        assert!(parse_num_list(&bad, "--k", &[0u32]).is_err());
    }

    #[test]
    fn strict_list_rejects_a_trailing_flag() {
        let a = args(&["--n", "10,20", "--k"]);
        assert_eq!(parse_num_list_strict(&a, "--n", &[9u32]), Ok(vec![10, 20]));
        assert_eq!(parse_num_list_strict(&a, "--seeds", &[9u32]), Ok(vec![9]));
        // `--k` trails with no value: lenient defaults, strict errors.
        assert_eq!(parse_num_list(&a, "--k", &[1u32]), Ok(vec![1]));
        let err = parse_num_list_strict(&a, "--k", &[1u32]).unwrap_err();
        assert!(err.contains("--k"), "{err}");
    }
}
