//! Mutation testing of the Definition 2.1 checker: start from a schedule
//! that is feasible *by construction*, corrupt it in a targeted way, and
//! require `Schedule::verify` to reject the corruption.

use pobp_core::{Interval, Job, JobId, JobSet, Schedule, SegmentSet};
use proptest::prelude::*;

/// Builds a feasible-by-construction instance: jobs laid out back to back,
/// each split into `1..=3` touching-or-separated segments inside a window
/// with slack.
fn arb_feasible() -> impl Strategy<Value = (JobSet, Schedule)> {
    proptest::collection::vec((1i64..8, 0i64..4, 1u32..4), 1..8).prop_map(|specs| {
        let mut jobs = JobSet::new();
        let mut schedule = Schedule::new();
        let mut t = 0i64;
        for (i, (p, gap, pieces)) in specs.into_iter().enumerate() {
            let start = t + gap;
            // Split p into `pieces` chunks with 1-tick gaps between them.
            let pieces = pieces.min(p as u32);
            let base = p / pieces as i64;
            let mut rest = p - base * pieces as i64;
            let mut ivs = Vec::new();
            let mut cur = start;
            for _ in 0..pieces {
                let len = base + if rest > 0 { 1 } else { 0 };
                rest = (rest - 1).max(0);
                ivs.push(Interval::with_len(cur, len));
                cur += len + 1; // 1 idle tick between pieces
            }
            let end = cur; // last piece end + 1
            let release = start;
            let deadline = end + 2; // slack
            jobs.push(Job::new(release, deadline, p, (i + 1) as f64));
            schedule.assign_single(JobId(i), SegmentSet::from_intervals(ivs));
            t = end;
        }
        (jobs, schedule)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constructed_schedules_verify((jobs, schedule) in arb_feasible()) {
        schedule.verify(&jobs, None).unwrap();
    }

    #[test]
    fn shifting_before_release_is_caught((jobs, schedule) in arb_feasible()) {
        // Move the first segment of some job 1 tick before its release.
        let victim = schedule.scheduled_ids().next().unwrap();
        let segs = schedule.segments(victim).unwrap().clone();
        let first = segs.segments()[0];
        let mut moved: Vec<Interval> = segs.iter().copied().collect();
        moved[0] = Interval::new(first.start - 1, first.end);
        let mut bad = schedule.clone();
        bad.assign_single(victim, SegmentSet::from_intervals(moved));
        // Either the window check or the length check must fire (the shift
        // may also change total length if it merges with nothing — it adds
        // one tick, so WrongLength or OutsideWindow).
        prop_assert!(bad.verify(&jobs, None).is_err());
    }

    #[test]
    fn truncating_work_is_caught((jobs, schedule) in arb_feasible()) {
        let victim = schedule.scheduled_ids().last().unwrap();
        let segs = schedule.segments(victim).unwrap().clone();
        let last = *segs.segments().last().unwrap();
        let mut bad = schedule.clone();
        if last.len() == 1 && segs.count() == 1 {
            // Removing the only tick removes the job — that's legal
            // (rejection); instead extend it to break the length upward.
            let mut moved: Vec<Interval> = segs.iter().copied().collect();
            moved[0] = Interval::new(last.start, last.end + 1);
            bad.assign_single(victim, SegmentSet::from_intervals(moved));
        } else {
            let mut moved: Vec<Interval> = segs.iter().copied().collect();
            let l = moved.len() - 1;
            moved[l] = Interval::new(last.start, last.end - 1);
            bad.assign_single(victim, SegmentSet::from_intervals(moved));
        }
        let caught = matches!(
            bad.verify(&jobs, None),
            Err(pobp_core::Infeasibility::WrongLength { .. })
                | Err(pobp_core::Infeasibility::OutsideWindow { .. })
        );
        prop_assert!(caught);
    }

    #[test]
    fn duplicating_work_onto_other_job_is_caught((jobs, schedule) in arb_feasible()) {
        prop_assume!(schedule.len() >= 2);
        // Give job B an extra segment overlapping job A's first segment,
        // preserving B's total length by trimming its own first segment —
        // must trip Overlap (or WrongLength if trimming degenerates).
        let ids: Vec<JobId> = schedule.scheduled_ids().collect();
        let (a, b) = (ids[0], ids[1]);
        let a_first = schedule.segments(a).unwrap().segments()[0];
        let b_segs = schedule.segments(b).unwrap().clone();
        let b_first = b_segs.segments()[0];
        prop_assume!(b_first.len() >= a_first.len());
        let mut moved: Vec<Interval> = b_segs.iter().copied().collect();
        moved[0] = Interval::new(b_first.start + a_first.len(), b_first.end);
        moved.push(a_first);
        let mut bad = schedule.clone();
        bad.assign_single(b, SegmentSet::from_intervals(moved));
        let err = bad.verify(&jobs, None);
        prop_assert!(err.is_err(), "overlap not caught");
    }

    #[test]
    fn preemption_bound_is_exact((jobs, schedule) in arb_feasible()) {
        let worst = schedule
            .scheduled_ids()
            .map(|j| schedule.preemptions(j))
            .max()
            .unwrap_or(0) as u32;
        // Verifies at the exact bound, fails just below it (when positive).
        schedule.verify(&jobs, Some(worst)).unwrap();
        if worst > 0 {
            let caught = matches!(
                schedule.verify(&jobs, Some(worst - 1)),
                Err(pobp_core::Infeasibility::TooManyPreemptions { .. })
            );
            prop_assert!(caught);
        }
    }

    #[test]
    fn moving_job_to_other_machine_keeps_feasibility((jobs, schedule) in arb_feasible()) {
        // Non-migrative model: moving one whole job to a fresh machine can
        // never break anything.
        let victim = schedule.scheduled_ids().next().unwrap();
        let segs = schedule.segments(victim).unwrap().clone();
        let mut moved = schedule.clone();
        moved.assign(victim, 7, segs);
        moved.verify(&jobs, None).unwrap();
    }
}
