//! Edge-case suite for the core data model.

use pobp_core::*;

#[test]
fn timeline_exact_fit_and_refill() {
    let mut t = Timeline::new();
    let idle = [Interval::new(0, 5)];
    let placed = t.fill_leftmost(&idle, 5).unwrap();
    assert_eq!(placed, SegmentSet::singleton(Interval::new(0, 5)));
    // Nothing left.
    assert!(t.idle_within(&Interval::new(0, 5)).is_empty());
    assert!(t.fill_leftmost(&[Interval::new(5, 6)], 2).is_none());
    t.allocate_one(Interval::new(7, 9)).unwrap();
    assert_eq!(t.idle_len_within(&Interval::new(0, 10)), 3);
}

#[test]
fn schedule_value_with_duplicated_assign_overwrites() {
    let jobs: JobSet = vec![Job::new(0, 10, 2, 4.0)].into_iter().collect();
    let mut s = Schedule::new();
    s.assign_single(JobId(0), SegmentSet::singleton(Interval::new(0, 2)));
    s.assign_single(JobId(0), SegmentSet::singleton(Interval::new(5, 7)));
    assert_eq!(s.len(), 1);
    assert_eq!(
        s.segments(JobId(0)).unwrap().segments(),
        &[Interval::new(5, 7)]
    );
    assert_eq!(s.value(&jobs), 4.0);
}

#[test]
fn stats_on_fully_rejected_set() {
    let jobs: JobSet = vec![Job::new(0, 10, 2, 4.0), Job::new(0, 10, 2, 6.0)]
        .into_iter()
        .collect();
    let st = schedule_stats(&jobs, &Schedule::new());
    assert_eq!(st.rejected, 2);
    assert_eq!(st.value_fraction, 0.0);
    assert!(st.machine_busy.is_empty());
}

#[test]
fn window_load_boundaries() {
    let mut s = Schedule::new();
    s.assign_single(JobId(0), SegmentSet::singleton(Interval::new(0, 4)));
    // Exact cover, empty window, disjoint window.
    assert_eq!(window_load(&s, 0, &Interval::new(0, 4)), 1.0);
    assert_eq!(window_load(&s, 0, &Interval::new(2, 2)), 0.0);
    assert_eq!(window_load(&s, 0, &Interval::new(4, 8)), 0.0);
    // Half covered.
    assert_eq!(window_load(&s, 0, &Interval::new(2, 6)), 0.5);
}

#[test]
fn jobset_subset_empty_and_full() {
    let js: JobSet = vec![Job::new(0, 5, 1, 1.0), Job::new(0, 5, 2, 2.0)]
        .into_iter()
        .collect();
    let (empty, back) = js.subset(&[]);
    assert!(empty.is_empty() && back.is_empty());
    let all: Vec<JobId> = js.ids().collect();
    let (full, back) = js.subset(&all);
    assert_eq!(full, js);
    assert_eq!(back, all);
    // Duplicated ids produce a multiset (documented: re-indexed copies).
    let (dup, _) = js.subset(&[JobId(1), JobId(1)]);
    assert_eq!(dup.len(), 2);
    assert_eq!(dup.total_value(), 4.0);
}

#[test]
fn segment_set_single_point_universe() {
    let s = SegmentSet::singleton(Interval::new(7, 8));
    assert_eq!(s.total_len(), 1);
    assert!(s.contains_point(7));
    assert!(!s.contains_point(8));
    assert_eq!(s.complement_within(&Interval::new(7, 8)), SegmentSet::new());
    assert_eq!(
        s.complement_within(&Interval::new(6, 9)),
        SegmentSet::from_intervals([Interval::new(6, 7), Interval::new(8, 9)])
    );
}

#[test]
fn interval_min_max_extremes() {
    // Construction near the numeric extremes must not overflow in length.
    let a = Interval::new(i64::MIN / 4, i64::MAX / 4);
    assert!(!a.is_empty());
    assert!(a.contains_point(0));
    let s = SegmentSet::singleton(a);
    assert_eq!(s.total_len(), a.len());
}

#[test]
fn verify_allows_unbounded_segments_when_k_none() {
    let jobs: JobSet = vec![Job::new(0, 100, 10, 1.0)].into_iter().collect();
    let pieces: Vec<Interval> = (0..10).map(|i| Interval::new(2 * i, 2 * i + 1)).collect();
    let mut s = Schedule::new();
    s.assign_single(JobId(0), SegmentSet::from_intervals(pieces));
    assert_eq!(s.preemptions(JobId(0)), 9);
    s.verify(&jobs, None).unwrap();
    assert!(s.verify(&jobs, Some(8)).is_err());
    s.verify(&jobs, Some(9)).unwrap();
}

#[test]
fn render_text_and_svg_agree_on_rows() {
    let jobs: JobSet = vec![Job::new(0, 10, 3, 1.0), Job::new(0, 12, 3, 1.0)]
        .into_iter()
        .collect();
    let mut s = Schedule::new();
    s.assign(JobId(0), 0, SegmentSet::singleton(Interval::new(0, 3)));
    s.assign(JobId(1), 1, SegmentSet::singleton(Interval::new(0, 3)));
    let text = render_gantt(&jobs, &s, RenderOptions::default());
    let svg = render_svg(&jobs, &s, SvgOptions::default());
    for label in ["m0 j0", "m1 j1"] {
        assert!(text.contains(label), "text missing {label}");
        assert!(svg.contains(label), "svg missing {label}");
    }
}
