//! Property tests for the `SegmentSet` algebra, validated against a naive
//! per-tick bitmap model over a small universe.

use pobp_core::{Interval, SegmentSet, Time};
use proptest::prelude::*;

const UNIVERSE: Time = 64;

/// Naive model: which ticks of `0..UNIVERSE` are covered.
fn model(s: &SegmentSet) -> Vec<bool> {
    (0..UNIVERSE).map(|t| s.contains_point(t)).collect()
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0..UNIVERSE, 0..UNIVERSE).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

fn arb_set() -> impl Strategy<Value = SegmentSet> {
    proptest::collection::vec(arb_interval(), 0..12).prop_map(SegmentSet::from_intervals)
}

fn assert_normal_form(s: &SegmentSet) {
    for seg in s.iter() {
        assert!(!seg.is_empty(), "empty segment in normal form: {s:?}");
    }
    for pair in s.segments().windows(2) {
        assert!(
            pair[0].end < pair[1].start,
            "segments not sorted/disjoint/non-touching: {s:?}"
        );
    }
}

proptest! {
    #[test]
    fn construction_matches_model(ivs in proptest::collection::vec(arb_interval(), 0..12)) {
        let s = SegmentSet::from_intervals(ivs.clone());
        assert_normal_form(&s);
        for t in 0..UNIVERSE {
            let expect = ivs.iter().any(|iv| iv.contains_point(t));
            prop_assert_eq!(s.contains_point(t), expect, "tick {}", t);
        }
        // Total length is the number of covered ticks.
        prop_assert_eq!(s.total_len(), model(&s).iter().filter(|&&b| b).count() as Time);
    }

    #[test]
    fn union_matches_model(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        assert_normal_form(&u);
        for t in 0..UNIVERSE {
            prop_assert_eq!(u.contains_point(t), a.contains_point(t) || b.contains_point(t));
        }
        // Commutativity.
        prop_assert_eq!(&u, &b.union(&a));
    }

    #[test]
    fn intersection_matches_model(a in arb_set(), b in arb_set()) {
        let i = a.intersect_set(&b);
        assert_normal_form(&i);
        for t in 0..UNIVERSE {
            prop_assert_eq!(i.contains_point(t), a.contains_point(t) && b.contains_point(t));
        }
        prop_assert_eq!(a.intersects_set(&b), !i.is_empty());
        prop_assert_eq!(&i, &b.intersect_set(&a));
    }

    #[test]
    fn subtraction_matches_model(a in arb_set(), b in arb_set()) {
        let d = a.subtract(&b);
        assert_normal_form(&d);
        for t in 0..UNIVERSE {
            prop_assert_eq!(d.contains_point(t), a.contains_point(t) && !b.contains_point(t));
        }
    }

    #[test]
    fn complement_partitions_window(a in arb_set(), w in arb_interval()) {
        prop_assume!(!w.is_empty());
        let idle = a.complement_within(&w);
        assert_normal_form(&idle);
        let busy_in_w = a.clip(&w);
        // Complement and clip partition the window exactly.
        prop_assert_eq!(idle.total_len() + busy_in_w.total_len(), w.len());
        prop_assert!(!idle.intersects_set(&busy_in_w));
        prop_assert_eq!(idle.union(&busy_in_w), SegmentSet::singleton(w));
    }

    #[test]
    fn insert_equals_union_singleton(a in arb_set(), iv in arb_interval()) {
        let mut ins = a.clone();
        ins.insert(iv);
        assert_normal_form(&ins);
        prop_assert_eq!(ins, a.union(&SegmentSet::singleton(iv)));
    }

    #[test]
    fn remove_equals_subtract_singleton(a in arb_set(), iv in arb_interval()) {
        let mut rem = a.clone();
        rem.remove(iv);
        prop_assert_eq!(rem, a.subtract(&SegmentSet::singleton(iv)));
    }

    #[test]
    fn clip_is_intersection_with_window(a in arb_set(), w in arb_interval()) {
        prop_assert_eq!(a.clip(&w), a.intersect_set(&SegmentSet::singleton(w)));
    }

    #[test]
    fn covers_iff_subtract_empty(a in arb_set(), iv in arb_interval()) {
        prop_assert_eq!(
            a.covers(&iv),
            SegmentSet::singleton(iv).subtract(&a).is_empty()
        );
    }

    #[test]
    fn leftmost_fit_is_leftmost_and_fits(a in arb_set(), len in 1..16i64, from in 0..UNIVERSE) {
        match a.leftmost_fit(len, from) {
            Some(slot) => {
                prop_assert_eq!(slot.len(), len);
                prop_assert!(slot.start >= from);
                prop_assert!(a.covers(&slot));
                // No earlier start would fit inside the covered set.
                for s in (from..slot.start).rev() {
                    let cand = Interval::with_len(s, len);
                    prop_assert!(!a.covers(&cand));
                }
            }
            None => {
                for s in from..UNIVERSE {
                    let cand = Interval::with_len(s, len);
                    prop_assert!(!a.covers(&cand));
                }
            }
        }
    }
}
