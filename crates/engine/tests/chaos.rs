//! Integration tests for the deterministic fault-injection layer
//! (`--features chaos`): every injected fault must surface as a structured
//! report — never as a wrong output row — and the certification and
//! degradation layers must respond exactly as `docs/robustness.md` claims.
#![cfg(feature = "chaos")]

use std::time::Duration;

use pobp_engine::{
    Algo, CertStage, DegradeCause, Engine, EngineConfig, FaultPlan, FaultSite, GridSpec,
    TaskResult,
};

fn grid() -> GridSpec {
    GridSpec::new(vec![6, 10], vec![0, 1, 2], vec![0, 1], Algo::Reduction)
}

fn sequential() -> EngineConfig {
    EngineConfig { threads: 1, max_retries: 0, ..EngineConfig::default() }
}

#[test]
fn corrupted_reference_cache_is_cert_failed_never_a_wrong_row() {
    // Corrupt every reference-layer put: certification must catch the
    // poisoned reference on every task that consumes it, and no Done row
    // may carry the corrupted value.
    let plan = FaultPlan::new(11).with_rate(FaultSite::CorruptRef, 1.0);
    let engine = Engine::with_chaos(EngineConfig { threads: 4, ..EngineConfig::default() }, plan);
    let tasks = grid().tasks();
    let batch = engine.run_batch(&tasks);
    for r in &batch.reports {
        let TaskResult::CertFailed { stage, reason } = &r.result else {
            panic!("task {} leaked past certification: {:?}", r.index, r.result);
        };
        assert_eq!(*stage, CertStage::Reference, "task {}: {reason}", r.index);
    }
    assert_eq!(batch.stats.cert_failed, tasks.len());
    assert_eq!(batch.stats.run, 0);
}

#[test]
fn corrupted_result_cache_poisons_the_duplicate_not_the_original() {
    // corrupt-result fires at put time, so the computing task still reports
    // its honest (pre-put) output; the poisoned entry is caught when a
    // duplicate task hits the cache.
    let plan = FaultPlan::new(3).with_rate(FaultSite::CorruptResult, 1.0);
    let engine = Engine::with_chaos(sequential(), plan);
    let task = grid().tasks().remove(0);
    let first = engine.run_batch(std::slice::from_ref(&task));
    assert!(matches!(first.reports[0].result, TaskResult::Done(_)));
    let second = engine.run_batch(std::slice::from_ref(&task));
    let TaskResult::CertFailed { stage, .. } = &second.reports[0].result else {
        panic!("poisoned hit leaked: {:?}", second.reports[0].result);
    };
    assert_eq!(*stage, CertStage::Value);
}

#[test]
fn forced_deadline_degrades_to_a_certified_polynomial_result() {
    let plan = FaultPlan::new(5).with_rate(FaultSite::ForcedDeadline, 1.0);
    let cfg = EngineConfig { threads: 2, degrade: true, ..EngineConfig::default() };
    let engine = Engine::with_chaos(cfg, plan);
    let tasks = grid().tasks();
    let batch = engine.run_batch(&tasks);
    for (r, t) in batch.reports.iter().zip(&tasks) {
        let TaskResult::Degraded { fallback, cause, output } = &r.result else {
            panic!("task {} not rescued: {:?}", r.index, r.result);
        };
        assert_eq!(*cause, DegradeCause::DeadlineExceeded);
        assert_eq!(*fallback, if t.k == 0 { Algo::K0 } else { Algo::LsaCs });
        assert!(output.alg_value.is_finite());
    }
    assert_eq!(batch.stats.degraded, tasks.len());
    assert_eq!(batch.stats.timed_out, 0);
    assert_eq!(batch.stats.cert_failed, 0);
}

#[test]
fn forced_deadline_without_degradation_is_a_timeout() {
    let plan = FaultPlan::new(5).with_rate(FaultSite::ForcedDeadline, 1.0);
    let engine = Engine::with_chaos(sequential(), plan);
    let batch = engine.run_batch(&grid().tasks());
    assert!(batch.reports.iter().all(|r| r.result == TaskResult::TimedOut));
}

#[test]
fn flaky_site_is_rescued_by_retry() {
    let plan = FaultPlan::new(17).with_rate(FaultSite::Flaky, 1.0);
    let cfg = EngineConfig {
        threads: 1,
        max_retries: 1,
        backoff: Duration::from_millis(1),
        ..EngineConfig::default()
    };
    let engine = Engine::with_chaos(cfg, plan);
    let tasks = grid().tasks();
    let batch = engine.run_batch(&tasks);
    for r in &batch.reports {
        assert!(matches!(r.result, TaskResult::Done(_)), "task {}: {:?}", r.index, r.result);
        assert_eq!(r.attempts, 2, "first attempt panicked, second landed");
    }
    assert_eq!(batch.stats.retried, tasks.len());
}

#[test]
fn panic_site_exhausts_retries_then_the_ladder_decides() {
    let mk_plan = || FaultPlan::new(23).with_rate(FaultSite::Panic, 1.0);
    let cfg = |degrade| EngineConfig {
        threads: 1,
        max_retries: 1,
        backoff: Duration::from_millis(1),
        degrade,
        ..EngineConfig::default()
    };
    let task = grid().tasks().remove(3);

    let hard = Engine::with_chaos(cfg(false), mk_plan());
    let batch = hard.run_batch(std::slice::from_ref(&task));
    let TaskResult::Panicked { message } = &batch.reports[0].result else {
        panic!("{:?}", batch.reports[0].result)
    };
    assert!(message.contains("chaos: injected panic"), "got: {message}");
    assert_eq!(batch.reports[0].attempts, 2);

    let soft = Engine::with_chaos(cfg(true), mk_plan());
    let batch = soft.run_batch(std::slice::from_ref(&task));
    let TaskResult::Degraded { cause, .. } = &batch.reports[0].result else {
        panic!("{:?}", batch.reports[0].result)
    };
    assert_eq!(*cause, DegradeCause::RetriesExhausted);
}

#[test]
fn spurious_cancel_surfaces_as_a_deadline_stop() {
    let plan = FaultPlan::new(29).with_rate(FaultSite::SpuriousCancel, 1.0);
    let engine = Engine::with_chaos(sequential(), plan);
    let batch = engine.run_batch(&grid().tasks());
    assert!(batch.reports.iter().all(|r| r.result == TaskResult::TimedOut));

    let plan = FaultPlan::new(29).with_rate(FaultSite::SpuriousCancel, 1.0);
    let rescue = Engine::with_chaos(
        EngineConfig { degrade: true, ..sequential() },
        plan,
    );
    let batch = rescue.run_batch(&grid().tasks());
    assert!(batch
        .reports
        .iter()
        .all(|r| matches!(r.result, TaskResult::Degraded { cause: DegradeCause::DeadlineExceeded, .. })));
}

#[test]
fn partial_rate_plans_replay_exactly_across_runs() {
    // The engine-level determinism claim behind `--chaos-seed`: the same
    // plan over the same tasks yields byte-identical reports, run to run.
    let mk = || {
        let plan = FaultPlan::new(1234)
            .with_rate(FaultSite::Panic, 0.3)
            .with_rate(FaultSite::Flaky, 0.3)
            .with_rate(FaultSite::ForcedDeadline, 0.3)
            .with_rate(FaultSite::CorruptRef, 0.3);
        let cfg = EngineConfig {
            threads: 1,
            max_retries: 1,
            backoff: Duration::from_millis(1),
            degrade: true,
            ..EngineConfig::default()
        };
        Engine::with_chaos(cfg, plan)
    };
    let a = mk().run_batch(&grid().tasks());
    let b = mk().run_batch(&grid().tasks());
    assert_eq!(format!("{:#?}", a.reports), format!("{:#?}", b.reports));
    // The seed at rate 0.3 over this grid hits a mix of outcomes — the
    // test is vacuous if everything lands in one bucket.
    let statuses: std::collections::BTreeSet<&str> =
        a.reports.iter().map(|r| r.result.status()).collect();
    assert!(statuses.len() >= 2, "want a mixed batch, got {statuses:?}");
}
