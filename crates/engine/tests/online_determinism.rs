//! The online algorithms inherit the engine's determinism contract: a batch
//! of online-arrival tasks over the instance zoo produces byte-identical
//! ordered reports for `threads = 1` and `threads = 4`, and (with
//! `--features trace`) a byte-identical logical trace.
//!
//! Caveat baked into these tests: zoo cells are compared with the result
//! cache **off**. The fig2/fig4 families ignore their seed, so a sweep holds
//! duplicate cache keys and *which* duplicate is served from cache is
//! scheduling-dependent — `attempts` (part of the Debug rendering) is
//! cache-state metadata, not certified output. The `pobp online` CLI handles
//! this by never emitting `attempts`; here we simply keep every task fresh.

use proptest::prelude::*;

use pobp_engine::{run_batch, Algo, EngineConfig, SolveTask, TaskResult};
use pobp_instances::{zoo_instance, ZooFamily, ZOO_FAMILIES};

fn online_zoo_tasks(ns: &[usize], ks: &[u32], seeds: &[u64]) -> Vec<SolveTask> {
    let mut tasks = Vec::new();
    for &family in &ZOO_FAMILIES {
        for &n in ns {
            for &seed in seeds {
                for &k in ks {
                    let instance = zoo_instance(family, n, k, seed);
                    for algo in [Algo::OnlineDjn, Algo::OnlineGreedy, Algo::OnlineEdf] {
                        let mut t = SolveTask::new(instance.clone(), k, algo);
                        t.label = format!("{family} n={n} k={k} seed={seed} {}", algo.name());
                        tasks.push(t);
                    }
                }
            }
        }
    }
    tasks
}

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        max_retries: 1,
        backoff: std::time::Duration::from_millis(1),
        use_cache: false,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `--threads 1` and `--threads 4` agree byte-for-byte on the full
    /// Debug rendering of an online zoo sweep's reports.
    #[test]
    fn online_reports_are_thread_count_invariant(
        ns in proptest::collection::vec(4usize..10, 1..=2),
        ks in proptest::collection::vec(0u32..3, 1..=2),
        seed in 0u64..50,
    ) {
        let tasks = online_zoo_tasks(&ns, &ks, &[seed]);
        let seq = run_batch(&tasks, config(1));
        let par = run_batch(&tasks, config(4));
        prop_assert_eq!(format!("{:#?}", seq.reports), format!("{:#?}", par.reports));
        for report in &seq.reports {
            prop_assert!(matches!(report.result, TaskResult::Done(_)), "{} failed", report.label);
        }
    }
}

/// Every online task comes back certified: the executor's schedule passes
/// the engine's independent recheck (feasible, k-bounded, value matches).
#[test]
fn online_outputs_are_certified() {
    let tasks = online_zoo_tasks(&[6, 9], &[0, 1, 2], &[0, 1]);
    let batch = run_batch(&tasks, config(2));
    assert_eq!(batch.stats.run, batch.stats.tasks);
    assert_eq!(batch.stats.cert_failed, 0);
    for report in &batch.reports {
        let TaskResult::Done(out) = &report.result else {
            panic!("{} did not finish: {:?}", report.label, report.result)
        };
        assert!(out.alg_value >= 0.0);
    }
}

/// The logical projection of an online sweep's trace is byte-identical
/// across thread counts (`docs/observability.md`): the `online.*` instants
/// fire inside the task span in decision order, independent of scheduling.
#[cfg(feature = "trace")]
#[test]
fn online_logical_trace_is_thread_count_invariant() {
    use pobp_core::trace;
    let tasks = online_zoo_tasks(&[5, 8], &[0, 1], &[3]);
    let run = |threads: usize| {
        let (_batch, events) = trace::capture(|| run_batch(&tasks, config(threads)));
        trace::logical_text(&events)
    };
    let seq = run(1);
    let par = run(4);
    assert!(seq.contains("online."), "expected online.* instants in the logical trace:\n{seq}");
    assert_eq!(seq, par);
}

/// Online families parse through the shared `Algo` registry.
#[test]
fn online_algo_names_round_trip() {
    for algo in [Algo::OnlineDjn, Algo::OnlineGreedy, Algo::OnlineEdf] {
        assert!(algo.is_online());
        assert_eq!(Algo::parse(algo.name()), Some(algo));
    }
    assert!(!Algo::Reduction.is_online());
    let _ = ZooFamily::parse("fig2").expect("zoo family registry");
}
