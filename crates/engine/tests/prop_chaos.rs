//! The chaos determinism contract, property-tested: a fault-injected sweep
//! replays **byte-identically** across thread counts for any seed, because
//! every injection decision is a pure hash of `(seed, site, task key)` —
//! including runs where faults land as `Degraded` and `CertFailed` rows.
#![cfg(feature = "chaos")]

use proptest::prelude::*;

use pobp_engine::{Algo, Engine, EngineConfig, FaultPlan, FaultSite, GridSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn chaos_sweeps_are_byte_identical_across_thread_counts(
        seed in 0u64..10_000,
        ns in proptest::collection::vec(4usize..12, 1..=2),
        ks in proptest::collection::vec(0u32..3, 1..=2),
        degrade in AnyBool,
    ) {
        let tasks = GridSpec::new(ns, ks, vec![0, 1], Algo::Reduction).tasks();
        let run = |threads: usize| {
            let plan = FaultPlan::new(seed)
                .with_rate(FaultSite::Panic, 0.2)
                .with_rate(FaultSite::Flaky, 0.2)
                .with_rate(FaultSite::SpuriousCancel, 0.2)
                .with_rate(FaultSite::ForcedDeadline, 0.2)
                .with_rate(FaultSite::CorruptRef, 0.2);
            let cfg = EngineConfig {
                threads,
                max_retries: 1,
                backoff: std::time::Duration::from_millis(1),
                degrade,
                ..EngineConfig::default()
            };
            Engine::with_chaos(cfg, plan).run_batch(&tasks)
        };
        let seq = run(1);
        let par = run(4);
        prop_assert_eq!(
            format!("{:#?}", seq.reports),
            format!("{:#?}", par.reports)
        );
        for s in [seq.stats, par.stats] {
            prop_assert_eq!(
                s.run + s.cached + s.degraded + s.cert_failed + s.panicked + s.timed_out
                    + s.cancelled,
                s.tasks
            );
            // Integrity failures are never rescued; availability failures
            // always are when the ladder is armed (no PanicForTest here).
            if degrade {
                prop_assert_eq!(s.panicked + s.timed_out, 0);
            }
        }
    }
}
