//! The determinism contract, property-tested: a sweep over a random grid
//! produces **byte-identical ordered results** with `threads = 1` and
//! `threads = 4`, including when one task is forced to panic mid-batch.
//!
//! "Byte-identical" is taken literally: the full `Debug` rendering of the
//! report vector (indices, labels, attempts, values, panic messages) is
//! compared as a string. Cache state is also exercised on both sides —
//! caching must never change what a task returns.

use proptest::prelude::*;

use pobp_engine::{run_batch, Algo, EngineConfig, GridSpec, SolveTask, TaskResult};

fn arb_algo() -> impl Strategy<Value = Algo> {
    (0u8..4).prop_map(|i| match i {
        0 => Algo::Reduction,
        1 => Algo::Combined,
        2 => Algo::LsaCs,
        _ => Algo::K0,
    })
}

fn render(reports: &[pobp_engine::TaskReport]) -> String {
    format!("{reports:#?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn threads_1_and_4_are_byte_identical(
        ns in proptest::collection::vec(4usize..14, 1..=2),
        ks in proptest::collection::vec(0u32..4, 1..=3),
        seeds in proptest::collection::vec(0u64..100, 1..=3),
        algo in arb_algo(),
        panic_at in 0usize..64,
        use_cache in AnyBool,
    ) {
        let grid = GridSpec::new(ns, ks, seeds, algo);
        let mut tasks = grid.tasks();
        // Force one panic somewhere in the batch: isolation must not
        // disturb the surrounding results on either thread count.
        let at = panic_at % tasks.len();
        let mut bad = SolveTask::new(tasks[at].instance.clone(), 1, Algo::PanicForTest);
        bad.label = format!("panic@{at}");
        tasks.insert(at, bad);

        let run = |threads: usize| {
            let cfg = EngineConfig {
                threads,
                max_retries: 1,
                backoff: std::time::Duration::from_millis(1),
                use_cache,
                ..EngineConfig::default()
            };
            run_batch(&tasks, cfg)
        };
        let seq = run(1);
        let par = run(4);

        prop_assert_eq!(render(&seq.reports), render(&par.reports));
        // The injected panic surfaced as a record, not an abort.
        prop_assert!(matches!(
            seq.reports[at].result,
            TaskResult::Panicked { .. }
        ));
        // Terminal kinds partition the batch on both sides.
        for s in [seq.stats, par.stats] {
            prop_assert_eq!(
                s.run + s.cached + s.degraded + s.cert_failed + s.panicked + s.timed_out
                    + s.cancelled,
                s.tasks
            );
            prop_assert_eq!(s.panicked, 1);
        }
    }
}
