//! Steal-heavy schedules, property-tested: with skewed task sizes (a few
//! expensive instances pinning one worker while tiny ones drain), forced
//! panics, and — with the `chaos` feature — seeded fault injection, the
//! work-stealing pool still produces **byte-identical reports** at
//! `threads ∈ {1, 2, 4}`, and (with `--features trace`) byte-identical
//! logical traces. Steal telemetry is an invariant check only: it lives in
//! `EngineStats`, outside the determinism contract, and is never compared
//! across thread counts.

use proptest::prelude::*;

use pobp_engine::{run_batch, Algo, EngineConfig, GridSpec, SolveTask, TaskResult};

/// A grid whose cells differ wildly in cost: `big` large instances up
/// front (each pinning its worker for a while) followed by a tail of tiny
/// cells — the shape that forces idle workers onto the steal path.
fn skewed_tasks(big: usize, big_n: usize, small_seeds: u64) -> Vec<SolveTask> {
    let mut tasks = GridSpec::new(
        vec![big_n],
        vec![2],
        (0..big as u64).collect(),
        Algo::Combined,
    )
    .tasks();
    tasks.extend(GridSpec::new(vec![4, 5], vec![0, 1], (0..small_seeds).collect(), Algo::Reduction).tasks());
    tasks
}

fn cfg(threads: usize, use_cache: bool) -> EngineConfig {
    EngineConfig {
        threads,
        max_retries: 1,
        backoff: std::time::Duration::from_millis(1),
        use_cache,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reports are byte-identical at 1, 2, and 4 threads on a skewed batch
    /// with a forced panic (which retries, requeues, and may migrate to a
    /// different worker — the report must not care).
    #[test]
    fn skewed_schedules_are_byte_identical_across_thread_counts(
        big in 1usize..3,
        big_n in 40usize..80,
        small_seeds in 4u64..12,
        panic_at in 0usize..64,
        use_cache in AnyBool,
    ) {
        let mut tasks = skewed_tasks(big, big_n, small_seeds);
        let at = panic_at % tasks.len();
        let mut bad = SolveTask::new(tasks[at].instance.clone(), 1, Algo::PanicForTest);
        bad.label = format!("panic@{at}");
        tasks.insert(at, bad);

        let seq = run_batch(&tasks, cfg(1, use_cache));
        let two = run_batch(&tasks, cfg(2, use_cache));
        let par = run_batch(&tasks, cfg(4, use_cache));

        let want = format!("{:#?}", seq.reports);
        prop_assert_eq!(&want, &format!("{:#?}", two.reports));
        prop_assert_eq!(&want, &format!("{:#?}", par.reports));
        prop_assert!(matches!(seq.reports[at].result, TaskResult::Panicked { .. }));

        // Steal accounting is telemetry, not contract: only its invariants
        // hold. A single worker has nobody to rob.
        prop_assert_eq!(seq.stats.steal_attempts, 0);
        prop_assert_eq!(seq.stats.steal_hits, 0);
        for s in [seq.stats, two.stats, par.stats] {
            prop_assert!(s.steal_hits <= s.steal_attempts);
            prop_assert_eq!(
                s.run + s.cached + s.degraded + s.cert_failed + s.panicked + s.timed_out
                    + s.cancelled,
                s.tasks
            );
        }
    }
}

#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use pobp_engine::{Engine, FaultPlan, FaultSite};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The same skew, plus a seeded fault plan hammering every site:
        /// injection decisions are pure hashes of `(seed, site, task key)`,
        /// so stolen or requeued units fault identically wherever they run.
        #[test]
        fn skewed_chaos_schedules_are_byte_identical(
            seed in 0u64..10_000,
            big in 1usize..3,
            small_seeds in 4u64..10,
            degrade in AnyBool,
        ) {
            let tasks = skewed_tasks(big, 48, small_seeds);
            let run = |threads: usize| {
                let plan = FaultPlan::new(seed)
                    .with_rate(FaultSite::Panic, 0.25)
                    .with_rate(FaultSite::Flaky, 0.25)
                    .with_rate(FaultSite::Delay, 0.25)
                    .with_rate(FaultSite::SpuriousCancel, 0.2)
                    .with_rate(FaultSite::ForcedDeadline, 0.2)
                    .with_rate(FaultSite::CorruptRef, 0.2);
                let mut cfg = cfg(threads, true);
                cfg.degrade = degrade;
                Engine::with_chaos(cfg, plan).run_batch(&tasks)
            };
            let seq = run(1);
            let two = run(2);
            let par = run(4);
            let want = format!("{:#?}", seq.reports);
            prop_assert_eq!(&want, &format!("{:#?}", two.reports));
            prop_assert_eq!(&want, &format!("{:#?}", par.reports));
        }
    }
}

#[cfg(feature = "trace")]
mod trace_side {
    use super::*;
    use pobp_core::trace;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The logical trace projection (ordering and phase transitions,
        /// timestamps stripped) of a steal-heavy schedule is identical at
        /// every thread count: `(task, seq)` ordering erases which worker
        /// ran — or stole — each attempt.
        #[test]
        fn skewed_logical_traces_are_thread_count_invariant(
            big in 1usize..3,
            small_seeds in 4u64..10,
            panic_at in 0usize..64,
        ) {
            let mut tasks = skewed_tasks(big, 44, small_seeds);
            let at = panic_at % tasks.len();
            let mut bad = SolveTask::new(tasks[at].instance.clone(), 1, Algo::PanicForTest);
            bad.label = format!("panic@{at}");
            tasks.insert(at, bad);

            let logical = |threads: usize| {
                let cfg = cfg(threads, true);
                let tasks = &tasks;
                let (_batch, events) = trace::capture(move || run_batch(tasks, cfg));
                trace::logical_text(&events)
            };
            let seq = logical(1);
            prop_assert!(!seq.is_empty());
            prop_assert_eq!(&seq, &logical(2));
            prop_assert_eq!(&seq, &logical(4));
        }
    }
}
