//! Integration tests for the engine's robustness features: panic
//! isolation, retry accounting, deadlines, cancellation, caching, and the
//! terminal-kind partition invariant.

use std::time::Duration;

use pobp_engine::{
    instance_hash, run_batch, Algo, CertStage, DegradeCause, Engine, EngineConfig, GridSpec,
    SolveTask, TaskResult,
};

/// One worker thread and no retry: the fully sequential reference setup.
fn sequential() -> EngineConfig {
    EngineConfig { threads: 1, max_retries: 0, ..EngineConfig::default() }
}

fn grid_tasks() -> Vec<SolveTask> {
    GridSpec::new(vec![6, 10], vec![0, 1, 2], vec![0, 1], Algo::Reduction).tasks()
}

#[test]
fn batch_solves_a_grid_in_input_order() {
    let tasks = grid_tasks();
    let batch = run_batch(&tasks, EngineConfig { threads: 4, ..EngineConfig::default() });
    assert_eq!(batch.reports.len(), tasks.len());
    for (i, r) in batch.reports.iter().enumerate() {
        assert_eq!(r.index, i);
        assert_eq!(r.label, tasks[i].label);
        let TaskResult::Done(out) = &r.result else {
            panic!("task {i} did not complete: {:?}", r.result);
        };
        assert!(out.alg_value <= out.ref_value + 1e-9, "k-bounded beats its own reference");
    }
    let s = batch.stats;
    assert_eq!(
        s.run + s.cached + s.degraded + s.cert_failed + s.panicked + s.timed_out + s.cancelled,
        s.tasks
    );
    assert_eq!(s.tasks, tasks.len());
}

#[test]
fn panicking_task_is_isolated_not_fatal() {
    let mut tasks = grid_tasks();
    let mut bad = SolveTask::new(tasks[0].instance.clone(), 1, Algo::PanicForTest);
    bad.label = "boom".into();
    tasks.insert(1, bad);
    let batch = run_batch(&tasks, EngineConfig { threads: 4, ..EngineConfig::default() });
    assert_eq!(batch.reports.len(), tasks.len());
    match &batch.reports[1].result {
        TaskResult::Panicked { message } => {
            assert!(message.contains("injected panic"), "got: {message}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // Every other task still completed.
    for (i, r) in batch.reports.iter().enumerate() {
        if i != 1 {
            assert!(matches!(r.result, TaskResult::Done(_)), "task {i}: {:?}", r.result);
        }
    }
    assert_eq!(batch.stats.panicked, 1);
    assert_eq!(batch.stats.run + batch.stats.cached, tasks.len() - 1);
}

#[test]
fn retry_accounting_is_bounded() {
    let task = SolveTask::new(grid_tasks()[0].instance.clone(), 1, Algo::PanicForTest);
    let cfg = EngineConfig {
        threads: 1,
        max_retries: 2,
        backoff: Duration::from_millis(1),
        ..EngineConfig::default()
    };
    let batch = run_batch(&[task], cfg);
    let r = &batch.reports[0];
    assert_eq!(r.attempts, 3, "1 attempt + 2 retries");
    assert!(matches!(r.result, TaskResult::Panicked { .. }));
    assert_eq!(batch.stats.retried, 2);
    assert_eq!(batch.stats.panicked, 1);
}

#[test]
fn zero_deadline_times_every_task_out() {
    let tasks = grid_tasks();
    let cfg = EngineConfig {
        threads: 2,
        deadline: Some(Duration::ZERO),
        ..EngineConfig::default()
    };
    let batch = run_batch(&tasks, cfg);
    for r in &batch.reports {
        assert_eq!(r.result, TaskResult::TimedOut, "task {}", r.index);
    }
    assert_eq!(batch.stats.timed_out, tasks.len());
}

#[test]
fn cancelled_engine_reports_cancelled() {
    let engine = Engine::new(sequential());
    engine.cancel_all();
    let batch = engine.run_batch(&grid_tasks());
    for r in &batch.reports {
        assert_eq!(r.result, TaskResult::Cancelled);
    }
    assert_eq!(batch.stats.cancelled, batch.stats.tasks);
}

#[test]
fn duplicate_tasks_hit_the_result_cache() {
    let base = grid_tasks();
    let tasks = vec![base[0].clone(), base[0].clone(), base[0].clone()];
    let batch = run_batch(&tasks, sequential());
    assert_eq!(batch.stats.run, 1);
    assert_eq!(batch.stats.cached, 2);
    // Cached answers are identical to the computed one.
    let TaskResult::Done(first) = &batch.reports[0].result else { panic!() };
    for r in &batch.reports[1..] {
        let TaskResult::Done(out) = &r.result else { panic!() };
        assert_eq!(out, first);
        assert_eq!(r.attempts, 0, "cache hits make no attempt");
    }
}

#[test]
fn reference_layer_is_shared_across_k() {
    // One instance, four budgets: the unbounded reference is computed once.
    let grid = GridSpec::new(vec![12], vec![1, 2, 4, 8], vec![7], Algo::Reduction);
    let batch = run_batch(&grid.tasks(), sequential());
    assert_eq!(batch.stats.run, 4);
    assert_eq!(batch.stats.ref_cache_hits, 3);
    // All four tasks report the same reference value.
    let refs: Vec<f64> = batch
        .reports
        .iter()
        .map(|r| match &r.result {
            TaskResult::Done(out) => out.ref_value,
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(refs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn cache_off_recomputes_everything() {
    let base = grid_tasks();
    let tasks = vec![base[0].clone(), base[0].clone()];
    let cfg = EngineConfig { use_cache: false, ..sequential() };
    let batch = run_batch(&tasks, cfg);
    assert_eq!(batch.stats.run, 2);
    assert_eq!(batch.stats.cached, 0);
    assert_eq!(batch.stats.ref_cache_hits, 0);
}

#[test]
fn exact_reference_reports_opt_inf() {
    // n is small enough for the exact oracle: ref_value must dominate
    // every algorithm's value, and Done outputs expose the price.
    let grid = GridSpec {
        ns: vec![8],
        ks: vec![1],
        seeds: vec![3],
        algo: Algo::Combined,
        machines: 1,
        exact_ref: true,
    };
    let batch = run_batch(&grid.tasks(), sequential());
    let TaskResult::Done(out) = &batch.reports[0].result else { panic!() };
    assert!(out.ref_value >= out.alg_value - 1e-9);
    assert!(out.price().unwrap() >= 1.0 - 1e-9);
    assert!(out.branch_values.is_some(), "combined exposes branch values");
}

#[test]
fn multi_machine_tasks_verify_and_dominate_single() {
    let instance = grid_tasks()[0].instance.clone();
    let mk = |machines: usize| SolveTask {
        machines,
        ..SolveTask::new(instance.clone(), 2, Algo::LsaCs)
    };
    let batch = run_batch(&[mk(1), mk(4)], sequential());
    let values: Vec<f64> = batch
        .reports
        .iter()
        .map(|r| match &r.result {
            TaskResult::Done(out) => out.alg_value,
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(values[1] >= values[0] - 1e-9, "more machines never lose value");
}

#[test]
fn degradation_rescues_deadline_overruns_with_the_polynomial_fallback() {
    let tasks = grid_tasks();
    let cfg = EngineConfig {
        threads: 2,
        deadline: Some(Duration::ZERO),
        degrade: true,
        ..EngineConfig::default()
    };
    let batch = run_batch(&tasks, cfg);
    for (r, t) in batch.reports.iter().zip(&tasks) {
        let TaskResult::Degraded { fallback, cause, output } = &r.result else {
            panic!("task {} not degraded: {:?}", r.index, r.result);
        };
        assert_eq!(*cause, DegradeCause::DeadlineExceeded);
        let expected = if t.k == 0 { Algo::K0 } else { Algo::LsaCs };
        assert_eq!(*fallback, expected, "task {}", r.index);
        // The fallback output passed certification like any Done result.
        assert!(output.alg_value.is_finite());
        assert!(output.scheduled <= t.instance.len());
        assert_eq!(r.result.output().unwrap(), output);
    }
    assert_eq!(batch.stats.degraded, tasks.len());
    assert_eq!(batch.stats.timed_out, 0);
}

#[test]
fn degradation_skips_the_test_only_panic_algo() {
    // PanicForTest has no meaningful fallback; the original failure stands
    // even with degradation armed.
    let task = SolveTask::new(grid_tasks()[0].instance.clone(), 1, Algo::PanicForTest);
    let cfg = EngineConfig { degrade: true, ..sequential() };
    let batch = run_batch(&[task], cfg);
    assert!(matches!(batch.reports[0].result, TaskResult::Panicked { .. }));
    assert_eq!(batch.stats.degraded, 0);
}

#[test]
fn tampered_cache_entry_fails_certification_instead_of_leaking() {
    // The trust boundary in action without the chaos feature: poison a
    // result-cache entry by hand and check the engine refuses to serve it.
    let task = grid_tasks()[0].clone();
    let engine = Engine::new(sequential());
    let first = engine.run_batch(std::slice::from_ref(&task));
    let TaskResult::Done(honest) = &first.reports[0].result else { panic!() };

    let inst = instance_hash(&task.instance);
    let mut entry = engine
        .cache()
        .get_result(inst, task.k, task.machines, task.algo, task.exact_ref)
        .expect("first run populated the result layer");
    entry.output.alg_value = honest.alg_value * 2.0 + 1.0;
    engine
        .cache()
        .put_result(inst, task.k, task.machines, task.algo, task.exact_ref, entry);

    let second = engine.run_batch(std::slice::from_ref(&task));
    let TaskResult::CertFailed { stage, reason } = &second.reports[0].result else {
        panic!("poisoned hit leaked: {:?}", second.reports[0].result);
    };
    assert_eq!(*stage, CertStage::Value);
    assert!(reason.contains("value"), "got: {reason}");
    assert_eq!(second.stats.cert_failed, 1);
    assert_eq!(second.stats.cached, 0);
}

/// The obs acceptance criterion: with the feature on, the engine's terminal
/// counters sum to the grid size.
#[cfg(feature = "obs")]
#[test]
fn obs_counters_partition_the_batch() {
    use pobp_core::obs;

    let mut tasks = grid_tasks();
    let mut bad = SolveTask::new(tasks[0].instance.clone(), 1, Algo::PanicForTest);
    bad.label = "boom".into();
    tasks.push(bad);
    let total = tasks.len() as u64;
    let cfg = EngineConfig {
        threads: 4,
        max_retries: 1,
        backoff: Duration::from_millis(1),
        ..EngineConfig::default()
    };
    let (_, snap) = obs::measure(|| run_batch(&tasks, cfg));
    let sum = snap.counter("engine.tasks.run")
        + snap.counter("engine.tasks.cached")
        + snap.counter("engine.tasks.panicked")
        + snap.counter("engine.tasks.timed_out")
        + snap.counter("engine.tasks.cancelled");
    assert_eq!(sum, total);
    // Every emitted output was certified exactly once.
    assert_eq!(
        snap.counter("engine.cert.ok"),
        snap.counter("engine.tasks.run") + snap.counter("engine.tasks.cached")
    );
    assert_eq!(snap.counter("engine.cert.failed"), 0);
    assert_eq!(snap.counter("engine.tasks.panicked"), 1);
    assert_eq!(snap.counter("engine.tasks.retried"), 1);
    assert!(snap.events.contains_key("engine.queue.depth"));
    assert!(snap.events.contains_key("engine.worker.busy_us"));
}
