//! `Engine::shutdown` — the drain-then-join and cancel-then-join paths the
//! `pobp serve` daemon uses to stop cleanly (`docs/engine.md`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pobp_engine::{Algo, Engine, EngineConfig, GridSpec, TaskResult};

fn slow_batch(cells: usize) -> Vec<pobp_engine::SolveTask> {
    // Enough distinct (seed, k) reduction cells that a single worker is
    // busy for a while; no two tasks share a cache key.
    GridSpec::new(vec![40], (0..4).collect(), (0..cells as u64 / 4).collect(), Algo::Reduction)
        .tasks()
}

#[test]
fn drain_shutdown_lets_inflight_batches_finish() {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        use_cache: false,
        ..EngineConfig::default()
    }));
    let worker = {
        let engine = engine.clone();
        std::thread::spawn(move || engine.run_batch(&slow_batch(40)))
    };
    // Let the batch get going, then drain: every task must still complete
    // with a real result — drain never cancels.
    std::thread::sleep(Duration::from_millis(10));
    engine.shutdown(true);
    let batch = worker.join().unwrap();
    assert!(engine.is_closed());
    assert_eq!(batch.reports.len(), 40);
    for r in &batch.reports {
        assert!(matches!(r.result, TaskResult::Done(_)), "drained task ended {:?}", r.result);
    }
    assert_eq!(batch.stats.run, 40);
    assert_eq!(batch.stats.cancelled, 0);
}

#[test]
fn cancel_shutdown_stops_the_batch_at_the_next_boundary() {
    let engine = Arc::new(Engine::new(EngineConfig {
        threads: 1,
        use_cache: false,
        ..EngineConfig::default()
    }));
    let worker = {
        let engine = engine.clone();
        std::thread::spawn(move || engine.run_batch(&slow_batch(400)))
    };
    std::thread::sleep(Duration::from_millis(30));
    let begun = Instant::now();
    engine.shutdown(false);
    let waited = begun.elapsed();
    let batch = worker.join().unwrap();
    // The batch is accounted for in full: whatever ran before the cancel is
    // Done, everything after the boundary is Cancelled, nothing is lost.
    assert_eq!(batch.reports.len(), 400);
    let s = batch.stats;
    assert_eq!(s.run + s.cancelled, s.tasks, "unexpected taxonomy: {s:?}");
    assert!(s.cancelled > 0, "cancel-shutdown should cut the 400-cell batch short: {s:?}");
    // Cancel-then-join returns as soon as in-flight tasks notice the token,
    // not after the whole batch would have run.
    assert!(waited < Duration::from_secs(30), "shutdown took {waited:?}");
}

#[test]
fn closed_engine_refuses_new_batches_as_cancelled() {
    let engine = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
    engine.shutdown(true); // idle engine: returns immediately
    engine.shutdown(false); // idempotent, either mode
    let batch = engine.run_batch(&slow_batch(8));
    assert_eq!(batch.reports.len(), 8);
    for r in &batch.reports {
        assert_eq!(r.result, TaskResult::Cancelled);
        assert_eq!(r.attempts, 0);
    }
    assert_eq!(batch.stats.cancelled, 8);
}

#[test]
fn shared_cache_spans_engines() {
    // Two engines over one cache: the second serves the first's results as
    // cache hits — the serve daemon's per-job-engine pattern.
    let a = Engine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
    let tasks = slow_batch(8);
    let first = a.run_batch(&tasks);
    assert_eq!(first.stats.run, 8);
    let b = Engine::with_shared_cache(
        EngineConfig { threads: 1, ..EngineConfig::default() },
        a.cache_handle(),
    );
    let second = b.run_batch(&tasks);
    assert_eq!(second.stats.cached, 8, "shared cache should answer the rerun");
    for (x, y) in first.reports.iter().zip(&second.reports) {
        assert_eq!(x.result.output(), y.result.output());
    }
}
