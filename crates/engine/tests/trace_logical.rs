//! The logical-trace determinism contract (docs/observability.md): the
//! logical projection of an engine trace — ordering and phase transitions,
//! timestamps stripped — is **byte-identical** across thread counts, and
//! the Chrome spans are well-formed (balanced, properly nested) with the
//! task span dominated by its instrumented children.
//!
//! Only compiled with `--features trace`; the chaos variant additionally
//! needs `--features chaos`.

#![cfg(feature = "trace")]

use pobp_core::trace::{self, TraceEvent, TraceKind};
use pobp_engine::{run_batch, Algo, EngineConfig, GridSpec, SolveTask};
use proptest::prelude::*;

/// Runs `tasks` through the pool at the given thread count inside an
/// exclusive trace window and returns the logical trace text.
fn logical_of(tasks: &[SolveTask], threads: usize, use_cache: bool) -> String {
    let cfg = EngineConfig {
        threads,
        max_retries: 1,
        backoff: std::time::Duration::from_millis(1),
        use_cache,
        ..EngineConfig::default()
    };
    let (_batch, events) = trace::capture(|| run_batch(tasks, cfg));
    trace::logical_text(&events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline acceptance test: `--threads 1` and `--threads 4`
    /// produce byte-identical logical traces, including with a panicking
    /// task in the middle of the batch and with the cache on (cache events
    /// are timing-class, so they never reach the logical projection).
    #[test]
    fn logical_trace_is_thread_count_invariant(
        ns in proptest::collection::vec(4usize..12, 1..=2),
        ks in proptest::collection::vec(0u32..3, 1..=2),
        seeds in proptest::collection::vec(0u64..100, 1..=2),
        panic_at in 0usize..64,
        use_cache in AnyBool,
    ) {
        let grid = GridSpec::new(ns, ks, seeds, Algo::Reduction);
        let mut tasks = grid.tasks();
        let at = panic_at % tasks.len();
        let mut bad = SolveTask::new(tasks[at].instance.clone(), 1, Algo::PanicForTest);
        bad.label = format!("panic@{at}");
        tasks.insert(at, bad);

        let seq = logical_of(&tasks, 1, use_cache);
        let par = logical_of(&tasks, 4, use_cache);
        prop_assert!(!seq.is_empty());
        prop_assert_eq!(seq, par);
    }
}

/// Every phase the pool emits shows up in the logical trace of a plain run.
#[test]
fn logical_trace_covers_the_lifecycle() {
    let grid = GridSpec::new(vec![10], vec![1], vec![0, 1], Algo::Reduction);
    let text = logical_of(&grid.tasks(), 2, true);
    for needle in ["task.enqueue", "begin task", "begin attempt", "cert.ok", "emit", "end task"] {
        assert!(text.contains(needle), "logical trace missing {needle:?}:\n{text}");
    }
    // Timing-class phases must NOT leak into the logical projection.
    for forbidden in ["cache.", "engine.solve.time", "engine.cert.time"] {
        assert!(!text.contains(forbidden), "timing phase {forbidden:?} leaked:\n{text}");
    }
}

/// Begin/End events are balanced and properly nested per worker: replaying
/// each worker's events in sequence order never pops a mismatched phase
/// and ends with an empty stack.
#[test]
fn spans_are_balanced_and_nested_per_worker() {
    let grid = GridSpec::new(vec![12, 20], vec![0, 2], vec![0, 1, 2], Algo::Combined);
    let cfg = EngineConfig { threads: 4, ..EngineConfig::default() };
    let (_batch, mut events) = trace::capture(|| run_batch(&grid.tasks(), cfg));
    events.sort_by_key(|e| (e.worker, e.seq));
    let mut stacks: std::collections::HashMap<u32, Vec<&'static str>> = Default::default();
    for e in &events {
        let stack = stacks.entry(e.worker).or_default();
        match e.kind {
            TraceKind::Begin => stack.push(e.phase),
            TraceKind::End => {
                let top = stack.pop();
                assert_eq!(top, Some(e.phase), "mismatched End on worker {}", e.worker);
            }
            TraceKind::Instant => {}
        }
    }
    for (worker, stack) in stacks {
        assert!(stack.is_empty(), "worker {worker} left open spans: {stack:?}");
    }
}

/// The task span is covered by its direct child spans: the instrumented
/// stages (attempt, cache probe, recheck, …) account for most of each
/// task's wall-clock, so a Chrome trace of a sweep has no large opaque
/// gaps. The pool's per-task overhead outside any child span is bookkeeping
/// only; 80% is deliberately lenient to keep the test robust on loaded CI
/// machines (the interactive target is ≥95%, checked in CI on a real
/// sweep).
#[test]
fn task_spans_are_covered_by_child_spans() {
    // Large instances so solver time dominates harness noise.
    let grid = GridSpec::new(vec![120], vec![2], vec![0, 1], Algo::Combined);
    let cfg = EngineConfig { threads: 1, ..EngineConfig::default() };
    let (_batch, mut events) = trace::capture(|| run_batch(&grid.tasks(), cfg));
    events.sort_by_key(|e| (e.worker, e.seq));

    // Walk each worker's stream, tracking depth relative to the enclosing
    // "task" span; sum the durations of its direct children.
    let mut covered = 0.0f64;
    let mut total = 0.0f64;
    let mut per_worker: std::collections::HashMap<u32, Vec<&TraceEvent>> = Default::default();
    for e in &events {
        per_worker.entry(e.worker).or_default().push(e);
    }
    for stream in per_worker.values() {
        let mut stack: Vec<&TraceEvent> = Vec::new();
        for e in stream.iter() {
            match e.kind {
                TraceKind::Begin => stack.push(e),
                TraceKind::End => {
                    let begin = stack.pop().expect("balanced");
                    let dur = (e.ts_ns - begin.ts_ns) as f64;
                    if begin.phase == "task" {
                        total += dur;
                    } else if stack.last().is_some_and(|p| p.phase == "task") {
                        covered += dur;
                    }
                }
                TraceKind::Instant => {}
            }
        }
    }
    assert!(total > 0.0, "no task spans recorded");
    let ratio = covered / total;
    assert!(ratio >= 0.80, "task spans only {:.0}% covered by children", ratio * 100.0);
}

/// Chaos fault injection is part of the logical trace — and stays
/// deterministic across thread counts, because the fault plan draws from
/// the task key, not from scheduling order.
#[cfg(feature = "chaos")]
#[test]
fn chaotic_logical_trace_is_thread_count_invariant() {
    use pobp_engine::{Engine, FaultPlan, FaultSite};
    let grid = GridSpec::new(vec![8, 12], vec![0, 1, 2], vec![0, 1, 2], Algo::Reduction);
    let tasks = grid.tasks();
    let run = |threads: usize| {
        let plan = FaultPlan::new(7)
            .with_rate(FaultSite::Panic, 0.3)
            .with_rate(FaultSite::Flaky, 0.3)
            .with_rate(FaultSite::ForcedDeadline, 0.2)
            .with_rate(FaultSite::SpuriousCancel, 0.2);
        let cfg = EngineConfig {
            threads,
            max_retries: 2,
            backoff: std::time::Duration::from_millis(1),
            degrade: true,
            ..EngineConfig::default()
        };
        let (_batch, events) = trace::capture(|| Engine::with_chaos(cfg, plan).run_batch(&tasks));
        trace::logical_text(&events)
    };
    let seq = run(1);
    let par = run(4);
    assert!(seq.contains("chaos."), "expected chaos events in the logical trace:\n{seq}");
    assert_eq!(seq, par);
}
