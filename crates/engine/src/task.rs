//! The engine's task model: what a solver invocation is, and every way it
//! can end.
//!
//! A [`SolveTask`] names an instance and a solving configuration; the engine
//! turns each task into exactly one [`TaskReport`] (in input order — see
//! `docs/engine.md` for the determinism contract). The failure taxonomy is
//! closed: a task either produced a certified schedule ([`TaskResult::Done`]),
//! was rescued by the polynomial fallback after its primary algorithm failed
//! ([`TaskResult::Degraded`], still certified), failed the certification
//! trust boundary ([`TaskResult::CertFailed`]), panicked on every attempt
//! ([`TaskResult::Panicked`]), overran its wall-clock deadline
//! ([`TaskResult::TimedOut`]), or was cancelled with the batch
//! ([`TaskResult::Cancelled`]). See `docs/robustness.md`.

use pobp_core::JobSet;

use crate::cert::{CertFailure, CertStage};

/// Which algorithm of the workspace a task runs. All variants produce a
/// feasible `k`-bounded schedule of (a subset of) the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Theorem 4.2: unbounded reference schedule → `k`-bounded reduction.
    Reduction,
    /// Algorithm 3 (`k-PreemptionCombined`): better of the strict-branch
    /// reduction and the lax-branch `LSA_CS`.
    Combined,
    /// Algorithm 2 (`LSA_CS`): classify-and-select + leftmost scheduling.
    LsaCs,
    /// The §5 non-preemptive (`k = 0`) algorithm.
    K0,
    /// Online arrival mode (`pobp_sim::online`, single machine only): the
    /// DJN-style doubling-threshold rule under the per-job budget.
    OnlineDjn,
    /// Online arrival mode: commit to the most valuable feasible job and
    /// never preempt (the non-preemptive online baseline).
    OnlineGreedy,
    /// Online arrival mode: earliest-deadline-first with the budget
    /// enforced (preemptions blocked once a job's budget is spent).
    OnlineEdf,
    /// Panics immediately. Exists so tests, the determinism property test,
    /// and CI smoke runs can exercise the engine's panic isolation without
    /// corrupting a real solver; never use it for actual measurements.
    PanicForTest,
}

impl Algo {
    /// The stable lowercase name used by CLIs and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Reduction => "reduction",
            Algo::Combined => "combined",
            Algo::LsaCs => "lsa",
            Algo::K0 => "k0",
            Algo::OnlineDjn => "online-djn",
            Algo::OnlineGreedy => "online-greedy",
            Algo::OnlineEdf => "online-edf",
            Algo::PanicForTest => "panic",
        }
    }

    /// Parses [`Algo::name`] back into a variant.
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "reduction" => Some(Algo::Reduction),
            "combined" => Some(Algo::Combined),
            "lsa" => Some(Algo::LsaCs),
            "k0" => Some(Algo::K0),
            "online-djn" => Some(Algo::OnlineDjn),
            "online-greedy" => Some(Algo::OnlineGreedy),
            "online-edf" => Some(Algo::OnlineEdf),
            "panic" => Some(Algo::PanicForTest),
            _ => None,
        }
    }

    /// Whether this is an online-arrival algorithm (`pobp_sim::online`).
    /// Online tasks are single-machine and degrade to [`Algo::OnlineGreedy`]
    /// (never to an offline algorithm — a degraded row must stay an online
    /// measurement).
    pub fn is_online(self) -> bool {
        matches!(self, Algo::OnlineDjn | Algo::OnlineGreedy | Algo::OnlineEdf)
    }
}

/// One solver invocation: an instance plus the solving parameters.
#[derive(Clone, Debug)]
pub struct SolveTask {
    /// The job set to schedule.
    pub instance: JobSet,
    /// Preemption budget `k` (ignored by [`Algo::K0`], which is `k = 0`).
    pub k: u32,
    /// Number of machines; `1` runs the single-machine algorithm directly,
    /// `> 1` wraps it in the §4.3.4 iterative extension.
    pub machines: usize,
    /// The algorithm to run.
    pub algo: Algo,
    /// Whether the unbounded reference `OPT_∞` is computed exactly
    /// (branch-and-bound, instance must stay within
    /// `pobp_sched::OPT_UNBOUNDED_LIMIT` jobs) instead of by the greedy EDF
    /// baseline. The reference is the expensive, cacheable side of a task;
    /// see [`crate::cache`].
    pub exact_ref: bool,
    /// Free-form tag echoed verbatim in the [`TaskReport`] (e.g.
    /// `"n=14 k=2 seed=3"`). Not interpreted by the engine.
    pub label: String,
}

impl SolveTask {
    /// A single-machine task with a greedy reference and an empty label.
    pub fn new(instance: JobSet, k: u32, algo: Algo) -> Self {
        SolveTask { instance, k, machines: 1, algo, exact_ref: false, label: String::new() }
    }
}

/// The measured outcome of a successful solve.
///
/// Deliberately contains **only values that are a pure function of the
/// task** — no wall-clock durations, no cache-hit flags — so that reports
/// are byte-identical across thread counts and cache states (the
/// determinism contract of `docs/engine.md`). Timing lives in the obs layer
/// and cache accounting in [`crate::pool::EngineStats`].
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOutput {
    /// Value of the `k`-bounded schedule the algorithm produced.
    pub alg_value: f64,
    /// Value of the unbounded reference (`OPT_∞` exact, or greedy-EDF).
    pub ref_value: f64,
    /// Number of jobs the algorithm scheduled.
    pub scheduled: usize,
    /// Total preemptions across scheduled jobs (`Σ (segments − 1)`).
    pub preemptions: usize,
    /// For [`Algo::Combined`] on one machine: `(strict, lax)` branch values.
    pub branch_values: Option<(f64, f64)>,
}

impl SolveOutput {
    /// `ref_value / alg_value` — the empirical price of bounded preemption
    /// this task measured. `None` when the algorithm scheduled nothing.
    pub fn price(&self) -> Option<f64> {
        (self.alg_value > 0.0).then(|| self.ref_value / self.alg_value)
    }
}

/// Why the engine fell back to the polynomial algorithm for a task
/// (the graceful-degradation ladder — `docs/robustness.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeCause {
    /// The primary algorithm overran its wall-clock deadline.
    DeadlineExceeded,
    /// The primary algorithm panicked on every attempt.
    RetriesExhausted,
}

impl DegradeCause {
    /// The stable lowercase name used by CLIs and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            DegradeCause::DeadlineExceeded => "deadline",
            DegradeCause::RetriesExhausted => "retries",
        }
    }
}

/// Terminal state of one task. See the module docs for the taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskResult {
    /// The solve completed and its schedule passed certification
    /// ([`crate::cert`]).
    Done(SolveOutput),
    /// The primary algorithm failed (deadline or retry exhaustion) and the
    /// polynomial fallback rescued the task. The output is certified like
    /// any `Done` result, but measures `fallback`, not the task's
    /// requested algorithm.
    Degraded {
        /// The polynomial algorithm that produced the output.
        fallback: Algo,
        /// Why the primary algorithm was abandoned.
        cause: DegradeCause,
        /// The fallback's certified output.
        output: SolveOutput,
    },
    /// The result failed the certification trust boundary: its schedule or
    /// claimed values did not survive independent re-checking. No output is
    /// released.
    CertFailed {
        /// The certification check that caught it.
        stage: CertStage,
        /// What mismatched (claimed vs recomputed quantities).
        reason: String,
    },
    /// Every attempt panicked; the payload of the last panic is captured.
    Panicked {
        /// The panic message (`&str`/`String` payloads; otherwise a
        /// placeholder naming the payload type as opaque).
        message: String,
    },
    /// The task's wall-clock deadline elapsed before a solve completed.
    TimedOut,
    /// The batch was cancelled before the task produced a result.
    Cancelled,
}

impl TaskResult {
    /// The stable lowercase status name used by CLIs and JSON output.
    pub fn status(&self) -> &'static str {
        match self {
            TaskResult::Done(_) => "ok",
            TaskResult::Degraded { .. } => "degraded",
            TaskResult::CertFailed { .. } => "cert_failed",
            TaskResult::Panicked { .. } => "panicked",
            TaskResult::TimedOut => "timed_out",
            TaskResult::Cancelled => "cancelled",
        }
    }

    /// The certified output of a successful task — `Done`'s output or a
    /// `Degraded` task's fallback output.
    pub fn output(&self) -> Option<&SolveOutput> {
        match self {
            TaskResult::Done(out) | TaskResult::Degraded { output: out, .. } => Some(out),
            _ => None,
        }
    }
}

impl From<CertFailure> for TaskResult {
    fn from(f: CertFailure) -> Self {
        TaskResult::CertFailed { stage: f.stage, reason: f.reason }
    }
}

/// One task's report: its input position, label, attempt count, and result.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Position of the task in the input batch (reports are returned sorted
    /// by this, so `reports[i].index == i` always holds).
    pub index: usize,
    /// The task's label, echoed verbatim.
    pub label: String,
    /// Number of solve attempts made (1 + retries actually used).
    pub attempts: u32,
    /// The terminal result.
    pub result: TaskResult,
}
