//! The task wrapper: one `SolveTask` → one **certified** `SolveOutput`.
//!
//! Every task runs in two stages — the unbounded *reference* (the expensive,
//! `k`-independent side, served from the cache's reference layer when
//! possible) and the *bounded* algorithm itself — with a cooperative
//! [`TaskCtx`] check at each stage boundary. Before the output is released
//! the engine's trust boundary re-checks it ([`crate::cert`]): the schedule
//! re-verifies under `(eff_k, machines)`, the claimed statistics recompute,
//! and the reference schedule's value matches the claimed `ref_value`. A
//! mismatch is a [`SolveFailure::Cert`], which the pool turns into
//! `TaskResult::CertFailed`. Panics are **not** handled here: they unwind
//! out to the pool's `catch_unwind` so the taxonomy (panic vs timeout vs
//! cancel vs cert) stays in one place.

use std::sync::Arc;

use pobp_core::{obs_count, obs_time, schedule_stats, trace_event, JobId, Schedule};
use pobp_sched::{
    combined_from_scratch, greedy_unbounded_ws, iterative_multi_machine, k_preemption_combined,
    lsa_cs, opt_unbounded, reduce_to_k_bounded_ws, schedule_k0, KbasSolver, SolveWorkspace,
};
use pobp_sim::{run_online, OnlineAlg, OnlineConfig};

use crate::cache::{instance_hash, RefSolution, ResultCache};
use crate::cancel::{StopReason, TaskCtx};
use crate::cert::{self, CertFailure};
use crate::task::{Algo, SolveOutput, SolveTask};

/// Why a solve attempt produced no output: stopped at a stage boundary, or
/// caught by the certification trust boundary.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum SolveFailure {
    /// Deadline or batch cancellation noticed at a stage boundary.
    Stopped(StopReason),
    /// The result did not survive certification.
    Cert(CertFailure),
}

impl From<StopReason> for SolveFailure {
    fn from(r: StopReason) -> Self {
        SolveFailure::Stopped(r)
    }
}

/// A certified solve: the output, the schedule behind it (kept so the pool
/// can cache it for hit-time re-certification), the effective `k` it was
/// verified against, and whether the reference came from the cache.
pub(crate) struct Solved {
    pub output: SolveOutput,
    pub schedule: Arc<Schedule>,
    pub eff_k: u32,
    pub ref_hit: bool,
}

/// Computes the unbounded reference of `task`, consulting `cache`'s
/// reference layer. The returned flag is `true` on a cache hit.
fn reference(
    task: &SolveTask,
    ids: &[JobId],
    cache: Option<&ResultCache>,
    ws: &mut SolveWorkspace,
) -> (Arc<RefSolution>, bool) {
    let inst = instance_hash(&task.instance);
    if let Some(c) = cache {
        if let Some(hit) = c.get_ref(inst, task.exact_ref) {
            obs_count!("engine.cache.ref_hits");
            // Timing-class: which task wins the race to compute a shared
            // reference depends on scheduling order.
            trace_event!(timing "cache.ref_hit");
            return (hit, true);
        }
    }
    let sol = obs_time!("engine.solve.time.reference", {
        if task.exact_ref {
            let opt = opt_unbounded(&task.instance, ids);
            RefSolution { schedule: opt.schedule, value: opt.value }
        } else {
            let inf = greedy_unbounded_ws(&task.instance, ids, ws);
            let value = inf.schedule.value(&task.instance);
            RefSolution { schedule: inf.schedule, value }
        }
    });
    obs_count!("engine.solve.ref_computed");
    trace_event!(timing "cache.ref_computed");
    let sol = match cache {
        Some(c) => c.put_ref(inst, task.exact_ref, sol),
        None => Arc::new(sol),
    };
    (sol, false)
}

/// Runs the bounded stage of `task` against the reference schedule.
/// Returns the schedule, the effective `k` to verify against, and the
/// combined algorithm's branch values when available.
fn bounded_stage(
    task: &SolveTask,
    ids: &[JobId],
    reference: &Schedule,
    ws: &mut SolveWorkspace,
) -> (Schedule, u32, Option<(f64, f64)>) {
    let jobs = &task.instance;
    let k = task.k;
    if let Some(alg) = online_alg(task.algo) {
        // Online arrival mode (docs/online.md): single-machine by contract
        // — the CLI rejects `--machines > 1` up front; a hand-built task
        // that slips through panics here and surfaces as `Panicked`.
        assert!(task.machines == 1, "online algorithms are single-machine");
        let out = run_online(jobs, ids, OnlineConfig { alg, k });
        return (out.schedule, k, None);
    }
    if task.machines > 1 {
        // §4.3.4 iterative extension: each machine's run builds its own
        // greedy reference over the residual job set.
        let schedule = match task.algo {
            Algo::Reduction => iterative_multi_machine(jobs, ids, task.machines, |js, rem| {
                let inf = greedy_unbounded_ws(js, rem, ws);
                reduce_to_k_bounded_ws(js, &inf.schedule, k, KbasSolver::Tm, ws)
                    .expect("greedy reference is feasible")
                    .schedule
            }),
            Algo::Combined => iterative_multi_machine(jobs, ids, task.machines, |js, rem| {
                combined_from_scratch(js, rem, k).chosen
            }),
            Algo::LsaCs => iterative_multi_machine(jobs, ids, task.machines, |js, rem| {
                lsa_cs(js, rem, k).schedule
            }),
            Algo::K0 => iterative_multi_machine(jobs, ids, task.machines, |js, rem| {
                schedule_k0(js, rem).schedule
            }),
            Algo::OnlineDjn | Algo::OnlineGreedy | Algo::OnlineEdf => {
                unreachable!("online algorithms returned above")
            }
            Algo::PanicForTest => panic!("injected panic (Algo::PanicForTest)"),
        };
        let eff_k = if task.algo == Algo::K0 { 0 } else { k };
        return (schedule, eff_k, None);
    }
    match task.algo {
        Algo::Reduction => {
            let red = reduce_to_k_bounded_ws(jobs, reference, k, KbasSolver::Tm, ws)
                .expect("reference schedule is feasible");
            (red.schedule, k, None)
        }
        Algo::Combined => {
            let out = k_preemption_combined(jobs, ids, reference, k)
                .expect("reference schedule is feasible");
            let branches = Some((out.strict.value(jobs), out.lax.value(jobs)));
            (out.chosen, k, branches)
        }
        Algo::LsaCs => (lsa_cs(jobs, ids, k).schedule, k, None),
        Algo::K0 => (schedule_k0(jobs, ids).schedule, 0, None),
        Algo::OnlineDjn | Algo::OnlineGreedy | Algo::OnlineEdf => {
            unreachable!("online algorithms returned above")
        }
        Algo::PanicForTest => panic!("injected panic (Algo::PanicForTest)"),
    }
}

/// Maps the engine's online [`Algo`] variants onto the executor's
/// [`OnlineAlg`]; `None` for offline algorithms.
fn online_alg(algo: Algo) -> Option<OnlineAlg> {
    match algo {
        Algo::OnlineDjn => Some(OnlineAlg::Djn),
        Algo::OnlineGreedy => Some(OnlineAlg::Greedy),
        Algo::OnlineEdf => Some(OnlineAlg::EdfBudget),
        _ => None,
    }
}

/// Runs one task to completion and certifies the result. `Err` carries the
/// stage-boundary stop reason or the certification failure; panics unwind
/// to the caller (the pool's `catch_unwind`).
pub(crate) fn solve_task(
    task: &SolveTask,
    ctx: &TaskCtx,
    cache: Option<&ResultCache>,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveFailure> {
    if let Some(stop) = ctx.should_stop() {
        return Err(stop.into());
    }
    let ids: Vec<JobId> = task.instance.ids().collect();
    let (reference, ref_hit) = reference(task, &ids, cache, ws);
    if let Some(stop) = ctx.should_stop() {
        return Err(stop.into());
    }
    #[cfg(feature = "chaos")]
    if let Some(ch) = &ctx.chaos {
        // The `deadline` site: pretend the wall clock ran out exactly at
        // the reference→bounded stage boundary.
        if ch.plan.fires(crate::chaos::FaultSite::ForcedDeadline, ch.key) {
            obs_count!("engine.chaos.deadline");
            trace_event!("chaos.deadline");
            return Err(StopReason::DeadlineExceeded.into());
        }
    }
    let (schedule, eff_k, branch_values) = obs_time!(
        "engine.solve.time.bounded",
        bounded_stage(task, &ids, &reference.schedule, ws)
    );
    let stats = schedule_stats(&task.instance, &schedule);
    let output = SolveOutput {
        alg_value: stats.value,
        ref_value: reference.value,
        scheduled: stats.scheduled,
        preemptions: stats.total_preemptions,
        branch_values,
    };
    // The trust boundary: nothing leaves the wrapper uncertified. The
    // reference is certified here (its schedule is in hand); the bounded
    // side re-checks through the same path a cache hit takes.
    obs_time!("engine.cert.time", {
        cert::certify_reference(&task.instance, &reference.schedule, reference.value)
            .and_then(|()| {
                cert::certify_solve(&task.instance, &schedule, eff_k, task.machines, &output)
            })
            .map_err(SolveFailure::Cert)
    })?;
    trace_event!("cert.ok");
    Ok(Solved { output, schedule: Arc::new(schedule), eff_k, ref_hit })
}
