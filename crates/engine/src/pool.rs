//! The work-queue + worker-pool core: fan a batch of tasks across N
//! threads, survive panics and overruns, return reports in input order.
//!
//! Workers claim tasks from a shared atomic cursor and write each report
//! into its input slot, so the returned order — and, because every solver
//! is a pure function, the returned *content* — is independent of thread
//! count and completion order. A watchdog thread cancels the token of any
//! in-flight task whose wall-clock deadline has passed; the task wrapper
//! notices at its next stage boundary (see [`crate::cancel`]).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pobp_core::{obs_count, obs_event};

use crate::cache::{instance_hash, ResultCache};
use crate::cancel::{CancelToken, StopReason, TaskCtx};
use crate::solve::solve_task;
use crate::task::{SolveTask, TaskReport, TaskResult};

/// Engine configuration. `Default` is the deterministic sweep setup:
/// hardware parallelism, no deadline, one retry, caching on.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Per-task wall-clock deadline, measured from the task's start.
    /// `None` disables the watchdog entirely. Note that deadline outcomes
    /// depend on machine speed — see the determinism contract in
    /// `docs/engine.md`.
    pub deadline: Option<Duration>,
    /// Extra attempts after a panicking first attempt (`0` disables retry).
    pub max_retries: u32,
    /// Base backoff slept before retry `r` (doubled per retry, capped at
    /// 100 ms): `backoff · 2^(r−1)`.
    pub backoff: Duration,
    /// Whether the content-addressed result cache is consulted.
    pub use_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            deadline: None,
            max_retries: 1,
            backoff: Duration::from_millis(5),
            use_cache: true,
        }
    }
}

/// Batch-level accounting. The four terminal kinds plus `cached` partition
/// the batch: `run + cached + panicked + timed_out + cancelled == tasks`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tasks in the batch.
    pub tasks: usize,
    /// Tasks computed fresh to a successful result.
    pub run: usize,
    /// Tasks answered from the result cache without running.
    pub cached: usize,
    /// Tasks whose every attempt panicked.
    pub panicked: usize,
    /// Tasks that overran their deadline.
    pub timed_out: usize,
    /// Tasks cancelled with the batch.
    pub cancelled: usize,
    /// Retry attempts used across the batch (not a task count).
    pub retried: usize,
    /// Reference-layer cache hits (subset of `run` tasks).
    pub ref_cache_hits: usize,
}

/// What [`Engine::run_batch`] returns: per-task reports in input order
/// plus the batch accounting.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One report per task; `reports[i].index == i`.
    pub reports: Vec<TaskReport>,
    /// Batch accounting (see [`EngineStats`]).
    pub stats: EngineStats,
}

/// Internal atomic accumulator behind [`EngineStats`].
#[derive(Default)]
struct StatsCell {
    run: AtomicUsize,
    cached: AtomicUsize,
    panicked: AtomicUsize,
    timed_out: AtomicUsize,
    cancelled: AtomicUsize,
    retried: AtomicUsize,
    ref_cache_hits: AtomicUsize,
}

impl StatsCell {
    fn snapshot(&self, tasks: usize) -> EngineStats {
        EngineStats {
            tasks,
            run: self.run.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            ref_cache_hits: self.ref_cache_hits.load(Ordering::Relaxed),
        }
    }
}

/// A reusable batch-solving engine: configuration, the shared result
/// cache (persists across batches), and a batch-level cancel token.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
    cache: Arc<ResultCache>,
    batch: CancelToken,
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine { cfg, cache: Arc::new(ResultCache::new()), batch: CancelToken::new() }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The shared result cache (persists across `run_batch` calls).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Cancels the current and all future batches of this engine: every
    /// task not yet finished reports [`TaskResult::Cancelled`].
    pub fn cancel_all(&self) {
        self.batch.cancel();
    }

    /// Runs `tasks` across the configured worker pool and returns one
    /// report per task, in input order.
    pub fn run_batch(&self, tasks: &[SolveTask]) -> BatchReport {
        let n = tasks.len();
        let stats = StatsCell::default();
        if n == 0 {
            return BatchReport { reports: Vec::new(), stats: stats.snapshot(0) };
        }
        let threads = match self.cfg.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(n)
        .max(1);

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<TaskReport>>> = Mutex::new(vec![None; n]);
        let inflight: Mutex<HashMap<usize, (Instant, CancelToken)>> = Mutex::new(HashMap::new());
        let watchdog_done = AtomicBool::new(false);

        std::thread::scope(|s| {
            if self.cfg.deadline.is_some() {
                s.spawn(|| {
                    while !watchdog_done.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(2));
                        let now = Instant::now();
                        for (at, token) in inflight.lock().unwrap().values() {
                            if now >= *at && !token.is_cancelled() {
                                obs_count!("engine.watchdog.cancels");
                                token.cancel();
                            }
                        }
                    }
                });
            }
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut busy = Duration::ZERO;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            obs_event!("engine.queue.depth", (n - i - 1) as u64);
                            let start = Instant::now();
                            let report = self.run_one(i, &tasks[i], &stats, &inflight);
                            busy += start.elapsed();
                            slots.lock().unwrap()[i] = Some(report);
                        }
                        obs_event!("engine.worker.busy_us", busy.as_micros() as u64);
                    })
                })
                .collect();
            // Join the workers before stopping the watchdog: a worker panic
            // here (outside the per-task catch_unwind) is an engine bug.
            for w in workers {
                w.join().expect("engine worker panicked outside the task wrapper");
            }
            watchdog_done.store(true, Ordering::Release);
        });

        let reports: Vec<TaskReport> = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every claimed task writes its slot"))
            .collect();
        BatchReport { reports, stats: stats.snapshot(n) }
    }

    /// Runs a single claimed task: cache check, attempt loop under
    /// `catch_unwind`, retry with backoff, terminal accounting.
    fn run_one(
        &self,
        index: usize,
        task: &SolveTask,
        stats: &StatsCell,
        inflight: &Mutex<HashMap<usize, (Instant, CancelToken)>>,
    ) -> TaskReport {
        let cache = self.cfg.use_cache.then_some(&*self.cache);
        let inst = instance_hash(&task.instance);
        if let Some(c) = cache {
            if let Some(out) = c.get_result(inst, task.k, task.machines, task.algo, task.exact_ref)
            {
                obs_count!("engine.tasks.cached");
                stats.cached.fetch_add(1, Ordering::Relaxed);
                return TaskReport {
                    index,
                    label: task.label.clone(),
                    attempts: 0,
                    result: TaskResult::Done(out),
                };
            }
        }

        let token = CancelToken::new();
        let deadline_at = self.cfg.deadline.map(|d| Instant::now() + d);
        let ctx =
            TaskCtx { cancel: token.clone(), batch: self.batch.clone(), deadline: deadline_at };
        if let Some(at) = deadline_at {
            inflight.lock().unwrap().insert(index, (at, token));
        }

        let mut attempts = 0u32;
        let result = loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| solve_task(task, &ctx, cache))) {
                Ok(Ok((out, ref_hit))) => {
                    obs_count!("engine.tasks.run");
                    stats.run.fetch_add(1, Ordering::Relaxed);
                    if ref_hit {
                        stats.ref_cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(c) = cache {
                        c.put_result(
                            inst,
                            task.k,
                            task.machines,
                            task.algo,
                            task.exact_ref,
                            out.clone(),
                        );
                    }
                    break TaskResult::Done(out);
                }
                Ok(Err(StopReason::DeadlineExceeded)) => {
                    obs_count!("engine.tasks.timed_out");
                    stats.timed_out.fetch_add(1, Ordering::Relaxed);
                    break TaskResult::TimedOut;
                }
                Ok(Err(StopReason::BatchCancelled)) => {
                    obs_count!("engine.tasks.cancelled");
                    stats.cancelled.fetch_add(1, Ordering::Relaxed);
                    break TaskResult::Cancelled;
                }
                Err(payload) => {
                    if attempts <= self.cfg.max_retries && ctx.should_stop().is_none() {
                        obs_count!("engine.tasks.retried");
                        stats.retried.fetch_add(1, Ordering::Relaxed);
                        let exp = attempts.saturating_sub(1).min(16);
                        let pause = self
                            .cfg
                            .backoff
                            .saturating_mul(1u32 << exp)
                            .min(Duration::from_millis(100));
                        std::thread::sleep(pause);
                        continue;
                    }
                    obs_count!("engine.tasks.panicked");
                    stats.panicked.fetch_add(1, Ordering::Relaxed);
                    break TaskResult::Panicked { message: panic_message(&*payload) };
                }
            }
        };
        if deadline_at.is_some() {
            inflight.lock().unwrap().remove(&index);
        }
        TaskReport { index, label: task.label.clone(), attempts, result }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// One-shot convenience: build an [`Engine`] with `cfg`, run `tasks`.
pub fn run_batch(tasks: &[SolveTask], cfg: EngineConfig) -> BatchReport {
    Engine::new(cfg).run_batch(tasks)
}
