//! The worker-pool core: fan a batch of tasks across N threads, survive
//! panics and overruns, return reports in input order.
//!
//! Scheduling is work-stealing (`crate::exec`): workers claim chunks of
//! the input range from a global injector into per-worker run queues and
//! steal from randomly chosen victims when their own queue drains. Each
//! worker keeps the reports it produced and the pool merges them by input
//! index after the join, so the returned order — and, because every solver
//! is a pure function, the returned *content* — is independent of thread
//! count, steal order, and completion order.
//!
//! Deadlines and cancellation are purely *cooperative*: there is no
//! watchdog thread. [`TaskCtx::should_stop`] compares the task's absolute
//! deadline against the clock at every stage-boundary yield point (see
//! [`crate::cancel`]), so an overrun or a `cancel_all` is observed at the
//! next boundary the task reaches. Retry backoff is a **not-before
//! requeue**: a panicking attempt reschedules its task with a
//! `backoff · 2^(r−1)` earliest-run timestamp and the worker moves on,
//! instead of sleeping out the backoff on the thread.
//!
//! Two robustness layers sit between a solve and its report
//! (`docs/robustness.md`):
//!
//! * **certification** — every emitted output (fresh, cached, or fallback)
//!   passed the trust boundary of [`crate::cert`]; a mismatch becomes
//!   [`TaskResult::CertFailed`], never a wrong row;
//! * **graceful degradation** — with [`EngineConfig::degrade`] on, a task
//!   that exhausts its retry budget or blows its deadline is retried once
//!   with the polynomial `LSA_CS` (or the `k = 0` algorithm), unbounded and
//!   chaos-free, and reports [`TaskResult::Degraded`] when that rescue
//!   lands.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pobp_core::obs::LogHistogram;
use pobp_core::{obs_count, obs_event, obs_span, trace, trace_event};
use pobp_sched::SolveWorkspace;

use crate::cache::{instance_hash, CachedResult, ResultCache};
use crate::cancel::{CancelToken, StopReason, TaskCtx};
use crate::cert;
use crate::exec::{Fabric, StealRng, Unit};
use crate::solve::{solve_task, SolveFailure};
use crate::task::{Algo, DegradeCause, SolveTask, TaskReport, TaskResult};

/// Engine configuration. `Default` is the deterministic sweep setup:
/// hardware parallelism, no deadline, one retry, caching on, no
/// degradation.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Per-task wall-clock deadline, measured from the task's start and
    /// enforced cooperatively: every stage-boundary yield point compares it
    /// against the clock ([`TaskCtx::should_stop`]), so an overrun is
    /// observed at the task's next boundary. Note that deadline outcomes
    /// depend on machine speed — see the determinism contract in
    /// `docs/engine.md`.
    pub deadline: Option<Duration>,
    /// Extra attempts after a panicking first attempt (`0` disables retry).
    pub max_retries: u32,
    /// Not-before delay ahead of retry `r` (doubled per retry, capped at
    /// 100 ms): the task is requeued and becomes runnable again
    /// `backoff · 2^(r−1)` later; the worker stays busy in the meantime.
    pub backoff: Duration,
    /// Whether the content-addressed result cache is consulted.
    pub use_cache: bool,
    /// Whether the graceful-degradation ladder is armed: tasks that exhaust
    /// retries or overrun their deadline fall back to the polynomial
    /// algorithm (`docs/robustness.md`). Off by default — degradation
    /// changes the failure taxonomy (`TimedOut`/`Panicked` become
    /// `Degraded` when the rescue lands), so callers opt in.
    pub degrade: bool,
    /// Whether a live progress meter is written to stderr while the batch
    /// runs: rows done/total, throughput, running p50 task latency, and
    /// degrade/cert-failure counts. Purely cosmetic — stdout rows and
    /// reports are unaffected.
    pub progress: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            deadline: None,
            max_retries: 1,
            backoff: Duration::from_millis(5),
            use_cache: true,
            degrade: false,
            progress: false,
        }
    }
}

/// Batch-level accounting. The terminal kinds plus `cached` partition the
/// batch: `run + cached + degraded + cert_failed + panicked + timed_out +
/// cancelled == tasks`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tasks in the batch.
    pub tasks: usize,
    /// Tasks computed fresh to a successful, certified result.
    pub run: usize,
    /// Tasks answered from the result cache (re-certified on the hit).
    pub cached: usize,
    /// Tasks rescued by the polynomial fallback after their primary
    /// algorithm failed.
    pub degraded: usize,
    /// Tasks whose result failed the certification trust boundary.
    pub cert_failed: usize,
    /// Tasks whose every attempt panicked (and no rescue landed).
    pub panicked: usize,
    /// Tasks that overran their deadline (and no rescue landed).
    pub timed_out: usize,
    /// Tasks cancelled with the batch.
    pub cancelled: usize,
    /// Retry attempts used across the batch (not a task count).
    pub retried: usize,
    /// Reference-layer cache hits (subset of `run` tasks).
    pub ref_cache_hits: usize,
    /// Steal probes made by idle workers (not a task count). Scheduling
    /// telemetry: the value depends on thread interleaving and is outside
    /// the determinism contract, like every `EngineStats` field.
    pub steal_attempts: usize,
    /// Steal probes that took work from a victim (subset of
    /// `steal_attempts`).
    pub steal_hits: usize,
}

/// What [`Engine::run_batch`] returns: per-task reports in input order
/// plus the batch accounting.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One report per task; `reports[i].index == i`.
    pub reports: Vec<TaskReport>,
    /// Batch accounting (see [`EngineStats`]).
    pub stats: EngineStats,
}

/// Internal atomic accumulator behind [`EngineStats`].
#[derive(Default)]
struct StatsCell {
    run: AtomicUsize,
    cached: AtomicUsize,
    degraded: AtomicUsize,
    cert_failed: AtomicUsize,
    panicked: AtomicUsize,
    timed_out: AtomicUsize,
    cancelled: AtomicUsize,
    retried: AtomicUsize,
    ref_cache_hits: AtomicUsize,
    steal_attempts: AtomicUsize,
    steal_hits: AtomicUsize,
}

impl StatsCell {
    fn snapshot(&self, tasks: usize) -> EngineStats {
        EngineStats {
            tasks,
            run: self.run.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            cert_failed: self.cert_failed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            ref_cache_hits: self.ref_cache_hits.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steal_hits: self.steal_hits.load(Ordering::Relaxed),
        }
    }
}

/// Lifecycle bookkeeping behind [`Engine::shutdown`]: how many `run_batch`
/// calls are in flight, whether the engine has been closed to new batches,
/// and a condvar to wait for the in-flight count to reach zero.
#[derive(Debug, Default)]
struct Lifecycle {
    closed: AtomicBool,
    active: Mutex<usize>,
    idle: Condvar,
}

/// Drop guard that decrements the in-flight batch count and wakes any
/// thread blocked in [`Engine::shutdown`]. A guard (not a manual decrement)
/// so the count stays correct even if `run_batch` unwinds.
struct BatchGuard<'a>(&'a Lifecycle);

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        let mut active = self.0.active.lock().unwrap();
        *active -= 1;
        if *active == 0 {
            self.0.idle.notify_all();
        }
    }
}

/// A reusable batch-solving engine: configuration, the shared result
/// cache (persists across batches), and a batch-level cancel token.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
    cache: Arc<ResultCache>,
    batch: CancelToken,
    lifecycle: Lifecycle,
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<crate::chaos::FaultPlan>>,
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine::with_shared_cache(cfg, Arc::new(ResultCache::new()))
    }

    /// An engine sharing an existing result cache. This is how a long-lived
    /// service gives every per-job engine one content-addressed cache: the
    /// engines are cheap (config + token + `Arc` handle) while the cache —
    /// the expensive, shareable state — persists across all of them.
    pub fn with_shared_cache(cfg: EngineConfig, cache: Arc<ResultCache>) -> Self {
        Engine {
            cfg,
            cache,
            batch: CancelToken::new(),
            lifecycle: Lifecycle::default(),
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// An engine with an armed fault plan: the named injection sites in the
    /// pool, the task wrapper, and the cache fire deterministically per
    /// task (see [`crate::chaos`]).
    #[cfg(feature = "chaos")]
    pub fn with_chaos(cfg: EngineConfig, plan: crate::chaos::FaultPlan) -> Self {
        let mut e = Engine::new(cfg);
        e.set_chaos(Arc::new(plan));
        e
    }

    /// Arms a fault plan on an already-built engine. A service building
    /// per-job engines over a shared cache uses this to make every engine —
    /// and the shared cache — fire the same deterministic plan.
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&mut self, plan: Arc<crate::chaos::FaultPlan>) {
        self.cache.set_chaos(Some(plan.clone()));
        self.chaos = Some(plan);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The shared result cache (persists across `run_batch` calls).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// A clonable handle to the result cache, for sharing with another
    /// engine via [`Engine::with_shared_cache`].
    pub fn cache_handle(&self) -> Arc<ResultCache> {
        self.cache.clone()
    }

    /// Cancels the current and all future batches of this engine: every
    /// task not yet finished reports [`TaskResult::Cancelled`].
    pub fn cancel_all(&self) {
        self.batch.cancel();
    }

    /// Whether [`Engine::shutdown`] has closed this engine to new batches.
    pub fn is_closed(&self) -> bool {
        self.lifecycle.closed.load(Ordering::Acquire)
    }

    /// Stops the engine so its owner can exit cleanly: closes the engine to
    /// new batches (a `run_batch` call after shutdown returns every task as
    /// [`TaskResult::Cancelled`] without starting a pool) and blocks until
    /// every in-flight batch has finished and joined its worker threads —
    /// shutdown never leaks a thread.
    ///
    /// * `drain: true` — **drain-then-join**: in-flight batches run to
    ///   completion; their tasks finish with whatever result they earn.
    /// * `drain: false` — **cancel-then-join**: the batch token is
    ///   cancelled first, so every task not yet past its last stage
    ///   boundary reports [`TaskResult::Cancelled`]; the pool still joins
    ///   all threads before shutdown returns.
    ///
    /// Idempotent: repeat calls (of either mode) return once the engine is
    /// idle. After a `drain: false` shutdown the batch token stays
    /// cancelled, like [`Engine::cancel_all`].
    pub fn shutdown(&self, drain: bool) {
        self.lifecycle.closed.store(true, Ordering::Release);
        if drain {
            obs_count!("engine.shutdown.drain");
        } else {
            obs_count!("engine.shutdown.cancel");
            self.batch.cancel();
        }
        let mut active = self.lifecycle.active.lock().unwrap();
        while *active > 0 {
            active = self.lifecycle.idle.wait(active).unwrap();
        }
    }

    /// Runs `tasks` across the configured worker pool and returns one
    /// report per task, in input order.
    pub fn run_batch(&self, tasks: &[SolveTask]) -> BatchReport {
        let n = tasks.len();
        let stats = StatsCell::default();
        if n == 0 {
            return BatchReport { reports: Vec::new(), stats: stats.snapshot(0) };
        }
        {
            // Register this batch with the shutdown lifecycle. The closed
            // check happens under the same lock that `shutdown` waits on,
            // so a batch either registers before shutdown observes the
            // in-flight count or sees the closed flag — never neither.
            let mut active = self.lifecycle.active.lock().unwrap();
            if self.lifecycle.closed.load(Ordering::Acquire) {
                stats.cancelled.fetch_add(n, Ordering::Relaxed);
                obs_count!("engine.batches.refused");
                let reports = tasks
                    .iter()
                    .enumerate()
                    .map(|(index, t)| TaskReport {
                        index,
                        label: t.label.clone(),
                        attempts: 0,
                        result: TaskResult::Cancelled,
                    })
                    .collect();
                return BatchReport { reports, stats: stats.snapshot(n) };
            }
            *active += 1;
        }
        let _batch_guard = BatchGuard(&self.lifecycle);
        let threads = match self.cfg.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(n)
        .max(1);

        // Enqueue marks: recorded by the submitting thread, in input order,
        // before any worker exists — they sort ahead of every per-task
        // event in the logical trace.
        if trace::enabled() {
            for i in 0..n {
                let _ctx = trace::task_context(i as u64);
                trace_event!("task.enqueue");
            }
        }
        let progress = self.cfg.progress.then(|| Progress::new(n));

        let fabric = Fabric::new(n, threads);
        let pool_done = AtomicBool::new(false);
        let mut merged: Vec<Option<TaskReport>> = (0..n).map(|_| None).collect();

        std::thread::scope(|s| {
            if let Some(p) = &progress {
                s.spawn(|| {
                    while !pool_done.load(Ordering::Acquire) {
                        eprint!("\r{}", p.render());
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    // Final line, with everything accounted for.
                    eprintln!("\r{}", p.render());
                });
            }
            let workers: Vec<_> = (0..threads)
                .map(|w| {
                    let fabric = &fabric;
                    let stats = &stats;
                    let progress = &progress;
                    s.spawn(move || {
                        // One scratch workspace per worker, reused across
                        // every task this worker claims: steady-state solves
                        // allocate only their outputs.
                        let mut ws = SolveWorkspace::new();
                        let mut rng = StealRng::new(w);
                        // Reports stay worker-local until the merge after
                        // the join — no shared report lock on the hot path.
                        let mut local: Vec<TaskReport> = Vec::new();
                        let mut busy = Duration::ZERO;
                        let mut dispatched = 0u64;
                        // Per-task clock reads feed only telemetry; skip
                        // them when nothing consumes the numbers.
                        let timed = pobp_core::obs::enabled() || progress.is_some();
                        while !fabric.is_done() {
                            let (unit, steals) = fabric.next_unit(w, &mut rng);
                            if steals.attempts > 0 {
                                stats
                                    .steal_attempts
                                    .fetch_add(steals.attempts, Ordering::Relaxed);
                                stats.steal_hits.fetch_add(steals.hits, Ordering::Relaxed);
                            }
                            let Some(unit) = unit else {
                                fabric.park();
                                continue;
                            };
                            dispatched += 1;
                            if dispatched > 1 {
                                obs_count!("engine.ws.reuses");
                            }
                            let start = timed.then(Instant::now);
                            let index = unit.index;
                            let report = {
                                let _task =
                                    trace::task_scope(index as u64, &tasks[index].label);
                                let report =
                                    self.dispatch(w, unit, &tasks[index], stats, fabric, &mut ws);
                                if let Some(r) = &report {
                                    let _ = r; // only the trace feature reads it
                                    trace_event!("emit", text: r.result.status());
                                }
                                report
                            };
                            let elapsed = start.map(|t| t.elapsed()).unwrap_or_default();
                            busy += elapsed;
                            if let Some(report) = report {
                                if let Some(p) = progress {
                                    p.record(&report.result, elapsed);
                                }
                                local.push(report);
                                fabric.complete_one();
                            }
                        }
                        obs_event!("engine.worker.busy_us", busy.as_micros() as u64);
                        obs_event!("engine.ws.scratch_bytes", ws.scratch_bytes() as u64);
                        local
                    })
                })
                .collect();
            // Join the workers before stopping the progress thread: a
            // worker panic here (outside the per-task catch_unwind) is an
            // engine bug.
            for w in workers {
                let local =
                    w.join().expect("engine worker panicked outside the task wrapper");
                for report in local {
                    let slot = report.index;
                    merged[slot] = Some(report);
                }
            }
            pool_done.store(true, Ordering::Release);
        });

        let reports: Vec<TaskReport> = merged
            .into_iter()
            .map(|r| r.expect("every claimed task reports exactly once"))
            .collect();
        BatchReport { reports, stats: stats.snapshot(n) }
    }

    /// Runs one dispatched attempt of a unit: the cache check on the first
    /// dispatch (hits are re-certified), a single attempt under
    /// `catch_unwind`, the degradation ladder, terminal accounting. Returns
    /// `None` when the attempt panicked with retry budget left — the unit
    /// has then been requeued with a not-before timestamp and some worker
    /// will dispatch it again once the backoff passes.
    fn dispatch(
        &self,
        worker: usize,
        mut unit: Unit,
        task: &SolveTask,
        stats: &StatsCell,
        fabric: &Fabric,
        ws: &mut SolveWorkspace,
    ) -> Option<TaskReport> {
        let index = unit.index;
        let cache = self.cfg.use_cache.then_some(&*self.cache);
        let inst = cache.map(|_| instance_hash(&task.instance));
        if let Some(c) = cache.filter(|_| unit.attempts == 0) {
            let inst = inst.expect("hash computed when the cache is on");
            // Timing-class: whether a result-layer probe hits depends on
            // scheduling order, so none of this appears in the logical trace.
            if let Some(hit) = obs_span!(timing "cache.probe", {
                c.get_result(inst, task.k, task.machines, task.algo, task.exact_ref)
            }) {
                trace_event!(timing "cache.result_hit");
                // Trust boundary: a hit is re-certified against the
                // schedule stored with it, never trusted. A poisoned entry
                // surfaces as CertFailed — not as a wrong output row.
                let result = match obs_span!(timing "cert.recheck", cert::certify_solve(
                    &task.instance,
                    &hit.schedule,
                    hit.eff_k,
                    task.machines,
                    &hit.output,
                )) {
                    Ok(()) => {
                        obs_count!("engine.tasks.cached");
                        obs_count!("engine.cert.ok");
                        stats.cached.fetch_add(1, Ordering::Relaxed);
                        TaskResult::Done(hit.output)
                    }
                    Err(failure) => {
                        obs_count!("engine.cert.failed");
                        trace_event!(timing "cert.recheck_failed");
                        stats.cert_failed.fetch_add(1, Ordering::Relaxed);
                        failure.into()
                    }
                };
                return Some(TaskReport {
                    index,
                    label: task.label.clone(),
                    attempts: 0,
                    result,
                });
            }
        }

        if unit.attempts == 0 {
            // First dispatch after a cache miss: create the task's cancel
            // token, chaos handle, and absolute deadline. All three live in
            // the unit from here on, so they survive a retry requeue — a
            // task's deadline keeps running while it waits out a backoff,
            // exactly as it did when the backoff was an in-worker sleep.
            unit.token = Some(CancelToken::new());
            #[cfg(feature = "chaos")]
            {
                unit.chaos = self.chaos.as_ref().map(|plan| crate::chaos::TaskChaos {
                    plan: plan.clone(),
                    key: crate::chaos::task_key(task),
                });
                if let Some(ch) = &unit.chaos {
                    // The `cancel` site: spuriously cancel the task's own
                    // token before it starts; the wrapper notices at its
                    // first boundary.
                    if ch.plan.fires(crate::chaos::FaultSite::SpuriousCancel, ch.key) {
                        obs_count!("engine.chaos.cancel");
                        trace_event!("chaos.cancel");
                        unit.token.as_ref().expect("token just created").cancel();
                    }
                }
            }
            unit.deadline_at = self.cfg.deadline.map(|d| Instant::now() + d);
        }
        let ctx = TaskCtx {
            cancel: unit.token.clone().expect("token initialised at first dispatch"),
            batch: self.batch.clone(),
            deadline: unit.deadline_at,
            #[cfg(feature = "chaos")]
            chaos: unit.chaos.clone(),
        };
        unit.attempts += 1;
        let attempts = unit.attempts;

        // The attempt span lives inside the catch_unwind so its end
        // event fires during unwinding — panicking attempts still close.
        // The workspace is safe to reuse after an unwind: every `*_ws`
        // entry point resets its buffers at entry.
        let attempt = |ws: &mut SolveWorkspace| {
            obs_span!("attempt", {
                #[cfg(feature = "chaos")]
                if let Some(ch) = &ctx.chaos {
                    // The `delay` site: stall the attempt (wall-clock
                    // only — outputs are unaffected, but an armed real
                    // deadline may now fire, which is the point).
                    if ch.plan.fires(crate::chaos::FaultSite::Delay, ch.key) {
                        obs_count!("engine.chaos.delay");
                        trace_event!("chaos.delay");
                        std::thread::sleep(ch.plan.delay());
                    }
                    // The `panic`/`flaky` sites, inside catch_unwind.
                    ch.plan.inject_panic(ch.key, attempts);
                }
                solve_task(task, &ctx, cache, ws)
            })
        };
        let result = match catch_unwind(AssertUnwindSafe(|| attempt(&mut *ws))) {
            Ok(Ok(solved)) => {
                obs_count!("engine.tasks.run");
                obs_count!("engine.cert.ok");
                stats.run.fetch_add(1, Ordering::Relaxed);
                if solved.ref_hit {
                    stats.ref_cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(c) = cache {
                    c.put_result(
                        inst.expect("hash computed when the cache is on"),
                        task.k,
                        task.machines,
                        task.algo,
                        task.exact_ref,
                        CachedResult {
                            output: solved.output.clone(),
                            schedule: solved.schedule.clone(),
                            eff_k: solved.eff_k,
                        },
                    );
                }
                TaskResult::Done(solved.output)
            }
            Ok(Err(SolveFailure::Cert(failure))) => {
                obs_count!("engine.cert.failed");
                trace_event!("cert.failed", text: failure.stage.name());
                stats.cert_failed.fetch_add(1, Ordering::Relaxed);
                failure.into()
            }
            Ok(Err(SolveFailure::Stopped(StopReason::DeadlineExceeded))) => {
                trace_event!("stop.deadline");
                match self.try_degrade(task, DegradeCause::DeadlineExceeded, stats, ws) {
                    Some(rescued) => rescued,
                    None => {
                        obs_count!("engine.tasks.timed_out");
                        stats.timed_out.fetch_add(1, Ordering::Relaxed);
                        TaskResult::TimedOut
                    }
                }
            }
            Ok(Err(SolveFailure::Stopped(StopReason::BatchCancelled))) => {
                trace_event!("stop.cancelled");
                obs_count!("engine.tasks.cancelled");
                stats.cancelled.fetch_add(1, Ordering::Relaxed);
                TaskResult::Cancelled
            }
            Err(payload) => {
                if attempts <= self.cfg.max_retries && ctx.should_stop().is_none() {
                    // Not-before requeue instead of an in-worker sleep: the
                    // unit becomes runnable again after the backoff and the
                    // worker moves on to other tasks immediately.
                    obs_count!("engine.tasks.retried");
                    trace_event!("retry", attempts);
                    stats.retried.fetch_add(1, Ordering::Relaxed);
                    let exp = attempts.saturating_sub(1).min(16);
                    let pause = self
                        .cfg
                        .backoff
                        .saturating_mul(1u32 << exp)
                        .min(Duration::from_millis(100));
                    if pause.is_zero() {
                        fabric.push_slot(worker, unit);
                    } else {
                        fabric.push_delayed(Instant::now() + pause, unit);
                    }
                    return None;
                }
                match self.try_degrade(task, DegradeCause::RetriesExhausted, stats, ws) {
                    Some(rescued) => rescued,
                    None => {
                        obs_count!("engine.tasks.panicked");
                        stats.panicked.fetch_add(1, Ordering::Relaxed);
                        TaskResult::Panicked { message: panic_message(&*payload) }
                    }
                }
            }
        };
        Some(TaskReport { index, label: task.label.clone(), attempts, result })
    }

    /// The graceful-degradation ladder: rerun the task with the polynomial
    /// fallback (`LSA_CS`; the `k = 0` algorithm when that *is* the task;
    /// the online greedy for online tasks — an online measurement is never
    /// rescued by an offline algorithm), greedy reference, no deadline, no
    /// cache, no chaos — but still
    /// honoring the batch token — and certify the result like any other.
    /// Returns `None` when degradation is off, the task is the test-only
    /// panicking algorithm, or the fallback itself fails (the original
    /// failure then stands).
    fn try_degrade(
        &self,
        task: &SolveTask,
        cause: DegradeCause,
        stats: &StatsCell,
        ws: &mut SolveWorkspace,
    ) -> Option<TaskResult> {
        if !self.cfg.degrade || task.algo == Algo::PanicForTest {
            return None;
        }
        obs_count!("engine.degrade.attempted");
        // Online tasks stay online: rescuing an online measurement with an
        // offline algorithm would silently change what the row measures.
        let fallback = if task.algo.is_online() {
            Algo::OnlineGreedy
        } else if task.k == 0 || task.algo == Algo::K0 {
            Algo::K0
        } else {
            Algo::LsaCs
        };
        let fb_task = SolveTask {
            instance: task.instance.clone(),
            k: task.k,
            machines: task.machines,
            algo: fallback,
            exact_ref: false,
            label: task.label.clone(),
        };
        let ctx = TaskCtx {
            cancel: CancelToken::new(),
            batch: self.batch.clone(),
            deadline: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        };
        // The fallback runs cache-free: its output answers the *original*
        // task's report, so caching it under the fallback key would let an
        // unrelated duplicate of the fallback task pick up accounting
        // differences, and caching under the original key would be a lie.
        obs_span!("degrade", {
            match catch_unwind(AssertUnwindSafe(|| solve_task(&fb_task, &ctx, None, ws))) {
                Ok(Ok(solved)) => {
                    obs_count!("engine.degrade.rescued");
                    obs_count!("engine.cert.ok");
                    trace_event!("degrade.rescued", text: fallback.name());
                    stats.degraded.fetch_add(1, Ordering::Relaxed);
                    Some(TaskResult::Degraded { fallback, cause, output: solved.output })
                }
                _ => {
                    obs_count!("engine.degrade.failed");
                    trace_event!("degrade.failed");
                    None
                }
            }
        })
    }
}

/// Shared state behind the live `--progress` stderr meter
/// ([`EngineConfig::progress`]): workers record outcomes, a dedicated
/// reporter thread renders a `\r`-overwritten line every 50 ms.
struct Progress {
    total: usize,
    start: Instant,
    done: AtomicUsize,
    degraded: AtomicUsize,
    cert_failed: AtomicUsize,
    /// Per-task wall-clock latency in µs; drives the running p50.
    latency_us: LogHistogram,
}

impl Progress {
    fn new(total: usize) -> Self {
        Progress {
            total,
            start: Instant::now(),
            done: AtomicUsize::new(0),
            degraded: AtomicUsize::new(0),
            cert_failed: AtomicUsize::new(0),
            latency_us: LogHistogram::new(),
        }
    }

    fn record(&self, result: &TaskResult, elapsed: Duration) {
        match result {
            TaskResult::Degraded { .. } => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            TaskResult::CertFailed { .. } => {
                self.cert_failed.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.latency_us.record(elapsed.as_micros() as u64);
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let secs = self.start.elapsed().as_secs_f64().max(1e-9);
        let p50 = self.latency_us.quantile(0.5);
        format!(
            "progress: {done}/{total} rows | {rate:.1} rows/s | p50 {p50} | {deg} degraded | {cf} cert-failed   ",
            total = self.total,
            rate = done as f64 / secs,
            p50 = fmt_latency_us(p50),
            deg = self.degraded.load(Ordering::Relaxed),
            cf = self.cert_failed.load(Ordering::Relaxed),
        )
    }
}

/// Renders a µs latency estimate human-readably (`740µs`, `12.3ms`).
fn fmt_latency_us(us: f64) -> String {
    if us >= 1000.0 {
        format!("{:.1}ms", us / 1000.0)
    } else {
        format!("{us:.0}µs")
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// One-shot convenience: build an [`Engine`] with `cfg`, run `tasks`.
pub fn run_batch(tasks: &[SolveTask], cfg: EngineConfig) -> BatchReport {
    Engine::new(cfg).run_batch(tasks)
}
