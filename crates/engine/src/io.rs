//! Fault-injectable filesystem primitives.
//!
//! Every durable write in the system — the sweep shard files and checkpoint
//! manifest (`pobp-sweep`), the serve journal and snapshot (`pobp-serve`) —
//! goes through an [`IoGuard`] instead of calling `std::fs` directly. In a
//! default build the guard is a zero-sized pass-through: every method
//! compiles down to the underlying `write_all`/`sync_all`/`rename` call. In
//! a `chaos` build the guard can be **armed** with a
//! `FaultPlan`, and then every operation first
//! consults the plan's IO sites (`io-short-write`, `io-fsync`, `io-rename`,
//! `io-torn-tail`, `io-disk-full`).
//!
//! Determinism: an armed guard carries a base content key and a per-guard
//! operation counter; operation `i` draws its fault decisions from
//! `(seed, site, base ^ splitmix64(i))`. The op stream of a writer is a
//! pure function of *what* it writes (not of thread scheduling), so a
//! chaos-seeded sweep injects the same IO faults at the same byte offsets
//! under any `--threads` — which is what lets the resume proptests replay a
//! failure and assert byte-identical recovery. See `docs/sweeps.md`.
//!
//! Fault semantics mirror what real filesystems do:
//!
//! * **disk-full** fails up front, persisting nothing;
//! * **short-write** persists a strict prefix, then fails (a partial
//!   `write(2)` return the caller did not loop on);
//! * **torn-tail** persists a line's bytes *without* the final newline,
//!   then fails — exactly the state a `kill -9` between `write` and the
//!   newline flush leaves behind, and the state the journal/shard readers
//!   must recover from;
//! * **fsync** fails before syncing: the data may sit in the page cache but
//!   the caller must assume it is not durable;
//! * **rename** fails the publish leg of an atomic replace: the synced tmp
//!   file exists, the destination is untouched.
//!
//! After any injected (or real) error the *caller* decides policy; the
//! guard never retries and never hides an error. Writers that cannot
//! re-establish a known-good file state after a failed append (the serve
//! journal) poison themselves rather than keep appending after a tear.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

#[cfg(feature = "chaos")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "chaos")]
use std::sync::Arc;

#[cfg(feature = "chaos")]
use crate::cache::splitmix64;
#[cfg(feature = "chaos")]
use crate::chaos::{FaultPlan, FaultSite};

/// A fault-injectable handle over durable-write primitives. Inert (a plain
/// pass-through to `std::fs`) unless armed with a chaos plan.
#[derive(Debug, Default)]
pub struct IoGuard {
    #[cfg(feature = "chaos")]
    armed: Option<ArmedIo>,
}

#[cfg(feature = "chaos")]
#[derive(Debug)]
struct ArmedIo {
    plan: Arc<FaultPlan>,
    base: u64,
    ops: AtomicU64,
}

impl IoGuard {
    /// An inert guard: every operation is the plain `std::fs` call.
    pub fn inert() -> Self {
        IoGuard::default()
    }

    /// A guard armed with `plan`, drawing decisions keyed off `base` (the
    /// writer's content key — e.g. a sweep chunk key or the journal key).
    #[cfg(feature = "chaos")]
    pub fn armed(plan: Arc<FaultPlan>, base: u64) -> Self {
        IoGuard { armed: Some(ArmedIo { plan, base, ops: AtomicU64::new(0) }) }
    }

    /// Derives a sub-guard with an independent key and a fresh op counter
    /// (e.g. one per shard file off the sweep's root guard). Inert guards
    /// fork inert guards.
    pub fn fork(&self, salt: u64) -> IoGuard {
        #[cfg(feature = "chaos")]
        if let Some(a) = &self.armed {
            return IoGuard::armed(Arc::clone(&a.plan), a.base ^ splitmix64(salt ^ 0x5851_f42d_4c95_7f2d));
        }
        let _ = salt;
        IoGuard::inert()
    }

    /// Whether this guard can inject faults (always false without `chaos`).
    pub fn is_armed(&self) -> bool {
        #[cfg(feature = "chaos")]
        {
            self.armed.is_some()
        }
        #[cfg(not(feature = "chaos"))]
        {
            false
        }
    }

    /// Draws the fault (if any) for the next operation. Exactly one draw
    /// per public op, so op indices track operations, not site probes.
    #[cfg(feature = "chaos")]
    fn draw(&self, sites: &[FaultSite]) -> Option<FaultSite> {
        let a = self.armed.as_ref()?;
        let op = a.ops.fetch_add(1, Ordering::Relaxed);
        let key = a.base ^ splitmix64(op);
        sites.iter().copied().find(|&s| a.plan.fires(s, key))
    }

    /// Builds the injected-error value for `site` and counts it.
    #[cfg(feature = "chaos")]
    fn injected(site: FaultSite) -> io::Error {
        match site {
            FaultSite::IoShortWrite => pobp_core::obs_count!("chaos.io.short_write"),
            FaultSite::IoFsync => pobp_core::obs_count!("chaos.io.fsync"),
            FaultSite::IoRename => pobp_core::obs_count!("chaos.io.rename"),
            FaultSite::IoTornTail => pobp_core::obs_count!("chaos.io.torn_tail"),
            FaultSite::IoDiskFull => pobp_core::obs_count!("chaos.io.disk_full"),
            _ => {}
        }
        io::Error::other(format!("chaos: injected io fault (site={})", site.name()))
    }

    /// Appends `line` plus a trailing newline to `file`, without flushing.
    /// `line` must not itself contain a newline.
    ///
    /// Fault sites, in precedence order: `io-disk-full` (nothing written),
    /// `io-short-write` (half the line written), `io-torn-tail` (the whole
    /// line written but no newline).
    pub fn append_line(&self, file: &mut File, line: &[u8]) -> io::Result<()> {
        debug_assert!(!line.contains(&b'\n'), "append_line takes a single line");
        #[cfg(feature = "chaos")]
        if let Some(site) =
            self.draw(&[FaultSite::IoDiskFull, FaultSite::IoShortWrite, FaultSite::IoTornTail])
        {
            match site {
                FaultSite::IoShortWrite => {
                    file.write_all(&line[..line.len() / 2])?;
                    let _ = file.flush();
                }
                FaultSite::IoTornTail => {
                    file.write_all(line)?;
                    let _ = file.flush();
                }
                _ => {}
            }
            return Err(Self::injected(site));
        }
        file.write_all(line)?;
        file.write_all(b"\n")
    }

    /// Flushes `file` and fsyncs it to disk. The `io-fsync` site fails
    /// before syncing: the bytes may be in the page cache, but the caller
    /// must treat them as not durable.
    pub fn fsync(&self, file: &mut File) -> io::Result<()> {
        file.flush()?;
        #[cfg(feature = "chaos")]
        if let Some(site) = self.draw(&[FaultSite::IoFsync]) {
            return Err(Self::injected(site));
        }
        file.sync_all()
    }

    /// Creates (truncating) `path` and writes `bytes` followed by an fsync.
    /// Subject to `io-disk-full`, `io-short-write`, and `io-fsync` (one
    /// draw; disk-full and short-write take precedence).
    pub fn write_file_bytes(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        #[cfg(feature = "chaos")]
        if let Some(site) =
            self.draw(&[FaultSite::IoDiskFull, FaultSite::IoShortWrite, FaultSite::IoFsync])
        {
            match site {
                FaultSite::IoShortWrite => {
                    let mut f = File::create(path)?;
                    f.write_all(&bytes[..bytes.len() / 2])?;
                }
                FaultSite::IoFsync => {
                    let mut f = File::create(path)?;
                    f.write_all(bytes)?;
                }
                _ => {}
            }
            return Err(Self::injected(site));
        }
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    /// Renames `from` to `to` — the publish leg of an atomic replace. The
    /// `io-rename` site fails without touching either path.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        #[cfg(feature = "chaos")]
        if let Some(site) = self.draw(&[FaultSite::IoRename]) {
            return Err(Self::injected(site));
        }
        fs::rename(from, to)
    }

    /// Atomically replaces `path` with `bytes`: write `path.tmp`, fsync,
    /// rename over `path`. On any failure `path` still holds its previous
    /// contents (at worst a stale `.tmp` is left behind, which a later
    /// replace overwrites).
    pub fn atomic_replace(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        self.write_file_bytes(&tmp, bytes)?;
        self.rename(&tmp, path)
    }

    /// Opens `path` for appending (creating it if absent), untouched by
    /// fault sites — open itself is not a modeled failure point.
    pub fn open_append(&self, path: &Path) -> io::Result<File> {
        OpenOptions::new().create(true).append(true).open(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join(format!("pobp-io-{tag}-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn inert_guard_is_a_plain_writer() {
        let dir = tmpdir("inert");
        let g = IoGuard::inert();
        assert!(!g.is_armed());
        let p = dir.join("a.jsonl");
        let mut f = g.open_append(&p).unwrap();
        g.append_line(&mut f, b"{\"x\":1}").unwrap();
        g.append_line(&mut f, b"{\"x\":2}").unwrap();
        g.fsync(&mut f).unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "{\"x\":1}\n{\"x\":2}\n");
        g.atomic_replace(&p, b"fresh\n").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "fresh\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::*;
        use crate::chaos::{FaultPlan, FaultSite};
        use std::sync::Arc;

        fn armed(site: FaultSite) -> IoGuard {
            let plan = Arc::new(FaultPlan::new(7).with_rate(site, 1.0));
            IoGuard::armed(plan, 0xabcd)
        }

        #[test]
        fn torn_tail_drops_only_the_newline() {
            let dir = tmpdir("torn");
            let g = armed(FaultSite::IoTornTail);
            let p = dir.join("a.jsonl");
            let mut f = g.open_append(&p).unwrap();
            let err = g.append_line(&mut f, b"{\"x\":1}").unwrap_err();
            assert!(err.to_string().contains("chaos: injected"));
            assert_eq!(fs::read_to_string(&p).unwrap(), "{\"x\":1}");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn short_write_persists_a_strict_prefix() {
            let dir = tmpdir("short");
            let g = armed(FaultSite::IoShortWrite);
            let p = dir.join("a.jsonl");
            let mut f = g.open_append(&p).unwrap();
            g.append_line(&mut f, b"0123456789").unwrap_err();
            assert_eq!(fs::read_to_string(&p).unwrap(), "01234");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn disk_full_persists_nothing() {
            let dir = tmpdir("full");
            let g = armed(FaultSite::IoDiskFull);
            let p = dir.join("a.jsonl");
            let mut f = g.open_append(&p).unwrap();
            g.append_line(&mut f, b"{\"x\":1}").unwrap_err();
            assert_eq!(fs::read_to_string(&p).unwrap(), "");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn failed_rename_leaves_the_destination_untouched() {
            let dir = tmpdir("rename");
            let g = armed(FaultSite::IoRename);
            let p = dir.join("a.json");
            fs::write(&p, "old").unwrap();
            let err = g.atomic_replace(&p, b"new").unwrap_err();
            assert!(err.to_string().contains("io-rename"));
            assert_eq!(fs::read_to_string(&p).unwrap(), "old");
            // The synced tmp is allowed to linger; a retry overwrites it.
            assert_eq!(fs::read_to_string(p.with_extension("tmp")).unwrap(), "new");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn op_stream_is_deterministic_and_fork_independent() {
            let plan = Arc::new(FaultPlan::new(3).with_rate(FaultSite::IoTornTail, 0.5));
            let draws = |g: &IoGuard| -> Vec<bool> {
                (0..64)
                    .map(|_| g.draw(&[FaultSite::IoTornTail]).is_some())
                    .collect()
            };
            let a = draws(&IoGuard::armed(Arc::clone(&plan), 42));
            let b = draws(&IoGuard::armed(Arc::clone(&plan), 42));
            assert_eq!(a, b, "same key, same op stream");
            let root = IoGuard::armed(Arc::clone(&plan), 42);
            let f1 = draws(&root.fork(1));
            let f2 = draws(&root.fork(2));
            assert_ne!(f1, f2, "forks draw independently");
            assert_eq!(f1, draws(&root.fork(1)), "forks are reproducible");
        }

        #[test]
        fn fsync_site_fails_the_flush() {
            let dir = tmpdir("fsync");
            let g = armed(FaultSite::IoFsync);
            let p = dir.join("a.jsonl");
            let mut f = g.open_append(&p).unwrap();
            // append_line draws disk-full/short-write/torn-tail only, so it
            // succeeds; the fsync op then fails.
            g.append_line(&mut f, b"{\"x\":1}").unwrap();
            let err = g.fsync(&mut f).unwrap_err();
            assert!(err.to_string().contains("io-fsync"));
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
