//! Grid sweeps: expand an `(n, k, seed)` cross product into a task batch.
//!
//! Task order is row-major over `ns × seeds × ks` — seeds inside `n`, `k`
//! innermost — so every `k` of one `(n, seed)` cell is adjacent and the
//! cache's reference layer (keyed by instance, not by `k`) is hit
//! immediately. The order, and therefore the report order, is a pure
//! function of the spec: two engines given the same spec return
//! byte-identical report sequences regardless of thread count.

use pobp_core::JobSet;
use pobp_instances::RandomWorkload;

use crate::task::{Algo, SolveTask};

/// A sweep grid: the cross product of sizes, budgets, and seeds, solved
/// with one algorithm.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Instance sizes.
    pub ns: Vec<usize>,
    /// Preemption budgets.
    pub ks: Vec<u32>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// The algorithm every task runs.
    pub algo: Algo,
    /// Machines per task (1 = single machine).
    pub machines: usize,
    /// Whether tasks use the exact `OPT_∞` reference (see
    /// [`SolveTask::exact_ref`]).
    pub exact_ref: bool,
}

impl GridSpec {
    /// A single-machine grid over the given axes with a greedy reference.
    pub fn new(ns: Vec<usize>, ks: Vec<u32>, seeds: Vec<u64>, algo: Algo) -> Self {
        GridSpec { ns, ks, seeds, algo, machines: 1, exact_ref: false }
    }

    /// Number of tasks the grid expands to.
    pub fn len(&self) -> usize {
        self.ns.len() * self.ks.len() * self.seeds.len()
    }

    /// Whether the grid is empty along any axis.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid using the standard random workload
    /// ([`RandomWorkload::standard`]) as the instance generator.
    pub fn tasks(&self) -> Vec<SolveTask> {
        self.tasks_with(|n, seed| RandomWorkload::standard(n).generate(seed))
    }

    /// Expands the grid with a caller-supplied `(n, seed) → JobSet`
    /// generator (e.g. the bench crate's workload builders). The instance
    /// of each `(n, seed)` cell is generated once and shared across its
    /// `k` row.
    pub fn tasks_with(&self, gen: impl Fn(usize, u64) -> JobSet) -> Vec<SolveTask> {
        let mut out = Vec::with_capacity(self.len());
        for &n in &self.ns {
            for &seed in &self.seeds {
                let instance = gen(n, seed);
                for &k in &self.ks {
                    out.push(SolveTask {
                        instance: instance.clone(),
                        k,
                        machines: self.machines,
                        algo: self.algo,
                        exact_ref: self.exact_ref,
                        label: format!("n={n} k={k} seed={seed}"),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_row_major_and_sized() {
        let g = GridSpec::new(vec![4, 6], vec![1, 2], vec![0, 1], Algo::Reduction);
        let tasks = g.tasks();
        assert_eq!(tasks.len(), g.len());
        assert_eq!(tasks.len(), 8);
        assert_eq!(tasks[0].label, "n=4 k=1 seed=0");
        assert_eq!(tasks[1].label, "n=4 k=2 seed=0");
        assert_eq!(tasks[2].label, "n=4 k=1 seed=1");
        assert_eq!(tasks[4].label, "n=6 k=1 seed=0");
        // The k row of one (n, seed) cell shares one instance.
        assert_eq!(tasks[0].instance, tasks[1].instance);
        assert_ne!(tasks[0].instance, tasks[2].instance);
    }
}
