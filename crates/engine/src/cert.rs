//! Certified outputs: the engine's trust boundary.
//!
//! Nothing leaves the engine as [`TaskResult::Done`](crate::task::TaskResult)
//! (or `Degraded`) on trust. Before a result is emitted — whether freshly
//! solved, served from the cache, or produced by the degradation fallback —
//! the schedule behind it is independently re-checked against the `JobSet`:
//!
//! 1. **feasibility** — `Schedule::verify_on(jobs, Some(eff_k), machines)`:
//!    every clause of Definition 2.1 plus the machine range;
//! 2. **value** — the claimed `alg_value`, `scheduled` count, and
//!    `preemptions` are recomputed from the schedule and must match;
//! 3. **reference** — the reference schedule re-verifies and its recomputed
//!    value must match the claimed `ref_value`.
//!
//! A mismatch becomes a structured
//! [`TaskResult::CertFailed`](crate::task::TaskResult) naming the stage and
//! reason, **never** a wrong value in an output row. This is what turns
//! injected cache corruption (see [`crate::chaos`]) or a solver bug into a
//! visible, attributable failure. Certification costs one `verify` plus one
//! stats pass per emitted result — small next to any solve — and is always
//! on; it is not feature-gated.
//!
//! Values in this workspace are integer-valued `f64`s (exact — DESIGN.md
//! §4); the comparisons still allow a `1e-9` relative slack so the
//! certification layer never flags benign floating-point noise, while the
//! chaos corruption (`2v + 1`) stays far outside it.

use pobp_core::{schedule_stats, JobSet, Schedule};

use crate::task::SolveOutput;

/// Which certification check failed. Stage names are stable (used in JSON
/// output and CI assertions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertStage {
    /// The schedule failed `Schedule::verify_on` (Definition 2.1 clauses or
    /// machine range).
    Feasibility,
    /// Recomputed value/scheduled/preemptions disagree with the claimed
    /// [`SolveOutput`].
    Value,
    /// The reference schedule failed re-verification, or its recomputed
    /// value disagrees with the claimed `ref_value`.
    Reference,
}

impl CertStage {
    /// The stable lowercase name used by CLIs and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CertStage::Feasibility => "feasibility",
            CertStage::Value => "value",
            CertStage::Reference => "reference",
        }
    }
}

/// A failed certification: the stage that caught it and a human-readable
/// reason.
#[derive(Clone, Debug, PartialEq)]
pub struct CertFailure {
    /// The failing check.
    pub stage: CertStage,
    /// What mismatched, with the claimed and recomputed quantities.
    pub reason: String,
}

/// Relative tolerance for value comparisons (see the module docs).
const TOL: f64 = 1e-9;

fn values_differ(claimed: f64, recomputed: f64) -> bool {
    (claimed - recomputed).abs() > TOL * recomputed.abs().max(1.0)
}

/// Certifies a bounded-stage result: feasibility of `schedule` under
/// `(eff_k, machines)` and agreement of `out`'s claimed statistics with a
/// recomputation from the schedule. The reference side is certified
/// separately ([`certify_reference`]) because cache hits carry no reference
/// schedule.
pub(crate) fn certify_solve(
    jobs: &JobSet,
    schedule: &Schedule,
    eff_k: u32,
    machines: usize,
    out: &SolveOutput,
) -> Result<(), CertFailure> {
    schedule.verify_on(jobs, Some(eff_k), machines).map_err(|e| CertFailure {
        stage: CertStage::Feasibility,
        reason: e.to_string(),
    })?;
    let stats = schedule_stats(jobs, schedule);
    if values_differ(out.alg_value, stats.value) {
        return Err(CertFailure {
            stage: CertStage::Value,
            reason: format!(
                "claimed value {} but the schedule recomputes to {}",
                out.alg_value, stats.value
            ),
        });
    }
    if out.scheduled != stats.scheduled {
        return Err(CertFailure {
            stage: CertStage::Value,
            reason: format!(
                "claimed {} scheduled jobs but the schedule holds {}",
                out.scheduled, stats.scheduled
            ),
        });
    }
    if out.preemptions != stats.total_preemptions {
        return Err(CertFailure {
            stage: CertStage::Value,
            reason: format!(
                "claimed {} preemptions but the schedule recomputes to {}",
                out.preemptions, stats.total_preemptions
            ),
        });
    }
    Ok(())
}

/// Certifies the unbounded reference: the schedule re-verifies (unbounded
/// preemption, any machine) and its recomputed value matches `claimed`.
///
/// For the exact branch the claimed value is `OPT_∞` of the chosen subset —
/// exactly the witness schedule's value; for the greedy branch it is
/// computed from the schedule directly. Either way a corrupted cache entry
/// (or a buggy oracle) shows up here as a mismatch.
pub(crate) fn certify_reference(
    jobs: &JobSet,
    reference: &Schedule,
    claimed: f64,
) -> Result<(), CertFailure> {
    reference.verify(jobs, None).map_err(|e| CertFailure {
        stage: CertStage::Reference,
        reason: format!("reference schedule is infeasible: {e}"),
    })?;
    let recomputed = reference.value(jobs);
    if values_differ(claimed, recomputed) {
        return Err(CertFailure {
            stage: CertStage::Reference,
            reason: format!(
                "claimed reference value {claimed} but its schedule recomputes to {recomputed}"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::{Interval, Job, JobId, SegmentSet};

    fn setup() -> (JobSet, Schedule, SolveOutput) {
        let jobs: JobSet =
            vec![Job::new(0, 10, 4, 3.0), Job::new(0, 20, 5, 2.0)].into_iter().collect();
        let mut s = Schedule::new();
        s.assign(JobId(0), 0, SegmentSet::from_intervals([Interval::new(0, 4)]));
        s.assign(JobId(1), 0, SegmentSet::from_intervals([Interval::new(4, 9)]));
        let out = SolveOutput {
            alg_value: 5.0,
            ref_value: 5.0,
            scheduled: 2,
            preemptions: 0,
            branch_values: None,
        };
        (jobs, s, out)
    }

    #[test]
    fn honest_results_certify() {
        let (jobs, s, out) = setup();
        assert_eq!(certify_solve(&jobs, &s, 1, 1, &out), Ok(()));
        assert_eq!(certify_reference(&jobs, &s, 5.0), Ok(()));
    }

    #[test]
    fn value_mismatch_is_caught_with_both_quantities() {
        let (jobs, s, mut out) = setup();
        out.alg_value = 11.0; // the chaos corruption formula: 2·5 + 1
        let err = certify_solve(&jobs, &s, 1, 1, &out).unwrap_err();
        assert_eq!(err.stage, CertStage::Value);
        assert!(err.reason.contains("11") && err.reason.contains('5'), "{}", err.reason);
    }

    #[test]
    fn infeasible_schedule_is_a_feasibility_failure() {
        let (jobs, mut s, out) = setup();
        // Overlap the two jobs on machine 0.
        s.assign(JobId(1), 0, SegmentSet::from_intervals([Interval::new(2, 7)]));
        let err = certify_solve(&jobs, &s, 1, 1, &out).unwrap_err();
        assert_eq!(err.stage, CertStage::Feasibility);
        // Machine out of range is also a feasibility failure.
        let (jobs, mut s, out) = setup();
        s.assign(JobId(1), 2, SegmentSet::from_intervals([Interval::new(4, 9)]));
        let err = certify_solve(&jobs, &s, 1, 1, &out).unwrap_err();
        assert_eq!(err.stage, CertStage::Feasibility);
        assert!(err.reason.contains("machine 2"), "{}", err.reason);
    }

    #[test]
    fn preemption_budget_is_recertified() {
        let (jobs, mut s, mut out) = setup();
        s.assign(
            JobId(1),
            0,
            SegmentSet::from_intervals([
                Interval::new(4, 6),
                Interval::new(7, 9),
                Interval::new(10, 11),
            ]),
        );
        out.preemptions = 2;
        assert_eq!(certify_solve(&jobs, &s, 2, 1, &out), Ok(()));
        let err = certify_solve(&jobs, &s, 1, 1, &out).unwrap_err();
        assert_eq!(err.stage, CertStage::Feasibility);
    }

    #[test]
    fn corrupted_reference_value_is_caught() {
        let (jobs, s, _) = setup();
        let err = certify_reference(&jobs, &s, 11.0).unwrap_err();
        assert_eq!(err.stage, CertStage::Reference);
        assert!(err.reason.contains("11"), "{}", err.reason);
    }
}
