//! The work-stealing run-queue fabric behind [`crate::pool::Engine`]:
//! per-worker deques with a LIFO slot, a chunked global injector, a
//! not-before heap for retry backoff, and a parking lot for idle workers.
//!
//! The fabric schedules *units* — `(task index, attempts so far, per-task
//! cancellation state)` — not results: every solver is a pure function and
//! each report is keyed by its input index, so **scheduling order never
//! reaches an output byte**. Stealing is therefore free to be greedy; it is
//! still seeded deterministically per worker (`splitmix64(worker)`), so a
//! given build's victim sequence is reproducible rather than dependent on
//! OS entropy, which keeps scheduling repeatable when replaying chaos runs.
//!
//! Claim order for a worker, cheapest first:
//!
//! 1. its **LIFO slot** (a just-requeued zero-backoff retry: the task's
//!    state is still warm in this worker's workspace);
//! 2. the front of its **own deque** (the tail of its last injector chunk);
//! 3. the **not-before heap**, when the earliest entry is due;
//! 4. the **injector**: a chunk of `chunk` consecutive input indices,
//!    claimed with one `fetch_add` — consecutive cells of a sweep grid
//!    share a reference solution, so chunk adjacency feeds the ref cache;
//! 5. **stealing**: the back half of a randomly chosen victim's deque.
//!
//! A worker that finds nothing parks on a condvar with a bounded timeout
//! (the earliest not-before entry, capped at 1 ms) and re-checks; the last
//! completion notifies everyone so the pool drains promptly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use pobp_core::{obs_count, obs_event};

use crate::cache::splitmix64;
use crate::cancel::CancelToken;

/// Longest a worker parks between re-checks when it has no due wake-up.
const PARK_CAP: Duration = Duration::from_millis(1);

/// One schedulable attempt of a task: the input index plus whatever
/// per-task state must survive a requeue (the attempt counter, the task's
/// cancel token, its absolute deadline, and its chaos handle). The state
/// fields are `None` until the first dispatch initialises them.
pub(crate) struct Unit {
    /// Input index of the task (and of its report slot).
    pub index: usize,
    /// Attempts already made; `0` until the first dispatch.
    pub attempts: u32,
    /// The task's own cancel token, created at first dispatch and carried
    /// across retries so a cancellation observed between attempts sticks.
    pub token: Option<CancelToken>,
    /// Absolute deadline fixed at first dispatch; requeue time counts
    /// against it, exactly as the old in-worker backoff sleep did.
    pub deadline_at: Option<Instant>,
    /// The task's chaos handle (plan + content key), computed once at first
    /// dispatch so requeues do not re-hash the task.
    #[cfg(feature = "chaos")]
    pub chaos: Option<crate::chaos::TaskChaos>,
}

impl Unit {
    /// A never-dispatched unit for input index `index`.
    fn fresh(index: usize) -> Self {
        Unit {
            index,
            attempts: 0,
            token: None,
            deadline_at: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// A retry waiting out its backoff: ordered by `(not_before, index)` so the
/// heap pops the earliest-due unit, ties broken by input index.
struct Delayed {
    not_before: Instant,
    unit: Unit,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.not_before == other.not_before && self.unit.index == other.unit.index
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.not_before, self.unit.index).cmp(&(other.not_before, other.unit.index))
    }
}

/// One worker's run queue: the one-unit LIFO slot plus the stealable deque.
/// Both locks are owner-hot and thief-cold, so they are almost always
/// uncontended — the point of the per-worker layout.
#[derive(Default)]
struct WorkerQueue {
    /// Local push of a zero-backoff retry; never stolen.
    slot: Mutex<Option<Unit>>,
    /// Owner pops the front; thieves split off the back half.
    deque: Mutex<VecDeque<Unit>>,
}

/// The shared scheduling state of one `run_batch` call.
pub(crate) struct Fabric {
    /// Batch size (reports needed before the pool may exit).
    n: usize,
    /// Indices claimed per injector `fetch_add`.
    chunk: usize,
    /// Next unclaimed input index (the global injector).
    cursor: AtomicUsize,
    queues: Vec<WorkerQueue>,
    /// Retries waiting out a not-before timestamp (min-heap via `Reverse`).
    delayed: Mutex<BinaryHeap<Reverse<Delayed>>>,
    /// Reports written so far; `== n` terminates every worker.
    completed: AtomicUsize,
    park: Mutex<()>,
    unpark: Condvar,
}

impl Fabric {
    /// A fabric for `n` tasks over `threads` workers. The chunk size aims
    /// at a few claims per worker (amortising the shared cursor) while
    /// keeping the tail stealable.
    pub fn new(n: usize, threads: usize) -> Self {
        let chunk = (n / (threads * 4).max(1)).clamp(1, 64);
        Fabric {
            n,
            chunk,
            cursor: AtomicUsize::new(0),
            queues: (0..threads).map(|_| WorkerQueue::default()).collect(),
            delayed: Mutex::new(BinaryHeap::new()),
            completed: AtomicUsize::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
        }
    }

    /// Whether every task has reported.
    pub fn is_done(&self) -> bool {
        self.completed.load(Ordering::Acquire) >= self.n
    }

    /// Records one finished report; wakes every parked worker when it was
    /// the last.
    pub fn complete_one(&self) {
        if self.completed.fetch_add(1, Ordering::AcqRel) + 1 >= self.n {
            let _lock = self.park.lock().unwrap();
            self.unpark.notify_all();
        }
    }

    /// Puts a zero-backoff retry in `worker`'s LIFO slot, to be run next.
    pub fn push_slot(&self, worker: usize, unit: Unit) {
        let displaced = self.queues[worker].slot.lock().unwrap().replace(unit);
        if let Some(d) = displaced {
            // Only the owner writes its slot and it drains the slot before
            // dispatching, so this is unreachable; keep the unit anyway.
            self.queues[worker].deque.lock().unwrap().push_front(d);
        }
    }

    /// Parks a retry until `not_before` passes; any worker may then run it.
    pub fn push_delayed(&self, not_before: Instant, unit: Unit) {
        self.delayed.lock().unwrap().push(Reverse(Delayed { not_before, unit }));
        let _lock = self.park.lock().unwrap();
        self.unpark.notify_all();
    }

    /// The worker claim path: slot → own deque → due retry → injector chunk
    /// → steal. A `None` unit means there is nothing runnable right now;
    /// the steal accounting is returned either way.
    pub fn next_unit(&self, worker: usize, rng: &mut StealRng) -> (Option<Unit>, Steals) {
        let q = &self.queues[worker];
        if let Some(u) = q.slot.lock().unwrap().take() {
            return (Some(u), Steals::default());
        }
        if let Some(u) = q.deque.lock().unwrap().pop_front() {
            return (Some(u), Steals::default());
        }
        if let Some(u) = self.pop_due_retry() {
            return (Some(u), Steals::default());
        }
        if let Some(u) = self.claim_chunk(worker) {
            return (Some(u), Steals::default());
        }
        self.steal(worker, rng)
    }

    /// Pops the earliest delayed retry if its not-before has passed.
    fn pop_due_retry(&self) -> Option<Unit> {
        let mut delayed = self.delayed.lock().unwrap();
        if delayed.peek().is_some_and(|Reverse(d)| d.not_before <= Instant::now()) {
            return delayed.pop().map(|Reverse(d)| d.unit);
        }
        None
    }

    /// Claims the next `chunk` input indices from the injector: the first
    /// is returned to run now, the rest land at the back of the worker's
    /// own deque (where thieves can take them).
    fn claim_chunk(&self, worker: usize) -> Option<Unit> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.n {
            return None;
        }
        let end = (start + self.chunk).min(self.n);
        obs_event!("engine.queue.depth", (self.n - end) as u64);
        if end > start + 1 {
            let mut deque = self.queues[worker].deque.lock().unwrap();
            deque.extend((start + 1..end).map(Unit::fresh));
            obs_event!("engine.queue.local_depth", deque.len() as u64);
        }
        Some(Unit::fresh(start))
    }

    /// One stealing round: up to `threads − 1` victims in seeded-random
    /// order; on a hit, takes the back half of the victim's deque (runs the
    /// first stolen unit, queues the rest locally). The attempt/hit counts
    /// are returned either way so the caller can fold them into the stats.
    fn steal(&self, thief: usize, rng: &mut StealRng) -> (Option<Unit>, Steals) {
        let threads = self.queues.len();
        let mut steals = Steals::default();
        for _ in 0..threads.saturating_sub(1) {
            let victim = (rng.next() % threads as u64) as usize;
            if victim == thief {
                continue;
            }
            steals.attempts += 1;
            obs_count!("engine.steal.attempts");
            let mut stolen = {
                let mut v = self.queues[victim].deque.lock().unwrap();
                let len = v.len();
                if len == 0 {
                    continue;
                }
                v.split_off(len - len.div_ceil(2))
            };
            steals.hits += 1;
            obs_count!("engine.steal.hits");
            let first = stolen.pop_front().expect("stole at least one unit");
            if !stolen.is_empty() {
                let mut deque = self.queues[thief].deque.lock().unwrap();
                deque.append(&mut stolen);
                obs_event!("engine.queue.local_depth", deque.len() as u64);
            }
            return (Some(first), steals);
        }
        (None, steals)
    }

    /// Blocks until new work may exist: a notify, the earliest not-before
    /// coming due, or the 1 ms cap — whichever is first.
    pub fn park(&self) {
        let timeout = {
            let delayed = self.delayed.lock().unwrap();
            match delayed.peek() {
                Some(Reverse(d)) => {
                    let until = d.not_before.saturating_duration_since(Instant::now());
                    if until.is_zero() {
                        return; // due already — go claim it
                    }
                    until.min(PARK_CAP)
                }
                None => PARK_CAP,
            }
        };
        let lock = self.park.lock().unwrap();
        if self.is_done() {
            return;
        }
        let _ = self.unpark.wait_timeout(lock, timeout).unwrap();
    }
}

/// Steal accounting for one claim: attempts made and hits landed.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Steals {
    /// Victim probes made.
    pub attempts: usize,
    /// Probes that yielded at least one unit.
    pub hits: usize,
}

/// The per-worker victim-selection RNG: a `splitmix64` stream seeded by the
/// worker index alone, so victim order is a pure function of
/// `(worker, probe count)` — reproducible across runs, no OS entropy.
pub(crate) struct StealRng(u64);

impl StealRng {
    /// The stream for `worker`.
    pub fn new(worker: usize) -> Self {
        StealRng(splitmix64(worker as u64 ^ 0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }
}
