//! Content-addressed in-memory result caching.
//!
//! Grid sweeps revisit the same instance many times — every `k` of a
//! `(n, seed) × k` grid shares the instance, and the expensive side of most
//! tasks is the unbounded reference (`OPT_∞` exact branch-and-bound, or the
//! greedy EDF baseline), which does not depend on `k` at all. The cache
//! therefore has two layers, both keyed by a content hash of the instance
//! (not by task identity):
//!
//! * the **reference layer** maps `(instance_hash, exact_ref)` to the
//!   shared unbounded reference solution, so a sweep over `k ∈ {1, 2, 4, 8}`
//!   pays for `OPT_∞` once;
//! * the **result layer** maps the full task key
//!   `(instance_hash, k, machines, algo, exact_ref)` to the finished
//!   [`CachedResult`] — the [`SolveOutput`] *plus* the schedule it was
//!   derived from and the effective `k`, so a cache hit can be re-certified
//!   at the engine's trust boundary ([`crate::cert`]) instead of trusted.
//!
//! Caching never changes *what* a task returns — solvers are pure, so a
//! cached output is identical to a recomputed one — only what it costs.
//! Cache-hit accounting is reported in
//! [`EngineStats`](crate::pool::EngineStats) and the `engine.cache.*`
//! counters, never in per-task output (see the determinism contract in
//! `docs/engine.md`).
//!
//! With the `chaos` feature an armed [`FaultPlan`](crate::chaos::FaultPlan)
//! can corrupt entries **at put time**, decided by the entry key: every
//! consumer of a poisoned entry (including the worker that computed it,
//! which adopts the canonical entry returned by [`ResultCache::put_ref`])
//! observes the same corrupt bytes, keeping chaos runs deterministic.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pobp_core::{trace_event, JobSet, Schedule};

use crate::task::{Algo, SolveOutput, SolveTask};

/// FNV-1a content hash of a job set: every job's release, deadline, length,
/// and value bits, in id order. Two `JobSet`s hash equal iff they contain
/// the same jobs in the same order.
pub fn instance_hash(jobs: &JobSet) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(jobs.len() as u64);
    for (_, j) in jobs.iter() {
        mix(j.release as u64);
        mix(j.deadline as u64);
        mix(j.length as u64);
        mix(j.value.to_bits());
    }
    h
}

/// `splitmix64` finalizer — the standard 64-bit avalanche mix. Shared by
/// the chaos layer's injection decisions and the sweep planner's chunk
/// keys, so both derive from one pinned bit stream.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-task content key: the instance content hash mixed with the
/// task's solving parameters. Content-addressed like the cache, so
/// duplicate tasks draw identical keys (chaos needs that for report
/// determinism) while distinct grid cells draw independently. The sweep
/// planner folds these keys into its chunk digests, which is what makes a
/// `--resume` able to detect a changed grid spec.
pub fn task_key(task: &SolveTask) -> u64 {
    let mut h = instance_hash(&task.instance);
    h ^= splitmix64(task.k as u64);
    h = h.rotate_left(17) ^ splitmix64(task.machines as u64);
    h = h.rotate_left(17) ^ splitmix64(task.algo.name().len() as u64 ^ (task.algo as u64) << 8);
    h.rotate_left(17) ^ splitmix64(task.exact_ref as u64)
}

/// The shared unbounded reference of one instance: the `∞`-preemptive
/// schedule (exact or greedy) and its value.
#[derive(Clone, Debug)]
pub struct RefSolution {
    /// The reference schedule.
    pub schedule: Schedule,
    /// Its value. For the exact branch this is `OPT_∞`; for the greedy
    /// branch it is the baseline's value (a lower bound on `OPT_∞`).
    pub value: f64,
}

/// A result-layer entry: the output plus the evidence needed to re-certify
/// it on every hit — the schedule it was derived from and the effective
/// preemption budget it was verified against.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// The finished output.
    pub output: SolveOutput,
    /// The schedule behind `output` (shared, the schedule can be large).
    pub schedule: Arc<Schedule>,
    /// The `k` the schedule is held to (`0` for `Algo::K0`, else the task's).
    pub eff_k: u32,
}

/// Full task key for the result layer.
type ResultKey = (u64, u32, usize, Algo, bool);

/// The two-layer cache. Cheap to share: clone the [`Arc`] handle.
#[derive(Debug, Default)]
pub struct ResultCache {
    refs: Mutex<HashMap<(u64, bool), Arc<RefSolution>>>,
    results: Mutex<HashMap<ResultKey, CachedResult>>,
    #[cfg(feature = "chaos")]
    chaos: Mutex<Option<Arc<crate::chaos::FaultPlan>>>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Arms (or disarms) the fault plan consulted by the corrupt-at-put
    /// sites. Set by [`Engine::with_chaos`](crate::pool::Engine::with_chaos).
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&self, plan: Option<Arc<crate::chaos::FaultPlan>>) {
        *self.chaos.lock().unwrap() = plan;
    }

    /// Looks up the reference layer.
    pub fn get_ref(&self, inst: u64, exact: bool) -> Option<Arc<RefSolution>> {
        self.refs.lock().unwrap().get(&(inst, exact)).cloned()
    }

    /// Stores into the reference layer, returning the canonical entry.
    ///
    /// Under a race two workers may both compute the reference; first write
    /// wins and both use the winner, so every task observing the cache sees
    /// one consistent reference solution. (Solvers are deterministic, so
    /// the racers computed identical solutions anyway.)
    pub fn put_ref(&self, inst: u64, exact: bool, sol: RefSolution) -> Arc<RefSolution> {
        #[cfg(feature = "chaos")]
        let sol = {
            let mut sol = sol;
            if let Some(plan) = self.chaos.lock().unwrap().as_ref() {
                plan.corrupt_ref(inst ^ exact as u64, &mut sol);
            }
            sol
        };
        // Timing-class: under a race several workers store (the winner's
        // entry survives), so store counts vary across thread counts.
        trace_event!(timing "cache.ref_store");
        self.refs
            .lock()
            .unwrap()
            .entry((inst, exact))
            .or_insert_with(|| Arc::new(sol))
            .clone()
    }

    /// Looks up the result layer by the full task key.
    pub fn get_result(
        &self,
        inst: u64,
        k: u32,
        machines: usize,
        algo: Algo,
        exact: bool,
    ) -> Option<CachedResult> {
        self.results.lock().unwrap().get(&(inst, k, machines, algo, exact)).cloned()
    }

    /// Stores into the result layer. The entry carries its schedule so
    /// every later hit is re-certified, not trusted (see [`crate::cert`]).
    pub fn put_result(
        &self,
        inst: u64,
        k: u32,
        machines: usize,
        algo: Algo,
        exact: bool,
        entry: CachedResult,
    ) {
        #[cfg(feature = "chaos")]
        let entry = {
            let mut entry = entry;
            if let Some(plan) = self.chaos.lock().unwrap().as_ref() {
                plan.corrupt_result(inst ^ splitmix_key(k, machines, algo, exact), &mut entry.output);
            }
            entry
        };
        trace_event!(timing "cache.result_store");
        self.results.lock().unwrap().insert((inst, k, machines, algo, exact), entry);
    }

    /// Number of entries across both layers (for reporting).
    pub fn len(&self) -> usize {
        self.refs.lock().unwrap().len() + self.results.lock().unwrap().len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Mixes the non-instance parts of a result key into the chaos decision
/// key, so distinct `(k, machines, algo, exact)` cells of one instance draw
/// corruption independently.
#[cfg(feature = "chaos")]
fn splitmix_key(k: u32, machines: usize, algo: Algo, exact: bool) -> u64 {
    let packed = (k as u64) ^ ((machines as u64) << 20) ^ ((algo as u64) << 50) ^ ((exact as u64) << 60);
    packed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pobp_core::Job;

    fn inst(v: f64) -> JobSet {
        vec![Job::new(0, 10, 3, v), Job::new(1, 8, 2, 1.0)].into_iter().collect()
    }

    #[test]
    fn hash_is_content_addressed() {
        assert_eq!(instance_hash(&inst(2.0)), instance_hash(&inst(2.0)));
        assert_ne!(instance_hash(&inst(2.0)), instance_hash(&inst(3.0)));
        // Order matters: the hash addresses the JobSet, not the multiset.
        let a: JobSet = vec![Job::new(0, 10, 3, 2.0), Job::new(1, 8, 2, 1.0)]
            .into_iter()
            .collect();
        let b: JobSet = vec![Job::new(1, 8, 2, 1.0), Job::new(0, 10, 3, 2.0)]
            .into_iter()
            .collect();
        assert_ne!(instance_hash(&a), instance_hash(&b));
    }

    #[test]
    fn ref_layer_first_write_wins() {
        let c = ResultCache::new();
        assert!(c.get_ref(7, true).is_none());
        let first = c.put_ref(7, true, RefSolution { schedule: Schedule::new(), value: 1.0 });
        let second = c.put_ref(7, true, RefSolution { schedule: Schedule::new(), value: 2.0 });
        assert_eq!(first.value, 1.0);
        assert_eq!(second.value, 1.0);
        assert_eq!(c.get_ref(7, true).unwrap().value, 1.0);
        assert!(c.get_ref(7, false).is_none());
        assert_eq!(c.len(), 1);
    }
}
