//! Cooperative cancellation and wall-clock deadlines.
//!
//! Solvers in this workspace are monolithic pure functions — there is no
//! safe way to interrupt one mid-run from another thread. Robustness
//! against overruns is therefore *cooperative*: the engine's task wrapper
//! checks a [`TaskCtx`] at every stage-boundary yield point (before the
//! solve, between the reference and the bounded stage, before a retry is
//! requeued), and [`TaskCtx::should_stop`] compares the task's absolute
//! deadline against the clock right there — deadline enforcement lives
//! entirely at the yield points; no watchdog thread exists. A stage that
//! is already running completes (and its result is then discarded as
//! [`TimedOut`](crate::task::TaskResult::TimedOut)); the deadline bounds
//! when a task can *start* new work, not the latency of a single stage.
//!
//! The [`CancelToken`] carries the *external* stop requests: the batch
//! token (`cancel_all`, cancel-mode shutdown) and the per-task token (the
//! chaos `cancel` site, targeted job cancellation in `pobp serve`). Both
//! are observed at the same yield points.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared flag that flips exactly once from "keep going" to "stop".
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a stage-boundary check told the task wrapper to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The task's own deadline passed, or its per-task token was cancelled
    /// (chaos `cancel` site, targeted job cancellation).
    DeadlineExceeded,
    /// The batch-level token was cancelled.
    BatchCancelled,
}

/// Per-task view of the cancellation state: the task's own token, the
/// batch token, and the absolute deadline checked at every yield point.
#[derive(Clone, Debug)]
pub struct TaskCtx {
    /// The task's own cancel token (chaos `cancel` site; targeted
    /// cancellation).
    pub cancel: CancelToken,
    /// Batch-wide token (cancels every task).
    pub batch: CancelToken,
    /// Absolute wall-clock deadline, if the task has one.
    pub deadline: Option<Instant>,
    /// Chaos handle for this task (`None` when no fault plan is armed). The
    /// task wrapper consults it at the stage boundary for the forced
    /// `deadline` site; see `crate::chaos`.
    #[cfg(feature = "chaos")]
    pub chaos: Option<crate::chaos::TaskChaos>,
}

impl TaskCtx {
    /// A context with no deadline and fresh tokens (used by tests).
    pub fn unbounded() -> Self {
        TaskCtx {
            cancel: CancelToken::new(),
            batch: CancelToken::new(),
            deadline: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Stage-boundary check: `Some(reason)` when the task must stop now.
    ///
    /// The deadline is consulted directly — this check *is* the deadline
    /// enforcement mechanism: an overrun is detected at the first yield
    /// point after it happens, with no watchdog involved.
    pub fn should_stop(&self) -> Option<StopReason> {
        if self.batch.is_cancelled() {
            return Some(StopReason::BatchCancelled);
        }
        if self.cancel.is_cancelled() {
            return Some(StopReason::DeadlineExceeded);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_flips_once_and_sticks() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
        // Clones share the flag.
        let u = t.clone();
        assert!(u.is_cancelled());
    }

    #[test]
    fn ctx_reports_deadline_and_batch_cancel() {
        let mut ctx = TaskCtx::unbounded();
        assert_eq!(ctx.should_stop(), None);
        ctx.deadline = Some(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctx.should_stop(), Some(StopReason::DeadlineExceeded));
        ctx.deadline = None;
        ctx.batch.cancel();
        assert_eq!(ctx.should_stop(), Some(StopReason::BatchCancelled));
    }
}
