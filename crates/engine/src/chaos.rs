//! Deterministic fault injection (`chaos` cargo feature).
//!
//! A [`FaultPlan`] is a seed plus a per-site firing rate. Every injection
//! decision is a pure hash of `(seed, site, task content key)` — no RNG
//! state, no wall clock — so a chaos run replays **byte-identically**: the
//! same plan over the same task list injects the same faults regardless of
//! thread count, scheduling order, or cache state. That property is what
//! lets CI diff a fault-injected `pobp sweep --threads 1` against
//! `--threads 4` (see `docs/robustness.md`).
//!
//! The named sites (pool, task wrapper, cache):
//!
//! | site | where | effect |
//! |---|---|---|
//! | `panic` | `pool.rs`, inside the attempt `catch_unwind` | panics on **every** attempt (exercises retry exhaustion) |
//! | `flaky` | `pool.rs`, inside the attempt `catch_unwind` | panics on the **first** attempt only (exercises retry success) |
//! | `delay` | `pool.rs`, attempt start | sleeps [`FaultPlan::delay`] (exercises deadline yield points; wall-clock only) |
//! | `cancel` | `pool.rs`, before the first attempt | cancels the task's own token (surfaces as a deadline stop) |
//! | `deadline` | `solve.rs`, reference→bounded stage boundary | forces [`StopReason::DeadlineExceeded`](crate::cancel::StopReason) |
//! | `corrupt-ref` | `cache.rs`, reference-layer put | perturbs the stored reference value |
//! | `corrupt-result` | `cache.rs`, result-layer put | perturbs the stored output value |
//!
//! The IO sites (all routed through [`IoGuard`](crate::io::IoGuard), the
//! fault-injectable writer under the sweep shard files and the serve
//! journal; see `docs/sweeps.md`):
//!
//! | site | op | effect |
//! |---|---|---|
//! | `io-short-write` | line/file writes | writes only a prefix, then errors |
//! | `io-fsync` | fsync | the flush fails after data may have been buffered |
//! | `io-rename` | atomic-replace rename | tmp file written + synced, rename fails |
//! | `io-torn-tail` | line writes | writes the line **without** its final newline, then errors (a mid-write kill) |
//! | `io-disk-full` | line/file writes | fails up front, writing nothing |
//!
//! IO decisions are keyed by `(seed, site, writer key ^ op index)` — the
//! op index counts IO operations per writer — so a faulty sweep replays
//! identically across `--threads`, which is what lets the resume proptests
//! kill a run at *every* event point deterministically.
//!
//! Corruption happens at **put** time, decided by the entry key, so every
//! consumer of a poisoned entry — including the worker that computed it,
//! which adopts the canonical cache entry — observes the same corrupt
//! bytes. The certification layer ([`crate::cert`]) must then catch the
//! mismatch as `CertFailed` before it reaches any output row.
//!
//! This module only exists under `--features chaos`; every call site in the
//! engine is wrapped in `#[cfg(feature = "chaos")]`, so a default build
//! carries zero trace of the injection code (CI checks the release binary
//! for the `chaos: injected` marker strings).

use std::sync::Arc;
use std::time::Duration;

use crate::cache::RefSolution;
use crate::task::SolveOutput;

/// The `pobp sweep` usage addendum for chaos builds. Lives in this module
/// so every chaos-related CLI string is compiled out with the feature.
pub const CLI_USAGE: &str = "
chaos builds only: sweep and serve also accept
  --chaos SPEC      comma-separated site:rate entries, e.g.
                    panic:0.25,deadline:1,corrupt-ref:0.5 with sites
                    panic|flaky|delay|cancel|deadline|corrupt-ref|corrupt-result
                    |io-short-write|io-fsync|io-rename|io-torn-tail|io-disk-full
                    (the pseudo-site delay-ms:N sets the delay duration)
  --chaos-seed S    seed of the fault plan (default 0); the same seed over
                    the same grid injects the same faults on any --threads
The io-* sites fire inside the sweep shard writer and the serve journal
(docs/sweeps.md); the rest fire inside the engine (docs/robustness.md).
";

/// A named fault-injection site. See the module table for semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic on every attempt.
    Panic,
    /// Panic on the first attempt only.
    Flaky,
    /// Sleep at attempt start.
    Delay,
    /// Spuriously cancel the task's own token before it starts.
    SpuriousCancel,
    /// Force a `DeadlineExceeded` stop at the stage boundary.
    ForcedDeadline,
    /// Corrupt the reference-layer cache entry at put time.
    CorruptRef,
    /// Corrupt the result-layer cache entry at put time.
    CorruptResult,
    /// An IO write persists only a prefix of its bytes, then errors.
    IoShortWrite,
    /// An fsync fails after the data was handed to the OS.
    IoFsync,
    /// The rename leg of an atomic replace fails (tmp file left behind).
    IoRename,
    /// A line write persists everything but its final newline — the torn
    /// tail a `kill -9` mid-write leaves on disk.
    IoTornTail,
    /// An IO write fails up front with a disk-full error, writing nothing.
    IoDiskFull,
}

impl FaultSite {
    /// Every site, in spec/reporting order.
    pub const ALL: [FaultSite; 12] = [
        FaultSite::Panic,
        FaultSite::Flaky,
        FaultSite::Delay,
        FaultSite::SpuriousCancel,
        FaultSite::ForcedDeadline,
        FaultSite::CorruptRef,
        FaultSite::CorruptResult,
        FaultSite::IoShortWrite,
        FaultSite::IoFsync,
        FaultSite::IoRename,
        FaultSite::IoTornTail,
        FaultSite::IoDiskFull,
    ];

    /// The stable lowercase name used by `--chaos` specs and docs.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Panic => "panic",
            FaultSite::Flaky => "flaky",
            FaultSite::Delay => "delay",
            FaultSite::SpuriousCancel => "cancel",
            FaultSite::ForcedDeadline => "deadline",
            FaultSite::CorruptRef => "corrupt-ref",
            FaultSite::CorruptResult => "corrupt-result",
            FaultSite::IoShortWrite => "io-short-write",
            FaultSite::IoFsync => "io-fsync",
            FaultSite::IoRename => "io-rename",
            FaultSite::IoTornTail => "io-torn-tail",
            FaultSite::IoDiskFull => "io-disk-full",
        }
    }

    /// Parses [`FaultSite::name`] back into a site.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.name() == s)
    }

    /// Per-site hash salt, so the same task draws independently per site.
    fn salt(self) -> u64 {
        // Arbitrary distinct odd constants.
        match self {
            FaultSite::Panic => 0x9e37_79b9_7f4a_7c15,
            FaultSite::Flaky => 0xbf58_476d_1ce4_e5b9,
            FaultSite::Delay => 0x94d0_49bb_1331_11eb,
            FaultSite::SpuriousCancel => 0xd6e8_feb8_6659_fd93,
            FaultSite::ForcedDeadline => 0xa076_1d64_78bd_642f,
            FaultSite::CorruptRef => 0xe703_7ed1_a0b4_28db,
            FaultSite::CorruptResult => 0x8ebc_6af0_9c88_c6e3,
            FaultSite::IoShortWrite => 0xc2b2_ae3d_27d4_eb4f,
            FaultSite::IoFsync => 0x1656_67b1_9e37_79f9,
            FaultSite::IoRename => 0x27d4_eb2f_1656_67c5,
            FaultSite::IoTornTail => 0x85eb_ca77_c2b2_ae63,
            FaultSite::IoDiskFull => 0xff51_afd7_ed55_8ccd,
        }
    }
}

/// A seeded, content-keyed fault plan: which sites fire, how often, and
/// (for delays) for how long. Build with [`FaultPlan::new`] +
/// [`FaultPlan::with_rate`], or parse a CLI spec with [`FaultPlan::parse`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FaultSite::ALL.len()],
    delay: Duration,
}

impl FaultPlan {
    /// An empty plan (no site ever fires) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rates: [0.0; FaultSite::ALL.len()], delay: Duration::from_millis(1) }
    }

    /// Sets `site` to fire with probability `rate` (clamped to `[0, 1]`).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        let idx = FaultSite::ALL.iter().position(|s| *s == site).expect("site is in ALL");
        self.rates[idx] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the sleep duration of the `delay` site.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Parses a `--chaos` spec: comma-separated `site:rate` entries, e.g.
    /// `"panic:0.25,deadline:1,corrupt-ref:0.5"`. The pseudo-site
    /// `delay-ms:N` sets the delay duration instead of a rate.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, rate) = entry
                .split_once(':')
                .ok_or_else(|| format!("chaos entry `{entry}` is not site:rate"))?;
            if name == "delay-ms" {
                let ms: u64 = rate
                    .parse()
                    .map_err(|e| format!("chaos entry `{entry}`: bad delay-ms: {e}"))?;
                plan = plan.with_delay(Duration::from_millis(ms));
                continue;
            }
            let site = FaultSite::parse(name).ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!("unknown chaos site `{name}` (one of {})", names.join("|"))
            })?;
            let rate: f64 = rate
                .parse()
                .map_err(|e| format!("chaos entry `{entry}`: bad rate: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("chaos entry `{entry}`: rate must be in [0, 1]"));
            }
            plan = plan.with_rate(site, rate);
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sleep duration of the `delay` site.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Whether `site` fires for the entity identified by `key`. A pure
    /// function of `(seed, site, key)`: replays identically across threads
    /// and runs.
    pub fn fires(&self, site: FaultSite, key: u64) -> bool {
        let idx = FaultSite::ALL.iter().position(|s| *s == site).expect("site is in ALL");
        let rate = self.rates[idx];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ site.salt() ^ splitmix64(key));
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// The `panic`/`flaky` site, called inside the pool's per-attempt
    /// `catch_unwind`: `panic` fires on every attempt, `flaky` only on the
    /// first (so retry can succeed).
    pub(crate) fn inject_panic(&self, key: u64, attempt: u32) {
        if self.fires(FaultSite::Panic, key) {
            pobp_core::obs_count!("engine.chaos.panic");
            pobp_core::trace_event!("chaos.panic", attempt);
            panic!("chaos: injected panic (site=panic, key={key:#x})");
        }
        if attempt == 1 && self.fires(FaultSite::Flaky, key) {
            pobp_core::obs_count!("engine.chaos.flaky");
            pobp_core::trace_event!("chaos.flaky");
            panic!("chaos: injected panic (site=flaky, key={key:#x})");
        }
    }

    /// The `corrupt-ref` site: perturbs a reference solution about to enter
    /// the cache. Returns whether it fired.
    pub(crate) fn corrupt_ref(&self, key: u64, sol: &mut RefSolution) -> bool {
        if !self.fires(FaultSite::CorruptRef, key) {
            return false;
        }
        pobp_core::obs_count!("engine.chaos.corrupt_ref");
        // Timing-class: corruption fires at put time, and under a race the
        // losing worker's put (and thus this event) can repeat.
        pobp_core::trace_event!(timing "chaos.corrupt_ref");
        // Push the claimed reference value well past any certification
        // tolerance while keeping it finite and positive.
        sol.value = sol.value * 2.0 + 1.0;
        true
    }

    /// The `corrupt-result` site: perturbs a result-layer output about to
    /// enter the cache. Returns whether it fired.
    pub(crate) fn corrupt_result(&self, key: u64, out: &mut SolveOutput) -> bool {
        if !self.fires(FaultSite::CorruptResult, key) {
            return false;
        }
        pobp_core::obs_count!("engine.chaos.corrupt_result");
        pobp_core::trace_event!(timing "chaos.corrupt_result");
        out.alg_value = out.alg_value * 2.0 + 1.0;
        true
    }
}

// The hash primitives live in `cache.rs` (always compiled — the sweep
// planner keys chunks with them); re-export so chaos callers keep working.
pub use crate::cache::{splitmix64, task_key};

/// A task's chaos handle: the armed plan plus this task's content key.
/// Carried on [`TaskCtx`](crate::cancel::TaskCtx) so the stage boundary in
/// `solve.rs` can consult the `deadline` site.
#[derive(Clone, Debug)]
pub struct TaskChaos {
    /// The armed plan.
    pub plan: Arc<FaultPlan>,
    /// This task's content key ([`task_key`]).
    pub key: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let plan = FaultPlan::new(42).with_rate(FaultSite::Panic, 0.5);
        let a: Vec<bool> = (0..64).map(|k| plan.fires(FaultSite::Panic, k)).collect();
        let b: Vec<bool> = (0..64).map(|k| plan.fires(FaultSite::Panic, k)).collect();
        assert_eq!(a, b, "same plan, same keys, same decisions");
        let other = FaultPlan::new(43).with_rate(FaultSite::Panic, 0.5);
        let c: Vec<bool> = (0..64).map(|k| other.fires(FaultSite::Panic, k)).collect();
        assert_ne!(a, c, "a different seed draws differently");
        // Sites draw independently: panic firing says nothing about flaky.
        let both = FaultPlan::new(42)
            .with_rate(FaultSite::Panic, 0.5)
            .with_rate(FaultSite::Flaky, 0.5);
        let flaky: Vec<bool> = (0..64).map(|k| both.fires(FaultSite::Flaky, k)).collect();
        assert_ne!(a, flaky);
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let plan = FaultPlan::new(7)
            .with_rate(FaultSite::Panic, 0.0)
            .with_rate(FaultSite::ForcedDeadline, 1.0);
        for k in 0..256 {
            assert!(!plan.fires(FaultSite::Panic, k));
            assert!(plan.fires(FaultSite::ForcedDeadline, k));
        }
    }

    #[test]
    fn rate_is_roughly_respected() {
        let plan = FaultPlan::new(9).with_rate(FaultSite::Delay, 0.25);
        let hits = (0..4096).filter(|&k| plan.fires(FaultSite::Delay, k)).count();
        assert!((hits as f64 / 4096.0 - 0.25).abs() < 0.05, "got {hits}/4096");
    }

    #[test]
    fn spec_parsing_round_trips_sites() {
        let plan =
            FaultPlan::parse("panic:0.25, deadline:1,corrupt-ref:0.5,delay-ms:3", 5).unwrap();
        assert_eq!(plan.seed(), 5);
        assert_eq!(plan.delay(), Duration::from_millis(3));
        assert!(plan.fires(FaultSite::ForcedDeadline, 0));
        assert!(FaultPlan::parse("", 0).is_ok(), "empty spec is an empty plan");
        assert!(FaultPlan::parse("nope:0.5", 0).unwrap_err().contains("unknown chaos site"));
        assert!(FaultPlan::parse("panic:2", 0).unwrap_err().contains("[0, 1]"));
        assert!(FaultPlan::parse("panic", 0).unwrap_err().contains("site:rate"));
    }

    #[test]
    fn corruption_moves_values_past_any_tolerance() {
        let plan = FaultPlan::new(1).with_rate(FaultSite::CorruptRef, 1.0);
        let mut sol = RefSolution { schedule: pobp_core::Schedule::new(), value: 10.0 };
        assert!(plan.corrupt_ref(3, &mut sol));
        assert_eq!(sol.value, 21.0);
    }
}
