//! # pobp-engine — deterministic parallel batch solving
//!
//! A std-only work-stealing worker-pool engine (no external dependencies;
//! `std::thread` + atomics + mutexes) that fans a batch of solver tasks
//! across N workers — per-worker run queues fed by a chunked global
//! injector, randomized-victim stealing when a queue drains — and returns
//! results **in deterministic input order** regardless of thread count,
//! steal order, or completion order. It is the harness layer under
//! `pobp sweep` and the `experiments --threads N` binary; see
//! `docs/engine.md` for the full contract.
//!
//! Robustness is first-class (`docs/robustness.md`):
//!
//! * every task runs under `catch_unwind`, so a panicking solver yields a
//!   [`TaskResult::Panicked`] record instead of killing the sweep;
//! * tasks carry an optional wall-clock deadline enforced cooperatively:
//!   [`cancel`]'s stage-boundary yield points compare it against the clock
//!   (no watchdog thread exists), so an overrun or a cancellation is
//!   observed at the task's next boundary;
//! * panicking attempts get bounded retry with exponential backoff as a
//!   not-before requeue (the worker never sleeps out a backoff), with
//!   attempt accounting in each [`TaskReport`];
//! * a content-addressed [`cache`] shares the expensive unbounded-reference
//!   side (`OPT_∞`) across every `k` of a grid and deduplicates identical
//!   tasks outright;
//! * every emitted output — fresh, cached, or fallback — passed the
//!   [`cert`] trust boundary (schedule re-verified, values recomputed); a
//!   mismatch is a structured [`TaskResult::CertFailed`], never a wrong row;
//! * with [`EngineConfig::degrade`] on, tasks that exhaust retries or blow
//!   their deadline fall back to the polynomial `LSA_CS`/`k = 0` algorithm
//!   and report [`TaskResult::Degraded`] (still certified);
//! * long-lived owners stop cleanly via [`Engine::shutdown`] — drain-then-
//!   join or cancel-then-join, both of which refuse new batches and return
//!   only once every worker thread has joined — and share one
//!   content-addressed cache across many engines via
//!   [`Engine::with_shared_cache`] (the `pobp serve` daemon's pattern);
//! * with the `chaos` cargo feature, a seeded [`chaos::FaultPlan`] injects
//!   panics, delays, spurious cancellations, forced deadlines, and
//!   cache-entry corruption at named sites, deterministically per task —
//!   chaos runs replay byte-identically across thread counts. Without the
//!   feature, none of the injection code exists in the binary.
//!
//! With the `obs` cargo feature the engine emits the `engine.*` counter
//! families (tasks run/cached/panicked/timed-out/retried, certification
//! verdicts, chaos injections, degradations, injector/local queue depth,
//! steal attempts and hits, per-worker busy time); see
//! `docs/observability.md`.
//!
//! ## Quickstart
//!
//! ```
//! use pobp_engine::{Algo, EngineConfig, GridSpec, TaskResult, run_batch};
//!
//! // A 2×2×2 grid of reduction solves, 2 worker threads.
//! let grid = GridSpec::new(vec![6, 8], vec![1, 2], vec![0, 1], Algo::Reduction);
//! let cfg = EngineConfig { threads: 2, ..EngineConfig::default() };
//! let batch = run_batch(&grid.tasks(), cfg);
//! assert_eq!(batch.reports.len(), 8);
//! for (i, r) in batch.reports.iter().enumerate() {
//!     assert_eq!(r.index, i); // input order, always
//!     assert!(matches!(r.result, TaskResult::Done(_)));
//! }
//! // The terminal kinds partition the batch.
//! let s = batch.stats;
//! assert_eq!(
//!     s.run + s.cached + s.degraded + s.cert_failed + s.panicked + s.timed_out + s.cancelled,
//!     s.tasks
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cancel;
pub mod cert;
#[cfg(feature = "chaos")]
pub mod chaos;
mod exec;
pub mod grid;
pub mod io;
pub mod pool;
mod solve;
pub mod task;

pub use cache::{instance_hash, splitmix64, task_key, CachedResult, RefSolution, ResultCache};
pub use io::IoGuard;
pub use cancel::{CancelToken, StopReason, TaskCtx};
pub use cert::{CertFailure, CertStage};
#[cfg(feature = "chaos")]
pub use chaos::{FaultPlan, FaultSite};
pub use grid::GridSpec;
pub use pool::{run_batch, BatchReport, Engine, EngineConfig, EngineStats};
pub use task::{Algo, DegradeCause, SolveOutput, SolveTask, TaskReport, TaskResult};
