//! End-to-end tests of the `pobp-client` binary against an in-process
//! daemon: the server is embedded via [`pobp_serve::server::serve_listener`]
//! on port 0, and every assertion drives the real compiled binary
//! (`CARGO_BIN_EXE_pobp-client`), checking both the single-JSON-object
//! stdout contract and the documented exit codes
//! (0 ok, 1 usage/transport, 3 rejected, 4 failed/cancelled, 5 cert_failed).

use std::fs;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;
use std::time::Duration;

use pobp_serve::json::Json;
use pobp_serve::server::serve_listener;
use pobp_serve::service::{Service, ServiceConfig};
use pobp_serve::Client;

const BIN: &str = env!("CARGO_BIN_EXE_pobp-client");

/// An embedded daemon on an OS-assigned port, stopped on drop.
struct TestDaemon {
    addr: String,
    dir: PathBuf,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestDaemon {
    fn start(tag: &str, workers: usize, queue_cap: usize) -> Self {
        let dir = std::env::temp_dir().join(format!("pobp-client-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = ServiceConfig {
            dir: dir.clone(),
            workers,
            queue_cap,
            engine_threads: 1,
            degrade: false,
            compact_every: 256,
            #[cfg(feature = "chaos")]
            chaos: None,
            #[cfg(feature = "telemetry")]
            telemetry: pobp_serve::TelemetryOptions { sample_ms: 0, ..Default::default() },
        };
        let service = Arc::new(Service::start(cfg).unwrap());
        let handle = std::thread::spawn(move || serve_listener(listener, service));
        Self { addr, dir, handle: Some(handle) }
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(BIN)
            .args(args)
            .args(["--addr", &self.addr])
            .output()
            .expect("spawn pobp-client")
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        let client = Client::new(&self.addr, Duration::from_secs(5));
        let _ = client.shutdown(false);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Parses the single JSON object a subcommand printed to stdout.
fn stdout_json(out: &Output) -> Json {
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.trim();
    assert!(!line.contains('\n'), "expected exactly one stdout line, got: {text:?}");
    Json::parse(line).unwrap_or_else(|e| panic!("stdout is not JSON ({e:?}): {text:?}"))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("client killed by signal")
}

#[test]
fn usage_errors_exit_1_and_name_the_flag() {
    // No arguments at all: usage on stderr, exit 1, nothing on stdout.
    let out = Command::new(BIN).output().unwrap();
    assert_eq!(code(&out), 1);
    assert!(out.stdout.is_empty());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
    // A flag missing its value is a loud error naming the flag.
    let out = Command::new(BIN).args(["submit", "--addr"]).output().unwrap();
    assert_eq!(code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));
    // An unknown command is a usage error too.
    let out = Command::new(BIN).args(["frobnicate"]).output().unwrap();
    assert_eq!(code(&out), 1);
}

#[test]
fn transport_failure_exits_1() {
    // Nothing listens here: bind a port, then close it immediately.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let out = Command::new(BIN).args(["stats", "--addr", &dead]).output().unwrap();
    assert_eq!(code(&out), 1);
    assert!(String::from_utf8_lossy(&out.stderr).contains("transport error"));
    // `ping` reports the failure as JSON rather than an error message.
    let out = Command::new(BIN).args(["ping", "--addr", &dead]).output().unwrap();
    assert_eq!(code(&out), 1);
    assert_eq!(stdout_json(&out).get("ok").and_then(Json::as_bool), Some(false));
}

#[test]
fn submit_wait_round_trip_exits_by_outcome() {
    let daemon = TestDaemon::start("roundtrip", 1, 16);
    let out = daemon.run(&["ping"]);
    assert_eq!(code(&out), 0);

    // A quick certified job: exit 0, result carries the certified output.
    let out = daemon.run(&[
        "submit", "--alg", "reduction", "--n", "8", "--k", "1", "--seed", "3", "--wait",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let v = stdout_json(&out);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("done"));
    let result = v.get("result").expect("result object");
    assert_eq!(result.get("certified").and_then(Json::as_bool), Some(true));
    assert!(result.get("alg_value").is_some());

    // The deliberately panicking algorithm: terminal `failed`, exit 4.
    let out = daemon.run(&["submit", "--alg", "panic", "--n", "8", "--wait"]);
    assert_eq!(code(&out), 4);
    assert_eq!(stdout_json(&out).get("status").and_then(Json::as_str), Some("failed"));

    // `status` and `result` read the finished job back.
    let out = daemon.run(&["status", "--id", "1"]);
    assert_eq!(code(&out), 0);
    let job = stdout_json(&out).get("job").cloned().expect("job object");
    assert_eq!(job.get("status").and_then(Json::as_str), Some("done"));
    let out = daemon.run(&["result", "--id", "1"]);
    assert_eq!(code(&out), 0);

    // `list` with a status filter sees exactly the failed job.
    let out = daemon.run(&["list", "--status", "failed"]);
    assert_eq!(code(&out), 0);
    let jobs = stdout_json(&out).get("jobs").cloned().expect("jobs array");
    match jobs {
        Json::Arr(items) => assert_eq!(items.len(), 1),
        other => panic!("jobs is not an array: {other}"),
    }

    // `stats` exposes the serve.* counter family.
    let out = daemon.run(&["stats"]);
    assert_eq!(code(&out), 0);
    let stats = stdout_json(&out).get("stats").cloned().expect("stats object");
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(2));
}

#[test]
fn saturation_rejection_exits_3_and_cancel_resolves_queued_jobs() {
    // No workers: everything queues, so saturation is deterministic.
    let daemon = TestDaemon::start("saturate", 0, 1);
    let out = daemon.run(&["submit", "--alg", "lsa", "--n", "10", "--k", "1"]);
    assert_eq!(code(&out), 0);
    let id = stdout_json(&out).get("id").and_then(Json::as_u64).unwrap();

    let out = daemon.run(&["submit", "--alg", "lsa", "--n", "11", "--k", "1"]);
    assert_eq!(code(&out), 3, "queue-full submission must exit 3");
    let v = stdout_json(&out);
    assert_eq!(v.get("rejected").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("reason").and_then(Json::as_str), Some("queue_full"));
    assert_eq!(v.get("queue_depth").and_then(Json::as_u64), Some(1));

    let out = daemon.run(&["cancel", "--id", &id.to_string()]);
    assert_eq!(code(&out), 0);
    // The cancelled job is terminal; fetching its result exits 4.
    let out = daemon.run(&["result", "--id", &id.to_string()]);
    assert_eq!(code(&out), 4);
    assert_eq!(
        stdout_json(&out).get("status").and_then(Json::as_str),
        Some("cancelled")
    );
}
