//! The durability contract, property-tested: the registry is a pure
//! function of the journalled event sequence.
//!
//! * Any interleaving of submit/start/finish/cancel events — with
//!   compactions injected at arbitrary points — journals and replays to a
//!   registry identical to the live one.
//! * A journal truncated at an arbitrary byte boundary (the `kill -9`
//!   mid-append shape) recovers, without panicking, exactly the state of
//!   the last fully written record.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use pobp_engine::Algo;
use pobp_serve::journal::replay_dir;
use pobp_serve::json::{obj, Json};
use pobp_serve::registry::{Event, Registry};
use pobp_serve::{JobSpec, Journal};

/// A fresh scratch directory per proptest case.
fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pobp-serve-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Decodes one generated op against the live registry, mirroring the event
/// shapes the daemon produces (submits mint fresh ids; the others target a
/// pseudo-random known id, including redundant/out-of-order transitions).
fn decode_op(reg: &mut Registry, op: u64) -> Event {
    let known: Vec<u64> = reg.iter().map(|j| j.id).collect();
    let kind = if known.is_empty() { 0 } else { op % 4 };
    match kind {
        0 => {
            let id = reg.allocate_id();
            let mut spec = JobSpec::cell(Algo::Reduction, 4 + (op % 8) as usize, 1, op % 5);
            spec.priority = (op % 11) as i64 - 5;
            spec.name = format!("p{op}");
            Event::Submit { id, spec }
        }
        k => {
            let id = known[(op / 4) as usize % known.len()];
            match k {
                1 => Event::Start { id },
                2 => {
                    let status = ["ok", "degraded", "panicked", "cancelled"][(op / 7) as usize % 4];
                    let mut pairs = vec![
                        ("status".into(), Json::Str(status.into())),
                        (
                            "certified".into(),
                            Json::Bool(matches!(status, "ok" | "degraded")),
                        ),
                    ];
                    if matches!(status, "ok" | "degraded") {
                        pairs.push(("alg_value".into(), Json::Num((op % 97) as f64)));
                    }
                    Event::Finish { id, result: Json::Obj(pairs) }
                }
                _ => Event::Cancel { id },
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_interleaving_replays_to_the_identical_registry(
        ops in proptest::collection::vec(0u64..1_000_000, 1..60),
        compact_every in 1u64..20,
    ) {
        let dir = case_dir("interleave");
        let mut live = Registry::new();
        {
            let (mut journal, recovered, _) = Journal::open(&dir, compact_every).unwrap();
            prop_assert!(recovered.is_empty());
            for &op in &ops {
                let event = decode_op(&mut live, op);
                journal.append(&event).unwrap();
                live.apply(&event);
                // The daemon compacts on this cadence mid-stream; replay
                // must be identical whether or not a snapshot intervened.
                journal.maybe_compact(&live).unwrap();
            }
        }
        let (replayed, _, _) = replay_dir(&dir).unwrap();
        prop_assert_eq!(&replayed, &live);
        // And a second daemon opening the same directory recovers it too.
        let (_, reopened, _) = Journal::open(&dir, compact_every).unwrap();
        prop_assert_eq!(&reopened, &live);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tails_recover_the_last_complete_record(
        ops in proptest::collection::vec(0u64..1_000_000, 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        // Build a journal with no snapshot (huge cadence), so every event
        // is a line in journal.jsonl.
        let dir = case_dir("tail");
        let mut live = Registry::new();
        let mut events = Vec::new();
        {
            let (mut journal, _, _) = Journal::open(&dir, u64::MAX).unwrap();
            for &op in &ops {
                let event = decode_op(&mut live, op);
                journal.append(&event).unwrap();
                live.apply(&event);
                events.push(event);
            }
        }
        let path = dir.join("journal.jsonl");
        let bytes = fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        fs::write(&path, &bytes[..cut]).unwrap();
        // Expected state: a line survives the cut iff its full *content*
        // does (a line cut exactly before its newline still parses); a cut
        // strictly inside a line's content is a dropped tail.
        let mut complete = 0usize;
        let mut torn_line = false;
        let mut offset = 0usize;
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            if cut >= offset + line.len() {
                complete += 1;
            } else if cut > offset {
                torn_line = true;
            }
            offset += line.len() + 1;
        }
        let mut expected = Registry::new();
        for event in &events[..complete] {
            expected.apply(event);
        }
        let (replayed, _, report) = replay_dir(&dir).unwrap();
        prop_assert_eq!(&replayed, &expected);
        prop_assert_eq!(report.dropped_tail, torn_line);
        // Reopening for writing must land on a clean file: append one more
        // event and verify nothing is corrupted or lost.
        let (mut journal, reopened, _) = Journal::open(&dir, u64::MAX).unwrap();
        prop_assert_eq!(&reopened, &expected);
        let tail_op = 4 * ops.len() as u64; // kind 0: a fresh submit
        let event = decode_op(&mut expected, tail_op);
        journal.append(&event).unwrap();
        expected.apply(&event);
        drop(journal);
        let (after, _, _) = replay_dir(&dir).unwrap();
        prop_assert_eq!(&after, &expected);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_snapshot_and_truncate_is_idempotent(
        ops in proptest::collection::vec(0u64..1_000_000, 2..40),
    ) {
        // Simulate compaction's crash window by hand: snapshot the live
        // registry mid-stream but leave the full journal in place. Replay
        // must skip the covered records instead of double-applying them.
        let dir = case_dir("window");
        let mut live = Registry::new();
        {
            let (mut journal, _, _) = Journal::open(&dir, u64::MAX).unwrap();
            let half = ops.len() / 2;
            for (i, &op) in ops.iter().enumerate() {
                let event = decode_op(&mut live, op);
                journal.append(&event).unwrap();
                live.apply(&event);
                if i + 1 == half {
                    let snap = live.to_snapshot_json(journal.seq());
                    fs::write(dir.join("snapshot.json"), format!("{snap}\n")).unwrap();
                }
            }
        }
        let (replayed, _, report) = replay_dir(&dir).unwrap();
        prop_assert_eq!(&replayed, &live);
        prop_assert_eq!(report.skipped, (ops.len() / 2) as u64);
        fs::remove_dir_all(&dir).ok();
    }
}

/// The journalled event stream for equal specs is deterministic, so two
/// daemons fed the same submissions write byte-identical journals.
#[test]
fn identical_event_streams_write_identical_journal_bytes() {
    let write = |tag: &str| -> Vec<u8> {
        let dir = case_dir(tag);
        let mut reg = Registry::new();
        let (mut journal, _, _) = Journal::open(&dir, u64::MAX).unwrap();
        for op in [0u64, 4, 1, 2, 8, 3] {
            let event = decode_op(&mut reg, op);
            journal.append(&event).unwrap();
            reg.apply(&event);
        }
        drop(journal);
        let bytes = fs::read(dir.join("journal.jsonl")).unwrap();
        fs::remove_dir_all(&dir).ok();
        bytes
    };
    assert_eq!(write("bytes-a"), write("bytes-b"));
    // Sanity: the journal lines are the documented seq-enveloped objects.
    let dir = case_dir("bytes-c");
    let mut reg = Registry::new();
    let (mut journal, _, _) = Journal::open(&dir, u64::MAX).unwrap();
    journal.append(&decode_op(&mut reg, 0)).unwrap();
    let text = fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    let line = Json::parse(text.trim()).unwrap();
    assert_eq!(line.get("seq").and_then(Json::as_u64), Some(1));
    assert_eq!(line.get("ev").and_then(Json::as_str), Some("submit"));
    let _ = obj([("keep", Json::Null)]); // exercise the public builder
    fs::remove_dir_all(&dir).ok();
}
