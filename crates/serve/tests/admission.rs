//! Admission control and queue semantics, tested deterministically: a
//! service started with `workers: 0` accepts and queues but never runs, so
//! the queue-full boundary, cancel-while-queued, and the recovery requeue
//! are exact — no timing. A second service over the same directory (with a
//! worker) then drains the backlog, and the journal's `start` records give
//! the exact claim order for the priority assertion.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use pobp_engine::Algo;
use pobp_serve::json::Json;
use pobp_serve::service::{CancelOutcome, Service, ServiceConfig, SubmitOutcome};
use pobp_serve::{JobSpec, JobStatus};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pobp-serve-adm-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path, workers: usize, queue_cap: usize) -> ServiceConfig {
    ServiceConfig {
        dir: dir.to_path_buf(),
        workers,
        queue_cap,
        engine_threads: 1,
        degrade: false,
        compact_every: 10_000,
        #[cfg(feature = "chaos")]
        chaos: None,
    }
}

/// A quick job with a distinguishing seed and priority.
fn spec(seed: u64, priority: i64) -> JobSpec {
    let mut s = JobSpec::cell(Algo::Reduction, 8, 1, seed);
    s.priority = priority;
    s.name = format!("adm-{seed}");
    s
}

fn accepted_id(outcome: SubmitOutcome) -> u64 {
    match outcome {
        SubmitOutcome::Accepted { id, status: JobStatus::Queued, cached: false, .. } => id,
        other => panic!("expected a queued acceptance, got {other:?}"),
    }
}

/// Ids of `start` records in journal order — the exact sequence in which
/// workers claimed jobs.
fn start_order(dir: &Path) -> Vec<u64> {
    let text = fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    text.lines()
        .filter_map(|l| Json::parse(l).ok())
        .filter(|v| v.get("ev").and_then(Json::as_str) == Some("start"))
        .filter_map(|v| v.get("id").and_then(Json::as_u64))
        .collect()
}

#[test]
fn queue_full_boundary_is_exact_at_capacity() {
    let dir = tmpdir("boundary");
    let service = Service::start(cfg(&dir, 0, 3)).unwrap();
    // Exactly `capacity` jobs are admitted…
    for seed in 0..3 {
        accepted_id(service.submit(spec(seed, 0)).unwrap());
    }
    // …and job capacity+1 gets the structured rejection with the depth.
    match service.submit(spec(99, 0)).unwrap() {
        SubmitOutcome::Rejected { reason, queue_depth } => {
            assert_eq!(reason, "queue_full");
            assert_eq!(queue_depth, 3);
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    // Rejections are not journalled and allocate no id: freeing one slot
    // admits the next submission with a contiguous id.
    assert_eq!(service.cancel(1), CancelOutcome::CancelledQueued);
    assert_eq!(accepted_id(service.submit(spec(4, 0)).unwrap()), 4);
    let c = service.counters();
    assert_eq!((c.accepted, c.rejected, c.cancelled), (4, 1, 1));
    service.stop(false);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_queue_drains_in_priority_order_and_cancelled_jobs_never_run() {
    let dir = tmpdir("priority");
    // Phase 1: saturate a worker-less service so the whole backlog is
    // queued at once, with mixed priorities and one cancellation.
    {
        let service = Service::start(cfg(&dir, 0, 8)).unwrap();
        let low = accepted_id(service.submit(spec(0, 1)).unwrap()); // id 1
        accepted_id(service.submit(spec(1, 5)).unwrap()); // id 2, highest
        accepted_id(service.submit(spec(2, 3)).unwrap()); // id 3
        accepted_id(service.submit(spec(3, 3)).unwrap()); // id 4, ties FIFO with 3
        assert_eq!(service.cancel(low), CancelOutcome::CancelledQueued);
        assert_eq!(service.cancel(low), CancelOutcome::AlreadyTerminal(JobStatus::Cancelled));
        assert_eq!(service.cancel(77), CancelOutcome::NotFound);
        service.stop(false);
    }
    // Phase 2: a restart recovers the backlog (minus the cancelled job)
    // and a single worker drains it strictly by (priority desc, id asc).
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    assert_eq!(service.counters().requeued, 3, "cancelled job must not be requeued");
    assert!(service.quiesce(Duration::from_secs(60)), "backlog did not drain");
    assert_eq!(start_order(&dir), vec![2, 3, 4], "claims must follow priority then FIFO");
    for id in [2, 3, 4] {
        let job = service.job(id).unwrap();
        assert_eq!(job.status, JobStatus::Done, "job {id}");
        assert!(job.result.is_some());
    }
    // The cancelled job never reached an engine: terminal, and no result
    // was ever journalled for it (engine runs always journal one).
    let job = service.job(1).unwrap();
    assert_eq!(job.status, JobStatus::Cancelled);
    assert!(job.result.is_none(), "cancelled-while-queued job must never produce a result");
    service.stop(true);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stopping_service_rejects_new_submissions() {
    let dir = tmpdir("stopping");
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    service.stop(true);
    match service.submit(spec(0, 0)).unwrap() {
        SubmitOutcome::Rejected { reason, .. } => assert_eq!(reason, "shutting_down"),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn equal_keyed_submissions_share_one_result() {
    let dir = tmpdir("cachehit");
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    let first = accepted_id(service.submit(spec(7, 0)).unwrap());
    assert!(service.quiesce(Duration::from_secs(60)));
    // Same cell, different name/priority: served from the finished job,
    // already terminal at acknowledgement, byte-identical result.
    let mut dup = spec(7, 0);
    dup.name = "other-name".into();
    dup.priority = -4;
    match service.submit(dup).unwrap() {
        SubmitOutcome::Accepted { id, status, cached, .. } => {
            assert!(cached);
            assert_eq!(status, JobStatus::Done);
            let a = service.job(first).unwrap().result.unwrap().to_string();
            let b = service.job(id).unwrap().result.unwrap().to_string();
            assert_eq!(a, b);
        }
        other => panic!("expected cached acceptance, got {other:?}"),
    }
    assert_eq!(service.counters().cache_hits, 1);
    service.stop(true);
    fs::remove_dir_all(&dir).ok();
}
