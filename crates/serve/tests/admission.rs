//! Admission control and queue semantics, tested deterministically: a
//! service started with `workers: 0` accepts and queues but never runs, so
//! the queue-full boundary, cancel-while-queued, and the recovery requeue
//! are exact — no timing. A second service over the same directory (with a
//! worker) then drains the backlog, and the journal's `start` records give
//! the exact claim order for the priority assertion.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use pobp_engine::Algo;
use pobp_serve::json::Json;
use pobp_serve::service::{CancelOutcome, Service, ServiceConfig, SubmitOutcome};
use pobp_serve::{JobSpec, JobStatus};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pobp-serve-adm-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path, workers: usize, queue_cap: usize) -> ServiceConfig {
    ServiceConfig {
        dir: dir.to_path_buf(),
        workers,
        queue_cap,
        engine_threads: 1,
        degrade: false,
        compact_every: 10_000,
        #[cfg(feature = "chaos")]
        chaos: None,
        // `sample_ms: 0` disables the background sampler so telemetry
        // builds of these tests stay exactly as deterministic as default
        // builds — the `metrics` op still works via its on-demand sample.
        #[cfg(feature = "telemetry")]
        telemetry: pobp_serve::TelemetryOptions { sample_ms: 0, ..Default::default() },
    }
}

/// A quick job with a distinguishing seed and priority.
fn spec(seed: u64, priority: i64) -> JobSpec {
    let mut s = JobSpec::cell(Algo::Reduction, 8, 1, seed);
    s.priority = priority;
    s.name = format!("adm-{seed}");
    s
}

fn accepted_id(outcome: SubmitOutcome) -> u64 {
    match outcome {
        SubmitOutcome::Accepted { id, status: JobStatus::Queued, cached: false, .. } => id,
        other => panic!("expected a queued acceptance, got {other:?}"),
    }
}

/// Ids of `start` records in journal order — the exact sequence in which
/// workers claimed jobs.
fn start_order(dir: &Path) -> Vec<u64> {
    let text = fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    text.lines()
        .filter_map(|l| Json::parse(l).ok())
        .filter(|v| v.get("ev").and_then(Json::as_str) == Some("start"))
        .filter_map(|v| v.get("id").and_then(Json::as_u64))
        .collect()
}

#[test]
fn queue_full_boundary_is_exact_at_capacity() {
    let dir = tmpdir("boundary");
    let service = Service::start(cfg(&dir, 0, 3)).unwrap();
    // Exactly `capacity` jobs are admitted…
    for seed in 0..3 {
        accepted_id(service.submit(spec(seed, 0)).unwrap());
    }
    // …and job capacity+1 gets the structured rejection with the depth.
    match service.submit(spec(99, 0)).unwrap() {
        SubmitOutcome::Rejected { reason, queue_depth } => {
            assert_eq!(reason, "queue_full");
            assert_eq!(queue_depth, 3);
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    // Rejections are not journalled and allocate no id: freeing one slot
    // admits the next submission with a contiguous id.
    assert_eq!(service.cancel(1), CancelOutcome::CancelledQueued);
    assert_eq!(accepted_id(service.submit(spec(4, 0)).unwrap()), 4);
    let c = service.counters();
    assert_eq!((c.accepted, c.rejected, c.cancelled), (4, 1, 1));
    service.stop(false);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_queue_drains_in_priority_order_and_cancelled_jobs_never_run() {
    let dir = tmpdir("priority");
    // Phase 1: saturate a worker-less service so the whole backlog is
    // queued at once, with mixed priorities and one cancellation.
    {
        let service = Service::start(cfg(&dir, 0, 8)).unwrap();
        let low = accepted_id(service.submit(spec(0, 1)).unwrap()); // id 1
        accepted_id(service.submit(spec(1, 5)).unwrap()); // id 2, highest
        accepted_id(service.submit(spec(2, 3)).unwrap()); // id 3
        accepted_id(service.submit(spec(3, 3)).unwrap()); // id 4, ties FIFO with 3
        assert_eq!(service.cancel(low), CancelOutcome::CancelledQueued);
        assert_eq!(service.cancel(low), CancelOutcome::AlreadyTerminal(JobStatus::Cancelled));
        assert_eq!(service.cancel(77), CancelOutcome::NotFound);
        service.stop(false);
    }
    // Phase 2: a restart recovers the backlog (minus the cancelled job)
    // and a single worker drains it strictly by (priority desc, id asc).
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    assert_eq!(service.counters().requeued, 3, "cancelled job must not be requeued");
    assert!(service.quiesce(Duration::from_secs(60)), "backlog did not drain");
    assert_eq!(start_order(&dir), vec![2, 3, 4], "claims must follow priority then FIFO");
    for id in [2, 3, 4] {
        let job = service.job(id).unwrap();
        assert_eq!(job.status, JobStatus::Done, "job {id}");
        assert!(job.result.is_some());
    }
    // The cancelled job never reached an engine: terminal, and no result
    // was ever journalled for it (engine runs always journal one).
    let job = service.job(1).unwrap();
    assert_eq!(job.status, JobStatus::Cancelled);
    assert!(job.result.is_none(), "cancelled-while-queued job must never produce a result");
    service.stop(true);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stopping_service_rejects_new_submissions() {
    let dir = tmpdir("stopping");
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    service.stop(true);
    match service.submit(spec(0, 0)).unwrap() {
        SubmitOutcome::Rejected { reason, .. } => assert_eq!(reason, "shutting_down"),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn equal_keyed_submissions_share_one_result() {
    let dir = tmpdir("cachehit");
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    let first = accepted_id(service.submit(spec(7, 0)).unwrap());
    assert!(service.quiesce(Duration::from_secs(60)));
    // Same cell, different name/priority: served from the finished job,
    // already terminal at acknowledgement, byte-identical result.
    let mut dup = spec(7, 0);
    dup.name = "other-name".into();
    dup.priority = -4;
    match service.submit(dup).unwrap() {
        SubmitOutcome::Accepted { id, status, cached, .. } => {
            assert!(cached);
            assert_eq!(status, JobStatus::Done);
            let a = service.job(first).unwrap().result.unwrap().to_string();
            let b = service.job(id).unwrap().result.unwrap().to_string();
            assert_eq!(a, b);
        }
        other => panic!("expected cached acceptance, got {other:?}"),
    }
    assert_eq!(service.counters().cache_hits, 1);
    service.stop(true);
    fs::remove_dir_all(&dir).ok();
}

/// Reads a numeric field, treating a missing field as a loud NaN mismatch.
fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

/// Field-by-field contract for the `stats` payload after a scripted
/// submit/reject/cancel sequence on a worker-less service: every depth and
/// counter is exact because nothing ever runs.
#[test]
fn stats_json_fields_are_exact_after_scripted_traffic() {
    let dir = tmpdir("statsjson");
    let service = Service::start(cfg(&dir, 0, 2)).unwrap();
    accepted_id(service.submit(spec(0, 0)).unwrap()); // id 1, stays queued
    let second = accepted_id(service.submit(spec(1, 0)).unwrap()); // id 2
    assert!(matches!(service.submit(spec(9, 0)).unwrap(), SubmitOutcome::Rejected { .. }));
    assert_eq!(service.cancel(second), CancelOutcome::CancelledQueued);
    let stats = service.stats_json();
    for (key, want) in [
        ("jobs", 2.0),
        ("queued", 1.0),
        ("running", 0.0),
        ("queue_cap", 2.0),
        ("accepted", 2.0),
        ("rejected", 1.0),
        ("cache_hits", 0.0),
        ("done", 0.0),
        ("degraded", 0.0),
        ("failed", 0.0),
        ("cancelled", 1.0),
        // Two submit records plus one cancel record; the rejection is
        // never journalled.
        ("journal_seq", 3.0),
        ("compactions", 0.0),
    ] {
        assert_eq!(num(&stats, key), want, "stats field {key:?}");
    }
    let recovery = stats.get("recovery").expect("stats must embed the recovery report");
    assert_eq!(num(recovery, "replayed"), 0.0, "fresh directory replays nothing");
    assert_eq!(recovery.get("dropped_tail").and_then(Json::as_bool), Some(false));
    service.stop(false);
    fs::remove_dir_all(&dir).ok();
}

/// The `metrics` payload over the same scripted worker-less traffic: the
/// on-demand sample makes gauges and counters exact with `sample_ms: 0`,
/// and windowed rates/ratios are `null` until a second sample exists.
#[cfg(feature = "telemetry")]
#[test]
fn metrics_json_fields_are_exact_after_scripted_traffic() {
    let dir = tmpdir("metricsjson");
    let service = Service::start(cfg(&dir, 0, 2)).unwrap();
    accepted_id(service.submit(spec(0, 0)).unwrap());
    let second = accepted_id(service.submit(spec(1, 0)).unwrap());
    assert!(matches!(service.submit(spec(9, 0)).unwrap(), SubmitOutcome::Rejected { .. }));
    assert_eq!(service.cancel(second), CancelOutcome::CancelledQueued);
    let m = service.metrics_json();
    for (key, want) in
        [("queued", 1.0), ("running", 0.0), ("jobs", 2.0), ("queue_cap", 2.0), ("samples", 1.0)]
    {
        assert_eq!(num(&m, key), want, "metrics field {key:?}");
    }
    assert_eq!(m.get("journal_poisoned").and_then(Json::as_bool), Some(false));
    assert!(num(&m, "journal_bytes") > 0.0, "two journalled records have bytes");
    let counters = m.get("counters").expect("metrics must embed the counter sample");
    for (key, want) in [
        ("accepted", 2.0),
        ("rejected", 1.0),
        ("cancelled", 1.0),
        ("cache_hits", 0.0),
        ("finished", 1.0), // cancelled counts as finished in the rollup
        ("journal_appends", 3.0),
    ] {
        assert_eq!(num(counters, key), want, "metrics counter {key:?}");
    }
    // One sample spans no time: every windowed rate and ratio is null,
    // never a fabricated zero.
    let rates = m.get("rates").expect("metrics must embed the rates object");
    for key in ["accepted_per_s", "rejected_per_s", "finished_per_s"] {
        assert!(matches!(rates.get(key), Some(Json::Null)), "rate {key:?} must be null");
    }
    assert!(matches!(m.get("cache_hit_ratio"), Some(Json::Null)));
    assert!(matches!(m.get("degrade_ratio"), Some(Json::Null)));
    // Nothing ran: no latency observations, no per-alg rows.
    assert_eq!(num(m.get("latency_ms").unwrap(), "count"), 0.0);
    assert!(matches!(m.get("per_alg"), Some(Json::Obj(algs)) if algs.is_empty()));
    service.stop(false);
    fs::remove_dir_all(&dir).ok();
}

/// After a worker actually finishes jobs, the `metrics` payload carries
/// the latency histogram, the per-algorithm breakdown, and a cache-hit
/// counter consistent with `stats`.
#[cfg(feature = "telemetry")]
#[test]
fn metrics_json_tracks_finished_jobs_and_cache_hits() {
    let dir = tmpdir("metricsdone");
    let service = Service::start(cfg(&dir, 1, 8)).unwrap();
    accepted_id(service.submit(spec(5, 0)).unwrap());
    assert!(service.quiesce(Duration::from_secs(60)));
    let mut dup = spec(5, 0);
    dup.name = "dup".into();
    assert!(matches!(
        service.submit(dup).unwrap(),
        SubmitOutcome::Accepted { cached: true, .. }
    ));
    let m = service.metrics_json();
    let counters = m.get("counters").unwrap();
    // The cached acceptance reaches `Done` too, so the counter says 2 —
    // but only the real engine run shows up in latency and per-alg below.
    assert_eq!(num(counters, "done"), 2.0);
    assert_eq!(num(counters, "cache_hits"), 1.0);
    assert_eq!(num(m.get("latency_ms").unwrap(), "count"), 1.0, "one engine run was timed");
    let Some(Json::Obj(algs)) = m.get("per_alg") else { panic!("per_alg must be an object") };
    assert_eq!(algs.len(), 1, "exactly one algorithm finished jobs");
    assert_eq!(algs[0].0, "reduction");
    assert_eq!(num(&algs[0].1, "done"), 1.0, "the cache hit must not double-count");
    service.stop(true);
    fs::remove_dir_all(&dir).ok();
}
