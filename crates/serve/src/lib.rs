//! `pobp-serve`: the persistent scheduling service — a line-protocol
//! daemon with a durable job registry on top of [`pobp_engine`].
//!
//! The batch engine answers "solve these cells, now, in this process". This
//! crate answers the operational questions around it: accepting named solve
//! jobs over a socket, queueing them under admission control, surviving
//! `kill -9` without losing an acknowledged job or a finished result, and
//! re-serving equal-keyed results instead of recomputing them. See
//! `docs/serve.md` for the protocol, the lifecycle diagram, and the
//! durability contract.
//!
//! Layering (each module only calls downward):
//!
//! * [`json`] — re-export of [`pobp_core::json`], the workspace's minimal
//!   total JSON parser/writer (it moved down to core so `pobp-sweep`'s
//!   checkpoint manifests share it).
//! * [`job`] — [`JobSpec`]/[`JobStatus`]: the job model and content key.
//! * [`registry`] — the event-sourced id → record map.
//! * [`journal`] — append-only persistence + snapshot compaction.
//! * [`service`] — admission, the priority queue, workers, per-job engines.
//! * [`proto`] — request lines → [`service`] calls → response lines.
//! * [`server`] / [`client`] — the TCP front end and its client.
//! * [`soak`] — the randomized invariant-checking harness
//!   (`pobp-client soak`).
//! * `telemetry` (feature-gated) — the live-telemetry glue: sampler
//!   options, the Prometheus scrape listener, flight dumps
//!   (docs/observability.md).

pub mod client;
pub mod job;
pub mod journal;
pub use pobp_core::json;
pub mod proto;
pub mod registry;
pub mod server;
pub mod service;
pub mod soak;
#[cfg(feature = "telemetry")]
pub mod telemetry;

pub use client::Client;
pub use job::{JobSpec, JobStatus};
pub use journal::{replay_dir, Journal, RecoveryReport};
pub use registry::{Event, JobRecord, Registry};
pub use server::run_server;
pub use service::{CancelOutcome, Service, ServiceConfig, SubmitOutcome};
pub use soak::{run_soak, SoakConfig, SoakReport};
#[cfg(feature = "telemetry")]
pub use telemetry::{spawn_metrics_listener, TelemetryOptions};
