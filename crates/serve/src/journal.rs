//! Durability: the append-only event journal and its snapshot compaction.
//!
//! On disk a registry directory holds at most three files:
//!
//! * `journal.jsonl` — one JSON object per line, `{"seq": N, "ev": ...}`,
//!   appended and flushed **before** the daemon acknowledges the event's
//!   effect to any client. Sequence numbers are monotone across the whole
//!   directory lifetime (they never reset at compaction).
//! * `snapshot.json` — a full registry image plus the `seq` of the last
//!   event it covers. Written by compaction.
//! * `snapshot.json.tmp` — compaction scratch; atomically renamed over
//!   `snapshot.json`. A leftover `.tmp` is ignored at recovery.
//!
//! Compaction order is: write `.tmp`, fsync, rename over `snapshot.json`,
//! then truncate `journal.jsonl`. A `kill -9` between the rename and the
//! truncate leaves journal records with `seq` ≤ the snapshot's — recovery
//! skips those, so replay is idempotent. A `kill -9` mid-append leaves a
//! truncated final line — recovery drops it (that event was never
//! acknowledged, so nothing observable is lost). Both cases are exercised
//! by `tests/prop_journal.rs`.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use pobp_core::{obs_count, obs_event};
use pobp_engine::IoGuard;

use crate::json::{obj, Json};
use crate::registry::{Event, Registry};

/// Default number of journal appends between snapshot compactions.
pub const DEFAULT_COMPACT_EVERY: u64 = 256;

/// What recovery found on disk (surfaced in the daemon's startup line and
/// the `stats` op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal sequence number of the snapshot that seeded the registry
    /// (0 = no snapshot).
    pub snapshot_seq: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed: u64,
    /// Records skipped because the snapshot already covered them
    /// (crash between compaction's rename and truncate).
    pub skipped: u64,
    /// Whether a truncated/corrupt tail line was dropped
    /// (crash mid-append).
    pub dropped_tail: bool,
}

/// The open journal: owns the append handle and the compaction cadence.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    file: File,
    /// Sequence number of the last record written (or recovered).
    seq: u64,
    /// Appends since the last snapshot; drives compaction cadence.
    pending: u64,
    compact_every: u64,
    /// Total compactions performed by this handle.
    compactions: u64,
    /// Every durable write goes through the guard — inert in default
    /// builds, armable with the io-* chaos sites (docs/sweeps.md).
    guard: IoGuard,
    /// Set when an append failed mid-line: the file may carry a torn tail,
    /// and appending onto it would corrupt the next record. Further
    /// appends are refused until a successful compaction truncates the
    /// journal back to a clean state.
    poisoned: bool,
}

impl Journal {
    /// Opens (creating if needed) the registry directory, recovers the
    /// registry state from snapshot + journal, and returns the journal
    /// positioned to append.
    pub fn open(
        dir: &Path,
        compact_every: u64,
    ) -> io::Result<(Journal, Registry, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let (registry, seq, report) = replay_dir(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(dir.join("journal.jsonl"))?;
        let pending = report.replayed;
        let compact_every = compact_every.max(1);
        obs_event!("serve.recover.replayed", report.replayed);
        let mut journal = Journal {
            dir: dir.to_path_buf(),
            file,
            seq,
            pending,
            compact_every,
            compactions: 0,
            guard: IoGuard::inert(),
            poisoned: false,
        };
        // A crash mid-append can leave the file without a final newline —
        // either a torn half-record, or a complete record whose newline
        // never landed. Appending onto such a file would corrupt the next
        // record. Snapshot now: that truncates the journal to a clean state
        // while preserving everything recovered.
        if report.dropped_tail || !ends_with_newline(&journal.file)? {
            journal.compact(&registry)?;
        }
        Ok((journal, registry, report))
    }

    /// Arms the io-* fault sites under every subsequent append/compaction
    /// (`pobp serve --chaos`; see docs/sweeps.md for the sites).
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&mut self, plan: std::sync::Arc<pobp_engine::FaultPlan>, key: u64) {
        self.guard = IoGuard::armed(plan, key);
    }

    /// Appends one event and flushes it to the OS before returning, so a
    /// subsequent `kill -9` cannot lose it. Returns the record's sequence
    /// number. On an IO failure the journal poisons itself — the file may
    /// hold a torn tail, and blindly appending more records onto it would
    /// break the one-torn-line recovery assumption — until a compaction
    /// re-establishes a clean file.
    pub fn append(&mut self, event: &Event) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal poisoned by an earlier append failure (awaiting compaction)",
            ));
        }
        self.seq += 1;
        let mut record = event.to_json();
        if let Json::Obj(pairs) = &mut record {
            pairs.insert(0, ("seq".into(), Json::Num(self.seq as f64)));
        }
        let line = record.to_string();
        if let Err(e) = self
            .guard
            .append_line(&mut self.file, line.as_bytes())
            .and_then(|()| self.file.flush())
        {
            self.seq -= 1;
            self.poisoned = true;
            obs_count!("serve.journal.append_failures");
            return Err(e);
        }
        self.pending += 1;
        obs_count!("serve.journal.appends");
        Ok(self.seq)
    }

    /// Compacts if the append cadence says so. Returns whether a snapshot
    /// was written.
    pub fn maybe_compact(&mut self, registry: &Registry) -> io::Result<bool> {
        if self.pending < self.compact_every {
            return Ok(false);
        }
        self.compact(registry)?;
        Ok(true)
    }

    /// Unconditionally snapshots `registry` and truncates the journal.
    pub fn compact(&mut self, registry: &Registry) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        let snap = self.dir.join("snapshot.json");
        let mut bytes = registry.to_snapshot_json(self.seq).to_string().into_bytes();
        bytes.push(b'\n');
        self.guard.write_file_bytes(&tmp, &bytes)?;
        self.guard.rename(&tmp, &snap)?;
        // Crash window: snapshot covers seq ≤ self.seq, journal still holds
        // those records. Recovery skips them, so this truncate is merely an
        // optimisation that can safely be lost.
        self.file.set_len(0)?;
        self.pending = 0;
        self.compactions += 1;
        // The journal file is empty again: any torn tail from a failed
        // append is gone, so appends are safe once more.
        self.poisoned = false;
        obs_count!("serve.journal.compactions");
        Ok(())
    }

    /// Sequence number of the last record written.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total compactions performed by this handle.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Current size of the journal file in bytes (0 if unreadable).
    pub fn bytes(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    /// Whether an append failure has poisoned the journal (appends are
    /// refused until a compaction truncates it clean).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Whether the (append-mode) journal file is empty or ends with `\n` —
/// i.e. safe to append a fresh line to.
fn ends_with_newline(file: &File) -> io::Result<bool> {
    use std::io::Seek;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(true);
    }
    let mut f = file.try_clone()?;
    f.seek(io::SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

/// Pure read-side recovery: reconstructs the registry a fresh daemon would
/// start from, without opening the directory for writing. The soak
/// harness's replay-identity invariant and the property tests use this
/// directly.
pub fn replay_dir(dir: &Path) -> io::Result<(Registry, u64, RecoveryReport)> {
    let mut report = RecoveryReport::default();
    let mut registry = Registry::new();
    let mut seq = 0u64;
    let snap_path = dir.join("snapshot.json");
    if let Ok(text) = fs::read_to_string(&snap_path) {
        let parsed = Json::parse(text.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {e}")))?;
        let (reg, snap_seq) = Registry::from_snapshot_json(&parsed)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {e}")))?;
        registry = reg;
        seq = snap_seq;
        report.snapshot_seq = snap_seq;
    }
    let journal_path = dir.join("journal.jsonl");
    let mut bytes = Vec::new();
    match File::open(&journal_path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let text = String::from_utf8_lossy(&bytes);
    for line in text.split('\n') {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // A malformed record can only be a torn final append: the writer
        // flushes line-atomically, so everything before it is intact. Drop
        // it (it was never acknowledged) and stop.
        let (record_seq, event) = match Json::parse(line).ok().and_then(|v| {
            let s = v.get("seq").and_then(Json::as_u64)?;
            let ev = Event::from_json(&v).ok()?;
            Some((s, ev))
        }) {
            Some(parsed) => parsed,
            None => {
                report.dropped_tail = true;
                break;
            }
        };
        if record_seq <= report.snapshot_seq {
            report.skipped += 1;
            continue;
        }
        registry.apply(&event);
        seq = seq.max(record_seq);
        report.replayed += 1;
    }
    Ok((registry, seq, report))
}

/// Serialises a recovery report for the `stats` op.
pub fn recovery_json(r: &RecoveryReport) -> Json {
    obj([
        ("snapshot_seq", Json::Num(r.snapshot_seq as f64)),
        ("replayed", Json::Num(r.replayed as f64)),
        ("skipped", Json::Num(r.skipped as f64)),
        ("dropped_tail", Json::Bool(r.dropped_tail)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use pobp_engine::Algo;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("pobp-serve-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn submit_event(reg: &mut Registry, seed: u64) -> Event {
        let id = reg.allocate_id();
        Event::Submit { id, spec: JobSpec::cell(Algo::Reduction, 6, 1, seed) }
    }

    fn ok_result() -> Json {
        obj([("status", Json::Str("ok".into()))])
    }

    #[test]
    fn append_then_reopen_recovers_identical_registry() {
        let dir = tmpdir("reopen");
        let mut live = Registry::new();
        {
            let (mut j, recovered, _) = Journal::open(&dir, 1000).unwrap();
            assert!(recovered.is_empty());
            for seed in 0..5 {
                let ev = submit_event(&mut live, seed);
                j.append(&ev).unwrap();
                live.apply(&ev);
            }
            let ev = Event::Finish { id: 2, result: ok_result() };
            j.append(&ev).unwrap();
            live.apply(&ev);
        }
        let (_, recovered, report) = Journal::open(&dir, 1000).unwrap();
        assert_eq!(recovered, live);
        assert_eq!(report.replayed, 6);
        assert!(!report.dropped_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_skips_covered_records() {
        let dir = tmpdir("compact");
        let mut live = Registry::new();
        let (mut j, _, _) = Journal::open(&dir, 3).unwrap();
        for seed in 0..7 {
            let ev = submit_event(&mut live, seed);
            j.append(&ev).unwrap();
            live.apply(&ev);
            j.maybe_compact(&live).unwrap();
        }
        assert!(j.compactions() >= 2);
        // Simulate the crash window: re-append a record with a seq the
        // snapshot already covers, as if truncate had been lost.
        let stale = obj([
            ("seq", Json::Num(1.0)),
            ("ev", Json::Str("cancel".into())),
            ("id", Json::Num(1.0)),
        ]);
        let mut f = OpenOptions::new().append(true).open(dir.join("journal.jsonl")).unwrap();
        writeln!(f, "{stale}").unwrap();
        drop(f);
        let (recovered, _, report) = replay_dir(&dir).unwrap();
        assert_eq!(recovered, live, "stale pre-snapshot record must be skipped");
        assert_eq!(report.skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_without_panic() {
        let dir = tmpdir("tail");
        let mut live = Registry::new();
        {
            let (mut j, _, _) = Journal::open(&dir, 1000).unwrap();
            for seed in 0..4 {
                let ev = submit_event(&mut live, seed);
                j.append(&ev).unwrap();
                live.apply(&ev);
            }
        }
        // Torn final append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(dir.join("journal.jsonl")).unwrap();
        f.write_all(br#"{"seq":5,"ev":"submit","id":9,"spe"#).unwrap();
        drop(f);
        let (recovered, seq, report) = replay_dir(&dir).unwrap();
        assert_eq!(recovered, live);
        assert_eq!(seq, 4);
        assert!(report.dropped_tail);
        // Reopening auto-compacts past the torn tail, so fresh appends
        // land on a clean file instead of concatenating onto garbage.
        let (mut j, recovered2, report2) = Journal::open(&dir, 1000).unwrap();
        assert_eq!(recovered2, live);
        assert!(report2.dropped_tail);
        assert_eq!(j.compactions(), 1);
        let ev = submit_event(&mut live, 99);
        j.append(&ev).unwrap();
        live.apply(&ev);
        let (recovered3, _, _) = replay_dir(&dir).unwrap();
        assert_eq!(recovered3, live);
        fs::remove_dir_all(&dir).unwrap();
    }
}
